//! Process-backed SHMEM world, end to end: forked PEs over a `memfd`
//! symmetric heap must be a drop-in substrate for the scale-out backend —
//! bit-identical states, typed real-SIGKILL failures, engine-level
//! checkpoint recovery and quarantine, and no leaked file descriptors.
//!
//! The quick tests here are debug-sized; the full Table 4 gate
//! (`full_suite_bit_identity_thread_vs_process`) is `#[ignore]`d and runs
//! release-mode from `scripts/ci.sh`.

use std::sync::Arc;
use std::time::Duration;
use sv_sim::core::{state_checksum, CheckpointStore, ShmemBackend, SimConfig, Simulator};
use sv_sim::engine::{
    DegradePolicy, Engine, EngineConfig, JobError, JobOutput, JobRequest, JobSpec, RetryPolicy,
    SubmitError,
};
use sv_sim::ir::{Circuit, GateKind};
use sv_sim::shmem::{FaultAction, FaultPlan};
use sv_sim::types::{PeOp, SvError};
use sv_sim::workloads::random::random_circuit;

fn run_state(circuit: &Circuit, config: SimConfig) -> (u64, Vec<f64>, Vec<f64>) {
    let mut sim = Simulator::new(circuit.n_qubits(), config).unwrap();
    let summary = sim.run(circuit).unwrap();
    (
        summary.cbits,
        sim.state().re().to_vec(),
        sim.state().im().to_vec(),
    )
}

fn ghz_with_measure(n: u32) -> Circuit {
    let mut c = Circuit::with_cbits(n, 2);
    c.apply(GateKind::H, &[0], &[]).unwrap();
    for q in 1..n {
        c.apply(GateKind::CX, &[q - 1, q], &[]).unwrap();
    }
    c.measure(0, 0).unwrap();
    c.measure(n - 1, 1).unwrap();
    c
}

/// Count open file descriptors that point at a memfd.
fn open_memfds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .expect("/proc/self/fd")
        .filter(|entry| {
            entry.as_ref().is_ok_and(|e| {
                std::fs::read_link(e.path())
                    .map(|target| target.to_string_lossy().contains("memfd:"))
                    .unwrap_or(false)
            })
        })
        .count()
}

/// Thread-backed and process-backed PEs produce bit-identical states and
/// classical bits on random circuits at every PE count.
#[test]
fn thread_and_process_pes_are_bit_identical() {
    for seed in 0..6u64 {
        let n = 6u32;
        let circuit = random_circuit(n, 5 + (seed as usize * 9) % 40, seed);
        for n_pes in [2usize, 4, 8] {
            let base = SimConfig::scale_out(n_pes).with_seed(seed);
            let (tc, tre, tim) = run_state(&circuit, base);
            let (pc, pre, pim) = run_state(&circuit, base.with_process_backend());
            assert_eq!(tc, pc, "cbits diverged (seed {seed}, {n_pes} PEs)");
            assert_eq!(tre, pre, "re diverged (seed {seed}, {n_pes} PEs)");
            assert_eq!(tim, pim, "im diverged (seed {seed}, {n_pes} PEs)");
        }
    }
}

/// Measurement collapse replays identically across the fork boundary: the
/// random stream is drawn in the parent and shipped into every child.
#[test]
fn measurement_streams_agree_across_backends() {
    let circuit = ghz_with_measure(5);
    for seed in 0..8u64 {
        let base = SimConfig::scale_out(4).with_seed(seed);
        let (tc, tre, tim) = run_state(&circuit, base);
        let (pc, pre, pim) = run_state(&circuit, base.with_process_backend());
        assert_eq!(tc, pc, "seed {seed}");
        assert_eq!((tre, tim), (pre, pim), "collapsed state, seed {seed}");
    }
}

/// The communication-avoiding remap planner runs unchanged on forked PEs —
/// the relabeling slab exchanges go through the shared arena.
#[test]
fn remap_is_bit_identical_on_process_pes() {
    for seed in [3u64, 17] {
        let circuit = random_circuit(6, 48, seed);
        let reference = run_state(&circuit, SimConfig::single_device().with_seed(seed));
        for n_pes in [4usize, 8] {
            let config = SimConfig::scale_out(n_pes)
                .with_seed(seed)
                .with_remap()
                .with_process_backend();
            assert_eq!(
                run_state(&circuit, config),
                reference,
                "remap on process PEs diverged (seed {seed}, {n_pes} PEs)"
            );
        }
    }
}

/// The dynamic race detector's shadow state is in-process `Arc`s; arming it
/// on forked PEs must be refused with a typed config error, not silently
/// miss every access.
#[test]
fn race_detection_on_process_pes_is_a_typed_config_error() {
    let circuit = random_circuit(5, 10, 1);
    let config = SimConfig::scale_out(2)
        .with_race_detection()
        .with_process_backend();
    let mut sim = Simulator::new(5, config).unwrap();
    match sim.run(&circuit) {
        Err(SvError::InvalidConfig(msg)) => {
            assert!(msg.contains("thread backend"), "actionable message: {msg}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

/// Launching forked PEs must not leak the arena's memfd: the fd is closed
/// right after `mmap`, so repeated launches leave `/proc/self/fd` clean.
#[test]
fn repeated_launches_leak_no_memfds() {
    let circuit = random_circuit(5, 12, 7);
    let config = SimConfig::scale_out(4).with_process_backend();
    for _ in 0..20 {
        let mut sim = Simulator::new(5, config).unwrap();
        sim.run(&circuit).unwrap();
    }
    // Other tests in this binary may hold a memfd for a few microseconds
    // between `memfd_create` and the post-mmap close; sample briefly
    // rather than flaking on that window.
    let mut count = open_memfds();
    for _ in 0..5 {
        if count == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
        count = open_memfds();
    }
    assert_eq!(count, 0, "memfd descriptors leaked across launches");
}

/// An injected Kill on the process backend is a *real* `SIGKILL(2)` of the
/// forked PE; the engine retries from the last checkpoint and finishes
/// bit-identical to the fault-free run — the host process is never
/// poisoned by the death.
#[test]
fn engine_recovers_from_a_real_sigkill_bit_identically() {
    let circuit = Arc::new(ghz_with_measure(6));
    let config = SimConfig::scale_out(4)
        .with_seed(11)
        .with_checkpoint_every(2)
        .with_process_backend();

    let mut reference = Simulator::new(6, config).unwrap();
    let ref_summary = reference.run(&circuit).unwrap();
    let ref_checksum = state_checksum(reference.state());

    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let plan = Arc::new(FaultPlan::new().with(1, PeOp::Barrier, 9, FaultAction::Kill));
    let handle = engine
        .submit(
            JobRequest::new(JobSpec::OneShot {
                circuit: Arc::clone(&circuit),
                config,
                shots: 0,
                return_state: true,
            })
            .with_retry(RetryPolicy::attempts(3).with_base_backoff(Duration::from_millis(1)))
            .with_fault_plan(Arc::clone(&plan)),
        )
        .unwrap();
    let JobOutput::OneShot { summary, state, .. } =
        handle.wait().expect("retry must recover the job")
    else {
        panic!("one-shot output expected");
    };
    assert_eq!(plan.armed_remaining(), 0, "the SIGKILL must actually fire");
    let state = state.expect("state requested");
    assert_eq!(state_checksum(&state), ref_checksum);
    assert_eq!(summary.cbits, ref_summary.cbits);

    let metrics = engine.shutdown();
    assert!(metrics.retries >= 1, "a retry must be recorded");
    assert!(metrics.checkpoint_bytes > 0, "checkpoints were captured");
    assert_eq!(metrics.failed, 0);
}

/// Without retries, a real SIGKILL surfaces as the typed
/// `PeFailed { op: Term { signal: SIGKILL, .. } }` — carrying the barrier
/// epoch the PE had last completed — and repeated deaths quarantine the
/// job fingerprint at admission.
#[test]
fn repeated_sigkills_quarantine_the_job_shape() {
    let circuit = Arc::new(ghz_with_measure(4));
    let config = SimConfig::scale_out(2).with_seed(7).with_process_backend();
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_quarantine_threshold(2),
    );
    let faulty = || {
        JobRequest::new(JobSpec::OneShot {
            circuit: Arc::clone(&circuit),
            config,
            shots: 0,
            return_state: false,
        })
        .with_fault_plan(Arc::new(FaultPlan::new().with(
            0,
            PeOp::Barrier,
            2,
            FaultAction::Kill,
        )))
    };
    for _ in 0..2 {
        match engine.submit(faulty()).unwrap().wait() {
            Err(JobError::Failed(SvError::PeFailed {
                pe: 0,
                op: PeOp::Term { signal, epoch, .. },
            })) => {
                assert_eq!(signal, 9, "death by SIGKILL");
                assert_eq!(epoch, 1, "one barrier completed before the kill");
            }
            other => panic!("expected PeFailed with a Term record, got {other:?}"),
        }
    }
    match engine.submit(faulty()) {
        Err(SubmitError::Quarantined { failures: 2 }) => {}
        other => panic!("expected quarantine, got {other:?}"),
    }

    // The thread-backed flavor of the same job is a *different* fingerprint
    // (the backend is part of the config, hence of the shape) and is
    // admitted normally.
    let thread_job = JobRequest::new(JobSpec::OneShot {
        circuit: Arc::clone(&circuit),
        config: config.with_shmem_backend(ShmemBackend::Thread),
        shots: 0,
        return_state: false,
    });
    let h = engine.submit(thread_job).unwrap();
    assert!(h.wait().is_ok());

    let metrics = engine.shutdown();
    assert_eq!(metrics.quarantined, 1);
    assert_eq!(metrics.failed, 2);
}

/// A torn checkpoint write (injected host-side crash mid-persist) loses
/// the in-memory checkpoint and leaves a half-written generation on disk;
/// the store's previous good generation recovers the run bit-identically —
/// on thread-backed AND process-backed PEs.
#[test]
fn torn_checkpoint_recovers_from_previous_generation_on_both_backends() {
    use sv_sim::workloads::random::random_circuit;
    let circuit = random_circuit(5, 24, 21);
    for backend in [ShmemBackend::Thread, ShmemBackend::Process] {
        let config = SimConfig::scale_out(2)
            .with_seed(5)
            .with_checkpoint_every(2)
            .with_shmem_backend(backend);
        let mut reference = Simulator::new(5, config).unwrap();
        let ref_summary = reference.run(&circuit).unwrap();
        let ref_checksum = state_checksum(reference.state());

        let dir =
            std::env::temp_dir().join(format!("svsim-torn-{}-{backend:?}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sim = Simulator::new(5, config).unwrap();
        sim.set_checkpoint_store(Some(CheckpointStore::open(&dir).unwrap()));
        // Generations 0 (op 0) and 1 (op 2) land cleanly; the third
        // persist tears mid-write.
        sim.set_fault_plan(Some(Arc::new(FaultPlan::new().with(
            0,
            PeOp::Checkpoint,
            3,
            FaultAction::TornCheckpoint,
        ))));
        match sim.run(&circuit) {
            Err(SvError::Checkpoint(msg)) => {
                assert!(msg.contains("torn write"), "typed torn-write error: {msg}");
            }
            other => panic!("expected a torn-checkpoint error, got {other:?}"),
        }
        assert!(
            sim.checkpoint().is_none(),
            "the in-memory checkpoint must be lost with the crash"
        );
        assert!(
            sim.recover_checkpoint_from_store().unwrap(),
            "the previous good generation must load ({backend:?})"
        );
        let summary = sim.resume(&circuit).unwrap();
        assert_eq!(
            state_checksum(sim.state()),
            ref_checksum,
            "recovered state diverged ({backend:?})"
        );
        assert_eq!(summary.cbits, ref_summary.cbits, "{backend:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// With a respawn budget armed, a real SIGKILL of a forked PE is healed
/// *inside* the launch: the supervisor re-forks only the victim, surviving
/// PEs keep their pids, and the job completes bit-identically with no
/// engine-level retry at all.
#[test]
fn respawn_heals_a_sigkill_without_an_engine_retry() {
    let circuit = Arc::new(ghz_with_measure(6));
    let config = SimConfig::scale_out(4)
        .with_seed(11)
        .with_checkpoint_every(2)
        .with_process_backend();
    let mut reference = Simulator::new(6, config).unwrap();
    reference.run(&circuit).unwrap();
    let ref_checksum = state_checksum(reference.state());

    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let plan = Arc::new(FaultPlan::new().with(1, PeOp::Barrier, 9, FaultAction::Kill));
    let handle = engine
        .submit(
            JobRequest::new(JobSpec::OneShot {
                circuit: Arc::clone(&circuit),
                config,
                shots: 0,
                return_state: true,
            })
            .with_degrade(DegradePolicy::Respawn { max_respawns: 2 })
            .with_fault_plan(Arc::clone(&plan)),
        )
        .unwrap();
    let JobOutput::OneShot { summary, state, .. } =
        handle.wait().expect("respawn must heal the launch")
    else {
        panic!("one-shot output expected");
    };
    assert_eq!(plan.armed_remaining(), 0, "the SIGKILL must actually fire");
    assert_eq!(
        state_checksum(&state.expect("state requested")),
        ref_checksum
    );
    assert!(summary.respawns >= 1, "the supervisor respawned in place");
    let metrics = engine.shutdown();
    assert!(metrics.respawned >= 1, "respawns are visible in metrics");
    assert_eq!(metrics.retries, 0, "no engine-level retry was needed");
    assert_eq!(metrics.failed, 0);
}

/// A PE that stops making progress (injected infinite sleep) is detected
/// by the parent watchdog within the configured deadline and surfaces as
/// the typed `PeHung` — distinct from `PeFailed` — when no recovery path
/// is armed.
#[test]
fn hung_pe_surfaces_as_typed_pe_hung_through_the_engine() {
    let circuit = Arc::new(ghz_with_measure(5));
    let config = SimConfig::scale_out(2)
        .with_seed(3)
        .with_process_backend()
        .with_hang_deadline_ms(400);
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let started = std::time::Instant::now();
    let handle = engine
        .submit(
            JobRequest::new(JobSpec::OneShot {
                circuit,
                config,
                shots: 0,
                return_state: false,
            })
            .with_fault_plan(Arc::new(FaultPlan::new().with(
                1,
                PeOp::Put,
                2,
                FaultAction::Hang,
            ))),
        )
        .unwrap();
    match handle.wait() {
        Err(JobError::Failed(SvError::PeHung { pe, stalled_ms, .. })) => {
            assert_eq!(pe, 1, "the hung rank is identified");
            assert!(stalled_ms >= 400, "stall at least the deadline");
        }
        other => panic!("expected PeHung, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "the watchdog, not a barrier timeout, must catch the hang"
    );
    let metrics = engine.shutdown();
    assert_eq!(metrics.hung, 1, "the hang is counted in engine metrics");
}

/// The degradation ladder: repeated transient failures re-partition the
/// job at half the PEs and resume from the last good checkpoint, and the
/// degraded run still matches the fault-free reference bit for bit.
#[test]
fn degradation_ladder_halves_pes_and_stays_bit_identical() {
    let circuit = Arc::new(ghz_with_measure(6));
    let config = SimConfig::scale_out(4)
        .with_seed(19)
        .with_checkpoint_every(2);
    let mut reference = Simulator::new(6, config).unwrap();
    reference.run(&circuit).unwrap();
    let ref_checksum = state_checksum(reference.state());

    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let plan = Arc::new(FaultPlan::new().with(None, PeOp::Put, 3, FaultAction::Kill));
    let handle = engine
        .submit(
            JobRequest::new(JobSpec::OneShot {
                circuit: Arc::clone(&circuit),
                config,
                shots: 0,
                return_state: true,
            })
            .with_retry(RetryPolicy::attempts(4).with_base_backoff(Duration::from_millis(1)))
            .with_degrade(DegradePolicy::HalvePes {
                failures_per_rung: 1,
                min_pes: 1,
            })
            .with_fault_plan(Arc::clone(&plan)),
        )
        .unwrap();
    let JobOutput::OneShot { state, .. } = handle.wait().expect("degraded job must complete")
    else {
        panic!("one-shot output expected");
    };
    assert_eq!(plan.armed_remaining(), 0, "the kill must actually fire");
    assert_eq!(
        state_checksum(&state.expect("state requested")),
        ref_checksum
    );
    let metrics = engine.shutdown();
    assert!(
        metrics.degraded >= 1,
        "the halve-PEs step is visible in engine metrics"
    );
    assert_eq!(metrics.failed, 0);
}

/// The full Table 4 gate: every medium + large workload, thread vs process
/// at 2/4/8 PEs, compared by amplitude checksum and classical bits against
/// the single-device reference. Release-mode CI leg (`scripts/ci.sh`).
#[test]
#[ignore = "release-mode CI leg: runs via scripts/ci.sh (cargo test --release -- --ignored)"]
fn full_suite_bit_identity_thread_vs_process() {
    let suite: Vec<_> = sv_sim::workloads::medium_suite()
        .into_iter()
        .chain(sv_sim::workloads::large_suite())
        .collect();
    assert_eq!(suite.len(), 16, "the full Table 4 suite");
    for spec in suite {
        let circuit = spec.circuit().unwrap();
        let n = circuit.n_qubits();
        let mut reference = Simulator::new(n, SimConfig::single_device()).unwrap();
        let ref_summary = reference.run(&circuit).unwrap();
        let ref_checksum = state_checksum(reference.state());
        for n_pes in [2usize, 4, 8] {
            for backend in [ShmemBackend::Thread, ShmemBackend::Process] {
                let config = SimConfig::scale_out(n_pes).with_shmem_backend(backend);
                let mut sim = Simulator::new(n, config).unwrap();
                let summary = sim.run(&circuit).unwrap();
                assert_eq!(
                    state_checksum(sim.state()),
                    ref_checksum,
                    "{} diverged ({backend:?}, {n_pes} PEs)",
                    spec.name
                );
                assert_eq!(
                    summary.cbits, ref_summary.cbits,
                    "{} cbits diverged ({backend:?}, {n_pes} PEs)",
                    spec.name
                );
            }
        }
    }
}
