//! OpenQASM-to-results integration: programs enter as text and leave as
//! measurement statistics, crossing every layer of the stack.

use sv_sim::core::{SimConfig, Simulator};
use sv_sim::qasm::parse_circuit;

#[test]
fn bernstein_vazirani_from_qasm_text() {
    // Hand-written BV with secret 101.
    let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[3];
x q[3]; h q[3];
h q[0]; h q[1]; h q[2];
cx q[0], q[3];
cx q[2], q[3];
h q[0]; h q[1]; h q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
"#;
    let circuit = parse_circuit(src).unwrap();
    let mut sim = Simulator::new(4, SimConfig::single_device().with_seed(3)).unwrap();
    let summary = sim.run(&circuit).unwrap();
    assert_eq!(summary.cbits, 0b101);
}

#[test]
fn qasm_matches_builder_circuit() {
    // The same QFT written in QASM and via the workloads generator must
    // produce identical states.
    let mut src = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\n");
    for i in 0..4u32 {
        src.push_str(&format!("h q[{i}];\n"));
        for j in i + 1..4 {
            let denom = 1u32 << (j - i);
            src.push_str(&format!("cu1(pi/{denom}) q[{j}], q[{i}];\n"));
        }
    }
    src.push_str("swap q[0], q[3];\nswap q[1], q[2];\n");
    let from_qasm = parse_circuit(&src).unwrap();
    let from_builder = sv_sim::workloads::algos::qft(4).unwrap();

    let mut sim_a = Simulator::new(4, SimConfig::single_device()).unwrap();
    sim_a.run(&from_qasm).unwrap();
    let mut sim_b = Simulator::new(4, SimConfig::single_device()).unwrap();
    sim_b.run(&from_builder).unwrap();
    assert!(sim_a.state().max_diff(sim_b.state()) < 1e-12);
}

#[test]
fn user_gates_and_conditionals_survive_the_distributed_backend() {
    let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[1];
gate bell a, b { h a; cx a, b; }
bell q[0], q[1];
measure q[0] -> c[0];
if (c == 1) x q[2];
"#;
    let circuit = parse_circuit(src).unwrap();
    for seed in 0..8u64 {
        let mut sim = Simulator::new(3, SimConfig::scale_out(4).with_seed(seed)).unwrap();
        let summary = sim.run(&circuit).unwrap();
        // q[2] must track the measured bit exactly.
        let p2 = sv_sim::core::measure::prob_one(sim.state(), 2);
        if summary.cbits == 1 {
            assert!((p2 - 1.0).abs() < 1e-9);
        } else {
            assert!(p2 < 1e-9);
        }
    }
}

#[test]
fn roundtrip_display_reparses() {
    // Circuit::Display emits QASM-like text for gates; build a circuit,
    // print it, wrap with headers, re-parse, and compare.
    let circuit = sv_sim::workloads::algos::ghz(5).unwrap();
    let mut src = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[5];\n");
    for line in circuit.to_string().lines().skip(1) {
        src.push_str(line);
        src.push('\n');
    }
    let reparsed = parse_circuit(&src).unwrap();
    let mut sim_a = Simulator::new(5, SimConfig::single_device()).unwrap();
    sim_a.run(&circuit).unwrap();
    let mut sim_b = Simulator::new(5, SimConfig::single_device()).unwrap();
    sim_b.run(&reparsed).unwrap();
    assert!(sim_a.state().max_diff(sim_b.state()) < 1e-12);
}

#[test]
fn parse_errors_carry_locations() {
    let err = parse_circuit("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("frobnicate"), "got: {msg}");
}

#[test]
fn replayed_qasm_parse_hits_the_engine_plan_cache() {
    // A service that re-parses the same QASM source per request submits
    // equal-but-distinct Arc<Circuit>s. The compile stage's plan cache
    // keys structurally, so the second parse must HIT; a one-gate edit
    // must MISS and recompile.
    use std::sync::Arc;
    use sv_sim::engine::{Engine, EngineConfig, JobOutput, JobRequest, JobSpec};

    let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0]; cx q[0], q[1]; t q[2]; cx q[2], q[3]; h q[3];
"#;
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let config = SimConfig::single_device().with_seed(5);
    let run = |source: &str| {
        let circuit = Arc::new(parse_circuit(source).unwrap());
        let handle = engine
            .submit(JobRequest::new(JobSpec::OneShot {
                circuit,
                config,
                shots: 0,
                return_state: true,
            }))
            .unwrap();
        match handle.wait().unwrap() {
            JobOutput::OneShot { state, .. } => state.expect("state requested"),
            other => panic!("one-shot output expected, got {other:?}"),
        }
    };

    let first = run(src);
    let second = run(src); // independent parse, same source
    assert_eq!(first.re(), second.re());
    assert_eq!(first.im(), second.im());
    let edited = src.replace("t q[2];", "s q[2];");
    let _ = run(&edited); // one-gate edit
    let metrics = engine.shutdown();
    assert_eq!(
        (metrics.plan_cache_hits, metrics.plan_cache_misses),
        (1, 2),
        "re-parsed QASM must hit; the one-gate edit must miss"
    );
}
