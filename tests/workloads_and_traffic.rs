//! Workload-suite integration: every Table 4 routine runs on the
//! distributed backends, and the analytic traffic model matches the
//! measured SHMEM counters exactly.

use sv_sim::core::{SimConfig, Simulator};
use sv_sim::ir::Circuit;
use sv_sim::workloads::{medium_suite, Category};

fn unitary_part(c: &Circuit) -> Circuit {
    let mut out = Circuit::new(c.n_qubits());
    for op in c.ops() {
        if let sv_sim::ir::Op::Gate(g) = op {
            out.push_gate(*g).unwrap();
        }
    }
    out
}

#[test]
fn medium_suite_agrees_between_single_and_scaleout() {
    for spec in medium_suite() {
        assert_eq!(spec.category, Category::Medium);
        let circuit = unitary_part(&spec.circuit().unwrap());
        let n = circuit.n_qubits();
        let mut single = Simulator::new(n, SimConfig::single_device()).unwrap();
        single.run(&circuit).unwrap();
        let mut shmem = Simulator::new(n, SimConfig::scale_out(4)).unwrap();
        shmem.run(&circuit).unwrap();
        assert!(
            shmem.state().max_diff(single.state()) < 1e-9,
            "{} diverged between backends",
            spec.name
        );
    }
}

#[test]
fn traffic_prediction_matches_measurement_on_suite() {
    // The closed-form communication model must agree with the measured
    // one-sided SHMEM traffic for every medium circuit at several PE
    // counts. (ShmemView moves re and im separately: 2 measured f64 ops
    // per modeled amplitude op.)
    for spec in medium_suite().iter().take(5) {
        let circuit = unitary_part(&spec.circuit().unwrap());
        let n = circuit.n_qubits();
        for n_pes in [2usize, 4, 8] {
            let mut sim = Simulator::new(n, SimConfig::scale_out(n_pes)).unwrap();
            let predicted = sim.predict_traffic(&circuit);
            let summary = sim.run(&circuit).unwrap();
            let measured = summary.total_traffic();
            assert_eq!(
                measured.remote_gets + measured.remote_puts,
                2 * predicted.remote_amp_ops,
                "{} at {n_pes} PEs: model vs measured mismatch",
                spec.name
            );
            // Bytes match exactly: the model's 16 bytes per amplitude op
            // equal the fabric's two 8-byte word transfers.
            assert_eq!(
                measured.remote_bytes(),
                predicted.remote_bytes,
                "{} at {n_pes} PEs: byte mismatch",
                spec.name
            );
        }
    }
}

#[test]
fn remote_fraction_grows_with_partition_count() {
    // The structural reason scale-out saturates (Fig. 12): more partitions
    // put more qubits above the boundary, so remote volume grows.
    let circuit = sv_sim::workloads::algos::qft(12).unwrap();
    let mut previous = 0u64;
    for n_pes in [2usize, 4, 8, 16] {
        let sim = Simulator::new(12, SimConfig::scale_out(n_pes)).unwrap();
        let t = sim.predict_traffic(&circuit);
        assert!(
            t.remote_amp_ops >= previous,
            "remote volume should not shrink with more PEs"
        );
        previous = t.remote_amp_ops;
    }
    assert!(previous > 0);
}

#[test]
fn scaleup_peer_traffic_is_also_counted() {
    let circuit = sv_sim::workloads::algos::ghz(10).unwrap();
    let mut sim = Simulator::new(10, SimConfig::scale_up(4)).unwrap();
    let summary = sim.run(&circuit).unwrap();
    let total = summary.total_traffic();
    assert!(total.total_ops() > 0);
    assert!(
        total.remote_ops() > 0,
        "the CX chain must cross partition boundaries"
    );
    // PeerView counts complex accesses (16 bytes), one op per amplitude:
    // measured ops equal the model's amplitude ops exactly.
    let predicted = sim.predict_traffic(&circuit);
    assert_eq!(total.remote_ops(), predicted.remote_amp_ops);
}

#[test]
fn large_suite_structural_stats() {
    // Don't run the 2^23 states in CI-style tests; validate structure.
    for spec in sv_sim::workloads::large_suite() {
        let c = spec.circuit().unwrap();
        let s = c.stats();
        assert!(s.gates > 0, "{}", spec.name);
        assert!(
            s.cx <= s.gates,
            "{}: CX count cannot exceed gate count",
            spec.name
        );
        assert_eq!(spec.category, Category::Large);
    }
}
