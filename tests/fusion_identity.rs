//! Fused-vs-unfused differential tests over the Table 4 workload suite.
//!
//! Gate fusion replays the original micro-ops inside each dense window
//! sweep instead of premultiplying matrices, so a fused run must be
//! *bit-identical* — not merely close — to the unfused run on every
//! backend, dispatch mode, and remap setting. These tests hold that line
//! with `state_checksum` (a checksum over the exact f64 bit patterns).

use sv_sim::core::{
    state_checksum, CompiledPlan, DispatchMode, ShmemBackend, SimConfig, Simulator,
};
use sv_sim::workloads::{large_suite, medium_suite};

fn checksum_run(circuit: &sv_sim::ir::Circuit, config: SimConfig) -> (u64, u64) {
    let mut sim = Simulator::new(circuit.n_qubits(), config).unwrap();
    let summary = sim.run(circuit).unwrap();
    (state_checksum(sim.state()), summary.cbits)
}

/// Every medium workload, fused at windows 1..=3, across single-device,
/// runtime-parse, scale-up, and thread scale-out with remap on and off:
/// all bit-identical to the unfused single-device reference.
#[test]
fn medium_suite_fused_is_bit_identical_everywhere() {
    for spec in medium_suite() {
        let circuit = spec.circuit().unwrap();
        let (ref_sum, ref_cbits) = checksum_run(&circuit, SimConfig::single_device().with_seed(7));
        for window in 1..=3u8 {
            let configs = [
                SimConfig::single_device().with_seed(7).with_fusion(window),
                SimConfig::single_device()
                    .with_seed(7)
                    .with_dispatch(DispatchMode::RuntimeParse)
                    .with_fusion(window),
                SimConfig::scale_up(4).with_seed(7).with_fusion(window),
                SimConfig::scale_out(4).with_seed(7).with_fusion(window),
                SimConfig::scale_out(4)
                    .with_seed(7)
                    .with_remap()
                    .with_fusion(window),
            ];
            for config in configs {
                let (sum, cbits) = checksum_run(&circuit, config);
                assert_eq!(
                    sum, ref_sum,
                    "{} state diverged (window {window}, {config:?})",
                    spec.name
                );
                assert_eq!(
                    cbits, ref_cbits,
                    "{} cbits diverged (window {window}, {config:?})",
                    spec.name
                );
            }
        }
    }
}

/// Fusion must actually collapse amplitude passes on gate-dense workloads,
/// while never growing the queue on any workload (traffic monotonicity).
#[test]
fn fusion_collapses_passes_without_inflating_any_workload() {
    let mut collapsed = 0usize;
    for spec in medium_suite() {
        let circuit = spec.circuit().unwrap();
        let n = circuit.n_qubits();
        let unfused = CompiledPlan::compile(&circuit, n, &SimConfig::single_device());
        let fused = CompiledPlan::compile(&circuit, n, &SimConfig::single_device().with_fusion(3));
        assert_eq!(
            fused.n_source_kernels(),
            unfused.n_kernels(),
            "{}: fusion must preserve every source kernel",
            spec.name
        );
        assert!(
            fused.n_kernels() <= unfused.n_kernels(),
            "{}: fusion grew the queue {} -> {}",
            spec.name,
            unfused.n_kernels(),
            fused.n_kernels()
        );
        if fused.n_kernels() < unfused.n_kernels() {
            collapsed += 1;
        }
    }
    assert!(
        collapsed >= 6,
        "fusion collapsed passes on only {collapsed}/8 medium workloads"
    );
}

/// The full Table 4 gate for fusion: every medium + large workload, thread
/// vs process PEs, remap on and off, fused at window 3, compared by
/// amplitude checksum and classical bits against the unfused single-device
/// reference. Release-mode CI leg (`scripts/ci.sh`).
#[test]
#[ignore = "release-mode CI leg: runs via scripts/ci.sh (cargo test --release -- --include-ignored)"]
fn full_suite_fused_bit_identity_thread_vs_process() {
    let suite: Vec<_> = medium_suite().into_iter().chain(large_suite()).collect();
    assert_eq!(suite.len(), 16, "the full Table 4 suite");
    for spec in suite {
        let circuit = spec.circuit().unwrap();
        let (ref_sum, ref_cbits) = checksum_run(&circuit, SimConfig::single_device().with_seed(11));
        for backend in [ShmemBackend::Thread, ShmemBackend::Process] {
            for remap in [false, true] {
                let mut config = SimConfig::scale_out(4)
                    .with_seed(11)
                    .with_shmem_backend(backend)
                    .with_fusion(3);
                if remap {
                    config = config.with_remap();
                }
                let (sum, cbits) = checksum_run(&circuit, config);
                assert_eq!(
                    sum, ref_sum,
                    "{} state diverged ({backend:?}, remap={remap})",
                    spec.name
                );
                assert_eq!(
                    cbits, ref_cbits,
                    "{} cbits diverged ({backend:?}, remap={remap})",
                    spec.name
                );
            }
        }
    }
}
