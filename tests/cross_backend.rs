//! Cross-backend differential tests: every execution path of the SV-Sim
//! reproduction must produce bit-identical (up to f64 rounding) states.

use sv_sim::baselines::{BaselineSim, FusionSim, GenericMatrixSim, InterpreterSim};
use sv_sim::core::{DispatchMode, SimConfig, Simulator};
use sv_sim::ir::Circuit;
use sv_sim::workloads::random::random_circuit;

fn run_state(circuit: &Circuit, config: SimConfig) -> Vec<f64> {
    let mut sim = Simulator::new(circuit.n_qubits(), config).unwrap();
    sim.run(circuit).unwrap();
    let mut out = sim.state().re().to_vec();
    out.extend_from_slice(sim.state().im());
    out
}

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Seeded case count standing in for the original proptest configuration.
const CASES: u64 = 12;

/// Any random ISA circuit gives the same state on every backend,
/// dispatch mode, and specialization setting.
#[test]
fn all_execution_paths_agree() {
    for seed in 0..CASES {
        let n = 6u32;
        let n_gates = 5 + (seed as usize * 7) % 55;
        let circuit = random_circuit(n, n_gates, seed);
        let reference = run_state(&circuit, SimConfig::single_device());
        let configs = [
            SimConfig::single_device().with_dispatch(DispatchMode::RuntimeParse),
            SimConfig::single_device().with_generic_gates(),
            SimConfig::scale_up(2),
            SimConfig::scale_up(8),
            SimConfig::scale_up(4).with_dispatch(DispatchMode::RuntimeParse),
            SimConfig::scale_out(2),
            SimConfig::scale_out(4).with_generic_gates(),
            SimConfig::scale_out(8),
        ];
        for config in configs {
            let got = run_state(&circuit, config);
            assert!(
                max_diff(&got, &reference) < 1e-10,
                "{config:?} diverged by {}",
                max_diff(&got, &reference)
            );
        }
    }
}

/// The independent baseline simulators agree with the core.
#[test]
fn baselines_agree() {
    for seed in 0..CASES {
        let n = 5u32;
        let n_gates = 5 + (seed as usize * 5) % 35;
        let circuit = random_circuit(n, n_gates, seed);
        let mut sim = Simulator::new(n, SimConfig::single_device()).unwrap();
        sim.run(&circuit).unwrap();
        let reference = sim.amplitudes();
        let sims: Vec<Box<dyn BaselineSim>> = vec![
            Box::new(GenericMatrixSim),
            Box::new(InterpreterSim),
            Box::new(FusionSim),
        ];
        for mut b in sims {
            let got = b.run(&circuit).unwrap();
            let d = got
                .iter()
                .zip(&reference)
                .map(|(x, y)| (*x - *y).norm())
                .fold(0.0, f64::max);
            assert!(d < 1e-9, "{} diverged by {d}", b.name());
        }
    }
}

/// Unitarity: running a circuit then its inverse returns |0...0>.
#[test]
fn circuit_inverse_roundtrip() {
    for seed in 0..CASES {
        let n = 6u32;
        let n_gates = 5 + (seed as usize * 11) % 45;
        let circuit = random_circuit(n, n_gates, seed).decompose_compound(); // inverses exist for basic/standard gates
        let inverse = circuit.inverse().unwrap();
        let mut sim = Simulator::new(n, SimConfig::single_device()).unwrap();
        sim.run(&circuit).unwrap();
        sim.run(&inverse).unwrap();
        let probs = sim.probabilities();
        assert!((probs[0] - 1.0).abs() < 1e-9, "returned P0 = {}", probs[0]);
    }
}

/// Norm preservation under every gate stream.
#[test]
fn norm_is_preserved() {
    for seed in 0..CASES {
        let circuit = random_circuit(7, 100, seed);
        let mut sim = Simulator::new(7, SimConfig::scale_out(4)).unwrap();
        sim.run(&circuit).unwrap();
        assert!((sim.state().norm_sqr() - 1.0).abs() < 1e-9);
    }
}

/// Measurement outcomes agree across backends for the same seed — the
/// pre-drawn random stream makes collapse deterministic everywhere.
#[test]
fn measurement_streams_are_identical() {
    use sv_sim::ir::GateKind;
    let mut circuit = Circuit::with_cbits(4, 4);
    for q in 0..4 {
        circuit.apply(GateKind::H, &[q], &[]).unwrap();
    }
    for q in 0..4 {
        circuit.measure(q, q).unwrap();
    }
    for seed in 0..10u64 {
        let mut outcomes = Vec::new();
        for config in [
            SimConfig::single_device(),
            SimConfig::scale_up(4),
            SimConfig::scale_out(2),
        ] {
            let mut sim = Simulator::new(4, config.with_seed(seed)).unwrap();
            outcomes.push(sim.run(&circuit).unwrap().cbits);
        }
        assert_eq!(outcomes[0], outcomes[1], "seed {seed}");
        assert_eq!(outcomes[1], outcomes[2], "seed {seed}");
    }
}
