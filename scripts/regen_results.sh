#!/usr/bin/env bash
# Regenerate every reproduction artifact in results/ (deterministic).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p svsim-bench --bins
mkdir -p results
for b in tables fig06 fig07 fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig16 fig17 \
         qnn_usecase ablation_comm headline large_run; do
  echo "== $b =="
  ./target/release/$b > "results/$b.txt"
done
echo "done; outputs in results/"
