#!/usr/bin/env bash
# Full CI gate: tier-1 verify (ROADMAP.md) + formatting + lints.
# Everything runs offline against the vendored-free, zero-dependency workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite (workspace) =="
cargo test --workspace -q

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all gates passed"
