#!/usr/bin/env bash
# Full CI gate: tier-1 verify (ROADMAP.md) + formatting + lints.
# Everything runs offline against the vendored-free, zero-dependency workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite (workspace) =="
cargo test --workspace -q

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== protocol model check (exhaustive, bounded) =="
# Prove the control-plane protocols — sense-reversing barrier (with
# kill + timeout injected before any step), respawn round handshake,
# heap lock, checkpoint commit — exhaustively over every interleaving
# at 2-3 PEs. Prints the proof bound (states/transitions) per property;
# nonzero exit with a full interleaving trace on any violation.
cargo run --release --quiet -- verify --max-states 2000000

echo "== workspace invariant lint =="
# Invariants the compiler can't enforce: unsafe/FFI confinement with
# SAFETY justifications, the ShmemCtx accessor instrumentation
# manifest, and retryable()'s exhaustive SvError classification.
cargo run --release --quiet -- lint --deny-warnings
# Self-test: the linter must fail on the seeded fixture violation, or
# this leg is vacuous.
if cargo run --release --quiet -- lint --root crates/verify/fixtures/lint_violation >/dev/null 2>&1; then
  echo "lint self-test failed: seeded violation not caught" >&2
  exit 1
fi

echo "== access-protocol analysis (static, full suite) =="
# Prove every Table 4 schedule conflict-free symbolically — including the
# 20- and 23-qubit plans, which must analyze without touching amplitudes.
# The remapped schedules (relabeling exchange epochs included) must prove
# just as clean as the naive ones.
cargo run --release --quiet -- analyze --suite --pes 8
cargo run --release --quiet -- analyze --suite --pes 8 --remap
# The fused kernel schedule must prove conflict-free too: same per-epoch
# disjointness argument, one (now denser) kernel per epoch.
cargo run --release --quiet -- analyze --suite --pes 8 --fuse 3

echo "== access-protocol analysis (dynamic cross-validation) =="
# Execute the smaller workloads under the runtime race detector and check
# the observed behaviour agrees with the static proof (nonzero exit if not).
cargo run --release --quiet -- analyze --suite --pes 2 --detect --max-qubits 14
cargo run --release --quiet -- analyze --suite --pes 8 --detect --max-qubits 12
cargo run --release --quiet -- analyze --suite --pes 8 --detect --max-qubits 12 --remap

echo "== communication-avoiding remap gate =="
# Every Table 4 workload must stay bit-identical to the single-device
# reference under both the naive and remapped scale-out schedules, and the
# remapped schedule must cut measured remote traffic to <= 0.5x naive on
# every deep circuit (>= 100 gates). Writes BENCH_5.json.
cargo run --release --quiet -- remap-bench --pes 8 --assert-max-ratio 0.5

echo "== gate fusion gate =="
# Fuse runs of adjacent gates sharing a <=3-qubit window into single
# dense sweeps and prove it on the deep workloads: every fused run must
# stay bit-identical to the unfused reference, and the mean
# gates-per-amplitude-pass must collapse by >= 2x. Writes BENCH_10.json.
cargo run --release --quiet -- fuse-bench --max-qubits 18 \
  --assert-min-gates-per-pass 2.0 --out BENCH_10.json
# The full-suite identity matrix: 16 workloads x thread/process backends
# x remap on/off, fused window 3 vs unfused, checksum + cbits equal.
cargo test --release --test fusion_identity -- --include-ignored

echo "== pipeline serving gate =="
# Legacy worker pool vs the staged dataflow pipeline on one mixed stream:
# latency-sensitive small one-shots interleaved behind wide sampled
# one-shots, over a background of QAOA/QNN sweep points. Repetitions
# interleave legacy/pipeline so host noise lands on both models evenly.
# Writes BENCH_8.json. Hard gates: bit-identical checksums across the two
# execution models and pipeline throughput >= 1.0x legacy; small-job
# p50/p99 latency is recorded alongside, and the pipeline's small-job
# p99 may not regress past ~1.05x legacy (the readback-lane ordering and
# pop_batch barrier rule exist to keep this bounded; measured 0.90x).
cargo run --release --quiet -- serve-bench --compare --reps 7 \
  --assert-min-ratio 1.0 --assert-max-p99-ratio 1.05

echo "== fault-injection smoke matrix =="
# Seeded end-to-end recovery: every job checksum under injected faults
# must match the fault-free reference bit for bit (nonzero exit if not).
for seed in 7 23 101; do
  for fault in kill-pe drop-put poison-barrier; do
    echo "-- fault-bench --fault $fault --seed $seed"
    cargo run --release --quiet -- fault-bench \
      --fault "$fault" --pes 4 --every 2 --seed "$seed" \
      --one-shots 2 --sweeps 2 --attempts 3
  done
done

echo "== process-backed PEs (memfd world) =="
# The forked-PE substrate end to end: quick integration tests (real
# fork/SIGKILL machinery, engine quarantine + checkpoint recovery, the
# /proc/self/fd memfd leak guard) plus the ignored full Table 4 gate —
# every workload bit-identical between thread and process PEs at 2/4/8.
cargo test --release --test proc_backend -- --include-ignored

echo "== process-backend kill-fault smoke =="
# One real-SIGKILL recovery per seed: the injected kill-pe fault on forked
# PEs is a literal kill(2) of the child mid-put; the engine must retry from
# the last checkpoint and match the fault-free checksums bit for bit.
for seed in 7 23 101; do
  echo "-- fault-bench --fault kill-pe --pe-mode process --seed $seed"
  cargo run --release --quiet -- fault-bench \
    --fault kill-pe --pes 4 --pe-mode process --every 2 --seed "$seed" \
    --one-shots 2 --sweeps 2 --attempts 3
done

echo "== self-healing chaos smoke =="
# The supervision layer end to end: hangs (watchdog + heartbeats), real
# SIGKILLs, and torn checkpoint generations, each healed by both recovery
# paths — in-place respawn and the halve-PEs degradation ladder. The bench
# exits nonzero unless every job's final checksum is bit-identical to the
# fault-free reference, so exit codes are the gate.
for seed in 7 23 101; do
  for fault in hang-pe kill-pe torn-checkpoint; do
    for recovery in respawn degrade; do
      echo "-- fault-bench --fault $fault --recovery $recovery --seed $seed"
      cargo run --release --quiet -- fault-bench \
        --fault "$fault" --pes 4 --pe-mode process --every 2 --seed "$seed" \
        --hang-ms 1000 --one-shots 2 --sweeps 2 --attempts 3 \
        --recovery "$recovery"
    done
  done
  echo "-- fault-bench --chaos --recovery degrade --seed $seed"
  cargo run --release --quiet -- fault-bench \
    --chaos --pes 4 --pe-mode process --every 2 --seed "$seed" \
    --hang-ms 1000 --one-shots 2 --sweeps 2 --attempts 3 \
    --recovery degrade
done

echo "ci: all gates passed"
