//! The VQE loop of the paper's §5 chemistry use case (Fig. 16): UCCSD
//! ansatz + Nelder-Mead, estimating the H2 bond energy.
//!
//! Every objective evaluation synthesizes a fresh circuit from the current
//! parameters and runs it through the simulator — exactly the dynamic
//! circuit-per-iteration pattern the paper's single-kernel fn-pointer
//! design targets.

use crate::hamiltonian::Hamiltonian;
use crate::optimizer::{nelder_mead, OptResult};
use svsim_core::{SimConfig, Simulator};
use svsim_types::{SvError, SvResult};
use svsim_workloads::UccsdAnsatz;

/// A VQE problem: Hamiltonian + ansatz.
#[derive(Debug)]
pub struct Vqe {
    hamiltonian: Hamiltonian,
    ansatz: UccsdAnsatz,
    config: SimConfig,
    /// Counts circuit syntheses (the per-iteration validations of §5).
    pub circuit_evals: std::cell::Cell<usize>,
}

/// Outcome of a VQE run.
#[derive(Debug, Clone)]
pub struct VqeResult {
    /// Best energy found.
    pub energy: f64,
    /// Best parameters.
    pub params: Vec<f64>,
    /// Best-so-far energy per optimizer iteration (Fig. 16 series).
    pub energy_history: Vec<f64>,
    /// Number of circuits synthesized and simulated.
    pub circuit_evals: usize,
}

impl Vqe {
    /// Build a problem; the ansatz and Hamiltonian widths must agree.
    ///
    /// # Errors
    /// Width mismatch.
    pub fn new(hamiltonian: Hamiltonian, ansatz: UccsdAnsatz, config: SimConfig) -> SvResult<Self> {
        if hamiltonian.n_qubits() != ansatz.n_qubits() {
            return Err(SvError::InvalidConfig(format!(
                "hamiltonian on {} qubits, ansatz on {}",
                hamiltonian.n_qubits(),
                ansatz.n_qubits()
            )));
        }
        Ok(Self {
            hamiltonian,
            ansatz,
            config,
            circuit_evals: std::cell::Cell::new(0),
        })
    }

    /// Energy of the ansatz state at `params`.
    ///
    /// # Panics
    /// On internal simulation failure (widths are pre-validated).
    #[must_use]
    pub fn energy(&self, params: &[f64]) -> f64 {
        self.circuit_evals.set(self.circuit_evals.get() + 1);
        let circuit = self.ansatz.build(params).expect("validated arity");
        let mut sim = Simulator::new(self.ansatz.n_qubits(), self.config).expect("validated width");
        sim.run(&circuit).expect("unitary ansatz");
        self.hamiltonian.expectation(&sim)
    }

    /// Run Nelder-Mead VQE from the Hartree-Fock point (all-zero
    /// parameters), as in Fig. 16.
    #[must_use]
    pub fn run(&self, max_iters: usize) -> VqeResult {
        let x0 = vec![0.0; self.ansatz.n_params()];
        let mut obj = |x: &[f64]| self.energy(x);
        let OptResult {
            params,
            value,
            history,
            ..
        } = nelder_mead(&mut obj, &x0, 0.1, max_iters);
        VqeResult {
            energy: value,
            params,
            energy_history: history,
            circuit_evals: self.circuit_evals.get(),
        }
    }
}

/// Convenience: the paper's H2 experiment with the minimal-basis UCCSD
/// ansatz (4 qubits, 2 electrons, 5 parameters).
///
/// # Errors
/// Never in practice.
pub fn h2_vqe(config: SimConfig) -> SvResult<Vqe> {
    Vqe::new(
        crate::hamiltonian::h2_sto3g(),
        UccsdAnsatz::new(4, 2),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hf_point_energy_matches_reference_state() {
        let vqe = h2_vqe(SimConfig::single_device()).unwrap();
        let e_hf = vqe.energy(&[0.0; 5]);
        assert!((-1.14..=-1.08).contains(&e_hf), "HF energy {e_hf}");
    }

    #[test]
    fn vqe_converges_to_fci_ground_energy() {
        let vqe = h2_vqe(SimConfig::single_device()).unwrap();
        let exact = crate::hamiltonian::h2_sto3g().ground_energy_dense();
        let result = vqe.run(60);
        assert!(
            (result.energy - exact).abs() < 2e-3,
            "VQE reached {}, FCI is {exact}",
            result.energy
        );
        // The optimization must actually move below Hartree-Fock.
        let e_hf = result.energy_history[0];
        assert!(result.energy < e_hf - 1e-3, "no correlation energy gained");
        // Fig. 16 shape: monotone best-so-far trace over ~58 iterations.
        for w in result.energy_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(result.circuit_evals > 60, "one circuit per evaluation");
    }

    #[test]
    fn vqe_on_distributed_backend_agrees() {
        // The same optimization through the scale-out SHMEM backend lands
        // on the same energy (deterministic, exact arithmetic).
        let single = h2_vqe(SimConfig::single_device()).unwrap().run(30).energy;
        let scaled = h2_vqe(SimConfig::scale_out(4)).unwrap().run(30).energy;
        assert!(
            (single - scaled).abs() < 1e-9,
            "backends diverged: {single} vs {scaled}"
        );
    }

    #[test]
    fn width_mismatch_rejected() {
        let h = crate::hamiltonian::h2_sto3g();
        let bad = UccsdAnsatz::new(6, 2);
        assert!(Vqe::new(h, bad, SimConfig::single_device()).is_err());
    }
}
