//! Variational quantum algorithms on top of the SV-Sim core (paper §5):
//! VQE for chemistry (Fig. 16) and the power-grid QNN use case.

pub mod gradient;
pub mod hamiltonian;
pub mod optimizer;
pub mod qaoa;
pub mod qnn;
pub mod templates;
pub mod vqe;

pub use gradient::{gradient_descent, parameter_shift_gradient, GdResult};
pub use hamiltonian::{h2_sto3g, Hamiltonian, PauliTerm};
pub use optimizer::{nelder_mead, spsa, OptResult};
pub use qaoa::{QaoaMaxCut, QaoaResult};
pub use qnn::{synthetic_grid_cases, Case, QnnModel};
pub use templates::{qaoa_params, qaoa_template, qnn_params, qnn_template};
pub use vqe::{h2_vqe, Vqe, VqeResult};
