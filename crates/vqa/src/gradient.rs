//! Analytic gradients via the parameter-shift rule, plus a plain
//! gradient-descent optimizer.
//!
//! For a parameter `theta` entering the circuit once through a gate
//! `exp(-i theta/2 P)` with `P^2 = I` (RX, RY, RZ, RXX, RZZ, CRX, CRY,
//! CRZ-as-written...), the energy derivative is exactly
//! `(f(theta + pi/2) - f(theta - pi/2)) / 2` — two circuit evaluations per
//! parameter, no finite-difference error. This is the gradient machinery
//! real VQA stacks run on hardware, and it composes with the batched
//! template of `svsim-core::batch` (one compile, `2p` patched executions
//! per gradient).

use svsim_types::SvResult;

/// Exact parameter-shift gradient of `f` at `x`.
///
/// Precondition: each component of `x` parameterizes exactly one
/// `exp(-i theta/2 P)`-family gate (parameters shared across several gates
/// need one shift per occurrence, which this helper does not do).
pub fn parameter_shift_gradient(f: &mut dyn FnMut(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    let shift = std::f64::consts::FRAC_PI_2;
    let mut grad = Vec::with_capacity(x.len());
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        probe[i] = x[i] + shift;
        let plus = f(&probe);
        probe[i] = x[i] - shift;
        let minus = f(&probe);
        probe[i] = x[i];
        grad.push((plus - minus) / 2.0);
    }
    grad
}

/// Result of a gradient-descent run.
#[derive(Debug, Clone)]
pub struct GdResult {
    /// Final parameters.
    pub params: Vec<f64>,
    /// Final objective value.
    pub value: f64,
    /// Objective value per iteration.
    pub history: Vec<f64>,
}

/// Plain gradient descent with parameter-shift gradients.
///
/// # Errors
/// Never in practice; interface uniformity with the other optimizers.
pub fn gradient_descent(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x0: &[f64],
    learning_rate: f64,
    iterations: usize,
) -> SvResult<GdResult> {
    let mut x = x0.to_vec();
    let mut history = Vec::with_capacity(iterations + 1);
    history.push(f(&x));
    for _ in 0..iterations {
        let grad = parameter_shift_gradient(f, &x);
        for (xi, gi) in x.iter_mut().zip(&grad) {
            *xi -= learning_rate * gi;
        }
        history.push(f(&x));
    }
    Ok(GdResult {
        value: *history.last().expect("non-empty"),
        params: x,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{ParamCircuit, ParamValue, SimConfig};
    use svsim_ir::{GateKind, PauliString};

    /// <Z0> of a tiny ansatz where each parameter appears exactly once.
    fn ansatz_objective() -> (impl FnMut(&[f64]) -> f64, usize) {
        let mut t = ParamCircuit::new(2);
        t.push(GateKind::RY, &[0], &[ParamValue::Var(0)]).unwrap();
        t.push(GateKind::RX, &[1], &[ParamValue::Var(1)]).unwrap();
        t.push_fixed(GateKind::CX, &[0, 1], &[]).unwrap();
        t.push(GateKind::RZZ, &[0, 1], &[ParamValue::Var(2)])
            .unwrap();
        t.push(GateKind::RY, &[0], &[ParamValue::Var(3)]).unwrap();
        let mut compiled = t.compile().unwrap();
        let z0 = PauliString::parse("ZI").unwrap();
        let n_vars = t.n_vars();
        (
            move |x: &[f64]| {
                let state = compiled.run(x).unwrap();
                svsim_core::measure::expval_pauli(&state, &z0)
            },
            n_vars,
        )
    }

    #[test]
    fn shift_rule_matches_finite_differences() {
        let (mut f, n) = ansatz_objective();
        let x: Vec<f64> = (0..n).map(|i| 0.3 + 0.2 * i as f64).collect();
        let analytic = parameter_shift_gradient(&mut f, &x);
        // Central differences with a small step.
        let eps = 1e-5;
        let mut probe = x.clone();
        for i in 0..n {
            probe[i] = x[i] + eps;
            let plus = f(&probe);
            probe[i] = x[i] - eps;
            let minus = f(&probe);
            probe[i] = x[i];
            let fd = (plus - minus) / (2.0 * eps);
            assert!(
                (analytic[i] - fd).abs() < 1e-6,
                "param {i}: shift {} vs fd {fd}",
                analytic[i]
            );
        }
    }

    #[test]
    fn gradient_descent_minimizes_z_expectation() {
        let (mut f, n) = ansatz_objective();
        let x0 = vec![0.4; n];
        let result = gradient_descent(&mut f, &x0, 0.3, 60).unwrap();
        // <Z0> can reach -1 (flip qubit 0).
        assert!(
            result.value < -0.98,
            "gradient descent stalled at {}",
            result.value
        );
        // History should show descent overall.
        assert!(result.history[0] > result.value);
    }

    #[test]
    fn gradient_descent_on_simulator_objective() {
        // Same thing through the full Simulator (not the template), to pin
        // the two paths together.
        let z0 = PauliString::parse("ZI").unwrap();
        let mut f = |x: &[f64]| {
            let mut c = svsim_ir::Circuit::new(2);
            c.apply(GateKind::RY, &[0], &[x[0]]).unwrap();
            c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
            let mut sim = svsim_core::Simulator::new(2, SimConfig::single_device()).unwrap();
            sim.run(&c).unwrap();
            sim.expval_pauli(&z0)
        };
        let g = parameter_shift_gradient(&mut f, &[0.7]);
        // d<Z>/dtheta for RY is -sin(theta).
        assert!((g[0] + 0.7f64.sin()).abs() < 1e-10, "gradient {}", g[0]);
    }
}
