//! QAOA-for-MaxCut optimization loop (the third VQA family of the paper's
//! introduction), with the same dynamic circuit-per-trial structure as the
//! VQE and QNN use cases.

use crate::optimizer::{nelder_mead, OptResult};
use svsim_core::{SimConfig, Simulator};
use svsim_types::SvResult;
use svsim_workloads::qaoa::{expected_cut, qaoa_maxcut, Graph};

/// A QAOA MaxCut problem instance.
#[derive(Debug)]
pub struct QaoaMaxCut {
    graph: Graph,
    layers: usize,
    config: SimConfig,
    /// Circuits synthesized so far.
    pub circuit_evals: std::cell::Cell<usize>,
}

/// Outcome of a QAOA optimization.
#[derive(Debug, Clone)]
pub struct QaoaResult {
    /// Best expected cut found.
    pub expected_cut: f64,
    /// Exact MaxCut (brute force) for reference.
    pub optimum: usize,
    /// Approximation ratio `expected / optimum`.
    pub ratio: f64,
    /// Best parameters `(gammas, betas)`.
    pub gammas: Vec<f64>,
    /// Mixer angles.
    pub betas: Vec<f64>,
    /// Best-so-far expected cut per iteration.
    pub history: Vec<f64>,
}

impl QaoaMaxCut {
    /// New instance with `layers` QAOA layers.
    #[must_use]
    pub fn new(graph: Graph, layers: usize, config: SimConfig) -> Self {
        Self {
            graph,
            layers,
            config,
            circuit_evals: std::cell::Cell::new(0),
        }
    }

    /// Expected cut at the given parameters.
    ///
    /// # Panics
    /// On internal simulation failure (widths are pre-validated).
    #[must_use]
    pub fn expected_cut_at(&self, gammas: &[f64], betas: &[f64]) -> f64 {
        self.circuit_evals.set(self.circuit_evals.get() + 1);
        let circuit = qaoa_maxcut(&self.graph, gammas, betas).expect("validated arity");
        let mut sim =
            Simulator::new(self.graph.n_vertices(), self.config).expect("validated width");
        sim.run(&circuit).expect("unitary circuit");
        expected_cut(&self.graph, &sim.probabilities())
    }

    /// Optimize with Nelder-Mead (maximizing the cut).
    ///
    /// # Errors
    /// Never in practice; interface uniformity.
    pub fn run(&self, max_iters: usize) -> SvResult<QaoaResult> {
        let p = self.layers;
        // Moderate starting angles; NM explores from there.
        let mut x0 = vec![0.5; p]; // gammas
        x0.extend(std::iter::repeat_n(0.3, p)); // betas
        let mut obj = |x: &[f64]| -self.expected_cut_at(&x[..p], &x[p..]);
        let OptResult {
            params,
            value,
            history,
            ..
        } = nelder_mead(&mut obj, &x0, 0.25, max_iters);
        let optimum = self.graph.max_cut_brute_force();
        let expected = -value;
        Ok(QaoaResult {
            expected_cut: expected,
            optimum,
            ratio: expected / optimum as f64,
            gammas: params[..p].to_vec(),
            betas: params[p..].to_vec(),
            history: history.into_iter().map(|v| -v).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qaoa_ring_approaches_optimum() {
        let problem = QaoaMaxCut::new(Graph::cycle(6), 2, SimConfig::single_device());
        let result = problem.run(120).unwrap();
        assert_eq!(result.optimum, 6);
        // For cycle graphs depth-p QAOA is bounded by (2p+1)/(2p+2); at
        // p=2 that is 5/6 = 0.8333, and the optimizer should reach it.
        assert!(
            (result.ratio - 5.0 / 6.0).abs() < 0.01,
            "2-layer QAOA on a ring should hit its 5/6 bound, got {:.4}",
            result.ratio
        );
        // Best-so-far trace is monotone nondecreasing.
        for w in result.history.windows(2) {
            assert!(w[1] + 1e-12 >= w[0]);
        }
        assert!(problem.circuit_evals.get() > 100);
    }

    #[test]
    fn qaoa_random_graph_beats_random_assignment() {
        let graph = Graph::random(7, 0.45, 9);
        let edges = graph.edges().len() as f64;
        let problem = QaoaMaxCut::new(graph, 1, SimConfig::single_device());
        let result = problem.run(60).unwrap();
        assert!(
            result.expected_cut > edges / 2.0 + 0.3,
            "QAOA must beat the |E|/2 random baseline: {} vs {}",
            result.expected_cut,
            edges / 2.0
        );
    }

    #[test]
    fn qaoa_agrees_across_backends() {
        let g = Graph::cycle(4);
        let a = QaoaMaxCut::new(g.clone(), 1, SimConfig::single_device())
            .expected_cut_at(&[0.7], &[0.4]);
        let b = QaoaMaxCut::new(g, 1, SimConfig::scale_out(2)).expected_cut_at(&[0.7], &[0.4]);
        assert!((a - b).abs() < 1e-10);
    }
}
