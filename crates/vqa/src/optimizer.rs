//! Classical optimizers for the variational loops: Nelder-Mead (used for
//! the Fig. 16 VQE run, as in the paper) and SPSA (used for QNN training).

use svsim_types::SvRng;

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Best parameters found.
    pub params: Vec<f64>,
    /// Best objective value.
    pub value: f64,
    /// Best-so-far objective after each iteration (the Fig. 16 series).
    pub history: Vec<f64>,
    /// Total objective evaluations.
    pub evals: usize,
}

/// Nelder-Mead downhill simplex minimization.
///
/// Standard coefficients (reflection 1, expansion 2, contraction 0.5,
/// shrink 0.5); the simplex is seeded at `x0` with per-coordinate steps of
/// `initial_step`.
pub fn nelder_mead(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x0: &[f64],
    initial_step: f64,
    max_iters: usize,
) -> OptResult {
    let n = x0.len();
    assert!(n > 0, "need at least one parameter");
    let mut evals = 0usize;
    let eval = |f: &mut dyn FnMut(&[f64]) -> f64, x: &[f64], evals: &mut usize| {
        *evals += 1;
        f(x)
    };
    // Simplex of n+1 vertices.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = x0.to_vec();
    let f0 = eval(f, &v0, &mut evals);
    simplex.push((v0, f0));
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += initial_step;
        let fv = eval(f, &v, &mut evals);
        simplex.push((v, fv));
    }
    let mut history = Vec::with_capacity(max_iters);
    for _ in 0..max_iters {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        history.push(simplex[0].1);
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (v, _) in &simplex[..n] {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + (c - w))
            .collect();
        let f_r = eval(f, &reflect, &mut evals);
        if f_r < simplex[0].1 {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + 2.0 * (c - w))
                .collect();
            let f_e = eval(f, &expand, &mut evals);
            simplex[n] = if f_e < f_r {
                (expand, f_e)
            } else {
                (reflect, f_r)
            };
        } else if f_r < simplex[n - 1].1 {
            simplex[n] = (reflect, f_r);
        } else {
            // Contraction (outside if the reflection improved the worst).
            let toward = if f_r < worst.1 { &reflect } else { &worst.0 };
            let contract: Vec<f64> = centroid
                .iter()
                .zip(toward)
                .map(|(c, t)| c + 0.5 * (t - c))
                .collect();
            let f_c = eval(f, &contract, &mut evals);
            if f_c < worst.1.min(f_r) {
                simplex[n] = (contract, f_c);
            } else {
                // Shrink toward the best vertex.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let v: Vec<f64> = best
                        .iter()
                        .zip(&entry.0)
                        .map(|(b, x)| b + 0.5 * (x - b))
                        .collect();
                    let fv = eval(f, &v, &mut evals);
                    *entry = (v, fv);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    history.push(simplex[0].1);
    OptResult {
        params: simplex[0].0.clone(),
        value: simplex[0].1,
        history,
        evals,
    }
}

/// Simultaneous Perturbation Stochastic Approximation.
///
/// Two objective evaluations per iteration regardless of dimension — the
/// practical choice for QNN training where every evaluation is a circuit
/// batch.
pub fn spsa(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x0: &[f64],
    iterations: usize,
    a0: f64,
    c0: f64,
    rng: &mut SvRng,
) -> OptResult {
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut best = x.clone();
    let mut best_f = f(&x);
    let mut history = Vec::with_capacity(iterations);
    let mut evals = 1usize;
    for k in 0..iterations {
        let ak = a0 / (k as f64 + 10.0).powf(0.602);
        let ck = c0 / (k as f64 + 1.0).powf(0.101);
        let delta: Vec<f64> = (0..n)
            .map(|_| if rng.bernoulli(0.5) { 1.0 } else { -1.0 })
            .collect();
        let xp: Vec<f64> = x.iter().zip(&delta).map(|(x, d)| x + ck * d).collect();
        let xm: Vec<f64> = x.iter().zip(&delta).map(|(x, d)| x - ck * d).collect();
        let fp = f(&xp);
        let fm = f(&xm);
        evals += 2;
        for i in 0..n {
            let g = (fp - fm) / (2.0 * ck * delta[i]);
            x[i] -= ak * g;
        }
        let fx = f(&x);
        evals += 1;
        if fx < best_f {
            best_f = fx;
            best = x.clone();
        }
        history.push(best_f);
    }
    OptResult {
        params: best,
        value: best_f,
        history,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64]) -> f64 {
        // Minimum 3.0 at (1, -2).
        (x[0] - 1.0).powi(2) + 2.0 * (x[1] + 2.0).powi(2) + 3.0
    }

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let mut f = |x: &[f64]| quadratic(x);
        let r = nelder_mead(&mut f, &[0.0, 0.0], 0.5, 200);
        assert!((r.value - 3.0).abs() < 1e-6, "value {}", r.value);
        assert!((r.params[0] - 1.0).abs() < 1e-3);
        assert!((r.params[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn nelder_mead_history_is_monotone() {
        let mut f = |x: &[f64]| quadratic(x);
        let r = nelder_mead(&mut f, &[4.0, 4.0], 1.0, 100);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "best-so-far must not regress");
        }
        assert_eq!(r.history.len(), 101);
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let mut f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = nelder_mead(&mut f, &[-1.0, 1.0], 0.5, 2000);
        assert!(r.value < 1e-6, "rosenbrock value {}", r.value);
    }

    #[test]
    fn spsa_minimizes_noisy_quadratic() {
        let mut rng = SvRng::seed_from_u64(5);
        let mut noise = SvRng::seed_from_u64(6);
        let mut f = |x: &[f64]| quadratic(x) + 0.01 * noise.next_gaussian();
        let r = spsa(&mut f, &[3.0, 3.0], 400, 0.5, 0.2, &mut rng);
        assert!(r.value < 3.6, "spsa value {}", r.value);
    }
}
