//! Pauli-string Hamiltonians and the H2 molecular Hamiltonian.

use svsim_core::Simulator;
use svsim_ir::{Mat, PauliString};
use svsim_types::{SvError, SvResult};

/// One term `coeff * P`.
#[derive(Debug, Clone)]
pub struct PauliTerm {
    /// Real coefficient (Hermitian Hamiltonian).
    pub coeff: f64,
    /// The Pauli string.
    pub string: PauliString,
}

/// A Hermitian operator as a sum of weighted Pauli strings.
#[derive(Debug, Clone)]
pub struct Hamiltonian {
    n_qubits: u32,
    terms: Vec<PauliTerm>,
}

impl Hamiltonian {
    /// Build from `(coeff, label)` pairs, e.g. `(0.17, "ZIII")`.
    ///
    /// # Errors
    /// Bad labels or width mismatches.
    pub fn from_labels(n_qubits: u32, terms: &[(f64, &str)]) -> SvResult<Self> {
        let mut parsed = Vec::with_capacity(terms.len());
        for &(coeff, label) in terms {
            if label.len() != n_qubits as usize {
                return Err(SvError::InvalidConfig(format!(
                    "label {label} must have {n_qubits} characters"
                )));
            }
            parsed.push(PauliTerm {
                coeff,
                string: PauliString::parse(label)?,
            });
        }
        Ok(Self {
            n_qubits,
            terms: parsed,
        })
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Terms.
    #[must_use]
    pub fn terms(&self) -> &[PauliTerm] {
        &self.terms
    }

    /// `<H>` on the simulator's current state.
    #[must_use]
    pub fn expectation(&self, sim: &Simulator) -> f64 {
        self.terms
            .iter()
            .map(|t| t.coeff * sim.expval_pauli(&t.string))
            .sum()
    }

    /// Dense matrix (tests only; exponential in width).
    #[must_use]
    pub fn matrix(&self) -> Mat {
        let dim = 1usize << self.n_qubits;
        let mut out = Mat::zeros(dim);
        for t in &self.terms {
            let m = t.string.matrix(self.n_qubits);
            for i in 0..dim {
                for j in 0..dim {
                    out[(i, j)] += m[(i, j)] * t.coeff;
                }
            }
        }
        out
    }

    /// Exact ground-state energy by dense diagonalization (inverse-free
    /// power iteration on `shift*I - H`); tests and small-molecule
    /// reference values only.
    #[must_use]
    pub fn ground_energy_dense(&self) -> f64 {
        let h = self.matrix();
        let dim = h.dim();
        // Gershgorin bound for the spectral shift.
        let mut bound = 0.0f64;
        for i in 0..dim {
            let row: f64 = (0..dim).map(|j| h[(i, j)].norm()).sum();
            bound = bound.max(row);
        }
        // Power iteration on (bound*I - H): dominant eigenvector is the
        // ground state of H.
        let mut v: Vec<f64> = (0..dim).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
        let mut vi = vec![0.0f64; dim];
        for _ in 0..4000 {
            let (mut nv, mut nvi) = (vec![0.0; dim], vec![0.0; dim]);
            for i in 0..dim {
                let mut acc_r = bound * v[i];
                let mut acc_i = bound * vi[i];
                for j in 0..dim {
                    let m = h[(i, j)];
                    acc_r -= m.re * v[j] - m.im * vi[j];
                    acc_i -= m.re * vi[j] + m.im * v[j];
                }
                nv[i] = acc_r;
                nvi[i] = acc_i;
            }
            let norm: f64 = nv
                .iter()
                .zip(&nvi)
                .map(|(r, i)| r * r + i * i)
                .sum::<f64>()
                .sqrt();
            for i in 0..dim {
                v[i] = nv[i] / norm;
                vi[i] = nvi[i] / norm;
            }
        }
        // Rayleigh quotient <v|H|v>.
        let mut e = 0.0;
        for i in 0..dim {
            for j in 0..dim {
                let m = h[(i, j)];
                // conj(v_i) * H_ij * v_j, real part.
                e += (v[i] * m.re + vi[i] * m.im) * v[j] + (v[i] * (-m.im) + vi[i] * m.re) * vi[j];
            }
        }
        e
    }
}

/// The H2 molecule in the STO-3G basis at the equilibrium bond length
/// (0.7414 Angstrom), Jordan-Wigner mapped to 4 spin-orbital qubits with
/// occupied orbitals on qubits 0-1. Coefficients follow the standard
/// OpenFermion tabulation (electronic part); the nuclear repulsion
/// 0.71996899 Ha is folded into the identity term so expectations are
/// total molecular energies.
///
/// # Panics
/// Never (labels are static).
#[must_use]
pub fn h2_sto3g() -> Hamiltonian {
    Hamiltonian::from_labels(
        4,
        &[
            (-0.810_547_98 + 0.719_968_99, "IIII"),
            (0.172_183_93, "ZIII"),
            (0.172_183_93, "IZII"),
            (-0.225_753_49, "IIZI"),
            (-0.225_753_49, "IIIZ"),
            (0.168_927_54, "ZZII"),
            (0.120_912_63, "ZIZI"),
            (0.166_145_43, "ZIIZ"),
            (0.166_145_43, "IZZI"),
            (0.120_912_63, "IZIZ"),
            (0.174_643_43, "IIZZ"),
            (-0.045_232_80, "XXYY"),
            (0.045_232_80, "XYYX"),
            (0.045_232_80, "YXXY"),
            (-0.045_232_80, "YYXX"),
        ],
    )
    .expect("static labels are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::SimConfig;

    #[test]
    fn from_labels_validates_width() {
        assert!(Hamiltonian::from_labels(3, &[(1.0, "ZZ")]).is_err());
        assert!(Hamiltonian::from_labels(2, &[(1.0, "ZZ")]).is_ok());
    }

    #[test]
    fn expectation_on_basis_states() {
        // H = Z0 + 2 Z1 on |01> (qubit0 = 1): <Z0> = -1, <Z1> = +1 -> 1.
        let h = Hamiltonian::from_labels(2, &[(1.0, "ZI"), (2.0, "IZ")]).unwrap();
        let mut sim = Simulator::new(2, SimConfig::single_device()).unwrap();
        let mut c = svsim_ir::Circuit::new(2);
        c.apply(svsim_ir::GateKind::X, &[0], &[]).unwrap();
        sim.run(&c).unwrap();
        assert!((h.expectation(&sim) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ground_energy_of_simple_operators() {
        // H = Z: ground energy -1.
        let h = Hamiltonian::from_labels(1, &[(1.0, "Z")]).unwrap();
        assert!((h.ground_energy_dense() + 1.0).abs() < 1e-6);
        // H = X0 X1: ground -1 (Bell-like).
        let h = Hamiltonian::from_labels(2, &[(1.0, "XX")]).unwrap();
        assert!((h.ground_energy_dense() + 1.0).abs() < 1e-6);
        // H = Z0 + X0: ground -sqrt(2).
        let h = Hamiltonian::from_labels(1, &[(1.0, "Z"), (1.0, "X")]).unwrap();
        assert!((h.ground_energy_dense() + 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn h2_energies_are_chemically_sensible() {
        let h = h2_sto3g();
        let e0 = h.ground_energy_dense();
        // FCI ground energy of H2/STO-3G at 0.7414 A is about -1.137 Ha.
        assert!(
            (-1.16..=-1.10).contains(&e0),
            "H2 ground energy {e0} outside the expected window"
        );
        // Hartree-Fock |0011> sits above the ground state but below -1.1.
        let mut sim = Simulator::new(4, SimConfig::single_device()).unwrap();
        let mut c = svsim_ir::Circuit::new(4);
        c.apply(svsim_ir::GateKind::X, &[0], &[]).unwrap();
        c.apply(svsim_ir::GateKind::X, &[1], &[]).unwrap();
        sim.run(&c).unwrap();
        let e_hf = h.expectation(&sim);
        assert!(e_hf > e0, "HF must be above FCI");
        assert!(
            (-1.14..=-1.08).contains(&e_hf),
            "HF energy {e_hf} outside the expected window"
        );
    }
}
