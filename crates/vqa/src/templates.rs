//! Parameterized-circuit templates for the serving engine.
//!
//! The optimizer loops in this crate synthesize a fresh [`Circuit`] per
//! trial. For engine-served sweeps that is the wrong shape: the structure
//! never changes, only the angles. These builders express the QAOA and QNN
//! ansätze as [`ParamCircuit`] templates so the engine can compile once and
//! patch per trial.

use svsim_core::{ParamCircuit, ParamValue};
use svsim_ir::GateKind;
use svsim_types::SvResult;
use svsim_workloads::qaoa::Graph;

/// QAOA MaxCut ansatz as a template with `2 * p_layers` variational
/// parameters, interleaved per layer as `(gamma_l, mixer_l)`.
///
/// Note `mixer_l` is the *full* `RX` angle — `2 * beta_l` in the usual
/// convention. Use [`qaoa_params`] to interleave `(gammas, betas)` into the
/// template's parameter order; bound that way the template reproduces
/// [`svsim_workloads::qaoa::qaoa_maxcut`] exactly.
///
/// # Errors
/// Width errors from the underlying builder.
pub fn qaoa_template(graph: &Graph, p_layers: usize) -> SvResult<ParamCircuit> {
    let n = graph.n_vertices();
    let mut t = ParamCircuit::new(n);
    for q in 0..n {
        t.push_fixed(GateKind::H, &[q], &[])?;
    }
    for layer in 0..p_layers {
        let gamma = ParamValue::Var(2 * layer);
        let mixer = ParamValue::Var(2 * layer + 1);
        for &(a, b) in graph.edges() {
            t.push(GateKind::RZZ, &[a, b], &[gamma])?;
        }
        for q in 0..n {
            t.push(GateKind::RX, &[q], &[mixer])?;
        }
    }
    Ok(t)
}

/// Interleave `(gammas, betas)` into [`qaoa_template`] parameter order,
/// applying the `2 * beta` mixer-angle convention.
///
/// # Panics
/// If the slices differ in length.
#[must_use]
pub fn qaoa_params(gammas: &[f64], betas: &[f64]) -> Vec<f64> {
    assert_eq!(gammas.len(), betas.len(), "need one beta per gamma");
    gammas
        .iter()
        .zip(betas)
        .flat_map(|(&g, &b)| [g, 2.0 * b])
        .collect()
}

/// The power-grid QNN ansatz as a template over `n_data + 1` qubits
/// (readout last), with features *and* weights variational:
/// parameters `0..n_data` are the encoding angles (`pi * x_i` in the
/// [`svsim_workloads::qnn::qnn_classifier`] convention — the caller applies
/// the `pi` scaling), followed by the
/// [`svsim_workloads::qnn::qnn_n_weights`] trainable weights in layer
/// order. Unlike the one-shot classifier the template has no final
/// measurement: engine sweeps read the readout qubit via an expectation
/// mask instead of collapsing it.
///
/// # Errors
/// Width errors from the underlying builder.
pub fn qnn_template(n_data: u32, layers: u32) -> SvResult<ParamCircuit> {
    assert!(n_data >= 2, "need at least two features");
    let readout = n_data;
    let mut t = ParamCircuit::new(n_data + 1);
    let mut var = 0usize;
    let mut next = || {
        let v = ParamValue::Var(var);
        var += 1;
        v
    };
    for q in 0..n_data {
        t.push(GateKind::RY, &[q], &[next()])?;
    }
    for _ in 0..layers {
        for q in 0..n_data {
            t.push(GateKind::RY, &[q], &[next()])?;
            t.push(GateKind::RZ, &[q], &[next()])?;
        }
        for q in 0..n_data {
            t.push_fixed(GateKind::CX, &[q, (q + 1) % n_data], &[])?;
        }
        for q in 0..n_data {
            t.push(GateKind::CRY, &[q, readout], &[next()])?;
        }
        t.push(GateKind::RY, &[readout], &[next()])?;
    }
    Ok(t)
}

/// Parameter vector for [`qnn_template`]: scaled encodings first, then the
/// weights.
#[must_use]
pub fn qnn_params(features: &[f64], weights: &[f64]) -> Vec<f64> {
    features
        .iter()
        .map(|&x| std::f64::consts::PI * x)
        .chain(weights.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{SimConfig, Simulator};
    use svsim_ir::{Circuit, Op};
    use svsim_types::SvRng;
    use svsim_workloads::qaoa::qaoa_maxcut;
    use svsim_workloads::qnn::{qnn_classifier, qnn_n_weights};

    #[test]
    fn qaoa_template_matches_circuit_builder() {
        let g = Graph::random(7, 0.5, 21);
        let t = qaoa_template(&g, 2).unwrap();
        assert_eq!(t.n_vars(), 4);
        let mut compiled = t.compile().unwrap();
        let mut rng = SvRng::seed_from_u64(9);
        for _ in 0..4 {
            let gammas = [rng.range_f64(-2.0, 2.0), rng.range_f64(-2.0, 2.0)];
            let betas = [rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)];
            let state = compiled.run(&qaoa_params(&gammas, &betas)).unwrap();
            let reference = qaoa_maxcut(&g, &gammas, &betas).unwrap();
            let mut sim = Simulator::new(7, SimConfig::single_device()).unwrap();
            sim.run(&reference).unwrap();
            assert!(
                state.max_diff(sim.state()) < 1e-12,
                "template must match the circuit builder"
            );
        }
    }

    #[test]
    fn qnn_template_matches_classifier_gates() {
        let features = [0.3, 0.7, 0.15];
        let layers = 2;
        let n_w = qnn_n_weights(3, layers);
        let mut rng = SvRng::seed_from_u64(31);
        let weights: Vec<f64> = (0..n_w).map(|_| rng.range_f64(-1.5, 1.5)).collect();

        let t = qnn_template(3, layers).unwrap();
        assert_eq!(t.n_vars(), 3 + n_w);
        let mut compiled = t.compile().unwrap();
        let state = compiled.run(&qnn_params(&features, &weights)).unwrap();

        // Reference: the classifier circuit with its measurement stripped.
        let classifier = qnn_classifier(&features, &weights, layers).unwrap();
        let mut unmeasured = Circuit::new(4);
        for op in classifier.ops() {
            if let Op::Gate(g) = op {
                unmeasured.push_gate(*g).unwrap();
            }
        }
        let mut sim = Simulator::new(4, SimConfig::single_device()).unwrap();
        sim.run(&unmeasured).unwrap();
        assert!(
            state.max_diff(sim.state()) < 1e-12,
            "template must match the classifier ansatz"
        );
    }
}
