//! The power-grid QNN use case (paper §5): a variational quantum neural
//! network classifying contingency violations of a synthetic bus system.
//!
//! The paper trains a 4-feature binary classifier (generator real/reactive
//! power, real/reactive load) on 20 contingency cases of an IEEE 30-bus
//! system. The dataset is proprietary to that study, so we generate a
//! synthetic equivalent: 4 features with a planted nonlinear violation rule
//! plus noise — the same feature count, class balance and separability
//! regime, driving the identical circuit and training loop (see DESIGN.md).

use crate::optimizer::spsa;
use svsim_core::{measure, SimConfig, Simulator};
use svsim_ir::{Circuit, Op};
use svsim_types::{SvResult, SvRng};
use svsim_workloads::qnn::{qnn_classifier, qnn_n_weights};

/// A labeled contingency case: 4 features in `[0, 1]`, violation flag.
#[derive(Debug, Clone)]
pub struct Case {
    /// Normalized features: gen P, gen Q, load P, load Q.
    pub features: [f64; 4],
    /// True iff the contingency violates operating limits.
    pub violation: bool,
}

/// Generate a synthetic power-grid contingency dataset.
#[must_use]
pub fn synthetic_grid_cases(n: usize, seed: u64) -> Vec<Case> {
    let mut rng = SvRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let f = [
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
            ];
            // Planted rule: violation when load outstrips generation with
            // a reactive-power interaction, plus label noise.
            let margin = 0.9 * f[2] + 0.6 * f[3] + 0.35 * f[1] * f[2] - 0.8 * f[0] - 0.45 * f[1];
            let noisy = margin + 0.05 * rng.next_gaussian();
            Case {
                features: f,
                violation: noisy > 0.0,
            }
        })
        .collect()
}

/// QNN binary classifier: circuit layout from
/// [`svsim_workloads::qnn::qnn_classifier`].
#[derive(Debug)]
pub struct QnnModel {
    layers: u32,
    weights: Vec<f64>,
    config: SimConfig,
    /// Circuit evaluations performed (the paper counts 28,641 per epoch for
    /// its full problem).
    pub circuit_evals: std::cell::Cell<usize>,
}

impl QnnModel {
    /// Fresh model with small random weights.
    #[must_use]
    pub fn new(layers: u32, seed: u64, config: SimConfig) -> Self {
        let mut rng = SvRng::seed_from_u64(seed);
        let weights = (0..qnn_n_weights(4, layers))
            .map(|_| rng.range_f64(-0.7, 0.7))
            .collect();
        Self {
            layers,
            weights,
            config,
            circuit_evals: std::cell::Cell::new(0),
        }
    }

    /// Current weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Predicted violation probability `P(readout = 1)`.
    ///
    /// # Panics
    /// On internal simulation failure (widths are static).
    #[must_use]
    pub fn predict_with(&self, weights: &[f64], features: &[f64; 4]) -> f64 {
        self.circuit_evals.set(self.circuit_evals.get() + 1);
        let circuit = qnn_classifier(features, weights, self.layers).expect("validated arity");
        // Strip the measurement: read the probability exactly.
        let mut unmeasured = Circuit::new(circuit.n_qubits());
        for op in circuit.ops() {
            if let Op::Gate(g) = op {
                unmeasured.push_gate(*g).expect("validated gate");
            }
        }
        let mut sim = Simulator::new(5, self.config).expect("static width");
        sim.run(&unmeasured).expect("unitary circuit");
        measure::prob_one(sim.state(), 4)
    }

    /// Predicted probability with the trained weights.
    #[must_use]
    pub fn predict(&self, features: &[f64; 4]) -> f64 {
        self.predict_with(&self.weights.clone(), features)
    }

    /// Mean cross-entropy loss over a dataset.
    #[must_use]
    pub fn loss_with(&self, weights: &[f64], cases: &[Case]) -> f64 {
        let eps = 1e-9;
        cases
            .iter()
            .map(|c| {
                let p = self
                    .predict_with(weights, &c.features)
                    .clamp(eps, 1.0 - eps);
                if c.violation {
                    -p.ln()
                } else {
                    -(1.0 - p).ln()
                }
            })
            .sum::<f64>()
            / cases.len() as f64
    }

    /// Classification accuracy at threshold 0.5.
    #[must_use]
    pub fn accuracy(&self, cases: &[Case]) -> f64 {
        let correct = cases
            .iter()
            .filter(|c| (self.predict(&c.features) > 0.5) == c.violation)
            .count();
        correct as f64 / cases.len() as f64
    }

    /// Train with SPSA for `epochs` passes of `iters_per_epoch` iterations;
    /// returns per-epoch test accuracy (the §5 "28% -> 73%" trajectory).
    ///
    /// # Errors
    /// Never in practice; kept for interface uniformity.
    pub fn train(
        &mut self,
        train: &[Case],
        test: &[Case],
        epochs: usize,
        iters_per_epoch: usize,
        seed: u64,
    ) -> SvResult<Vec<f64>> {
        let mut rng = SvRng::seed_from_u64(seed);
        let mut accuracies = Vec::with_capacity(epochs + 1);
        accuracies.push(self.accuracy(test));
        for _ in 0..epochs {
            let start = self.weights.clone();
            let mut obj = |w: &[f64]| self.loss_with(w, train);
            let r = spsa(&mut obj, &start, iters_per_epoch, 1.0, 0.25, &mut rng);
            self.weights = r.params;
            accuracies.push(self.accuracy(test));
        }
        Ok(accuracies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_balanced() {
        let a = synthetic_grid_cases(100, 1);
        let b = synthetic_grid_cases(100, 1);
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.features, y.features);
            assert_eq!(x.violation, y.violation);
        }
        let pos = a.iter().filter(|c| c.violation).count();
        assert!(
            (20..=80).contains(&pos),
            "classes should be reasonably balanced, got {pos}/100"
        );
    }

    #[test]
    fn predictions_are_probabilities() {
        let model = QnnModel::new(2, 3, SimConfig::single_device());
        for c in synthetic_grid_cases(10, 2) {
            let p = model.predict(&c.features);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_improves_accuracy() {
        // The §5 trajectory in miniature: 20 training cases, 2 epochs.
        let train = synthetic_grid_cases(20, 11);
        let test = synthetic_grid_cases(37, 12);
        let mut model = QnnModel::new(2, 5, SimConfig::single_device());
        let acc = model.train(&train, &test, 2, 120, 7).unwrap();
        let initial = acc[0];
        let final_acc = *acc.last().unwrap();
        assert!(
            final_acc >= 0.65,
            "trained accuracy {final_acc} (history {acc:?})"
        );
        assert!(
            final_acc > initial - 0.05,
            "training should not regress: {acc:?}"
        );
        assert!(
            model.circuit_evals.get() > 1000,
            "every trial synthesizes circuits"
        );
    }
}
