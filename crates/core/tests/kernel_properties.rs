//! Property tests: every specialized kernel must act exactly like the
//! gate's dense matrix on arbitrary states, and structural invariants must
//! hold under all work partitionings.

use svsim_core::compile::compile_gate;
use svsim_core::dispatch::resolve;
use svsim_core::kernels::worker_range;
use svsim_core::view::LocalView;
use svsim_ir::{matrices, Gate, GateKind};
use svsim_types::{Complex64, SvRng};

const N: u32 = 6;
const DIM: usize = 1 << N;

/// Random normalized state from a seed.
fn random_state(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SvRng::seed_from_u64(seed);
    let mut re: Vec<f64> = (0..DIM).map(|_| rng.next_gaussian()).collect();
    let mut im: Vec<f64> = (0..DIM).map(|_| rng.next_gaussian()).collect();
    let norm: f64 = re
        .iter()
        .zip(&im)
        .map(|(r, i)| r * r + i * i)
        .sum::<f64>()
        .sqrt();
    for v in re.iter_mut().chain(im.iter_mut()) {
        *v /= norm;
    }
    (re, im)
}

/// Apply a gate via the specialized kernels, split across `workers` chunks
/// executed in arbitrary (here: reverse) order to prove chunk independence.
fn apply_specialized(g: &Gate, re: &mut [f64], im: &mut [f64], workers: u64) {
    let mut compiled = Vec::new();
    compile_gate(g, N, true, &mut compiled);
    let view = LocalView::new(re, im);
    for cg in &compiled {
        // Chunks of one kernel touch disjoint amplitudes, so any execution
        // order must give the same result.
        for w in (0..workers).rev() {
            resolve::<LocalView>(cg.id)(&view, &cg.args, worker_range(cg.args.work, workers, w));
        }
    }
}

/// Apply via the dense reference matrix.
fn apply_dense(g: &Gate, re: &mut [f64], im: &mut [f64]) {
    let mut amps: Vec<Complex64> = re
        .iter()
        .zip(im.iter())
        .map(|(&r, &i)| Complex64::new(r, i))
        .collect();
    matrices::gate_matrix(g).apply_to_state(&mut amps, g.qubits());
    for (k, a) in amps.iter().enumerate() {
        re[k] = a.re;
        im[k] = a.im;
    }
}

fn arbitrary_gate(seed: u64) -> Gate {
    let mut rng = SvRng::seed_from_u64(seed);
    // Exclude the sequence-lowering relative-phase gates: they compile to
    // multiple kernels whose intermediate chunks are not order-free, and
    // they are covered by the full-simulator differential tests.
    let pool: Vec<GateKind> = GateKind::ALL
        .iter()
        .copied()
        .filter(|k| !matches!(k, GateKind::RCCX | GateKind::RC3X))
        .filter(|k| k.n_qubits() as u32 <= N)
        .collect();
    let kind = pool[rng.range_usize(0, pool.len())];
    let mut qubits = Vec::new();
    while qubits.len() < kind.n_qubits() {
        let q = rng.range_usize(0, N as usize) as u32;
        if !qubits.contains(&q) {
            qubits.push(q);
        }
    }
    let params: Vec<f64> = (0..kind.n_params())
        .map(|_| rng.range_f64(-3.2, 3.2))
        .collect();
    Gate::new(kind, &qubits, &params).unwrap()
}

/// Seeded case count standing in for the original proptest configuration.
const CASES: u64 = 64;

/// Specialized kernels == dense matrices, on random states, for every
/// gate kind and operand placement, at several partition widths.
#[test]
fn kernels_match_dense_matrices() {
    for seed in 0..CASES {
        let workers = 1 + seed % 8;
        let g = arbitrary_gate(seed);
        let (mut re_a, mut im_a) = random_state(seed ^ 0xABCD);
        let (mut re_b, mut im_b) = (re_a.clone(), im_a.clone());
        apply_specialized(&g, &mut re_a, &mut im_a, workers);
        apply_dense(&g, &mut re_b, &mut im_b);
        for k in 0..DIM {
            assert!(
                (re_a[k] - re_b[k]).abs() < 1e-11 && (im_a[k] - im_b[k]).abs() < 1e-11,
                "{g} diverged at amplitude {k} with {workers} workers"
            );
        }
    }
}

/// Norm preservation for every kernel on random states.
#[test]
fn kernels_preserve_norm() {
    for seed in 0..CASES {
        let g = arbitrary_gate(seed);
        let (mut re, mut im) = random_state(seed ^ 0x1234);
        apply_specialized(&g, &mut re, &mut im, 1);
        let norm: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
        assert!((norm - 1.0).abs() < 1e-10, "{g} broke the norm: {norm}");
    }
}

/// Self-inverse gates applied twice restore the state.
#[test]
fn involutions_roundtrip() {
    for seed in 0..4 * CASES {
        let g = arbitrary_gate(seed);
        let self_inverse = matches!(
            g.kind(),
            GateKind::ID
                | GateKind::X
                | GateKind::Y
                | GateKind::Z
                | GateKind::H
                | GateKind::CX
                | GateKind::CZ
                | GateKind::CY
                | GateKind::SWAP
                | GateKind::CH
                | GateKind::CCX
                | GateKind::CSWAP
                | GateKind::C3X
                | GateKind::C4X
        );
        if !self_inverse {
            continue;
        }
        let (re0, im0) = random_state(seed ^ 0x777);
        let (mut re, mut im) = (re0.clone(), im0.clone());
        apply_specialized(&g, &mut re, &mut im, 2);
        apply_specialized(&g, &mut re, &mut im, 3);
        for k in 0..DIM {
            assert!((re[k] - re0[k]).abs() < 1e-11, "{g} re diverged at {k}");
            assert!((im[k] - im0[k]).abs() < 1e-11, "{g} im diverged at {k}");
        }
    }
}

/// Diagonal gates never change any |amplitude|.
#[test]
fn diagonal_gates_preserve_magnitudes() {
    for seed in 0..4 * CASES {
        let g = arbitrary_gate(seed);
        if !g.kind().is_diagonal() {
            continue;
        }
        let (re0, im0) = random_state(seed ^ 0x999);
        let (mut re, mut im) = (re0.clone(), im0.clone());
        apply_specialized(&g, &mut re, &mut im, 1);
        for k in 0..DIM {
            let before = re0[k] * re0[k] + im0[k] * im0[k];
            let after = re[k] * re[k] + im[k] * im[k];
            assert!((before - after).abs() < 1e-12, "{g} moved probability");
        }
    }
}
