//! Locality-aware qubit remapping for the scale-out backend.
//!
//! The scale-out partition boundary sits at physical qubit position
//! `boundary = n_qubits - log2(n_pes)`: a kernel whose involved qubit
//! positions are all below it never leaves its PE's partition (the item
//! bits reaching the partition-index range are the item's top bits, which
//! equal the PE rank). The mpiQulacs observation is that instead of paying
//! word-at-a-time remote traffic for every gate that touches a high
//! position, the executor can *relabel*: maintain a logical→physical qubit
//! permutation, and before such a gate, swap the high physical position
//! with a cold low one. The relabeling swap is itself a SWAP on the state,
//! but it moves amplitudes in long contiguous runs — the qHiPSTER-style
//! bulk slab exchange ([`crate::view::ShmemView::exchange_pair`]) — so a
//! deep circuit pays a handful of bulk epochs instead of per-word traffic
//! on every gate.
//!
//! This module is the *planner*: it is pure (no SHMEM), deterministic, and
//! shared verbatim by the executor ([`crate::exec`]), the analytic traffic
//! model ([`crate::traffic::remapped_circuit_traffic`]), and the static
//! analyzer (`svsim-analyzer` mirrors the plan into its epoch schedule),
//! keeping all three views of the schedule in lockstep.
//!
//! The policy is communication-cost-driven rather than purely positional:
//!
//! - **Absorption**: an unconditional `SWAP` gate *is* a relabeling, so it
//!   becomes a pure layout update — no kernel, no traffic (the QFT's
//!   bit-reversal swaps vanish entirely).
//! - **Amortized localization**: a relabeling exchange costs a fixed
//!   `8·dim` bytes on the fabric. A gate touching a partition-index
//!   position is only worth localizing when the word-level remote bytes it
//!   and the upcoming gates on the same qubit would pay (forward scan,
//!   window-capped) cover that exchange. Cheap one-off gates (e.g. a lone
//!   controlled-phase) simply run remote.
//! - **Belady eviction**: the low position surrendered to an incoming
//!   qubit is the one whose logical occupant is needed *furthest in the
//!   future* — the provably optimal eviction rule, which is what prevents
//!   the swap thrashing an LRU clock exhibits on cyclic gate patterns
//!   (QFT stages, ring entanglers).
//! - **Home restore at collapse**: the partial-probability reduction is
//!   the canonical pairwise tree over *logical* indices
//!   ([`svsim_types::numeric`]), which each PE can evaluate locally as
//!   long as the layout is *block-preserving* — low logical qubits at low
//!   physical positions and high at high, in any order within each side.
//!   So `Measure`/`Reset` are preceded only by the exchanges homing
//!   *straddling* qubits (see [`restore_home`]); same-side scrambles cost
//!   nothing. The plan snapshots the layout at each collapse so the
//!   executor can walk its partition in logical order and deposit its
//!   partial into the logically-indexed reduction slot.

use crate::compile::CompiledGate;
use svsim_ir::{Gate, GateKind, Op};

/// A logical→physical qubit permutation.
///
/// The amplitude of logical basis state `b` is stored at physical index
/// `P(b) = Σ_q bit_q(b) << phys_of[q]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitLayout {
    /// Physical position of each logical qubit.
    phys_of: Vec<u32>,
    /// Logical qubit at each physical position (inverse of `phys_of`).
    log_of: Vec<u32>,
}

impl QubitLayout {
    /// The identity layout over `n_qubits`.
    #[must_use]
    pub fn identity(n_qubits: u32) -> Self {
        Self {
            phys_of: (0..n_qubits).collect(),
            log_of: (0..n_qubits).collect(),
        }
    }

    /// Physical position of logical qubit `q`.
    #[must_use]
    pub fn phys(&self, q: u32) -> u32 {
        self.phys_of[q as usize]
    }

    /// Logical qubit at physical position `p`.
    #[must_use]
    pub fn logical(&self, p: u32) -> u32 {
        self.log_of[p as usize]
    }

    /// True if the layout is the identity permutation.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.phys_of.iter().enumerate().all(|(q, &p)| q as u32 == p)
    }

    /// Number of qubits.
    #[must_use]
    pub fn n_qubits(&self) -> u32 {
        self.phys_of.len() as u32
    }

    /// Swap the logical qubits at physical positions `a` and `b`.
    pub fn swap_phys(&mut self, a: u32, b: u32) {
        let (la, lb) = (self.log_of[a as usize], self.log_of[b as usize]);
        self.log_of[a as usize] = lb;
        self.log_of[b as usize] = la;
        self.phys_of[la as usize] = b;
        self.phys_of[lb as usize] = a;
    }

    /// Physical index holding the amplitude of logical basis state `b`.
    #[must_use]
    pub fn physical_index(&self, b: u64) -> u64 {
        if self.is_identity() {
            return b;
        }
        let mut p = 0u64;
        for (q, &pos) in self.phys_of.iter().enumerate() {
            p |= ((b >> q) & 1) << pos;
        }
        p
    }
}

/// The precomputed remapped schedule of one op stream.
#[derive(Debug, Clone)]
pub struct RemapPlan {
    /// Remapped ops (`Barrier` ops dropped so entry `i` aligns 1:1 with
    /// the executor's step `i` and with `pre_swaps[i]`). Gate qubits are
    /// rewritten to physical positions; `Measure`/`Reset` keep their
    /// *logical* qubit — the executor translates through the layout
    /// snapshot in `measure_layouts`.
    pub ops: Vec<Op>,
    /// Relabeling swaps `(low, high)` of physical positions to run before
    /// each op (empty for most).
    pub pre_swaps: Vec<Vec<(u32, u32)>>,
    /// Aligned 1:1 with `ops`: the (block-preserving, post-`pre_swaps`)
    /// layout at each `Measure`/`Reset` step, `None` elsewhere.
    pub measure_layouts: Vec<Option<QubitLayout>>,
    /// Layout after the last op — the readback un-permutation.
    pub final_layout: QubitLayout,
    /// Total relabeling swaps emitted.
    pub n_swaps: usize,
}

/// Cap on the forward scan of the amortization heuristic. A relabeled
/// qubit surviving this many ops without eviction is already far past the
/// break-even point, so scanning further only costs planning time.
const SCAN_WINDOW: usize = 256;

/// Gap cutoff for the forward scan: stop accumulating benefit once this
/// many consecutive data ops pass without touching the candidate qubit.
/// Uses beyond such a gap are better served by a *later* localization
/// placed just before that use cluster — crediting them now triggers
/// swap-in/evict churn long before the cluster arrives.
const GAP_WINDOW: usize = 32;

/// Word-level remote bytes `g` would pay executed at its current physical
/// positions. Heuristic pricing only (always specialized kernels): the
/// plan must be identical for every consumer regardless of their own
/// dispatch settings, and the actual execution compiles with the real
/// flags either way.
fn mapped_remote_bytes(
    g: &Gate,
    layout: &QubitLayout,
    n_qubits: u32,
    n_pes: u64,
    scratch: &mut Vec<CompiledGate>,
) -> u64 {
    scratch.clear();
    crate::compile::compile_gate(&map_gate(g, layout), n_qubits, true, scratch);
    scratch
        .iter()
        .map(|cg| crate::traffic::gate_traffic(cg, n_qubits, n_pes).remote_bytes)
        .fold(0u64, u64::saturating_add)
}

/// Ascending union of a sorted qubit list with a gate's qubits; `true`
/// when the union still fits a `fuse`-qubit window.
fn window_extend(win: &mut Vec<u32>, qubits: &[u32], fuse: u8) -> bool {
    let mut merged = win.clone();
    for &q in qubits {
        if let Err(pos) = merged.binary_search(&q) {
            merged.insert(pos, q);
        }
    }
    if merged.len() <= fuse as usize {
        *win = merged;
        true
    } else {
        *win = {
            let mut w = qubits.to_vec();
            w.sort_unstable();
            w
        };
        false
    }
}

/// Localize `g`'s partition-index qubits when amortization favors it;
/// returns the exchanges emitted (and applied to `layout`). With `fuse`
/// set, the forward benefit scan is fusion-aware: a scanned gate that
/// rides the current fused window contributes no *additional* remote
/// bytes (the fused sweep touches each amplitude once for the whole run),
/// so the planner stops over-crediting relabelings that fusion already
/// pays for.
#[allow(clippy::too_many_arguments)]
fn localize(
    g: &Gate,
    at: usize,
    ops: &[Op],
    layout: &mut QubitLayout,
    boundary: u32,
    n_qubits: u32,
    n_pes: u64,
    swap_cost: u64,
    uses: &[Vec<usize>],
    use_ptr: &[usize],
    fuse: u8,
    scratch: &mut Vec<CompiledGate>,
) -> Vec<(u32, u32)> {
    let mut swaps = Vec::new();
    if g.qubits().len() as u32 > boundary {
        return swaps; // cannot fit below the boundary; run as-is
    }
    for &q in g.qubits() {
        let p = layout.phys(q);
        if p < boundary {
            continue;
        }
        // Benefit of relabeling `q`: the remote bytes this gate and the
        // upcoming gates on `q` would pay at the current layout. The scan
        // stops at the window cap, at a use gap (far-future clusters are
        // better served by a later localization; see GAP_WINDOW), or as
        // soon as the benefit covers one exchange. Measure/Reset only
        // re-home straddlers, so the layout survives them and the scan
        // continues past. Conditional payloads are priced as-if executed,
        // same as the naive predictor.
        let mut benefit = mapped_remote_bytes(g, layout, n_qubits, n_pes, scratch);
        if benefit < swap_cost {
            let mut gap = 0usize;
            // Current fused window of the scanned stream (logical qubits,
            // ascending); starts at the gate being localized.
            let mut fwin: Vec<u32> = {
                let mut w = g.qubits().to_vec();
                w.sort_unstable();
                w
            };
            for op in ops.iter().skip(at + 1).take(SCAN_WINDOW) {
                let fg = match op {
                    Op::Gate(fg) if fg.kind() != GateKind::SWAP => Some(fg),
                    Op::IfEq { gate, .. } => Some(gate),
                    Op::Measure { .. } | Op::Reset { .. } => None,
                    _ => continue, // barriers and absorbed swaps touch no data
                };
                match fg {
                    Some(fg) => {
                        let rides = fuse > 0 && window_extend(&mut fwin, fg.qubits(), fuse);
                        if fg.qubits().contains(&q) {
                            gap = 0;
                            if !rides {
                                benefit = benefit.saturating_add(mapped_remote_bytes(
                                    fg, layout, n_qubits, n_pes, scratch,
                                ));
                                if benefit >= swap_cost {
                                    break;
                                }
                            }
                        } else {
                            gap += 1;
                            if gap > GAP_WINDOW {
                                break;
                            }
                        }
                    }
                    None => {
                        gap += 1;
                        if gap > GAP_WINDOW {
                            break;
                        }
                    }
                }
            }
        }
        if benefit < swap_cost {
            continue; // cheaper to keep paying word-level remote traffic
        }
        // Belady eviction: surrender the low position whose logical
        // occupant is needed furthest in the future (ideally never again);
        // ties break toward the higher position, which keeps exchange
        // runs long.
        let victim = (0..boundary)
            .filter(|&pos| !g.qubits().contains(&layout.logical(pos)))
            .max_by_key(|&pos| {
                let l = layout.logical(pos) as usize;
                (uses[l].get(use_ptr[l]).copied().unwrap_or(usize::MAX), pos)
            })
            .expect("gate fits below the boundary, so a free slot exists");
        swaps.push((victim, p));
        layout.swap_phys(victim, p);
    }
    swaps
}

/// Cross-boundary exchange sequence making `layout` block-preserving
/// (applied to `layout`; empty if already homed): every low logical qubit
/// at a low physical position and every high logical at a high one, in any
/// order *within* each side.
///
/// That is exactly what the measurement path needs for bit-identity: the
/// collapse probability is the canonical pairwise tree over *logical*
/// indices, and under a block-preserving layout each PE's partition is one
/// logical-top-value subcube — the PE walks it in logical order locally
/// and the cross-PE combine reproduces the single-device sum bit-for-bit
/// (see [`crate::measure::partial_prob_one_mapped`]). Same-side scrambles
/// are absorbed by that walk for free; only straddlers cost an exchange,
/// and each exchange homes one stranded qubit from each side.
///
/// When every position sits on one side of the boundary (`n_pes == 1` or
/// `n_pes == dim`) no cross pair exists; the layout is left as-is — the
/// executor never runs those configurations remapped.
fn restore_home(layout: &mut QubitLayout, boundary: u32) -> Vec<(u32, u32)> {
    let n = layout.n_qubits();
    let mut out = Vec::new();
    if boundary == 0 || boundary >= n {
        return out;
    }
    // Straddlers pair up across the boundary: a low logical stranded high
    // implies a high logical stranded low.
    while let Some(q) = (0..boundary).find(|&q| layout.phys(q) >= boundary) {
        let r = (boundary..n)
            .find(|&r| layout.phys(r) < boundary)
            .expect("straddling qubits pair across the boundary");
        let (lo, hi) = (layout.phys(r), layout.phys(q));
        out.push((lo, hi));
        layout.swap_phys(lo, hi);
    }
    out
}

/// Plan the remapped execution of `ops` over `n_qubits` qubits at `n_pes`
/// partitions (power of two). See the module docs for the policy.
///
/// # Panics
/// If `n_pes` is not a power of two or exceeds the state dimension.
#[must_use]
pub fn plan_remap(ops: &[Op], n_qubits: u32, n_pes: u64) -> RemapPlan {
    plan_remap_fused(ops, n_qubits, n_pes, 0)
}

/// [`plan_remap`] with a fusion-aware cost model: `fuse` is the gate-fusion
/// window the downstream lowering will apply ([`crate::fuse`]), so the
/// amortization scan prices post-fusion traffic — gates riding an already
/// fused window add no remote bytes of their own. `fuse == 0` is exactly
/// [`plan_remap`]. Planning only; the emitted schedule is valid for fused
/// and unfused execution alike.
///
/// # Panics
/// As [`plan_remap`].
#[must_use]
pub fn plan_remap_fused(ops: &[Op], n_qubits: u32, n_pes: u64, fuse: u8) -> RemapPlan {
    assert!(n_pes.is_power_of_two(), "PE count must be a power of two");
    let k = n_pes.trailing_zeros();
    assert!(k <= n_qubits);
    let boundary = n_qubits - k;
    let swap_cost = crate::traffic::exchange_traffic(n_qubits, n_pes).remote_bytes;

    // Per-qubit use lists for the Belady rule: indices of ops that touch
    // the qubit's *data* (absorbed SWAP relabelings touch nothing).
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); n_qubits as usize];
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Gate(g) => {
                if g.kind() == GateKind::SWAP {
                    continue;
                }
                for &q in g.qubits() {
                    uses[q as usize].push(i);
                }
            }
            Op::IfEq { gate, .. } => {
                for &q in gate.qubits() {
                    uses[q as usize].push(i);
                }
            }
            Op::Measure { qubit, .. } | Op::Reset { qubit } => uses[*qubit as usize].push(i),
            Op::Barrier(_) => {}
        }
    }
    let mut use_ptr = vec![0usize; n_qubits as usize];

    let mut layout = QubitLayout::identity(n_qubits);
    let mut out_ops: Vec<Op> = Vec::with_capacity(ops.len());
    let mut pre_swaps: Vec<Vec<(u32, u32)>> = Vec::with_capacity(ops.len());
    let mut measure_layouts: Vec<Option<QubitLayout>> = Vec::with_capacity(ops.len());
    let mut scratch: Vec<CompiledGate> = Vec::new();

    for (i, op) in ops.iter().enumerate() {
        // Advance every next-use cursor past this op.
        for (q, ptr) in use_ptr.iter_mut().enumerate() {
            while *ptr < uses[q].len() && uses[q][*ptr] <= i {
                *ptr += 1;
            }
        }
        match op {
            Op::Barrier(_) => {} // scheduling hint; the executor skips it too
            Op::Gate(g) if g.kind() == GateKind::SWAP => {
                // A SWAP gate *is* a relabeling: absorb it into the layout
                // — no kernel, no traffic. Readback un-permutes, and any
                // later Measure/Reset restores the identity layout first,
                // so semantics are untouched.
                let (a, b) = (g.qubits()[0], g.qubits()[1]);
                layout.swap_phys(layout.phys(a), layout.phys(b));
            }
            Op::Gate(g) => {
                let swaps = localize(
                    g,
                    i,
                    ops,
                    &mut layout,
                    boundary,
                    n_qubits,
                    n_pes,
                    swap_cost,
                    &uses,
                    &use_ptr,
                    fuse,
                    &mut scratch,
                );
                out_ops.push(Op::Gate(map_gate(g, &layout)));
                pre_swaps.push(swaps);
                measure_layouts.push(None);
            }
            Op::IfEq {
                creg_lo,
                creg_len,
                value,
                gate,
            } => {
                // The relabeling swaps run unconditionally (pure data
                // movement, semantically neutral); only the payload gate
                // stays conditional.
                let swaps = localize(
                    gate,
                    i,
                    ops,
                    &mut layout,
                    boundary,
                    n_qubits,
                    n_pes,
                    swap_cost,
                    &uses,
                    &use_ptr,
                    fuse,
                    &mut scratch,
                );
                out_ops.push(Op::IfEq {
                    creg_lo: *creg_lo,
                    creg_len: *creg_len,
                    value: *value,
                    gate: map_gate(gate, &layout),
                });
                pre_swaps.push(swaps);
                measure_layouts.push(None);
            }
            Op::Measure { qubit, cbit } => {
                let swaps = restore_home(&mut layout, boundary);
                out_ops.push(Op::Measure {
                    qubit: *qubit, // logical; the executor maps via the snapshot
                    cbit: *cbit,
                });
                pre_swaps.push(swaps);
                measure_layouts.push(Some(layout.clone()));
            }
            Op::Reset { qubit } => {
                let swaps = restore_home(&mut layout, boundary);
                out_ops.push(Op::Reset { qubit: *qubit });
                pre_swaps.push(swaps);
                measure_layouts.push(Some(layout.clone()));
            }
        }
    }
    let n_swaps = pre_swaps.iter().map(Vec::len).sum();
    RemapPlan {
        ops: out_ops,
        pre_swaps,
        measure_layouts,
        final_layout: layout,
        n_swaps,
    }
}

/// Rewrite a gate's qubits to their physical positions.
fn map_gate(g: &Gate, layout: &QubitLayout) -> Gate {
    let mapped: Vec<u32> = g.qubits().iter().map(|&q| layout.phys(q)).collect();
    Gate::new(g.kind(), &mapped, g.params()).expect("remap preserves gate validity")
}

/// Un-permute a physical-layout state back to logical order, in place.
///
/// `re`/`im` hold the amplitudes in `layout`'s physical order; afterwards
/// index `b` holds the amplitude of logical basis state `b`.
pub fn unpermute_state(layout: &QubitLayout, re: &mut [f64], im: &mut [f64]) {
    if layout.is_identity() {
        return;
    }
    let dim = re.len() as u64;
    let mut new_re = vec![0.0f64; re.len()];
    let mut new_im = vec![0.0f64; im.len()];
    for b in 0..dim {
        let p = layout.physical_index(b) as usize;
        new_re[b as usize] = re[p];
        new_im[b as usize] = im[p];
    }
    re.copy_from_slice(&new_re);
    im.copy_from_slice(&new_im);
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_ir::{Circuit, GateKind};

    #[test]
    fn layout_swap_roundtrip() {
        let mut l = QubitLayout::identity(4);
        assert!(l.is_identity());
        l.swap_phys(0, 3);
        assert_eq!(l.phys(0), 3);
        assert_eq!(l.phys(3), 0);
        assert_eq!(l.logical(3), 0);
        assert!(!l.is_identity());
        l.swap_phys(0, 3);
        assert!(l.is_identity());
    }

    #[test]
    fn physical_index_follows_the_permutation() {
        let mut l = QubitLayout::identity(3);
        l.swap_phys(0, 2); // logical 0 at position 2, logical 2 at position 0
                           // Logical |001> (q0 set) lives at physical bit 2 -> index 0b100.
        assert_eq!(l.physical_index(0b001), 0b100);
        assert_eq!(l.physical_index(0b100), 0b001);
        assert_eq!(l.physical_index(0b010), 0b010);
    }

    #[test]
    fn high_qubit_gates_are_localized() {
        // n=4 at 4 PEs: boundary = 2. A gate on qubit 3 must be preceded by
        // a swap pulling it below the boundary.
        let mut c = Circuit::new(4);
        c.apply(GateKind::H, &[3], &[]).unwrap();
        let plan = plan_remap(c.ops(), 4, 4);
        assert_eq!(plan.n_swaps, 1);
        assert_eq!(plan.pre_swaps[0].len(), 1);
        let (lo, hi) = plan.pre_swaps[0][0];
        assert!(lo < 2 && hi == 3);
        // The gate now targets the low position it was swapped into.
        let Op::Gate(g) = &plan.ops[0] else {
            panic!("gate expected")
        };
        assert_eq!(g.qubits(), &[lo]);
        assert!(!plan.final_layout.is_identity());
    }

    #[test]
    fn low_gates_never_swap_and_reuse_is_cheap() {
        // Repeated gates on the same high qubit pay one swap, not one per
        // gate — the relabeled position persists.
        let mut c = Circuit::new(5);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::H, &[4], &[]).unwrap();
        c.apply(GateKind::T, &[4], &[]).unwrap();
        c.apply(GateKind::H, &[4], &[]).unwrap();
        let plan = plan_remap(c.ops(), 5, 4);
        assert_eq!(plan.n_swaps, 1, "one localization serves the whole run");
        assert!(plan.pre_swaps[0].is_empty(), "low gate needs no swap");
    }

    #[test]
    fn victim_has_furthest_next_use() {
        // n=5 at 2 PEs: boundary = 4. Qubits 1..4 are all used again after
        // the H(4); qubit 0 never is, so localizing qubit 4 must evict
        // logical 0 (the Belady choice), not merely the coldest-so-far.
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.apply(GateKind::H, &[q], &[]).unwrap();
        }
        for q in 1..4 {
            c.apply(GateKind::H, &[q], &[]).unwrap();
        }
        let plan = plan_remap(c.ops(), 5, 2);
        assert_eq!(plan.pre_swaps[4], vec![(0, 4)]);
        assert_eq!(plan.final_layout.phys(4), 0);
        assert_eq!(plan.final_layout.phys(0), 4);
        assert_eq!(plan.n_swaps, 1, "the re-used low qubits never swap");
    }

    #[test]
    fn swap_gates_are_absorbed_into_the_layout() {
        // A SWAP is pure relabeling: no step, no exchange — just a
        // permanent layout update that readback un-permutes.
        let mut c = Circuit::new(4);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::SWAP, &[0, 1], &[]).unwrap();
        let plan = plan_remap(c.ops(), 4, 2);
        assert_eq!(plan.ops.len(), 1, "the SWAP vanished from the stream");
        assert_eq!(plan.n_swaps, 0);
        assert_eq!(plan.final_layout.phys(0), 1);
        assert_eq!(plan.final_layout.phys(1), 0);
    }

    #[test]
    fn cheap_lone_gates_are_not_worth_an_exchange() {
        // n=6 at 8 PEs: one CU1 touching the top qubit costs 448 remote
        // bytes word-level but an exchange costs 512 — so a lone CU1 runs
        // remote as-is...
        let mut c = Circuit::new(6);
        c.apply(GateKind::CU1, &[0, 5], &[0.3]).unwrap();
        let plan = plan_remap(c.ops(), 6, 8);
        assert_eq!(plan.n_swaps, 0);
        let Op::Gate(g) = &plan.ops[0] else {
            panic!("gate expected")
        };
        assert_eq!(g.qubits(), &[0, 5], "gate keeps its physical positions");

        // ...but two of them amortize one exchange, so the first gate
        // localizes and the second rides along for free.
        c.apply(GateKind::CU1, &[0, 5], &[0.3]).unwrap();
        let plan = plan_remap(c.ops(), 6, 8);
        assert_eq!(plan.n_swaps, 1);
        assert_eq!(plan.pre_swaps[0].len(), 1);
        assert!(plan.pre_swaps[1].is_empty());
    }

    #[test]
    fn measurement_homes_straddling_qubits() {
        // boundary = 2. Localizing qubit 3 leaves a low logical stranded
        // high; the measure is preceded by exactly the one exchange homing
        // the pair, the snapshot records the block-preserving layout, and
        // the op keeps its logical qubit.
        let mut c = Circuit::with_cbits(4, 1);
        c.apply(GateKind::H, &[3], &[]).unwrap();
        c.measure(0, 0).unwrap();
        let plan = plan_remap(c.ops(), 4, 4);
        assert_eq!(plan.pre_swaps[1].len(), 1, "one exchange homes the pair");
        assert_eq!(plan.ops[1], Op::Measure { qubit: 0, cbit: 0 });
        let lay = plan.measure_layouts[1]
            .as_ref()
            .expect("snapshot at measure");
        for q in 0..4 {
            assert_eq!(lay.phys(q) < 2, q < 2, "block-preserving at collapse");
        }
        assert!(plan.measure_layouts[0].is_none(), "gates carry no snapshot");
    }

    #[test]
    fn same_side_scrambles_cost_nothing_at_collapse() {
        // boundary = 2. An absorbed SWAP(0, 1) (or SWAP(2, 3)) leaves a
        // same-side displacement, which the logical-order measurement walk
        // absorbs for free — no restore exchanges at all.
        for (a, b) in [(0u32, 1u32), (2, 3)] {
            let mut c = Circuit::with_cbits(4, 1);
            c.apply(GateKind::SWAP, &[a, b], &[]).unwrap();
            c.measure(0, 0).unwrap();
            let plan = plan_remap(c.ops(), 4, 4);
            assert_eq!(plan.n_swaps, 0, "swap ({a},{b})");
            let lay = plan.measure_layouts[0].as_ref().expect("snapshot");
            assert_eq!(lay.phys(a), b, "scramble survives the measure");
        }
    }

    #[test]
    fn straddler_pairs_home_with_one_exchange_each() {
        // boundary = 2 at 4 PEs. Absorbed SWAPs stranding two pairs across
        // the boundary (0<->2, 1<->3) home with exactly two exchanges.
        let mut c = Circuit::with_cbits(4, 1);
        c.apply(GateKind::SWAP, &[0, 2], &[]).unwrap();
        c.apply(GateKind::SWAP, &[1, 3], &[]).unwrap();
        c.measure(0, 0).unwrap();
        let plan = plan_remap(c.ops(), 4, 4);
        assert_eq!(plan.pre_swaps[0].len(), 2);
        for &(lo, hi) in &plan.pre_swaps[0] {
            assert!(lo < 2 && hi >= 2, "every exchange crosses the boundary");
        }
        let lay = plan.measure_layouts[0].as_ref().expect("snapshot");
        for q in 0..4 {
            assert_eq!(lay.phys(q) < 2, q < 2);
        }
    }

    #[test]
    fn too_wide_gates_run_unmapped() {
        // n=3 at 4 PEs: boundary = 1; a 2-qubit gate cannot fit below it.
        let mut c = Circuit::new(3);
        c.apply(GateKind::CX, &[1, 2], &[]).unwrap();
        let plan = plan_remap(c.ops(), 3, 4);
        assert_eq!(plan.n_swaps, 0);
        let Op::Gate(g) = &plan.ops[0] else {
            panic!("gate expected")
        };
        assert_eq!(g.qubits(), &[1, 2], "gate keeps its physical positions");
    }

    #[test]
    fn barriers_are_dropped_for_step_alignment() {
        let mut c = Circuit::new(2);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.barrier(&[]);
        c.apply(GateKind::X, &[1], &[]).unwrap();
        let plan = plan_remap(c.ops(), 2, 1);
        assert_eq!(plan.ops.len(), 2);
        assert_eq!(plan.pre_swaps.len(), 2);
    }

    #[test]
    fn unpermute_restores_logical_order() {
        // Physical layout with logical 0 <-> 2 swapped on 3 qubits: the
        // amplitude of |001> sits at physical 0b100.
        let mut l = QubitLayout::identity(3);
        l.swap_phys(0, 2);
        let mut re: Vec<f64> = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0b100] = 0.25; // logical |001>
        im[0b001] = 0.5; // logical |100>
        unpermute_state(&l, &mut re, &mut im);
        assert_eq!(re[0b001], 0.25);
        assert_eq!(im[0b100], 0.5);
    }
}
