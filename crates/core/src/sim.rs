//! The unified `Simulator` facade over all backends.

use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::exec::{run_scaleout, run_scaleup, run_single, DispatchMode, LaunchOutput};
use crate::measure;
use crate::plan::{CompiledPlan, PlanSegment};
use crate::state::StateVector;
use crate::traffic::{circuit_traffic, GateTraffic};
use std::sync::Arc;
use svsim_ir::{Circuit, Op, PauliString};
use svsim_shmem::{FaultAction, FaultPlan, RaceReport, ShmemBackend, TrafficSnapshot};
use svsim_types::{Complex64, SvError, SvResult, SvRng};

/// Which execution backend runs the circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// One device, sequential kernels (§3.2.1).
    SingleDevice,
    /// One process, `n` device partitions over peer access (§3.2.2).
    ScaleUp {
        /// Number of device partitions (power of two).
        n_devices: usize,
    },
    /// SPMD SHMEM PEs, one partition each (§3.2.3).
    ScaleOut {
        /// Number of PEs (power of two).
        n_pes: usize,
    },
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Backend selection.
    pub backend: BackendKind,
    /// Gate dispatch strategy.
    pub dispatch: DispatchMode,
    /// Specialized per-gate kernels (`true`, the SV-Sim design) or
    /// generalized dense-matrix application (`false`, the Aer/qsim scheme).
    pub specialized: bool,
    /// RNG seed for measurement and sampling.
    pub seed: u64,
    /// Checkpoint the amplitudes every this many circuit ops (0 disables
    /// checkpointing). A checkpointed run executes in segments and keeps
    /// the last good [`Checkpoint`] for [`Simulator::restore`].
    pub checkpoint_every: u32,
    /// Run scale-out launches under the dynamic race detector: every
    /// one-sided access is recorded against epoch-scoped shadow state and
    /// protocol violations surface as [`RunSummary::races`] instead of
    /// silent corruption. No effect on the other backends.
    pub detect_races: bool,
    /// Communication-avoiding qubit relabeling for scale-out: maintain a
    /// logical→physical qubit permutation, hoist gates on partition-index
    /// qubits into the PE-local range via bulk exchange epochs, and
    /// un-permute the state at readback. Results stay bit-identical to the
    /// naive path; remote word traffic drops by orders of magnitude on
    /// deep circuits. No effect on the other backends.
    pub remap: bool,
    /// SHMEM world substrate for scale-out: thread-backed PEs (the
    /// default) or process-backed PEs forked over a `memfd` symmetric heap
    /// ([`ShmemBackend::Process`]) with true crash isolation. Results are
    /// bit-identical across the two; the race detector requires the thread
    /// backend. No effect on the other backends.
    pub shmem_backend: ShmemBackend,
    /// In-place respawn budget for the process backend's supervisor: when a
    /// PE dies or hangs, re-fork only that PE and re-run the round on the
    /// surviving processes, up to this many recovery rounds (0 disables —
    /// failures surface as typed errors immediately). No effect on the
    /// thread backend.
    pub respawn_max: u32,
    /// Watchdog deadline for the process backend's supervisor: a PE whose
    /// heartbeat words stall this long is killed and reported as
    /// `SvError::PeHung`. No effect on the thread backend.
    pub hang_deadline_ms: u32,
    /// Gate-fusion window in qubits (0 disables, the default; clamped to
    /// [`crate::fuse::MAX_WINDOW`]). Runs of adjacent gates whose combined
    /// footprint fits the window execute as one sweep over the amplitudes
    /// ([`crate::fuse`]); results stay bit-identical to the unfused
    /// schedule on every backend and dispatch mode.
    pub fuse: u8,
}

impl SimConfig {
    /// Single device, fn-pointer dispatch, specialized kernels.
    #[must_use]
    pub fn single_device() -> Self {
        Self {
            backend: BackendKind::SingleDevice,
            dispatch: DispatchMode::PreloadedFnPointer,
            specialized: true,
            seed: 0xC0FFEE,
            checkpoint_every: 0,
            detect_races: false,
            remap: false,
            shmem_backend: ShmemBackend::Thread,
            respawn_max: 0,
            hang_deadline_ms: 30_000,
            fuse: 0,
        }
    }

    /// Scale-up over `n_devices` peer-accessed partitions.
    #[must_use]
    pub fn scale_up(n_devices: usize) -> Self {
        Self {
            backend: BackendKind::ScaleUp { n_devices },
            ..Self::single_device()
        }
    }

    /// Scale-out over `n_pes` SHMEM PEs.
    #[must_use]
    pub fn scale_out(n_pes: usize) -> Self {
        Self {
            backend: BackendKind::ScaleOut { n_pes },
            ..Self::single_device()
        }
    }

    /// Override the dispatch mode.
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Disable gate specialization (generalized dense kernels).
    #[must_use]
    pub fn with_generic_gates(mut self) -> Self {
        self.specialized = false;
        self
    }

    /// Override the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checkpoint every `k` circuit ops (0 disables checkpointing).
    #[must_use]
    pub fn with_checkpoint_every(mut self, k: u32) -> Self {
        self.checkpoint_every = k;
        self
    }

    /// Arm the dynamic race detector for scale-out launches (see
    /// [`SimConfig::detect_races`]).
    #[must_use]
    pub fn with_race_detection(mut self) -> Self {
        self.detect_races = true;
        self
    }

    /// Enable communication-avoiding qubit remapping for scale-out (see
    /// [`SimConfig::remap`]).
    #[must_use]
    pub fn with_remap(mut self) -> Self {
        self.remap = true;
        self
    }

    /// Select the SHMEM world substrate for scale-out (see
    /// [`SimConfig::shmem_backend`]).
    #[must_use]
    pub fn with_shmem_backend(mut self, backend: ShmemBackend) -> Self {
        self.shmem_backend = backend;
        self
    }

    /// Run scale-out PEs as forked OS processes over a shared `memfd`
    /// symmetric heap (shorthand for
    /// `with_shmem_backend(ShmemBackend::Process)`).
    #[must_use]
    pub fn with_process_backend(mut self) -> Self {
        self.shmem_backend = ShmemBackend::Process;
        self
    }

    /// Set the process-backend in-place respawn budget (see
    /// [`SimConfig::respawn_max`]).
    #[must_use]
    pub fn with_respawn(mut self, max: u32) -> Self {
        self.respawn_max = max;
        self
    }

    /// Set the process-backend watchdog deadline (see
    /// [`SimConfig::hang_deadline_ms`]).
    #[must_use]
    pub fn with_hang_deadline_ms(mut self, ms: u32) -> Self {
        self.hang_deadline_ms = ms;
        self
    }

    /// Set the gate-fusion window in qubits (see [`SimConfig::fuse`];
    /// 0 disables, values past [`crate::fuse::MAX_WINDOW`] are clamped).
    #[must_use]
    pub fn with_fusion(mut self, window: u8) -> Self {
        self.fuse = window.min(crate::fuse::MAX_WINDOW);
        self
    }
}

/// Outcome summary of one circuit execution.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Gates executed (after compound composition).
    pub gates: usize,
    /// Classical register contents after the run.
    pub cbits: u64,
    /// Measured per-worker communication traffic (empty for single device).
    pub traffic: Vec<TrafficSnapshot>,
    /// Bytes captured into checkpoints during this run (0 when
    /// checkpointing is disabled).
    pub checkpoint_bytes: u64,
    /// Access-protocol violations recorded by the dynamic race detector
    /// (always empty unless [`SimConfig::detect_races`] is set; a
    /// conflict-free protocol keeps it empty even then).
    pub races: Vec<RaceReport>,
    /// Relabeling exchange epochs executed (0 unless [`SimConfig::remap`]
    /// is set on the scale-out backend and the circuit crossed partitions).
    pub remap_swaps: usize,
    /// In-place PE respawns the process backend's supervisor performed
    /// during this run (0 elsewhere or when [`SimConfig::respawn_max`] is
    /// 0).
    pub respawns: usize,
}

impl RunSummary {
    /// Aggregate traffic over all workers.
    #[must_use]
    pub fn total_traffic(&self) -> TrafficSnapshot {
        self.traffic
            .iter()
            .fold(TrafficSnapshot::default(), |acc, t| acc.merged(t))
    }
}

/// The SV-Sim simulator: a state vector plus an execution backend.
#[derive(Debug)]
pub struct Simulator {
    state: StateVector,
    config: SimConfig,
    rng: SvRng,
    cbits: u64,
    /// Injected-fault schedule threaded into scale-out launches.
    fault_plan: Option<Arc<FaultPlan>>,
    /// Last good checkpoint of the current/most recent run.
    checkpoint: Option<Checkpoint>,
    /// Crash-consistent on-disk store: when attached, every captured
    /// checkpoint is also persisted as a new generation, and
    /// [`Simulator::recover_checkpoint_from_store`] can reload after the
    /// in-memory copy is lost.
    store: Option<CheckpointStore>,
}

impl Simulator {
    /// Fresh simulator in `|0...0>`.
    ///
    /// # Errors
    /// Invalid register width or worker configuration.
    pub fn new(n_qubits: u32, config: SimConfig) -> SvResult<Self> {
        let state = StateVector::zero_state(n_qubits)?;
        match config.backend {
            BackendKind::ScaleUp { n_devices: w } | BackendKind::ScaleOut { n_pes: w } => {
                if w == 0 || !w.is_power_of_two() {
                    return Err(SvError::InvalidConfig(format!(
                        "worker count {w} must be a nonzero power of two"
                    )));
                }
                if (w as u64) > (1u64 << n_qubits) {
                    return Err(SvError::InvalidConfig(format!(
                        "worker count {w} exceeds 2^{n_qubits} amplitudes"
                    )));
                }
            }
            BackendKind::SingleDevice => {}
        }
        Ok(Self {
            state,
            rng: SvRng::seed_from_u64(config.seed),
            config,
            cbits: 0,
            fault_plan: None,
            checkpoint: None,
            store: None,
        })
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> u32 {
        self.state.n_qubits()
    }

    /// Active configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn validate(&self, circuit: &Circuit) -> SvResult<()> {
        if circuit.n_qubits() > self.state.n_qubits() {
            return Err(SvError::InvalidConfig(format!(
                "circuit uses {} qubits, simulator has {}",
                circuit.n_qubits(),
                self.state.n_qubits()
            )));
        }
        if circuit.n_cbits() > 64 {
            return Err(SvError::InvalidConfig(
                "at most 64 classical bits are supported".into(),
            ));
        }
        Ok(())
    }

    /// Execute a circuit against the current state.
    ///
    /// With `checkpoint_every > 0` the circuit runs in segments of that
    /// many ops, capturing a [`Checkpoint`] after each; a failed segment
    /// (e.g. an injected PE death) leaves the state untouched at its
    /// pre-segment contents so [`Self::resume`] can pick up bit-identically
    /// from the last good checkpoint.
    ///
    /// # Errors
    /// Width mismatch, classical-register overflow, numeric failures, or a
    /// PE failure on the scale-out backend.
    pub fn run(&mut self, circuit: &Circuit) -> SvResult<RunSummary> {
        self.validate(circuit)?;
        self.run_segments(circuit, 0, 0, None)
    }

    /// Execute a circuit from a precompiled [`CompiledPlan`], skipping the
    /// per-run lowering (circuit elaboration, kernel specialization, remap
    /// planning). Results are bit-identical to [`Self::run`] on the same
    /// circuit; a plan whose shape does not [`CompiledPlan::matches`] this
    /// simulator/config is ignored and the run falls back to on-the-fly
    /// lowering — correctness never depends on the cache.
    ///
    /// # Errors
    /// As [`Self::run`].
    pub fn run_plan(&mut self, circuit: &Circuit, plan: &CompiledPlan) -> SvResult<RunSummary> {
        self.validate(circuit)?;
        let plan = plan
            .matches(circuit, self.state.n_qubits(), &self.config)
            .then_some(plan);
        self.run_segments(circuit, 0, 0, plan)
    }

    /// One backend dispatch over an op slice. The third tuple element is
    /// the dynamic race reports (scale-out with detection armed only); the
    /// fourth is the count of relabeling exchanges performed; the fifth
    /// counts in-place PE respawns (process backend only). `seg` supplies
    /// the precompiled lowering of exactly this slice, when available.
    fn exec_ops(
        &mut self,
        ops: &[Op],
        initial_cbits: u64,
        seg: Option<&PlanSegment>,
    ) -> SvResult<LaunchOutput> {
        match self.config.backend {
            BackendKind::SingleDevice => {
                let cb = run_single(
                    &mut self.state,
                    ops,
                    self.config.specialized,
                    self.config.dispatch,
                    &mut self.rng,
                    initial_cbits,
                    self.config.fuse,
                    seg,
                )?;
                Ok((cb, Vec::new(), Vec::new(), 0, 0))
            }
            BackendKind::ScaleUp { n_devices } => {
                let (cb, traffic) = run_scaleup(
                    &mut self.state,
                    ops,
                    n_devices,
                    self.config.specialized,
                    self.config.dispatch,
                    &mut self.rng,
                    initial_cbits,
                    self.config.fuse,
                    seg,
                )?;
                Ok((cb, traffic, Vec::new(), 0, 0))
            }
            BackendKind::ScaleOut { n_pes } => run_scaleout(
                &mut self.state,
                ops,
                n_pes,
                self.config.specialized,
                self.config.dispatch,
                &mut self.rng,
                initial_cbits,
                self.fault_plan.clone(),
                self.config.detect_races,
                self.config.remap,
                self.config.shmem_backend,
                self.config.respawn_max,
                self.config.hang_deadline_ms,
                self.config.fuse,
                seg,
            ),
        }
    }

    /// Execute `circuit.ops()[start_op..]`, segmenting at checkpoint
    /// boundaries when enabled. Segment boundaries are fixed multiples of
    /// `checkpoint_every` from op 0, so a resumed run re-executes exactly
    /// the segments the uninterrupted run would have — the basis of the
    /// bit-identical recovery guarantee.
    fn run_segments(
        &mut self,
        circuit: &Circuit,
        start_op: usize,
        initial_cbits: u64,
        plan: Option<&CompiledPlan>,
    ) -> SvResult<RunSummary> {
        let gates = circuit.gates().count();
        let ops = circuit.ops();
        let k = self.config.checkpoint_every as usize;
        if k == 0 {
            self.checkpoint = None;
            let seg = plan.and_then(|p| p.segment(start_op, ops.len()));
            let (cbits, traffic, races, remap_swaps, respawns) =
                self.exec_ops(&ops[start_op..], initial_cbits, seg)?;
            self.cbits = cbits;
            return Ok(RunSummary {
                gates,
                cbits,
                traffic,
                checkpoint_bytes: 0,
                races,
                remap_swaps,
                respawns,
            });
        }
        let mut cbits = initial_cbits;
        let mut traffic: Vec<TrafficSnapshot> = Vec::new();
        let mut races: Vec<RaceReport> = Vec::new();
        let mut remap_swaps = 0usize;
        let mut respawns = 0usize;
        let mut checkpoint_bytes = 0u64;
        let cp = Checkpoint::capture(start_op, cbits, &self.rng, &self.state);
        checkpoint_bytes += cp.bytes();
        self.persist_checkpoint(&cp)?;
        self.checkpoint = Some(cp);
        let mut pos = start_op;
        while pos < ops.len() {
            // Align the segment end to the global checkpoint grid so resume
            // and uninterrupted runs segment identically.
            let end = usize::min(ops.len(), (pos / k + 1) * k);
            let seg = plan.and_then(|p| p.segment(pos, end));
            let (cb, seg_traffic, seg_races, seg_swaps, seg_respawns) =
                self.exec_ops(&ops[pos..end], cbits, seg)?;
            cbits = cb;
            merge_worker_traffic(&mut traffic, seg_traffic);
            races.extend(seg_races);
            remap_swaps += seg_swaps;
            respawns += seg_respawns;
            let cp = Checkpoint::capture(end, cbits, &self.rng, &self.state);
            checkpoint_bytes += cp.bytes();
            self.persist_checkpoint(&cp)?;
            self.checkpoint = Some(cp);
            pos = end;
        }
        self.cbits = cbits;
        Ok(RunSummary {
            gates,
            cbits,
            traffic,
            checkpoint_bytes,
            races,
            remap_swaps,
            respawns,
        })
    }

    /// Persist one captured checkpoint into the attached store (no-op when
    /// no store is attached). An armed `PeOp::Checkpoint` +
    /// [`FaultAction::TornCheckpoint`] spec in the fault plan makes the
    /// write crash mid-rename — half the bytes land at the final path, the
    /// in-memory checkpoint is dropped (the "process" died before it was
    /// adopted), and the run surfaces a typed [`SvError::Checkpoint`] so
    /// the engine exercises the store's previous-generation fallback.
    fn persist_checkpoint(&mut self, cp: &Checkpoint) -> SvResult<()> {
        let Some(store) = self.store.as_mut() else {
            return Ok(());
        };
        let torn = matches!(
            self.fault_plan
                .as_ref()
                .and_then(|p| p.check(0, svsim_types::PeOp::Checkpoint)),
            Some(FaultAction::TornCheckpoint)
        );
        if torn {
            store.save_torn(cp)?;
            self.checkpoint = None;
            return Err(SvError::Checkpoint(format!(
                "torn write: crashed while persisting the generation at op {}",
                cp.op_index()
            )));
        }
        store.save(cp)?;
        Ok(())
    }

    /// Rewind state, classical bits and RNG to the last good checkpoint
    /// after verifying its checksum; returns the op index to resume from.
    ///
    /// # Errors
    /// No checkpoint exists, the checksum does not match (corruption), or
    /// the dimensions disagree.
    pub fn restore(&mut self) -> SvResult<usize> {
        let cp = self.checkpoint.take().ok_or_else(|| {
            SvError::InvalidConfig(
                "no checkpoint to restore from (run with checkpoint_every > 0 first)".into(),
            )
        })?;
        let outcome = cp
            .verify()
            .and_then(|()| cp.restore_into(&mut self.state, &mut self.cbits, &mut self.rng));
        let op_index = cp.op_index();
        self.checkpoint = Some(cp);
        outcome.map(|()| op_index)
    }

    /// Restore from the last good checkpoint and finish executing
    /// `circuit` from there. The caller must pass the same circuit the
    /// interrupted [`Self::run`] was given; the completed run is
    /// bit-identical to an uninterrupted one.
    ///
    /// # Errors
    /// As [`Self::restore`] and [`Self::run`]; also when the checkpoint
    /// lies beyond the circuit's end (it belongs to a different circuit).
    pub fn resume(&mut self, circuit: &Circuit) -> SvResult<RunSummary> {
        self.validate(circuit)?;
        let start_op = self.restore()?;
        if start_op > circuit.ops().len() {
            return Err(SvError::InvalidConfig(format!(
                "checkpoint at op {} lies beyond the {}-op circuit",
                start_op,
                circuit.ops().len()
            )));
        }
        let cbits = self.cbits;
        self.run_segments(circuit, start_op, cbits, None)
    }

    /// [`Self::resume`] driven by a precompiled [`CompiledPlan`]. Because
    /// plan segmentation follows the same fixed checkpoint grid as
    /// execution, the remaining segments resolve directly from the plan; a
    /// mismatched plan falls back to on-the-fly lowering, bit-identically.
    ///
    /// # Errors
    /// As [`Self::resume`].
    pub fn resume_plan(&mut self, circuit: &Circuit, plan: &CompiledPlan) -> SvResult<RunSummary> {
        self.validate(circuit)?;
        let start_op = self.restore()?;
        if start_op > circuit.ops().len() {
            return Err(SvError::InvalidConfig(format!(
                "checkpoint at op {} lies beyond the {}-op circuit",
                start_op,
                circuit.ops().len()
            )));
        }
        let cbits = self.cbits;
        let plan = plan
            .matches(circuit, self.state.n_qubits(), &self.config)
            .then_some(plan);
        self.run_segments(circuit, start_op, cbits, plan)
    }

    /// Compile `circuit` into a [`CompiledPlan`] for this simulator's
    /// shape and configuration, executable later via [`Self::run_plan`] /
    /// [`Self::resume_plan`] (and cacheable across runs).
    #[must_use]
    pub fn compile_plan(&self, circuit: &Circuit) -> CompiledPlan {
        CompiledPlan::compile(circuit, self.state.n_qubits(), &self.config)
    }

    /// Predict the communication traffic of a circuit at this backend's
    /// partitioning without running it. When [`SimConfig::remap`] is armed
    /// on a multi-PE scale-out backend this prices the *remapped* plan —
    /// relabeling exchange epochs plus the localized gates — so prediction
    /// and measurement stay cross-checkable on both paths.
    #[must_use]
    pub fn predict_traffic(&self, circuit: &Circuit) -> GateTraffic {
        let n_pes = match self.config.backend {
            BackendKind::SingleDevice => 1,
            BackendKind::ScaleUp { n_devices } => n_devices as u64,
            BackendKind::ScaleOut { n_pes } => n_pes as u64,
        };
        if self.config.remap
            && n_pes > 1
            && matches!(self.config.backend, BackendKind::ScaleOut { .. })
        {
            return crate::traffic::remapped_circuit_traffic(
                circuit.ops(),
                self.state.n_qubits(),
                n_pes,
                self.config.specialized,
            );
        }
        let gates: Vec<svsim_ir::Gate> = circuit.gates().copied().collect();
        let compiled = crate::compile::compile_gates(
            gates.iter(),
            self.state.n_qubits(),
            self.config.specialized,
        );
        circuit_traffic(&compiled, self.state.n_qubits(), n_pes)
    }

    /// Reset to `|0...0>` and clear classical bits. Reinitializes the
    /// existing state vector in place — no reallocation. Drops any
    /// checkpoint (it no longer describes the state).
    pub fn reset_state(&mut self) {
        self.state.reset_zero();
        self.cbits = 0;
        self.checkpoint = None;
    }

    /// Full reinit-in-place: `|0...0>`, cleared classical register, and the
    /// RNG rewound to the configured seed. A reset simulator is
    /// indistinguishable from `Simulator::new` with the same config — the
    /// reuse contract the engine's instance pool depends on — but keeps its
    /// state-vector allocation.
    pub fn reset(&mut self) {
        self.state.reset_zero();
        self.cbits = 0;
        self.rng = SvRng::seed_from_u64(self.config.seed);
        self.checkpoint = None;
        self.fault_plan = None;
        self.store = None;
    }

    /// Attach (or clear) an injected-fault schedule; threaded into every
    /// scale-out launch this simulator performs.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault_plan = plan;
    }

    /// The attached fault schedule, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// Adjust the checkpoint cadence (0 disables). Pooled instances keep
    /// their creation-time config, so the engine sets this per job.
    pub fn set_checkpoint_every(&mut self, k: u32) {
        self.config.checkpoint_every = k;
    }

    /// The last good checkpoint, if one exists.
    #[must_use]
    pub fn checkpoint(&self) -> Option<&Checkpoint> {
        self.checkpoint.as_ref()
    }

    /// Attach (or detach) a crash-consistent on-disk checkpoint store.
    /// While attached, every captured checkpoint is also written as a new
    /// store generation (write-temp + fsync + atomic rename).
    pub fn set_checkpoint_store(&mut self, store: Option<CheckpointStore>) {
        self.store = store;
    }

    /// The attached checkpoint store, if any.
    #[must_use]
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.store.as_ref()
    }

    /// Detach and return the in-memory checkpoint (e.g. to transplant it
    /// into a differently-partitioned simulator — checkpoints are full
    /// global state and PE-count independent).
    pub fn take_checkpoint(&mut self) -> Option<Checkpoint> {
        self.checkpoint.take()
    }

    /// Adopt an externally produced checkpoint (verified first) as this
    /// simulator's resume point. Used by the degradation path: a
    /// checkpoint taken at `n` PEs resumes on a simulator partitioned at
    /// `n/2`.
    ///
    /// # Errors
    /// The checkpoint's payload digest does not verify, or its dimensions
    /// disagree with this simulator's state vector.
    pub fn adopt_checkpoint(&mut self, cp: Checkpoint) -> SvResult<()> {
        cp.verify()?;
        if cp.n_amplitudes() != self.state.dim() {
            return Err(SvError::InvalidConfig(format!(
                "checkpoint holds {} amplitudes but the simulator holds {}",
                cp.n_amplitudes(),
                self.state.dim()
            )));
        }
        self.checkpoint = Some(cp);
        Ok(())
    }

    /// Reload the newest loadable generation from the attached store into
    /// the in-memory checkpoint slot, falling back over corrupt
    /// generations. Returns `Ok(true)` when a checkpoint was recovered,
    /// `Ok(false)` when no store is attached or the store is empty.
    ///
    /// # Errors
    /// Generations exist but none loads cleanly, or the recovered
    /// checkpoint's dimensions disagree with this simulator.
    pub fn recover_checkpoint_from_store(&mut self) -> SvResult<bool> {
        let Some(store) = self.store.as_ref() else {
            return Ok(false);
        };
        match store.load_latest()? {
            None => Ok(false),
            Some((_generation, cp)) => {
                if cp.n_amplitudes() != self.state.dim() {
                    return Err(SvError::Checkpoint(format!(
                        "recovered checkpoint holds {} amplitudes but the simulator holds {}",
                        cp.n_amplitudes(),
                        self.state.dim()
                    )));
                }
                self.checkpoint = Some(cp);
                Ok(true)
            }
        }
    }

    /// Adjust the in-place respawn budget for the process backend (see
    /// [`SimConfig::respawn_max`]). Pooled instances keep their
    /// creation-time config, so the engine sets this per job.
    pub fn set_respawn(&mut self, max: u32) {
        self.config.respawn_max = max;
    }

    /// Adjust the supervisor's hang deadline in milliseconds (see
    /// [`SimConfig::hang_deadline_ms`]).
    pub fn set_hang_deadline_ms(&mut self, ms: u32) {
        self.config.hang_deadline_ms = ms;
    }

    /// Adopt the SHMEM world substrate (see [`SimConfig::shmem_backend`]).
    /// Like the other pooled knobs this is per-job, not part of the pool
    /// key; the substrate is chosen fresh at each launch, so nothing else
    /// needs resetting.
    pub fn set_shmem_backend(&mut self, backend: ShmemBackend) {
        self.config.shmem_backend = backend;
    }

    /// FNV-1a digest of the current amplitudes (bit-identity fingerprint).
    #[must_use]
    pub fn state_checksum(&self) -> u64 {
        crate::checkpoint::state_checksum(&self.state)
    }

    /// Re-seed the RNG.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SvRng::seed_from_u64(seed);
    }

    /// Adopt `seed` into the configuration and rewind the RNG to it, so a
    /// later [`Self::reset`] replays the same stream. Used by pooled
    /// instances that serve jobs with per-job seeds.
    pub fn set_seed(&mut self, seed: u64) {
        self.config.seed = seed;
        self.rng = SvRng::seed_from_u64(seed);
    }

    /// Adopt `remap` into the configuration (see [`SimConfig::remap`]).
    /// Pooled instances serve remapped and naive jobs interchangeably; the
    /// qubit permutation itself is run-local state — planned fresh per
    /// launch and un-permuted at readback — so nothing else needs resetting.
    pub fn set_remap(&mut self, remap: bool) {
        self.config.remap = remap;
    }

    /// Current state vector.
    #[must_use]
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// Amplitudes as complex numbers.
    #[must_use]
    pub fn amplitudes(&self) -> Vec<Complex64> {
        self.state.to_complex()
    }

    /// Probability of every basis state.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        self.state.probabilities()
    }

    /// Classical bits from the last run.
    #[must_use]
    pub fn cbits(&self) -> u64 {
        self.cbits
    }

    /// Sample `shots` basis outcomes from the current state.
    #[must_use]
    pub fn sample(&mut self, shots: usize) -> Vec<u64> {
        let probs = self.state.probabilities();
        measure::sample_shots(&probs, &mut self.rng, shots)
    }

    /// Execute a circuit `shots` times from `|0...0>`, histogramming the
    /// classical register. This is the right entry point for circuits with
    /// mid-circuit measurement or conditionals, where each shot collapses
    /// differently; for purely unitary circuits prefer one `run` plus
    /// [`Self::sample`].
    ///
    /// # Errors
    /// As [`Self::run`].
    pub fn run_shots(
        &mut self,
        circuit: &Circuit,
        shots: usize,
    ) -> SvResult<std::collections::BTreeMap<u64, usize>> {
        let mut hist = std::collections::BTreeMap::new();
        for _ in 0..shots {
            self.reset_state();
            let summary = self.run(circuit)?;
            *hist.entry(summary.cbits).or_insert(0) += 1;
        }
        Ok(hist)
    }

    /// `<P>` expectation of a Pauli string on the current state.
    #[must_use]
    pub fn expval_pauli(&self, string: &PauliString) -> f64 {
        measure::expval_pauli(&self.state, string)
    }

    /// Overwrite the state (for workloads that prepare ansätze externally).
    ///
    /// # Errors
    /// Length mismatch.
    pub fn set_state(&mut self, amps: &[Complex64]) -> SvResult<()> {
        self.state.set_complex(amps)
    }
}

/// Merge one segment's per-worker traffic into the run accumulator
/// (element-wise by worker rank; distributed backends report the same
/// worker count every segment).
fn merge_worker_traffic(acc: &mut Vec<TrafficSnapshot>, segment: Vec<TrafficSnapshot>) {
    if acc.is_empty() {
        *acc = segment;
    } else {
        for (a, s) in acc.iter_mut().zip(segment) {
            *a = a.merged(&s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_ir::GateKind;

    fn ghz(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        for q in 0..n - 1 {
            c.apply(GateKind::CX, &[q, q + 1], &[]).unwrap();
        }
        c
    }

    #[test]
    fn ghz_on_all_backends() {
        for config in [
            SimConfig::single_device(),
            SimConfig::scale_up(2),
            SimConfig::scale_up(4),
            SimConfig::scale_out(2),
            SimConfig::scale_out(4),
        ] {
            let mut sim = Simulator::new(4, config).unwrap();
            sim.run(&ghz(4)).unwrap();
            let p = sim.probabilities();
            assert!((p[0] - 0.5).abs() < 1e-12, "{config:?}");
            assert!((p[15] - 0.5).abs() < 1e-12, "{config:?}");
            assert!((sim.state().norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn backends_agree_exactly() {
        let c = ghz(5);
        let mut reference = Simulator::new(5, SimConfig::single_device()).unwrap();
        reference.run(&c).unwrap();
        for config in [
            SimConfig::scale_up(4),
            SimConfig::scale_out(8),
            SimConfig::single_device().with_dispatch(DispatchMode::RuntimeParse),
            SimConfig::single_device().with_generic_gates(),
        ] {
            let mut sim = Simulator::new(5, config).unwrap();
            sim.run(&c).unwrap();
            assert!(
                sim.state().max_diff(reference.state()) < 1e-12,
                "{config:?} diverged"
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Simulator::new(4, SimConfig::scale_up(3)).is_err());
        assert!(Simulator::new(4, SimConfig::scale_out(0)).is_err());
        assert!(Simulator::new(2, SimConfig::scale_out(8)).is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut sim = Simulator::new(3, SimConfig::single_device()).unwrap();
        assert!(sim.run(&ghz(4)).is_err());
    }

    #[test]
    fn measurement_collapses_ghz() {
        let mut c = ghz(3);
        let mut with_measure = Circuit::with_cbits(3, 3);
        with_measure.extend(&c).unwrap();
        for q in 0..3 {
            with_measure.measure(q, q).unwrap();
        }
        c = with_measure;
        for config in [
            SimConfig::single_device(),
            SimConfig::scale_up(2),
            SimConfig::scale_out(4),
        ] {
            let mut sim = Simulator::new(3, config.with_seed(7)).unwrap();
            let summary = sim.run(&c).unwrap();
            // GHZ measurement is perfectly correlated: all zeros or all ones.
            assert!(
                summary.cbits == 0 || summary.cbits == 0b111,
                "cbits = {:b}",
                summary.cbits
            );
            let p = sim.probabilities();
            let idx = summary.cbits as usize;
            assert!((p[idx] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn same_seed_same_outcomes_across_backends() {
        let mut c = Circuit::with_cbits(2, 2);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::H, &[1], &[]).unwrap();
        c.measure(0, 0).unwrap();
        c.measure(1, 1).unwrap();
        let mut outcomes = Vec::new();
        for config in [
            SimConfig::single_device(),
            SimConfig::scale_up(2),
            SimConfig::scale_out(2),
        ] {
            let mut sim = Simulator::new(2, config.with_seed(99)).unwrap();
            outcomes.push(sim.run(&c).unwrap().cbits);
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[1], outcomes[2]);
    }

    #[test]
    fn conditional_gate_teleportation_style() {
        // Prepare |1> on q0, entangle q1,q2, teleport q0 -> q2 with
        // measurement + classically-controlled corrections.
        let mut c = Circuit::with_cbits(3, 2);
        c.apply(GateKind::X, &[0], &[]).unwrap(); // payload |1>
        c.apply(GateKind::H, &[1], &[]).unwrap();
        c.apply(GateKind::CX, &[1, 2], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.measure(0, 0).unwrap();
        c.measure(1, 1).unwrap();
        // Corrections: X on q2 if c1 == 1; Z on q2 if c0 == 1.
        c.if_eq(
            1,
            1,
            1,
            svsim_ir::Gate::new(GateKind::X, &[2], &[]).unwrap(),
        )
        .unwrap();
        c.if_eq(
            0,
            1,
            1,
            svsim_ir::Gate::new(GateKind::Z, &[2], &[]).unwrap(),
        )
        .unwrap();
        for config in [
            SimConfig::single_device(),
            SimConfig::scale_up(2),
            SimConfig::scale_out(2),
        ] {
            for seed in 0..6 {
                let mut sim = Simulator::new(3, config.with_seed(seed)).unwrap();
                sim.run(&c).unwrap();
                // q2 must now be |1> regardless of the measured syndrome.
                let p1 = crate::measure::prob_one(sim.state(), 2);
                assert!((p1 - 1.0).abs() < 1e-9, "{config:?} seed {seed}: p1={p1}");
            }
        }
    }

    #[test]
    fn reset_simulator_is_bit_identical_to_fresh() {
        // A circuit with measurement exercises the RNG stream, so this
        // proves reset() rewinds state, cbits, AND randomness.
        let mut c = Circuit::with_cbits(4, 4);
        c.extend(&ghz(4)).unwrap();
        for q in 0..4 {
            c.measure(q, q).unwrap();
        }
        for config in [
            SimConfig::single_device().with_seed(11),
            SimConfig::scale_up(2).with_seed(11),
            SimConfig::scale_out(4).with_seed(11),
        ] {
            let mut fresh = Simulator::new(4, config).unwrap();
            let fresh_summary = fresh.run(&c).unwrap();

            let mut reused = Simulator::new(4, config).unwrap();
            // Dirty every piece of per-run state first.
            reused.run(&ghz(4)).unwrap();
            reused.run(&c).unwrap();
            reused.reset();
            let summary = reused.run(&c).unwrap();

            assert_eq!(summary.cbits, fresh_summary.cbits, "{config:?}");
            assert_eq!(
                reused.state().re(),
                fresh.state().re(),
                "{config:?} re parts must be bit-identical"
            );
            assert_eq!(
                reused.state().im(),
                fresh.state().im(),
                "{config:?} im parts must be bit-identical"
            );
        }
    }

    #[test]
    fn checkpointed_run_is_bit_identical_to_plain_run() {
        // Measurement exercises the RNG stream across segment boundaries,
        // so this proves the checkpoint carries cbits AND randomness.
        let mut c = Circuit::with_cbits(4, 4);
        c.extend(&ghz(4)).unwrap();
        for q in 0..4 {
            c.measure(q, q).unwrap();
        }
        for base in [
            SimConfig::single_device().with_seed(23),
            SimConfig::scale_up(2).with_seed(23),
            SimConfig::scale_out(2).with_seed(23),
        ] {
            let mut plain = Simulator::new(4, base).unwrap();
            let plain_summary = plain.run(&c).unwrap();
            assert_eq!(plain_summary.checkpoint_bytes, 0);
            assert!(plain.checkpoint().is_none());
            for k in [1, 2, 3, 64] {
                let mut seg = Simulator::new(4, base.with_checkpoint_every(k)).unwrap();
                let summary = seg.run(&c).unwrap();
                assert_eq!(summary.cbits, plain_summary.cbits, "{base:?} k={k}");
                assert_eq!(seg.state().re(), plain.state().re(), "{base:?} k={k}");
                assert_eq!(seg.state().im(), plain.state().im(), "{base:?} k={k}");
                assert_eq!(
                    summary.total_traffic().remote_ops(),
                    plain_summary.total_traffic().remote_ops(),
                    "{base:?} k={k}: segment traffic must merge losslessly"
                );
                assert!(summary.checkpoint_bytes > 0);
                let cp = seg.checkpoint().expect("final checkpoint kept");
                assert_eq!(cp.op_index(), c.ops().len());
                cp.verify().unwrap();
            }
        }
    }

    #[test]
    fn restore_rewinds_to_last_checkpoint() {
        let c = ghz(3);
        let config = SimConfig::single_device().with_checkpoint_every(2);
        let mut sim = Simulator::new(3, config).unwrap();
        sim.run(&c).unwrap();
        let want_re = sim.state().re().to_vec();
        let want_im = sim.state().im().to_vec();
        let checksum = sim.state_checksum();

        // Clobber the live state, then restore.
        let garbage: Vec<Complex64> = (0..8)
            .map(|i| {
                if i == 0 {
                    Complex64::new(1.0, 0.0)
                } else {
                    Complex64::new(0.0, 0.0)
                }
            })
            .collect();
        sim.set_state(&garbage).unwrap();
        assert_ne!(sim.state_checksum(), checksum);
        let op_index = sim.restore().unwrap();
        assert_eq!(op_index, c.ops().len());
        assert_eq!(sim.state().re(), &want_re[..]);
        assert_eq!(sim.state().im(), &want_im[..]);
        assert_eq!(sim.state_checksum(), checksum);
        // Resuming from the end is a no-op run.
        let summary = sim.resume(&c).unwrap();
        assert_eq!(sim.state_checksum(), checksum);
        assert_eq!(summary.gates, c.gates().count());
    }

    #[test]
    fn restore_without_checkpoint_fails() {
        let mut sim = Simulator::new(2, SimConfig::single_device()).unwrap();
        assert!(sim.restore().is_err());
        sim.run(&ghz(2)).unwrap(); // checkpointing disabled
        assert!(sim.restore().is_err());
    }

    #[test]
    fn scaleout_fault_recovery_is_bit_identical() {
        use svsim_shmem::{FaultAction, FaultPlan};
        use svsim_types::PeOp;

        // Mid-circuit measurements make recovery correctness visible in
        // the RNG stream, not just the amplitudes.
        let mut c = Circuit::with_cbits(4, 4);
        c.extend(&ghz(4)).unwrap();
        for q in 0..4 {
            c.measure(q, q).unwrap();
        }
        let config = SimConfig::scale_out(2)
            .with_seed(11)
            .with_checkpoint_every(2);

        let mut reference = Simulator::new(4, config).unwrap();
        let ref_summary = reference.run(&c).unwrap();
        let ref_checksum = reference.state_checksum();

        // Barrier faults are guaranteed to fire regardless of the gate
        // mix; `at` large enough to strike after the first segment. A
        // dropped put is detected at the next barrier.
        for plan in [
            FaultPlan::new().with(1, PeOp::Barrier, 9, FaultAction::Kill),
            FaultPlan::new().with(0, PeOp::Barrier, 7, FaultAction::Poison),
            FaultPlan::new().with(None, PeOp::Put, 3, FaultAction::Drop),
        ] {
            let armed = plan.armed_remaining();
            assert_eq!(armed, 1);
            let plan = Arc::new(plan);
            let mut sim = Simulator::new(4, config).unwrap();
            sim.set_fault_plan(Some(plan.clone()));
            let err = sim.run(&c).unwrap_err();
            assert!(
                matches!(err, SvError::PeFailed { .. }),
                "fault must surface typed, got: {err}"
            );
            assert_eq!(plan.armed_remaining(), 0, "fault fired exactly once");
            // One-shot faults: resume with the same plan attached.
            let summary = sim.resume(&c).unwrap();
            assert_eq!(summary.cbits, ref_summary.cbits);
            assert_eq!(
                sim.state_checksum(),
                ref_checksum,
                "recovered state must be bit-identical to the fault-free run"
            );
            assert_eq!(sim.state().re(), reference.state().re());
            assert_eq!(sim.state().im(), reference.state().im());
        }
    }

    #[test]
    fn delay_fault_perturbs_timing_not_results() {
        use svsim_shmem::{FaultAction, FaultPlan};
        use svsim_types::PeOp;

        let c = ghz(4);
        let config = SimConfig::scale_out(2).with_seed(3);
        let mut reference = Simulator::new(4, config).unwrap();
        reference.run(&c).unwrap();

        let plan = Arc::new(FaultPlan::new().with(0, PeOp::Get, 2, FaultAction::Delay(1000)));
        let mut sim = Simulator::new(4, config).unwrap();
        sim.set_fault_plan(Some(plan));
        sim.run(&c).unwrap();
        assert_eq!(sim.state_checksum(), reference.state_checksum());
    }

    #[test]
    fn traffic_reported_for_distributed_backends() {
        let c = ghz(4);
        let mut sim = Simulator::new(4, SimConfig::scale_out(4)).unwrap();
        let summary = sim.run(&c).unwrap();
        assert_eq!(summary.traffic.len(), 4);
        let total = summary.total_traffic();
        assert!(total.remote_ops() > 0, "GHZ chain crosses partitions");
        // Prediction matches measurement: ShmemView does one get+put of
        // re and im per amplitude access (2 f64 ops per amplitude op).
        let predicted = sim.predict_traffic(&c);
        assert_eq!(
            total.remote_gets + total.remote_puts,
            2 * predicted.remote_amp_ops,
            "analytic model must match measured traffic"
        );
    }

    #[test]
    fn race_detection_on_scaleout_is_clean_and_bit_identical() {
        // The compiled access protocol must be conflict-free, and the
        // detector must be observation-only: amplitudes bit-identical to a
        // detector-off run.
        let mut c = Circuit::with_cbits(4, 2);
        c.extend(&ghz(4)).unwrap();
        c.apply(GateKind::RZZ, &[0, 3], &[0.3]).unwrap();
        c.measure(0, 0).unwrap();
        let reference = {
            let mut sim = Simulator::new(4, SimConfig::scale_out(4).with_seed(9)).unwrap();
            sim.run(&c).unwrap();
            sim.state_checksum()
        };
        for n_pes in [2usize, 4] {
            let config = SimConfig::scale_out(n_pes)
                .with_seed(9)
                .with_race_detection();
            let mut sim = Simulator::new(4, config).unwrap();
            let summary = sim.run(&c).unwrap();
            assert!(
                summary.races.is_empty(),
                "{n_pes} PEs: protocol must be conflict-free, got {:?}",
                summary.races
            );
            assert_eq!(sim.state_checksum(), reference, "{n_pes} PEs");
        }
        // Detection off keeps the field empty by construction.
        let mut sim = Simulator::new(4, SimConfig::scale_out(2).with_seed(9)).unwrap();
        assert!(sim.run(&c).unwrap().races.is_empty());
    }

    /// Deep circuit dominated by gates on the high (partition-index)
    /// qubits — the worst case for naive scale-out and the best case for
    /// communication-avoiding relabeling.
    fn deep_cross_circuit(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.apply(GateKind::H, &[q], &[]).unwrap();
        }
        for layer in 0..4 {
            for q in n / 2..n {
                c.apply(GateKind::RX, &[q], &[0.3 + 0.1 * f64::from(layer)])
                    .unwrap();
                c.apply(GateKind::CX, &[q, q - 1], &[]).unwrap();
            }
        }
        c
    }

    #[test]
    fn remapped_scaleout_is_bit_identical_and_cheaper() {
        let c = deep_cross_circuit(5);
        let mut reference = Simulator::new(5, SimConfig::single_device()).unwrap();
        reference.run(&c).unwrap();
        for n_pes in [2usize, 4, 8] {
            let mut naive = Simulator::new(5, SimConfig::scale_out(n_pes)).unwrap();
            let naive_summary = naive.run(&c).unwrap();
            assert_eq!(naive_summary.remap_swaps, 0);

            let config = SimConfig::scale_out(n_pes).with_remap();
            let mut sim = Simulator::new(5, config).unwrap();
            let summary = sim.run(&c).unwrap();
            assert_eq!(
                sim.state().re(),
                reference.state().re(),
                "{n_pes} PEs: remapped re parts must be bit-identical"
            );
            assert_eq!(
                sim.state().im(),
                reference.state().im(),
                "{n_pes} PEs: remapped im parts must be bit-identical"
            );
            assert!(
                summary.remap_swaps > 0,
                "{n_pes} PEs: a deep cross-partition circuit must relabel"
            );
            let bytes = |s: &RunSummary| {
                let t = s.total_traffic();
                t.remote_get_bytes + t.remote_put_bytes
            };
            assert!(
                bytes(&summary) < bytes(&naive_summary),
                "{n_pes} PEs: remapped {} must undercut naive {}",
                bytes(&summary),
                bytes(&naive_summary)
            );
        }
    }

    #[test]
    fn remapped_traffic_matches_prediction_in_bytes() {
        // Unitary circuit: the measured remote byte counters must equal the
        // analytic model's `remote_bytes` for the remapped plan exactly.
        let c = deep_cross_circuit(5);
        for n_pes in [2usize, 4, 8] {
            let config = SimConfig::scale_out(n_pes).with_remap();
            let mut sim = Simulator::new(5, config).unwrap();
            let summary = sim.run(&c).unwrap();
            let total = summary.total_traffic();
            let predicted = sim.predict_traffic(&c);
            assert_eq!(
                total.remote_get_bytes + total.remote_put_bytes,
                predicted.remote_bytes,
                "{n_pes} PEs: analytic model must match measured remapped traffic"
            );
        }
    }

    #[test]
    fn remapped_scaleout_with_measurement_matches_naive() {
        // Mid-circuit measurement + conditionals exercise collapse and the
        // classical register under a permuted layout.
        let mut c = Circuit::with_cbits(4, 4);
        c.extend(&deep_cross_circuit(4)).unwrap();
        c.measure(3, 0).unwrap();
        c.if_eq(
            0,
            1,
            1,
            svsim_ir::Gate::new(GateKind::X, &[2], &[]).unwrap(),
        )
        .unwrap();
        c.measure(2, 1).unwrap();
        for seed in [1u64, 7, 23] {
            let mut naive = Simulator::new(4, SimConfig::scale_out(4).with_seed(seed)).unwrap();
            let naive_summary = naive.run(&c).unwrap();
            let config = SimConfig::scale_out(4).with_seed(seed).with_remap();
            let mut sim = Simulator::new(4, config).unwrap();
            let summary = sim.run(&c).unwrap();
            assert_eq!(summary.cbits, naive_summary.cbits, "seed {seed}");
            assert_eq!(sim.state().re(), naive.state().re(), "seed {seed}");
            assert_eq!(sim.state().im(), naive.state().im(), "seed {seed}");
        }
    }

    #[test]
    fn remapped_run_under_race_detector_is_clean() {
        let c = deep_cross_circuit(4);
        let config = SimConfig::scale_out(4).with_remap().with_race_detection();
        let mut sim = Simulator::new(4, config).unwrap();
        let summary = sim.run(&c).unwrap();
        assert!(summary.remap_swaps > 0);
        assert!(
            summary.races.is_empty(),
            "exchange epochs must be conflict-free, got {:?}",
            summary.races
        );
    }

    #[test]
    fn reset_clears_remap_state_between_naive_and_remapped_runs() {
        // Alternate remapped and naive runs on ONE simulator: no stale
        // permutation, exchange buffer, or counter may leak across runs.
        let c = deep_cross_circuit(4);
        let mut reference = Simulator::new(4, SimConfig::single_device()).unwrap();
        reference.run(&c).unwrap();

        let mut sim = Simulator::new(4, SimConfig::scale_out(4)).unwrap();
        for round in 0..4 {
            let remap = round % 2 == 0;
            sim.set_remap(remap);
            sim.reset();
            let summary = sim.run(&c).unwrap();
            assert_eq!(summary.remap_swaps > 0, remap, "round {round}");
            assert_eq!(
                sim.state().re(),
                reference.state().re(),
                "round {round} (remap={remap})"
            );
            assert_eq!(
                sim.state().im(),
                reference.state().im(),
                "round {round} (remap={remap})"
            );
        }
    }

    #[test]
    fn checkpointed_remapped_run_is_bit_identical_to_plain_run() {
        // Each segment plans independently from the identity layout, so
        // checkpoint boundaries must not perturb results.
        let c = deep_cross_circuit(4);
        let base = SimConfig::scale_out(4).with_remap();
        let mut plain = Simulator::new(4, base).unwrap();
        plain.run(&c).unwrap();
        for k in [1u32, 3, 64] {
            let mut seg = Simulator::new(4, base.with_checkpoint_every(k)).unwrap();
            seg.run(&c).unwrap();
            assert_eq!(seg.state().re(), plain.state().re(), "k={k}");
            assert_eq!(seg.state().im(), plain.state().im(), "k={k}");
        }
    }

    #[test]
    fn plan_driven_run_is_bit_identical_to_direct_run() {
        // Measurement exercises the RNG stream, remap exercises the cached
        // relabeling schedule, checkpointing exercises per-segment lookup.
        let mut c = Circuit::with_cbits(4, 4);
        c.extend(&deep_cross_circuit(4)).unwrap();
        for q in 0..4 {
            c.measure(q, q).unwrap();
        }
        for config in [
            SimConfig::single_device().with_seed(31),
            SimConfig::single_device()
                .with_seed(31)
                .with_checkpoint_every(3),
            SimConfig::scale_up(2).with_seed(31),
            SimConfig::scale_out(4).with_seed(31),
            SimConfig::scale_out(4).with_seed(31).with_remap(),
            SimConfig::scale_out(4)
                .with_seed(31)
                .with_remap()
                .with_checkpoint_every(2),
        ] {
            let mut direct = Simulator::new(4, config).unwrap();
            let direct_summary = direct.run(&c).unwrap();

            let mut planned = Simulator::new(4, config).unwrap();
            let plan = planned.compile_plan(&c);
            let summary = planned.run_plan(&c, &plan).unwrap();
            assert_eq!(summary.cbits, direct_summary.cbits, "{config:?}");
            assert_eq!(
                summary.remap_swaps, direct_summary.remap_swaps,
                "{config:?}"
            );
            assert_eq!(planned.state().re(), direct.state().re(), "{config:?}");
            assert_eq!(planned.state().im(), direct.state().im(), "{config:?}");

            // Re-running the same plan from reset replays bit-identically
            // (the engine's compile-cache reuse pattern).
            planned.reset();
            planned.run_plan(&c, &plan).unwrap();
            assert_eq!(
                planned.state().re(),
                direct.state().re(),
                "{config:?} rerun"
            );
        }
    }

    #[test]
    fn mismatched_plan_falls_back_bit_identically() {
        let c = ghz(4);
        let config = SimConfig::scale_out(2).with_seed(5);
        let mut direct = Simulator::new(4, config).unwrap();
        direct.run(&c).unwrap();
        // Plan compiled for a different shape: silently ignored.
        let stale = CompiledPlan::compile(&c, 4, &SimConfig::scale_out(2).with_remap());
        let mut sim = Simulator::new(4, config).unwrap();
        sim.run_plan(&c, &stale).unwrap();
        assert_eq!(sim.state().re(), direct.state().re());
        assert_eq!(sim.state().im(), direct.state().im());
    }

    #[test]
    fn plan_driven_resume_recovers_bit_identically() {
        use svsim_shmem::{FaultAction, FaultPlan};
        use svsim_types::PeOp;

        let mut c = Circuit::with_cbits(4, 4);
        c.extend(&ghz(4)).unwrap();
        for q in 0..4 {
            c.measure(q, q).unwrap();
        }
        let config = SimConfig::scale_out(2)
            .with_seed(11)
            .with_checkpoint_every(2);
        let mut reference = Simulator::new(4, config).unwrap();
        reference.run(&c).unwrap();

        let mut sim = Simulator::new(4, config).unwrap();
        let plan = sim.compile_plan(&c);
        sim.set_fault_plan(Some(Arc::new(FaultPlan::new().with(
            1,
            PeOp::Barrier,
            9,
            FaultAction::Kill,
        ))));
        sim.run_plan(&c, &plan).unwrap_err();
        let summary = sim.resume_plan(&c, &plan).unwrap();
        assert_eq!(summary.cbits, reference.cbits());
        assert_eq!(sim.state().re(), reference.state().re());
        assert_eq!(sim.state().im(), reference.state().im());
    }

    #[test]
    fn sampling_from_simulator() {
        let mut sim = Simulator::new(3, SimConfig::single_device().with_seed(5)).unwrap();
        sim.run(&ghz(3)).unwrap();
        let samples = sim.sample(4000);
        let h = measure::histogram(&samples);
        assert_eq!(h.len(), 2);
        let f0 = h[&0] as f64 / 4000.0;
        assert!((f0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn expval_on_ghz() {
        let mut sim = Simulator::new(3, SimConfig::single_device()).unwrap();
        sim.run(&ghz(3)).unwrap();
        // <ZZI> = +1 on GHZ (correlated), <ZII> = 0.
        let zz = PauliString::parse("ZZI").unwrap();
        assert!((sim.expval_pauli(&zz) - 1.0).abs() < 1e-12);
        let z = PauliString::parse("ZII").unwrap();
        assert!(sim.expval_pauli(&z).abs() < 1e-12);
        // <XXX> = +1 on GHZ.
        let xxx = PauliString::parse("XXX").unwrap();
        assert!((sim.expval_pauli(&xxx) - 1.0).abs() < 1e-12);
    }
}
