//! The unified `Simulator` facade over all backends.

use crate::exec::{run_scaleout, run_scaleup, run_single, DispatchMode};
use crate::measure;
use crate::state::StateVector;
use crate::traffic::{circuit_traffic, GateTraffic};
use svsim_ir::{Circuit, PauliString};
use svsim_shmem::TrafficSnapshot;
use svsim_types::{Complex64, SvError, SvResult, SvRng};

/// Which execution backend runs the circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// One device, sequential kernels (§3.2.1).
    SingleDevice,
    /// One process, `n` device partitions over peer access (§3.2.2).
    ScaleUp {
        /// Number of device partitions (power of two).
        n_devices: usize,
    },
    /// SPMD SHMEM PEs, one partition each (§3.2.3).
    ScaleOut {
        /// Number of PEs (power of two).
        n_pes: usize,
    },
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Backend selection.
    pub backend: BackendKind,
    /// Gate dispatch strategy.
    pub dispatch: DispatchMode,
    /// Specialized per-gate kernels (`true`, the SV-Sim design) or
    /// generalized dense-matrix application (`false`, the Aer/qsim scheme).
    pub specialized: bool,
    /// RNG seed for measurement and sampling.
    pub seed: u64,
}

impl SimConfig {
    /// Single device, fn-pointer dispatch, specialized kernels.
    #[must_use]
    pub fn single_device() -> Self {
        Self {
            backend: BackendKind::SingleDevice,
            dispatch: DispatchMode::PreloadedFnPointer,
            specialized: true,
            seed: 0xC0FFEE,
        }
    }

    /// Scale-up over `n_devices` peer-accessed partitions.
    #[must_use]
    pub fn scale_up(n_devices: usize) -> Self {
        Self {
            backend: BackendKind::ScaleUp { n_devices },
            ..Self::single_device()
        }
    }

    /// Scale-out over `n_pes` SHMEM PEs.
    #[must_use]
    pub fn scale_out(n_pes: usize) -> Self {
        Self {
            backend: BackendKind::ScaleOut { n_pes },
            ..Self::single_device()
        }
    }

    /// Override the dispatch mode.
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Disable gate specialization (generalized dense kernels).
    #[must_use]
    pub fn with_generic_gates(mut self) -> Self {
        self.specialized = false;
        self
    }

    /// Override the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome summary of one circuit execution.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Gates executed (after compound composition).
    pub gates: usize,
    /// Classical register contents after the run.
    pub cbits: u64,
    /// Measured per-worker communication traffic (empty for single device).
    pub traffic: Vec<TrafficSnapshot>,
}

impl RunSummary {
    /// Aggregate traffic over all workers.
    #[must_use]
    pub fn total_traffic(&self) -> TrafficSnapshot {
        self.traffic
            .iter()
            .fold(TrafficSnapshot::default(), |acc, t| acc.merged(t))
    }
}

/// The SV-Sim simulator: a state vector plus an execution backend.
#[derive(Debug)]
pub struct Simulator {
    state: StateVector,
    config: SimConfig,
    rng: SvRng,
    cbits: u64,
}

impl Simulator {
    /// Fresh simulator in `|0...0>`.
    ///
    /// # Errors
    /// Invalid register width or worker configuration.
    pub fn new(n_qubits: u32, config: SimConfig) -> SvResult<Self> {
        let state = StateVector::zero_state(n_qubits)?;
        match config.backend {
            BackendKind::ScaleUp { n_devices: w } | BackendKind::ScaleOut { n_pes: w } => {
                if w == 0 || !w.is_power_of_two() {
                    return Err(SvError::InvalidConfig(format!(
                        "worker count {w} must be a nonzero power of two"
                    )));
                }
                if (w as u64) > (1u64 << n_qubits) {
                    return Err(SvError::InvalidConfig(format!(
                        "worker count {w} exceeds 2^{n_qubits} amplitudes"
                    )));
                }
            }
            BackendKind::SingleDevice => {}
        }
        Ok(Self {
            state,
            rng: SvRng::seed_from_u64(config.seed),
            config,
            cbits: 0,
        })
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> u32 {
        self.state.n_qubits()
    }

    /// Active configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Execute a circuit against the current state.
    ///
    /// # Errors
    /// Width mismatch, classical-register overflow, or numeric failures.
    pub fn run(&mut self, circuit: &Circuit) -> SvResult<RunSummary> {
        if circuit.n_qubits() > self.state.n_qubits() {
            return Err(SvError::InvalidConfig(format!(
                "circuit uses {} qubits, simulator has {}",
                circuit.n_qubits(),
                self.state.n_qubits()
            )));
        }
        if circuit.n_cbits() > 64 {
            return Err(SvError::InvalidConfig(
                "at most 64 classical bits are supported".into(),
            ));
        }
        let gates = circuit.gates().count();
        let (cbits, traffic) = match self.config.backend {
            BackendKind::SingleDevice => {
                let cb = run_single(
                    &mut self.state,
                    circuit,
                    self.config.specialized,
                    self.config.dispatch,
                    &mut self.rng,
                )?;
                (cb, Vec::new())
            }
            BackendKind::ScaleUp { n_devices } => run_scaleup(
                &mut self.state,
                circuit,
                n_devices,
                self.config.specialized,
                self.config.dispatch,
                &mut self.rng,
            )?,
            BackendKind::ScaleOut { n_pes } => run_scaleout(
                &mut self.state,
                circuit,
                n_pes,
                self.config.specialized,
                self.config.dispatch,
                &mut self.rng,
            )?,
        };
        self.cbits = cbits;
        Ok(RunSummary {
            gates,
            cbits,
            traffic,
        })
    }

    /// Predict the communication traffic of a circuit at this backend's
    /// partitioning without running it.
    #[must_use]
    pub fn predict_traffic(&self, circuit: &Circuit) -> GateTraffic {
        let n_pes = match self.config.backend {
            BackendKind::SingleDevice => 1,
            BackendKind::ScaleUp { n_devices } => n_devices as u64,
            BackendKind::ScaleOut { n_pes } => n_pes as u64,
        };
        let gates: Vec<svsim_ir::Gate> = circuit.gates().copied().collect();
        let compiled = crate::compile::compile_gates(
            gates.iter(),
            self.state.n_qubits(),
            self.config.specialized,
        );
        circuit_traffic(&compiled, self.state.n_qubits(), n_pes)
    }

    /// Reset to `|0...0>` and clear classical bits. Reinitializes the
    /// existing state vector in place — no reallocation.
    pub fn reset_state(&mut self) {
        self.state.reset_zero();
        self.cbits = 0;
    }

    /// Full reinit-in-place: `|0...0>`, cleared classical register, and the
    /// RNG rewound to the configured seed. A reset simulator is
    /// indistinguishable from `Simulator::new` with the same config — the
    /// reuse contract the engine's instance pool depends on — but keeps its
    /// state-vector allocation.
    pub fn reset(&mut self) {
        self.state.reset_zero();
        self.cbits = 0;
        self.rng = SvRng::seed_from_u64(self.config.seed);
    }

    /// Re-seed the RNG.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SvRng::seed_from_u64(seed);
    }

    /// Adopt `seed` into the configuration and rewind the RNG to it, so a
    /// later [`Self::reset`] replays the same stream. Used by pooled
    /// instances that serve jobs with per-job seeds.
    pub fn set_seed(&mut self, seed: u64) {
        self.config.seed = seed;
        self.rng = SvRng::seed_from_u64(seed);
    }

    /// Current state vector.
    #[must_use]
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// Amplitudes as complex numbers.
    #[must_use]
    pub fn amplitudes(&self) -> Vec<Complex64> {
        self.state.to_complex()
    }

    /// Probability of every basis state.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        self.state.probabilities()
    }

    /// Classical bits from the last run.
    #[must_use]
    pub fn cbits(&self) -> u64 {
        self.cbits
    }

    /// Sample `shots` basis outcomes from the current state.
    #[must_use]
    pub fn sample(&mut self, shots: usize) -> Vec<u64> {
        let probs = self.state.probabilities();
        measure::sample_shots(&probs, &mut self.rng, shots)
    }

    /// Execute a circuit `shots` times from `|0...0>`, histogramming the
    /// classical register. This is the right entry point for circuits with
    /// mid-circuit measurement or conditionals, where each shot collapses
    /// differently; for purely unitary circuits prefer one `run` plus
    /// [`Self::sample`].
    ///
    /// # Errors
    /// As [`Self::run`].
    pub fn run_shots(
        &mut self,
        circuit: &Circuit,
        shots: usize,
    ) -> SvResult<std::collections::BTreeMap<u64, usize>> {
        let mut hist = std::collections::BTreeMap::new();
        for _ in 0..shots {
            self.reset_state();
            let summary = self.run(circuit)?;
            *hist.entry(summary.cbits).or_insert(0) += 1;
        }
        Ok(hist)
    }

    /// `<P>` expectation of a Pauli string on the current state.
    #[must_use]
    pub fn expval_pauli(&self, string: &PauliString) -> f64 {
        measure::expval_pauli(&self.state, string)
    }

    /// Overwrite the state (for workloads that prepare ansätze externally).
    ///
    /// # Errors
    /// Length mismatch.
    pub fn set_state(&mut self, amps: &[Complex64]) -> SvResult<()> {
        self.state.set_complex(amps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_ir::GateKind;

    fn ghz(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        for q in 0..n - 1 {
            c.apply(GateKind::CX, &[q, q + 1], &[]).unwrap();
        }
        c
    }

    #[test]
    fn ghz_on_all_backends() {
        for config in [
            SimConfig::single_device(),
            SimConfig::scale_up(2),
            SimConfig::scale_up(4),
            SimConfig::scale_out(2),
            SimConfig::scale_out(4),
        ] {
            let mut sim = Simulator::new(4, config).unwrap();
            sim.run(&ghz(4)).unwrap();
            let p = sim.probabilities();
            assert!((p[0] - 0.5).abs() < 1e-12, "{config:?}");
            assert!((p[15] - 0.5).abs() < 1e-12, "{config:?}");
            assert!((sim.state().norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn backends_agree_exactly() {
        let c = ghz(5);
        let mut reference = Simulator::new(5, SimConfig::single_device()).unwrap();
        reference.run(&c).unwrap();
        for config in [
            SimConfig::scale_up(4),
            SimConfig::scale_out(8),
            SimConfig::single_device().with_dispatch(DispatchMode::RuntimeParse),
            SimConfig::single_device().with_generic_gates(),
        ] {
            let mut sim = Simulator::new(5, config).unwrap();
            sim.run(&c).unwrap();
            assert!(
                sim.state().max_diff(reference.state()) < 1e-12,
                "{config:?} diverged"
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Simulator::new(4, SimConfig::scale_up(3)).is_err());
        assert!(Simulator::new(4, SimConfig::scale_out(0)).is_err());
        assert!(Simulator::new(2, SimConfig::scale_out(8)).is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut sim = Simulator::new(3, SimConfig::single_device()).unwrap();
        assert!(sim.run(&ghz(4)).is_err());
    }

    #[test]
    fn measurement_collapses_ghz() {
        let mut c = ghz(3);
        let mut with_measure = Circuit::with_cbits(3, 3);
        with_measure.extend(&c).unwrap();
        for q in 0..3 {
            with_measure.measure(q, q).unwrap();
        }
        c = with_measure;
        for config in [
            SimConfig::single_device(),
            SimConfig::scale_up(2),
            SimConfig::scale_out(4),
        ] {
            let mut sim = Simulator::new(3, config.with_seed(7)).unwrap();
            let summary = sim.run(&c).unwrap();
            // GHZ measurement is perfectly correlated: all zeros or all ones.
            assert!(
                summary.cbits == 0 || summary.cbits == 0b111,
                "cbits = {:b}",
                summary.cbits
            );
            let p = sim.probabilities();
            let idx = summary.cbits as usize;
            assert!((p[idx] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn same_seed_same_outcomes_across_backends() {
        let mut c = Circuit::with_cbits(2, 2);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::H, &[1], &[]).unwrap();
        c.measure(0, 0).unwrap();
        c.measure(1, 1).unwrap();
        let mut outcomes = Vec::new();
        for config in [
            SimConfig::single_device(),
            SimConfig::scale_up(2),
            SimConfig::scale_out(2),
        ] {
            let mut sim = Simulator::new(2, config.with_seed(99)).unwrap();
            outcomes.push(sim.run(&c).unwrap().cbits);
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[1], outcomes[2]);
    }

    #[test]
    fn conditional_gate_teleportation_style() {
        // Prepare |1> on q0, entangle q1,q2, teleport q0 -> q2 with
        // measurement + classically-controlled corrections.
        let mut c = Circuit::with_cbits(3, 2);
        c.apply(GateKind::X, &[0], &[]).unwrap(); // payload |1>
        c.apply(GateKind::H, &[1], &[]).unwrap();
        c.apply(GateKind::CX, &[1, 2], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.measure(0, 0).unwrap();
        c.measure(1, 1).unwrap();
        // Corrections: X on q2 if c1 == 1; Z on q2 if c0 == 1.
        c.if_eq(
            1,
            1,
            1,
            svsim_ir::Gate::new(GateKind::X, &[2], &[]).unwrap(),
        )
        .unwrap();
        c.if_eq(
            0,
            1,
            1,
            svsim_ir::Gate::new(GateKind::Z, &[2], &[]).unwrap(),
        )
        .unwrap();
        for config in [
            SimConfig::single_device(),
            SimConfig::scale_up(2),
            SimConfig::scale_out(2),
        ] {
            for seed in 0..6 {
                let mut sim = Simulator::new(3, config.with_seed(seed)).unwrap();
                sim.run(&c).unwrap();
                // q2 must now be |1> regardless of the measured syndrome.
                let p1 = crate::measure::prob_one(sim.state(), 2);
                assert!((p1 - 1.0).abs() < 1e-9, "{config:?} seed {seed}: p1={p1}");
            }
        }
    }

    #[test]
    fn reset_simulator_is_bit_identical_to_fresh() {
        // A circuit with measurement exercises the RNG stream, so this
        // proves reset() rewinds state, cbits, AND randomness.
        let mut c = Circuit::with_cbits(4, 4);
        c.extend(&ghz(4)).unwrap();
        for q in 0..4 {
            c.measure(q, q).unwrap();
        }
        for config in [
            SimConfig::single_device().with_seed(11),
            SimConfig::scale_up(2).with_seed(11),
            SimConfig::scale_out(4).with_seed(11),
        ] {
            let mut fresh = Simulator::new(4, config).unwrap();
            let fresh_summary = fresh.run(&c).unwrap();

            let mut reused = Simulator::new(4, config).unwrap();
            // Dirty every piece of per-run state first.
            reused.run(&ghz(4)).unwrap();
            reused.run(&c).unwrap();
            reused.reset();
            let summary = reused.run(&c).unwrap();

            assert_eq!(summary.cbits, fresh_summary.cbits, "{config:?}");
            assert_eq!(
                reused.state().re(),
                fresh.state().re(),
                "{config:?} re parts must be bit-identical"
            );
            assert_eq!(
                reused.state().im(),
                fresh.state().im(),
                "{config:?} im parts must be bit-identical"
            );
        }
    }

    #[test]
    fn traffic_reported_for_distributed_backends() {
        let c = ghz(4);
        let mut sim = Simulator::new(4, SimConfig::scale_out(4)).unwrap();
        let summary = sim.run(&c).unwrap();
        assert_eq!(summary.traffic.len(), 4);
        let total = summary.total_traffic();
        assert!(total.remote_ops() > 0, "GHZ chain crosses partitions");
        // Prediction matches measurement: ShmemView does one get+put of
        // re and im per amplitude access (2 f64 ops per amplitude op).
        let predicted = sim.predict_traffic(&c);
        assert_eq!(
            total.remote_gets + total.remote_puts,
            2 * predicted.remote_amp_ops,
            "analytic model must match measured traffic"
        );
    }

    #[test]
    fn sampling_from_simulator() {
        let mut sim = Simulator::new(3, SimConfig::single_device().with_seed(5)).unwrap();
        sim.run(&ghz(3)).unwrap();
        let samples = sim.sample(4000);
        let h = measure::histogram(&samples);
        assert_eq!(h.len(), 2);
        let f0 = h[&0] as f64 / 4000.0;
        assert!((f0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn expval_on_ghz() {
        let mut sim = Simulator::new(3, SimConfig::single_device()).unwrap();
        sim.run(&ghz(3)).unwrap();
        // <ZZI> = +1 on GHZ (correlated), <ZII> = 0.
        let zz = PauliString::parse("ZZI").unwrap();
        assert!((sim.expval_pauli(&zz) - 1.0).abs() < 1e-12);
        let z = PauliString::parse("ZII").unwrap();
        assert!(sim.expval_pauli(&z).abs() < 1e-12);
        // <XXX> = +1 on GHZ.
        let xxx = PauliString::parse("XXX").unwrap();
        assert!((sim.expval_pauli(&xxx) - 1.0).abs() < 1e-12);
    }
}
