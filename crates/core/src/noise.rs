//! Stochastic Pauli noise via quantum trajectories.
//!
//! The paper's motivation (§1) leans on NISQ devices "incorporating high
//! error rate" — validating an algorithm means checking how it degrades
//! under noise. Full density-matrix simulation doubles the qubit count
//! (the authors' DM-Sim is a separate system); the state-vector-friendly
//! alternative implemented here is the standard Monte-Carlo trajectory
//! method: after each gate, each touched qubit suffers an X/Y/Z error with
//! the configured probability, and observables are averaged over
//! trajectories.

use crate::sim::{RunSummary, SimConfig, Simulator};
use svsim_ir::{Circuit, Gate, GateKind, Op};
use svsim_types::{SvResult, SvRng};

/// Depolarizing-style stochastic Pauli noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Per-qubit error probability after a 1-qubit gate.
    pub p1: f64,
    /// Per-qubit error probability after a >=2-qubit gate.
    pub p2: f64,
}

impl NoiseModel {
    /// Noise-free model.
    #[must_use]
    pub fn noiseless() -> Self {
        Self { p1: 0.0, p2: 0.0 }
    }

    /// Uniform depolarizing with 2q errors 10x the 1q rate (typical NISQ
    /// calibration shape).
    #[must_use]
    pub fn depolarizing(p1: f64) -> Self {
        Self { p1, p2: 10.0 * p1 }
    }
}

/// Sample one noisy realization of `circuit`: after every gate, insert
/// random X/Y/Z errors on its operands with the model's probabilities.
///
/// # Errors
/// Range errors (never in practice — operands come from a valid circuit).
pub fn sample_noisy_circuit(
    circuit: &Circuit,
    model: &NoiseModel,
    rng: &mut SvRng,
) -> SvResult<Circuit> {
    let mut out = Circuit::with_cbits(circuit.n_qubits(), circuit.n_cbits());
    let inject = |out: &mut Circuit, qubits: &[u32], p: f64, rng: &mut SvRng| -> SvResult<()> {
        for &q in qubits {
            if rng.bernoulli(p) {
                let kind = match rng.range_usize(0, 3) {
                    0 => GateKind::X,
                    1 => GateKind::Y,
                    _ => GateKind::Z,
                };
                out.push_gate(Gate::new(kind, &[q], &[])?)?;
            }
        }
        Ok(())
    };
    for op in circuit.ops() {
        match op {
            Op::Gate(g) => {
                out.push_gate(*g)?;
                let p = if g.kind().n_qubits() == 1 {
                    model.p1
                } else {
                    model.p2
                };
                inject(&mut out, g.qubits(), p, rng)?;
            }
            Op::Measure { qubit, cbit } => out.measure(*qubit, *cbit)?,
            Op::Reset { qubit } => out.reset(*qubit)?,
            Op::Barrier(qs) => out.barrier(qs),
            Op::IfEq {
                creg_lo,
                creg_len,
                value,
                gate,
            } => {
                out.if_eq(*creg_lo, *creg_len, *value, *gate)?;
                let p = if gate.kind().n_qubits() == 1 {
                    model.p1
                } else {
                    model.p2
                };
                inject(&mut out, gate.qubits(), p, rng)?;
            }
        }
    }
    Ok(out)
}

/// Average an observable over `trajectories` noisy realizations.
///
/// `observable` receives the simulator after each trajectory run.
///
/// # Errors
/// Propagates simulation failures.
pub fn trajectory_average(
    circuit: &Circuit,
    model: &NoiseModel,
    config: SimConfig,
    trajectories: usize,
    seed: u64,
    observable: impl Fn(&Simulator) -> f64,
) -> SvResult<f64> {
    let mut rng = SvRng::seed_from_u64(seed);
    let mut acc = 0.0;
    for t in 0..trajectories {
        let noisy = sample_noisy_circuit(circuit, model, &mut rng)?;
        let mut sim = Simulator::new(circuit.n_qubits(), config.with_seed(seed ^ t as u64))?;
        let _: RunSummary = sim.run(&noisy)?;
        acc += observable(&sim);
    }
    Ok(acc / trajectories as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_ir::PauliString;

    fn ghz(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        for q in 0..n - 1 {
            c.apply(GateKind::CX, &[q, q + 1], &[]).unwrap();
        }
        c
    }

    #[test]
    fn zero_noise_is_exact() {
        let c = ghz(4);
        let zz = PauliString::parse("ZZII").unwrap();
        let avg = trajectory_average(
            &c,
            &NoiseModel::noiseless(),
            SimConfig::single_device(),
            5,
            3,
            |sim| sim.expval_pauli(&zz),
        )
        .unwrap();
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_degrades_ghz_correlations_monotonically() {
        let c = ghz(4);
        let zz = PauliString::parse("ZZII").unwrap();
        let corr = |p: f64| {
            trajectory_average(
                &c,
                &NoiseModel::depolarizing(p),
                SimConfig::single_device(),
                200,
                17,
                |sim| sim.expval_pauli(&zz),
            )
            .unwrap()
        };
        let clean = corr(0.0);
        let mild = corr(0.01);
        let heavy = corr(0.10);
        assert!((clean - 1.0).abs() < 1e-12);
        assert!(mild < clean && mild > 0.5, "mild noise: {mild}");
        assert!(heavy < mild, "heavy noise must degrade further: {heavy}");
    }

    #[test]
    fn sampled_circuits_grow_by_injected_errors() {
        let c = ghz(6);
        let mut rng = SvRng::seed_from_u64(5);
        let noisy = sample_noisy_circuit(&c, &NoiseModel { p1: 1.0, p2: 1.0 }, &mut rng).unwrap();
        // Every gate injects one error per operand at p = 1.
        let expected = c.stats().gates + c.gates().map(|g| g.qubits().len()).sum::<usize>();
        assert_eq!(noisy.stats().gates, expected);
    }

    #[test]
    fn trajectories_are_seed_deterministic() {
        let c = ghz(3);
        let z = PauliString::parse("ZII").unwrap();
        let run = || {
            trajectory_average(
                &c,
                &NoiseModel::depolarizing(0.05),
                SimConfig::single_device(),
                50,
                7,
                |sim| sim.expval_pauli(&z),
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }
}
