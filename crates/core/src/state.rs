//! The state vector in structure-of-arrays layout.
//!
//! The paper stores amplitudes as two separate double arrays (`sv_real`,
//! `sv_imag`); all backends here share that layout. This module owns the
//! single-device representation plus the conversions and norms used across
//! the crate.

use svsim_types::{Complex64, SvError, SvResult};

/// A full state vector over `n` qubits, SoA layout.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: u32,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl StateVector {
    /// |0...0> over `n_qubits`.
    ///
    /// # Errors
    /// [`SvError::InvalidConfig`] above 30 qubits (a 16 GiB single-process
    /// allocation guard for this reproduction).
    pub fn zero_state(n_qubits: u32) -> SvResult<Self> {
        if n_qubits > 30 {
            return Err(SvError::InvalidConfig(format!(
                "{n_qubits} qubits exceeds the single-process cap of 30"
            )));
        }
        let dim = 1usize << n_qubits;
        let mut re = vec![0.0; dim];
        let im = vec![0.0; dim];
        re[0] = 1.0;
        Ok(Self { n_qubits, re, im })
    }

    /// Build from split real/imaginary arrays.
    ///
    /// # Errors
    /// [`SvError::InvalidConfig`] on length mismatch or non-power-of-two.
    pub fn from_parts(n_qubits: u32, re: Vec<f64>, im: Vec<f64>) -> SvResult<Self> {
        let dim = 1usize << n_qubits;
        if re.len() != dim || im.len() != dim {
            return Err(SvError::InvalidConfig(format!(
                "state arrays must have length {dim}"
            )));
        }
        Ok(Self { n_qubits, re, im })
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Number of amplitudes.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.re.len()
    }

    /// Real parts.
    #[must_use]
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// Imaginary parts.
    #[must_use]
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    /// Mutable split borrows of both arrays.
    pub fn parts_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// Reinitialize to `|0...0>` in place, keeping the allocation. This is
    /// the reuse hook for pooled simulators: a served engine resets a
    /// checked-in state vector instead of paying a fresh multi-MB
    /// allocation per job.
    pub fn reset_zero(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
        self.re[0] = 1.0;
    }

    /// Amplitude at `idx`.
    #[must_use]
    pub fn amplitude(&self, idx: usize) -> Complex64 {
        Complex64::new(self.re[idx], self.im[idx])
    }

    /// All amplitudes as interleaved complex numbers.
    #[must_use]
    pub fn to_complex(&self) -> Vec<Complex64> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| Complex64::new(r, i))
            .collect()
    }

    /// Overwrite from interleaved complex amplitudes.
    ///
    /// # Errors
    /// [`SvError::InvalidConfig`] on length mismatch.
    pub fn set_complex(&mut self, amps: &[Complex64]) -> SvResult<()> {
        if amps.len() != self.dim() {
            return Err(SvError::InvalidConfig("amplitude count mismatch".into()));
        }
        for (i, a) in amps.iter().enumerate() {
            self.re[i] = a.re;
            self.im[i] = a.im;
        }
        Ok(())
    }

    /// Squared norm (should stay 1 under unitaries).
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| r * r + i * i)
            .sum()
    }

    /// Probability of each basis state.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| r * r + i * i)
            .collect()
    }

    /// Max |amplitude difference| against another state.
    #[must_use]
    pub fn max_diff(&self, other: &Self) -> f64 {
        self.re
            .iter()
            .zip(&other.re)
            .map(|(a, b)| (a - b).abs())
            .chain(self.im.iter().zip(&other.im).map(|(a, b)| (a - b).abs()))
            .fold(0.0, f64::max)
    }

    /// Global-phase-insensitive fidelity |<self|other>|^2.
    #[must_use]
    pub fn fidelity(&self, other: &Self) -> f64 {
        let mut re = 0.0;
        let mut im = 0.0;
        for i in 0..self.dim() {
            // conj(self) * other
            let (ar, ai) = (self.re[i], -self.im[i]);
            let (br, bi) = (other.re[i], other.im[i]);
            re += ar * br - ai * bi;
            im += ar * bi + ai * br;
        }
        re * re + im * im
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero_state(5).unwrap();
        assert_eq!(s.dim(), 32);
        assert_eq!(s.amplitude(0), Complex64::ONE);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(s.probabilities()[0], 1.0);
    }

    #[test]
    fn qubit_cap_enforced() {
        assert!(StateVector::zero_state(31).is_err());
        assert!(StateVector::zero_state(30).is_ok() || cfg!(debug_assertions));
    }

    #[test]
    fn complex_roundtrip() {
        let mut s = StateVector::zero_state(2).unwrap();
        let amps = vec![
            Complex64::new(0.5, 0.0),
            Complex64::new(0.0, 0.5),
            Complex64::new(-0.5, 0.0),
            Complex64::new(0.0, -0.5),
        ];
        s.set_complex(&amps).unwrap();
        assert_eq!(s.to_complex(), amps);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_parts_validates() {
        assert!(StateVector::from_parts(2, vec![0.0; 4], vec![0.0; 3]).is_err());
        assert!(StateVector::from_parts(2, vec![0.0; 4], vec![0.0; 4]).is_ok());
    }

    #[test]
    fn fidelity_phase_insensitive() {
        let s = StateVector::zero_state(1).unwrap();
        let mut t = StateVector::zero_state(1).unwrap();
        // t = e^{i 0.3} |0>
        t.set_complex(&[Complex64::cis(0.3), Complex64::ZERO])
            .unwrap();
        assert!((s.fidelity(&t) - 1.0).abs() < 1e-14);
        assert!(
            s.max_diff(&t) > 1e-3,
            "amplitudes differ even at fidelity 1"
        );
    }
}
