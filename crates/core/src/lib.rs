//! The SV-Sim core simulator: specialized state-vector kernels over three
//! memory fabrics (single device, peer-access scale-up, SHMEM scale-out),
//! with function-pointer gate dispatch.
//!
//! Module map (paper section in parentheses):
//! - [`state`]: SoA state vector.
//! - [`view`]: the `StateView` fabric abstraction (§3.2).
//! - [`kernels`]: specialized gate kernels (§3.2.1).
//! - [`compile`]: gate → kernel resolution, the "upload" step.
//! - [`dispatch`]: preloaded fn-pointers vs. runtime parsing (Listing 1).
//! - [`exec`]: the three backends (Listings 3-5).
//! - [`measure`]: measurement, collapse, sampling, expectations.
//! - [`traffic`]: exact analytic communication model.
//! - [`fuse`]: gate fusion into dense window sweeps.
//! - [`remap`]: communication-avoiding qubit relabeling for scale-out.
//! - [`plan`]: ahead-of-time compilation into a reusable `CompiledPlan`.
//! - [`sim`]: the `Simulator` facade.

pub mod batch;
pub mod checkpoint;
pub mod compile;
pub mod dispatch;
pub mod exec;
pub mod fuse;
pub mod kernels;
pub mod measure;
pub mod noise;
pub mod par;
pub mod plan;
pub mod remap;
pub mod sim;
pub mod state;
pub mod traffic;
pub mod view;

pub use batch::{CompiledTemplate, ParamCircuit, ParamValue};
pub use checkpoint::{state_checksum, Checkpoint, CheckpointStore, CommitCrash, Fnv1a};
pub use compile::{CompiledGate, KernelId};
pub use exec::DispatchMode;
pub use fuse::{fuse_compiled, source_kernels};
pub use noise::{sample_noisy_circuit, trajectory_average, NoiseModel};
pub use plan::CompiledPlan;
pub use remap::{plan_remap, plan_remap_fused, QubitLayout, RemapPlan};
pub use sim::{BackendKind, RunSummary, SimConfig, Simulator};
pub use state::StateVector;
pub use svsim_shmem::ShmemBackend;
pub use traffic::GateTraffic;
pub use view::{LocalView, PeerView, ShmemView, StateView};
