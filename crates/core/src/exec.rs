//! Circuit executors: single-device, scale-up, and scale-out.
//!
//! All three walk the same step stream with the same kernels; they differ
//! only in the memory fabric ([`crate::view`]) and the synchronization
//! between gates — none for a single device, a shared-memory barrier across
//! device threads for scale-up (the cooperative multi-grid sync of
//! Listing 4), and `shmem_barrier_all` across PEs for scale-out
//! (Listing 5).

use crate::compile::{compile_gate, CompiledGate};
use crate::dispatch::{resolve, KernelFn};
use crate::kernels::worker_range;
use crate::measure;
use crate::plan::{build_segment, PlanSegment};
use crate::state::StateVector;
use crate::view::{LocalView, PeerView, ShmemView, StateView};
use std::sync::Arc;
use svsim_ir::{Gate, GateKind, Op};
use svsim_shmem::{
    FaultPlan, MetricsTable, ProcOptions, RaceDetector, RaceReport, SenseBarrier, SharedF64Vec,
    ShmemBackend, TrafficSnapshot,
};
use svsim_types::{SvError, SvResult, SvRng};

/// How gates are bound to kernels at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatchMode {
    /// Resolve kernel function pointers once at upload (the paper's CUDA
    /// device-function-pointer design, Listing 1).
    #[default]
    PreloadedFnPointer,
    /// Parse and branch per gate at every execution (the HIP/MI100
    /// fallback, §3.2.1).
    RuntimeParse,
}

/// One executable step derived from a circuit op. Compiled kernels live in
/// one flat contiguous queue (the paper's device-resident circuit buffer);
/// steps reference ranges of it.
#[derive(Debug, Clone)]
pub(crate) enum Step {
    /// Unitary gate (raw form kept for the runtime-parse mode).
    Gate {
        raw: Gate,
        compiled: std::ops::Range<usize>,
    },
    /// Projective measurement using pre-drawn random `r_idx`.
    Measure { qubit: u32, cbit: u32, r_idx: usize },
    /// Reset using pre-drawn random `r_idx`.
    Reset { qubit: u32, r_idx: usize },
    /// Conditioned gate.
    IfEq {
        creg_lo: u32,
        creg_len: u32,
        value: u64,
        raw: Gate,
        compiled: std::ops::Range<usize>,
    },
    /// A fused run of adjacent gates ([`crate::fuse`]): `compiled` is one
    /// window-sweep kernel; `raws` keeps every constituent gate so the
    /// runtime-parse mode can replay them gate-by-gate (bit-identical —
    /// windows are disjoint, so per-window replay commutes with the
    /// global order).
    Fused {
        raws: Vec<Gate>,
        compiled: std::ops::Range<usize>,
    },
}

/// Lower an op slice (a whole circuit or one checkpoint segment of it)
/// into steps plus the flat compiled-kernel queue; returns the number of
/// random draws measurement/reset will consume.
pub(crate) fn build_steps(
    ops: &[Op],
    n_qubits: u32,
    specialized: bool,
) -> (Vec<Step>, Vec<CompiledGate>, usize) {
    let mut steps = Vec::with_capacity(ops.len());
    let mut queue: Vec<CompiledGate> = Vec::new();
    let mut n_rand = 0usize;
    for op in ops {
        match op {
            Op::Gate(g) => {
                let start = queue.len();
                compile_gate(g, n_qubits, specialized, &mut queue);
                steps.push(Step::Gate {
                    raw: *g,
                    compiled: start..queue.len(),
                });
            }
            Op::Measure { qubit, cbit } => {
                steps.push(Step::Measure {
                    qubit: *qubit,
                    cbit: *cbit,
                    r_idx: n_rand,
                });
                n_rand += 1;
            }
            Op::Reset { qubit } => {
                steps.push(Step::Reset {
                    qubit: *qubit,
                    r_idx: n_rand,
                });
                n_rand += 1;
            }
            Op::Barrier(_) => {} // scheduling hint only
            Op::IfEq {
                creg_lo,
                creg_len,
                value,
                gate,
            } => {
                let start = queue.len();
                compile_gate(gate, n_qubits, specialized, &mut queue);
                steps.push(Step::IfEq {
                    creg_lo: *creg_lo,
                    creg_len: *creg_len,
                    value: *value,
                    raw: *gate,
                    compiled: start..queue.len(),
                });
            }
        }
    }
    (steps, queue, n_rand)
}

#[inline]
fn cond_holds(cbits: u64, lo: u32, len: u32, value: u64) -> bool {
    let mask = if len >= 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    };
    ((cbits >> lo) & mask) == value
}

/// Run on a single device (sequential, full ranges). `initial_cbits`
/// carries the classical register across checkpoint segments (0 for a
/// whole-circuit run). `seg` supplies a precompiled lowering of `ops`
/// (from a [`crate::CompiledPlan`]); `None` lowers on the fly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_single(
    state: &mut StateVector,
    ops: &[Op],
    specialized: bool,
    dispatch: DispatchMode,
    rng: &mut SvRng,
    initial_cbits: u64,
    fuse: u8,
    seg: Option<&PlanSegment>,
) -> SvResult<u64> {
    let n = state.n_qubits();
    let half = (1u64 << n) / 2;
    let owned;
    let seg = match seg {
        Some(s) => s,
        None => {
            owned = build_segment(ops, 0, ops.len(), n, specialized, 0, fuse);
            &owned
        }
    };
    let (steps, queue) = (&seg.steps, &seg.queue);
    let mut cbits = initial_cbits;
    let (re, im) = state.parts_mut();
    let view = LocalView::new(re, im);
    // The fn-pointer path binds every kernel pointer once, up front — the
    // analog of preloading the device-function symbols; one flat pointer
    // table parallel to the flat compiled queue, nothing copied per gate.
    let uploaded: Vec<KernelFn<LocalView>> = if dispatch == DispatchMode::PreloadedFnPointer {
        queue.iter().map(|c| resolve::<LocalView>(c.id)).collect()
    } else {
        Vec::new()
    };
    let mut scratch: Vec<CompiledGate> = Vec::new();
    let measure_into = |view: &LocalView, qubit: u32, r: f64| -> SvResult<u8> {
        // Canonical-tree sum (svsim_types::numeric): bit-identical to the
        // partitioned backends' partial + pairwise reduce at any PE count.
        let p1 = measure::prob_one_view(view, qubit, 1u64 << n);
        let outcome = u8::from(r < p1);
        let p = if outcome == 1 { p1 } else { 1.0 - p1 };
        if p < 1e-300 {
            return Err(SvError::Numeric(format!(
                "collapse of qubit {qubit} with probability ~0"
            )));
        }
        crate::kernels::collapse_pairs(view, qubit, outcome, 1.0 / p.sqrt(), 0..half);
        Ok(outcome)
    };
    for step in steps {
        match step {
            Step::Gate { raw, compiled } | Step::IfEq { raw, compiled, .. } => {
                if let Step::IfEq {
                    creg_lo,
                    creg_len,
                    value,
                    ..
                } = step
                {
                    if !cond_holds(cbits, *creg_lo, *creg_len, *value) {
                        continue;
                    }
                }
                match dispatch {
                    DispatchMode::PreloadedFnPointer => {
                        for k in compiled.clone() {
                            let cg = &queue[k];
                            uploaded[k](&view, &cg.args, 0..cg.args.work);
                        }
                    }
                    DispatchMode::RuntimeParse => {
                        scratch.clear();
                        compile_gate(raw, n, specialized, &mut scratch);
                        for cg in &scratch {
                            resolve::<LocalView>(cg.id)(&view, &cg.args, 0..cg.args.work);
                        }
                    }
                }
            }
            Step::Fused { raws, compiled } => match dispatch {
                DispatchMode::PreloadedFnPointer => {
                    for k in compiled.clone() {
                        let cg = &queue[k];
                        uploaded[k](&view, &cg.args, 0..cg.args.work);
                    }
                }
                DispatchMode::RuntimeParse => {
                    for raw in raws {
                        scratch.clear();
                        compile_gate(raw, n, specialized, &mut scratch);
                        for cg in &scratch {
                            resolve::<LocalView>(cg.id)(&view, &cg.args, 0..cg.args.work);
                        }
                    }
                }
            },
            Step::Measure { qubit, cbit, .. } => {
                let r = rng.next_f64();
                let outcome = measure_into(&view, *qubit, r)?;
                cbits = (cbits & !(1u64 << cbit)) | (u64::from(outcome) << cbit);
            }
            Step::Reset { qubit, .. } => {
                let r = rng.next_f64();
                let outcome = measure_into(&view, *qubit, r)?;
                if outcome == 1 {
                    let mut xg = Vec::new();
                    compile_gate(
                        &Gate::new(GateKind::X, &[*qubit], &[]).expect("x"),
                        n,
                        true,
                        &mut xg,
                    );
                    resolve::<LocalView>(xg[0].id)(&view, &xg[0].args, 0..xg[0].args.work);
                }
            }
        }
    }
    Ok(cbits)
}

/// Validate a worker count for a given register width.
fn check_workers(n_workers: usize, n_qubits: u32, what: &str) -> SvResult<()> {
    if n_workers == 0 || !n_workers.is_power_of_two() {
        return Err(SvError::InvalidConfig(format!(
            "{what} count {n_workers} must be a nonzero power of two"
        )));
    }
    if (n_workers as u64) > (1u64 << n_qubits) {
        return Err(SvError::InvalidConfig(format!(
            "{what} count {n_workers} exceeds the state dimension"
        )));
    }
    Ok(())
}

/// Per-partition measurement partial plus the reduce slot and physical
/// qubit for the collapse. Under a block-preserving snapshot layout
/// (`lay`) the partition holds the logical subcube whose top value indexes
/// the reduce slot, and the partial walks it in logical order so the
/// probability tree is the single-device logical tree bit-for-bit; without
/// a snapshot the layout is identity and the slot is the worker rank.
#[allow(clippy::too_many_arguments)]
fn measure_partial(
    lay: Option<&crate::remap::QubitLayout>,
    my_re: &SharedF64Vec,
    my_im: &SharedF64Vec,
    my_base: u64,
    worker: u64,
    n_workers: u64,
    n_qubits: u32,
    qubit: u32,
) -> (f64, usize, u32) {
    match lay {
        Some(lay) => {
            let boundary = n_qubits - n_workers.trailing_zeros();
            let mut slot = 0usize;
            for j in 0..(n_qubits - boundary) {
                slot |= (((worker >> (lay.phys(boundary + j) - boundary)) & 1) as usize) << j;
            }
            let logical_base = (slot as u64) << boundary;
            let low_pos: Vec<u32> = (0..boundary).map(|k| lay.phys(k)).collect();
            let partial =
                measure::partial_prob_one_mapped(my_re, my_im, logical_base, &low_pos, qubit);
            (partial, slot, lay.phys(qubit))
        }
        None => (
            measure::partial_prob_one_partition(my_re, my_im, my_base, qubit),
            worker as usize,
            qubit,
        ),
    }
}

/// Shared gate/step walker for the partitioned backends. `sync` is called
/// between dependent kernels; `reduce` turns a local probability
/// contribution (deposited at a caller-chosen scratch slot) into the
/// global one.
///
/// `pre_swaps` (aligned 1:1 with `steps`; empty for a naive schedule)
/// lists the relabeling slab exchanges to run *before* each step, realized
/// collectively through `exchange`. Relabeling is unconditional even for
/// conditional steps — it is pure data movement, and all workers must
/// reach the exchange barriers together.
///
/// `measure_layouts` (aligned 1:1 with `steps` when non-empty) carries the
/// planner's block-preserving layout snapshot at each Measure/Reset, whose
/// `qubit` is then LOGICAL; collapse targets its physical position.
#[allow(clippy::too_many_arguments)]
fn walk_steps<V: StateView>(
    steps: &[Step],
    queue: &[CompiledGate],
    view: &V,
    n_qubits: u32,
    specialized: bool,
    dispatch: DispatchMode,
    worker: u64,
    n_workers: u64,
    randoms: &[f64],
    my_re: &SharedF64Vec,
    my_im: &SharedF64Vec,
    my_base: u64,
    initial_cbits: u64,
    pre_swaps: &[Vec<(u32, u32)>],
    measure_layouts: &[Option<crate::remap::QubitLayout>],
    exchange: &dyn Fn(u32, u32),
    sync: &dyn Fn(),
    reduce: &dyn Fn(usize, f64) -> f64,
) -> SvResult<u64> {
    let mut cbits = initial_cbits;
    let mut scratch: Vec<CompiledGate> = Vec::new();
    let uploaded: Vec<KernelFn<V>> = if dispatch == DispatchMode::PreloadedFnPointer {
        queue.iter().map(|c| resolve::<V>(c.id)).collect()
    } else {
        Vec::new()
    };
    for (si, step) in steps.iter().enumerate() {
        if let Some(swaps) = pre_swaps.get(si) {
            for &(a, b) in swaps {
                exchange(a, b);
            }
        }
        match step {
            Step::Gate { raw, compiled } | Step::IfEq { raw, compiled, .. } => {
                if let Step::IfEq {
                    creg_lo,
                    creg_len,
                    value,
                    ..
                } = step
                {
                    // All workers hold identical cbits, so they branch
                    // identically — no divergence across the barrier.
                    if !cond_holds(cbits, *creg_lo, *creg_len, *value) {
                        continue;
                    }
                }
                match dispatch {
                    DispatchMode::PreloadedFnPointer => {
                        for k in compiled.clone() {
                            let cg = &queue[k];
                            uploaded[k](
                                view,
                                &cg.args,
                                worker_range(cg.args.work, n_workers, worker),
                            );
                            sync();
                        }
                    }
                    DispatchMode::RuntimeParse => {
                        scratch.clear();
                        compile_gate(raw, n_qubits, specialized, &mut scratch);
                        for cg in &scratch {
                            resolve::<V>(cg.id)(
                                view,
                                &cg.args,
                                worker_range(cg.args.work, n_workers, worker),
                            );
                            sync();
                        }
                    }
                }
            }
            Step::Fused { raws, compiled } => match dispatch {
                // One fused kernel ⇒ one barrier for the whole run. Safe:
                // windows are disjoint and each worker owns a disjoint
                // window sub-range, so no cross-worker dataflow exists
                // inside the sweep (same argument as any two-qubit kernel).
                DispatchMode::PreloadedFnPointer => {
                    for k in compiled.clone() {
                        let cg = &queue[k];
                        uploaded[k](
                            view,
                            &cg.args,
                            worker_range(cg.args.work, n_workers, worker),
                        );
                        sync();
                    }
                }
                DispatchMode::RuntimeParse => {
                    for raw in raws {
                        scratch.clear();
                        compile_gate(raw, n_qubits, specialized, &mut scratch);
                        for cg in &scratch {
                            resolve::<V>(cg.id)(
                                view,
                                &cg.args,
                                worker_range(cg.args.work, n_workers, worker),
                            );
                            sync();
                        }
                    }
                }
            },
            Step::Measure { qubit, cbit, r_idx } => {
                let lay = measure_layouts.get(si).and_then(|o| o.as_ref());
                let (partial, slot, phys_q) = measure_partial(
                    lay, my_re, my_im, my_base, worker, n_workers, n_qubits, *qubit,
                );
                let p1 = reduce(slot, partial);
                let outcome = u8::from(randoms[*r_idx] < p1);
                let p = if outcome == 1 { p1 } else { 1.0 - p1 };
                if p < 1e-300 {
                    return Err(SvError::Numeric(format!(
                        "collapse of qubit {qubit} with probability ~0"
                    )));
                }
                measure::collapse_partition(my_re, my_im, my_base, phys_q, outcome, 1.0 / p.sqrt());
                sync();
                cbits = (cbits & !(1u64 << cbit)) | (u64::from(outcome) << cbit);
            }
            Step::Reset { qubit, r_idx } => {
                let lay = measure_layouts.get(si).and_then(|o| o.as_ref());
                let (partial, slot, phys_q) = measure_partial(
                    lay, my_re, my_im, my_base, worker, n_workers, n_qubits, *qubit,
                );
                let p1 = reduce(slot, partial);
                let outcome = u8::from(randoms[*r_idx] < p1);
                let p = if outcome == 1 { p1 } else { 1.0 - p1 };
                if p < 1e-300 {
                    return Err(SvError::Numeric(format!(
                        "reset of qubit {qubit} with probability ~0"
                    )));
                }
                measure::collapse_partition(my_re, my_im, my_base, phys_q, outcome, 1.0 / p.sqrt());
                sync();
                if outcome == 1 {
                    // Distributed X to restore |0>.
                    let mut xg = Vec::new();
                    compile_gate(
                        &Gate::new(GateKind::X, &[phys_q], &[]).expect("x"),
                        n_qubits,
                        true,
                        &mut xg,
                    );
                    let cg = &xg[0];
                    resolve::<V>(cg.id)(
                        view,
                        &cg.args,
                        worker_range(cg.args.work, n_workers, worker),
                    );
                    sync();
                }
            }
        }
    }
    Ok(cbits)
}

/// Scale-up execution: the state vector partitioned across `n_dev` device
/// partitions in one process, accessed via the peer pointer table
/// (§3.2.2). Returns the classical bits and the peer traffic profile.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_scaleup(
    state: &mut StateVector,
    ops: &[Op],
    n_dev: usize,
    specialized: bool,
    dispatch: DispatchMode,
    rng: &mut SvRng,
    initial_cbits: u64,
    fuse: u8,
    seg: Option<&PlanSegment>,
) -> SvResult<(u64, Vec<TrafficSnapshot>)> {
    let n = state.n_qubits();
    check_workers(n_dev, n, "device")?;
    let dim = state.dim();
    let per_dev = dim / n_dev;
    let owned;
    let seg = match seg {
        Some(s) => s,
        None => {
            owned = build_segment(ops, 0, ops.len(), n, specialized, 0, fuse);
            &owned
        }
    };
    let (steps, queue) = (&seg.steps, &seg.queue);
    let randoms: Vec<f64> = (0..seg.n_rand).map(|_| rng.next_f64()).collect();

    // Partition the state (the host-to-devices transfer).
    let re_parts: Vec<SharedF64Vec> = (0..n_dev)
        .map(|_| SharedF64Vec::new(per_dev, 0.0))
        .collect();
    let im_parts: Vec<SharedF64Vec> = (0..n_dev)
        .map(|_| SharedF64Vec::new(per_dev, 0.0))
        .collect();
    for d in 0..n_dev {
        re_parts[d].store_slice(0, &state.re()[d * per_dev..(d + 1) * per_dev]);
        im_parts[d].store_slice(0, &state.im()[d * per_dev..(d + 1) * per_dev]);
    }

    let metrics = MetricsTable::new(n_dev);
    let barrier = SenseBarrier::new(n_dev);
    let coll = SharedF64Vec::new(n_dev, 0.0);

    let mut cbits_out = 0u64;
    let mut err: Option<SvError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_dev)
            .map(|d| {
                let steps = &steps;
                let queue = &queue;
                let re_parts = &re_parts;
                let im_parts = &im_parts;
                let metrics = &metrics;
                let barrier = &barrier;
                let coll = &coll;
                let randoms = &randoms;
                scope.spawn(move || -> SvResult<u64> {
                    let view = PeerView::new(re_parts, im_parts, d, Some(metrics.pe(d)));
                    let token = std::cell::Cell::new(svsim_shmem::BarrierToken::default());
                    let sync = || {
                        let mut t = token.take();
                        barrier.wait(&mut t);
                        token.set(t);
                    };
                    let reduce = |slot: usize, x: f64| {
                        coll.store(slot, x);
                        sync();
                        let partials: Vec<f64> = (0..n_dev).map(|p| coll.load(p)).collect();
                        // Pairwise combine: each partial is a subtree node of
                        // the canonical probability tree (see svsim_types::
                        // numeric), so this matches prob_one bit-for-bit.
                        let total = svsim_types::numeric::pairwise_sum(&partials);
                        sync();
                        total
                    };
                    walk_steps(
                        steps,
                        queue,
                        &view,
                        n,
                        specialized,
                        dispatch,
                        d as u64,
                        n_dev as u64,
                        randoms,
                        &re_parts[d],
                        &im_parts[d],
                        (d * per_dev) as u64,
                        initial_cbits,
                        &[],
                        &[],
                        &|_, _| unreachable!("no relabeling on the scale-up path"),
                        &sync,
                        &reduce,
                    )
                })
            })
            .collect();
        for (d, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(cb)) => {
                    if d == 0 {
                        cbits_out = cb;
                    }
                }
                Ok(Err(e)) => err = Some(e),
                Err(_) => err = Some(SvError::Shmem("scale-up worker panicked".into())),
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }

    // Devices-to-host readback.
    {
        let (re, im) = state.parts_mut();
        for d in 0..n_dev {
            let mut buf = vec![0.0f64; per_dev];
            re_parts[d].load_slice(0, &mut buf);
            re[d * per_dev..(d + 1) * per_dev].copy_from_slice(&buf);
            im_parts[d].load_slice(0, &mut buf);
            im[d * per_dev..(d + 1) * per_dev].copy_from_slice(&buf);
        }
    }
    Ok((cbits_out, metrics.snapshot_all()))
}

/// Scale-out execution: SPMD over SHMEM PEs, each owning one partition of
/// the symmetric-heap state vector (§3.2.3). An optional [`FaultPlan`] is
/// threaded into the SHMEM world; if any PE dies (injected or real), the
/// whole segment fails with a typed error and `state` is left untouched at
/// its pre-segment contents — exactly what checkpoint/restart needs.
///
/// With `detect` set, the launch runs under a fresh [`RaceDetector`]: every
/// one-sided access is recorded against epoch-scoped shadow state, and any
/// access-protocol violations come back as the third tuple element without
/// failing the run.
///
/// With `remap` set, the op stream first passes through the
/// communication-avoiding planner ([`crate::remap::plan_remap`]): gates
/// touching partition-index qubit positions are preceded by bulk slab
/// exchanges that relabel those positions below the boundary, so the gates
/// themselves run entirely PE-local. Readback un-permutes the state, so
/// results are indistinguishable from the naive schedule. The fourth tuple
/// element counts the relabeling swaps executed (0 when off).
///
/// `backend` chooses the SHMEM substrate: thread-backed PEs (default) or
/// process-backed PEs forked over a shared `memfd` symmetric heap. The
/// same SPMD body runs on both; results are bit-identical. The dynamic
/// race detector records accesses through in-process `Arc` shadow state,
/// so `detect` requires the thread backend.
///
/// `respawn_max` and `hang_deadline_ms` configure the process backend's
/// supervisor (in-place respawn budget and watchdog deadline); ignored on
/// the thread backend. The fifth tuple element counts in-place respawns
/// the supervisor performed (0 elsewhere). The body closure captures the
/// segment-initial amplitudes, so a respawned (or re-run) PE reproduces
/// its partition bit-identically.
/// What one backend dispatch hands back: classical bits, per-PE traffic
/// snapshots, dynamic race reports, relabeling-exchange count, and
/// in-place respawn count.
pub(crate) type LaunchOutput = (u64, Vec<TrafficSnapshot>, Vec<RaceReport>, usize, usize);

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_scaleout(
    state: &mut StateVector,
    ops: &[Op],
    n_pes: usize,
    specialized: bool,
    dispatch: DispatchMode,
    rng: &mut SvRng,
    initial_cbits: u64,
    faults: Option<Arc<FaultPlan>>,
    detect: bool,
    remap: bool,
    backend: ShmemBackend,
    respawn_max: u32,
    hang_deadline_ms: u32,
    fuse: u8,
    seg: Option<&PlanSegment>,
) -> SvResult<LaunchOutput> {
    let n = state.n_qubits();
    check_workers(n_pes, n, "PE")?;
    if detect && backend == ShmemBackend::Process {
        return Err(SvError::InvalidConfig(
            "race detection requires the thread backend: the detector's shadow \
             state is in-process and cannot observe forked PEs"
                .into(),
        ));
    }
    let dim = state.dim();
    let per_pe = dim / n_pes;
    let owned;
    let seg = match seg {
        Some(s) => s,
        None => {
            let remap_pes = if remap && n_pes > 1 { n_pes as u64 } else { 0 };
            owned = build_segment(ops, 0, ops.len(), n, specialized, remap_pes, fuse);
            &owned
        }
    };
    let plan = seg.remap.as_ref();
    let (steps, queue) = (&seg.steps, &seg.queue);
    let pre_swaps: &[Vec<(u32, u32)>] = plan.map_or(&[], |p| &p.pre_swaps);
    let measure_layouts: &[Option<crate::remap::QubitLayout>] =
        plan.map_or(&[], |p| &p.measure_layouts);
    let n_swaps = plan.map_or(0, |p| p.n_swaps);
    let randoms: Vec<f64> = (0..seg.n_rand).map(|_| rng.next_f64()).collect();
    let init_re = state.re().to_vec();
    let init_im = state.im().to_vec();

    let detector = if detect {
        Some(RaceDetector::new(n_pes)?)
    } else {
        None
    };
    let body = |ctx: &svsim_shmem::ShmemCtx<'_>| -> SvResult<(u64, Vec<f64>, Vec<f64>)> {
        let pe = ctx.my_pe();
        let sym_re = ctx.malloc_f64(per_pe)?;
        let sym_im = ctx.malloc_f64(per_pe)?;
        // Exchange staging buffers, only if the plan has relabeling swaps
        // (collective allocation: the plan is identical on every PE).
        let xch = if n_swaps > 0 {
            Some((ctx.malloc_f64(per_pe / 2)?, ctx.malloc_f64(per_pe / 2)?))
        } else {
            None
        };
        // Local initialization of this PE's slice (host scatter).
        sym_re
            .partition(pe)
            .store_slice(0, &init_re[pe * per_pe..(pe + 1) * per_pe]);
        sym_im
            .partition(pe)
            .store_slice(0, &init_im[pe * per_pe..(pe + 1) * per_pe]);
        ctx.try_barrier_all()?;

        let view = ShmemView::new(ctx, &sym_re, &sym_im);
        let exchange = |a: u32, b: u32| {
            let (xr, xi) = xch.as_ref().expect("staging buffers allocated");
            view.exchange_pair(a, b, xr, xi);
        };
        let sync = || ctx.barrier_all();
        let reduce = |slot: usize, x: f64| ctx.sum_reduce_f64_at(slot, x);
        let cbits = walk_steps(
            steps,
            queue,
            &view,
            n,
            specialized,
            dispatch,
            pe as u64,
            n_pes as u64,
            &randoms,
            sym_re.partition(pe),
            sym_im.partition(pe),
            (pe * per_pe) as u64,
            initial_cbits,
            pre_swaps,
            measure_layouts,
            &exchange,
            &sync,
            &reduce,
        )?;
        ctx.try_barrier_all()?;
        Ok((
            cbits,
            sym_re.partition(pe).to_vec(),
            sym_im.partition(pe).to_vec(),
        ))
    };
    let out = match backend {
        ShmemBackend::Process => {
            // Symmetric heap: re + im (per_pe each) plus the optional pair
            // of half-partition exchange staging buffers; result slot: the
            // two returned partition vectors plus cbits/tag overhead.
            let opts = ProcOptions {
                respawn_max,
                hang_deadline_ms: u64::from(hang_deadline_ms),
                ..ProcOptions::sized_for(3 * per_pe + 64, 2 * per_pe + 64)
            };
            svsim_shmem::launch_process(n_pes, &opts, faults, body)?
        }
        ShmemBackend::Thread => match &detector {
            Some(det) => svsim_shmem::launch_detected(n_pes, faults, Arc::clone(det), body)?,
            None => svsim_shmem::launch_with_faults(n_pes, faults, body)?,
        },
    };

    // A PE death aborts the segment before any readback: the caller's
    // state vector still holds the pre-segment amplitudes. Failures can be
    // outer (the PE panicked / was killed) or inner (the body returned an
    // error, e.g. a fault during a collective allocation); prefer the
    // typed root cause over secondary "peer poisoned the barrier" reports.
    let root = out
        .results
        .iter()
        .filter_map(|r| match r {
            Err(e) | Ok(Err(e)) => Some(e),
            Ok(Ok(_)) => None,
        })
        .min_by_key(|e| match e {
            SvError::PeFailed { .. } | SvError::PeHung { .. } => 0u8,
            SvError::Shmem(msg) if msg.contains("poisoned") => 2,
            SvError::BarrierTimeout { .. } => 2,
            _ => 1,
        });
    if let Some(e) = root {
        return Err(e.clone());
    }
    let n_respawns = out.respawns.len();
    let mut cbits_out = 0u64;
    {
        let (re, im) = state.parts_mut();
        for (pe, r) in out.results.into_iter().enumerate() {
            let (cb, pre, pim) = r
                .expect("failures handled above")
                .expect("failures handled above");
            if pe == 0 {
                cbits_out = cb;
            }
            re[pe * per_pe..(pe + 1) * per_pe].copy_from_slice(&pre);
            im[pe * per_pe..(pe + 1) * per_pe].copy_from_slice(&pim);
        }
        // The remapped run left the state in the final physical layout;
        // restore logical order host-side (no fabric traffic).
        if let Some(p) = plan {
            crate::remap::unpermute_state(&p.final_layout, re, im);
        }
    }
    let races = detector.map_or_else(Vec::new, |d| d.take_reports());
    Ok((cbits_out, out.traffic, races, n_swaps, n_respawns))
}
