//! Gate dispatch: preloaded function pointers vs. runtime parsing.
//!
//! The paper's central software trick (Listing 1) achieves polymorphism on
//! the GPU through device function pointers preloaded at initialization, so
//! the per-gate execution path is a single indirect call with *no* parsing
//! or branching — while dynamically generated (VQA) circuits still run in
//! one kernel with no JIT. The HIP/MI100 fallback must instead parse and
//! branch per gate at runtime (§3.2.1, §4.1 obs. v).
//!
//! Both paths exist here and are benchmarked against each other:
//! - [`upload`] resolves every compiled gate to a monomorphized kernel
//!   pointer once ("copy the device symbol into the gate object").
//! - [`exec_parsed`] re-derives the kernel arguments from the raw [`Gate`]
//!   and branches on the kind at every execution.

use crate::compile::{compile_gate, CompiledGate, KernelId};
use crate::kernels::{self, GateArgs};
use crate::view::StateView;
use std::ops::Range;
use svsim_ir::Gate;

/// The unified kernel signature (the paper's `func_t`).
pub type KernelFn<V> = fn(&V, &GateArgs, Range<u64>);

/// Resolve a kernel id to the monomorphized function pointer — the analog of
/// the preloaded `cudaMemcpyFromSymbol` table built once per simulation
/// object.
#[must_use]
pub fn resolve<V: StateView>(id: KernelId) -> KernelFn<V> {
    match id {
        KernelId::X => kernels::k_x::<V>,
        KernelId::Y => kernels::k_y::<V>,
        KernelId::Z => kernels::k_z::<V>,
        KernelId::H => kernels::k_h::<V>,
        KernelId::Phase => kernels::k_phase::<V>,
        KernelId::Rz => kernels::k_rz::<V>,
        KernelId::OneQ => kernels::k_oneq::<V>,
        KernelId::Cx => kernels::k_cx::<V>,
        KernelId::CPhase => kernels::k_cphase::<V>,
        KernelId::Crz => kernels::k_crz::<V>,
        KernelId::ControlledOneQ => kernels::k_controlled_oneq::<V>,
        KernelId::Swap => kernels::k_swap::<V>,
        KernelId::CSwap => kernels::k_cswap::<V>,
        KernelId::Rzz => kernels::k_rzz::<V>,
        KernelId::TwoQ => kernels::k_twoq::<V>,
        KernelId::Fused1 => kernels::k_fused1::<V>,
        KernelId::Fused2 => kernels::k_fused2::<V>,
        KernelId::Fused3 => kernels::k_fused3::<V>,
    }
}

/// A gate bound to its kernel pointer: ready for branch-free execution.
pub struct UploadedGate<V: StateView> {
    /// Resolved kernel pointer.
    pub op: KernelFn<V>,
    /// Argument block.
    pub args: GateArgs,
}

impl<V: StateView> UploadedGate<V> {
    /// Execute this gate over a work-item sub-range (Listing 1's
    /// `exe_op`).
    #[inline]
    pub fn exe_op(&self, view: &V, range: Range<u64>) {
        (self.op)(view, &self.args, range);
    }
}

/// Bind a compiled gate stream to kernel pointers (the "upload").
#[must_use]
pub fn upload<V: StateView>(compiled: &[CompiledGate]) -> Vec<UploadedGate<V>> {
    compiled
        .iter()
        .map(|c| UploadedGate {
            op: resolve::<V>(c.id),
            args: c.args.clone(),
        })
        .collect()
}

/// Runtime-parse execution: derive the kernel invocation from the raw gate
/// *now*, then branch to the kernel — the per-gate overhead the paper's
/// fn-pointer design avoids. `scratch` is reused across calls to keep the
/// comparison about parsing, not allocation.
pub fn exec_parsed<V: StateView>(
    g: &Gate,
    n_qubits: u32,
    specialized: bool,
    view: &V,
    worker: u64,
    n_workers: u64,
    scratch: &mut Vec<CompiledGate>,
) {
    scratch.clear();
    compile_gate(g, n_qubits, specialized, scratch);
    for c in scratch.iter() {
        let r = kernels::worker_range(c.args.work, n_workers, worker);
        resolve::<V>(c.id)(view, &c.args, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_gates;
    use crate::view::LocalView;
    use svsim_ir::{Circuit, GateKind};

    fn ghz_gates() -> Vec<Gate> {
        let mut c = Circuit::new(3);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::CX, &[1, 2], &[]).unwrap();
        c.gates().copied().collect()
    }

    #[test]
    fn uploaded_and_parsed_agree() {
        let gates = ghz_gates();
        // fn-pointer path
        let mut re1 = vec![0.0; 8];
        let mut im1 = vec![0.0; 8];
        re1[0] = 1.0;
        {
            let v = LocalView::new(&mut re1, &mut im1);
            let compiled = compile_gates(gates.iter(), 3, true);
            for ug in upload::<LocalView>(&compiled) {
                ug.exe_op(&v, 0..ug.args.work);
            }
        }
        // runtime-parse path
        let mut re2 = vec![0.0; 8];
        let mut im2 = vec![0.0; 8];
        re2[0] = 1.0;
        {
            let v = LocalView::new(&mut re2, &mut im2);
            let mut scratch = Vec::new();
            for g in &gates {
                exec_parsed(g, 3, true, &v, 0, 1, &mut scratch);
            }
        }
        assert_eq!(re1, re2);
        assert_eq!(im1, im2);
        // GHZ: only |000> and |111> populated.
        assert!((re1[0] - svsim_types::S2I).abs() < 1e-12);
        assert!((re1[7] - svsim_types::S2I).abs() < 1e-12);
    }

    #[test]
    fn every_kernel_id_resolves() {
        for id in [
            KernelId::X,
            KernelId::Y,
            KernelId::Z,
            KernelId::H,
            KernelId::Phase,
            KernelId::Rz,
            KernelId::OneQ,
            KernelId::Cx,
            KernelId::CPhase,
            KernelId::Crz,
            KernelId::ControlledOneQ,
            KernelId::Swap,
            KernelId::CSwap,
            KernelId::Rzz,
            KernelId::TwoQ,
            KernelId::Fused1,
            KernelId::Fused2,
            KernelId::Fused3,
        ] {
            // Distinct ids map to distinct functions, except where a kernel
            // is legitimately shared; here just ensure resolution succeeds.
            let _f = resolve::<LocalView>(id);
        }
    }
}
