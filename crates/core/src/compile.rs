//! Compilation of ISA gates into kernel invocations.
//!
//! The "upload" step of the paper (§3.2.1): when a circuit is conveyed from
//! the frontend, each gate is resolved — *once, on the host* — into a kernel
//! identifier plus a fixed-format argument block ([`GateArgs`]). The
//! fn-pointer dispatch mode then binds identifiers to monomorphized kernel
//! pointers ahead of execution (the analog of preloading
//! `cudaMemcpyFromSymbol` results), while the runtime-parse mode re-derives
//! everything per execution (the HIP/MI100 fallback path).

use crate::kernels::GateArgs;
use svsim_ir::{decompose, matrices, Gate, GateKind, Mat};
use svsim_types::bits::mask_of;
use svsim_types::Complex64;

/// Identifies one specialized kernel (the "device function symbol").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// Pauli-X pair swap.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z (half-touch).
    Z,
    /// Hadamard.
    H,
    /// `diag(1, e^{i l})` (half-touch): S/SDG/T/TDG/U1.
    Phase,
    /// RZ.
    Rz,
    /// Generic dense 2×2.
    OneQ,
    /// CNOT.
    Cx,
    /// Diagonal phase on an all-ones subspace: CZ/CU1.
    CPhase,
    /// Controlled RZ.
    Crz,
    /// (Multi-)controlled dense 2×2.
    ControlledOneQ,
    /// SWAP.
    Swap,
    /// Fredkin.
    CSwap,
    /// Diagonal ZZ rotation.
    Rzz,
    /// Generic dense 4×4.
    TwoQ,
    /// Fused 1-qubit window: a run of gates replayed over one 2-amplitude
    /// window per work item (see [`crate::fuse`]).
    Fused1,
    /// Fused 2-qubit window (4 amplitudes per work item).
    Fused2,
    /// Fused 3-qubit window (8 amplitudes per work item).
    Fused3,
}

/// A gate resolved to a kernel plus its argument block.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledGate {
    /// Which kernel.
    pub id: KernelId,
    /// Uniform argument block.
    pub args: GateArgs,
}

fn base_args(dim: u64) -> GateArgs {
    GateArgs {
        sorted: [0; 5],
        n_sorted: 0,
        target: 0,
        aux: 0,
        ctrl_mask: 0,
        m: [Complex64::ZERO; 16],
        s0: 0.0,
        s1: 0.0,
        work: dim,
        fused: Vec::new(),
    }
}

fn set_sorted(args: &mut GateArgs, qubits: &[u32]) {
    let mut s: Vec<u32> = qubits.to_vec();
    s.sort_unstable();
    args.sorted[..s.len()].copy_from_slice(&s);
    args.n_sorted = s.len() as u8;
}

fn m2_into(args: &mut GateArgs, m: &Mat) {
    debug_assert_eq!(m.dim(), 2);
    args.m[..4].copy_from_slice(m.data());
}

fn m4_into(args: &mut GateArgs, m: &Mat) {
    debug_assert_eq!(m.dim(), 4);
    args.m[..16].copy_from_slice(m.data());
}

fn one_qubit(id: KernelId, t: u32, dim: u64) -> (KernelId, GateArgs) {
    let mut a = base_args(dim / 2);
    set_sorted(&mut a, &[t]);
    a.target = t;
    (id, a)
}

/// Compile one gate into kernel invocations, appending to `out`.
///
/// `specialized = true` uses the per-gate kernels (the SV-Sim design);
/// `specialized = false` lowers everything to basic/standard gates and
/// applies them through the generic dense kernels (the "generalized
/// 1-/2-qubit unitary" scheme the paper attributes to Aer/qsim), for the
/// ablation.
pub fn compile_gate(g: &Gate, n_qubits: u32, specialized: bool, out: &mut Vec<CompiledGate>) {
    let dim = 1u64 << n_qubits;
    if !specialized {
        for lg in decompose::lower_gate(g) {
            compile_generic(&lg, dim, out);
        }
        return;
    }
    use std::f64::consts::{FRAC_PI_4, PI};
    use GateKind::*;
    let q = g.qubits();
    let p = g.params();
    let push = |out: &mut Vec<CompiledGate>, (id, args): (KernelId, GateArgs)| {
        out.push(CompiledGate { id, args });
    };
    match g.kind() {
        ID => {} // identity: the specialized backend skips it entirely
        X => push(out, one_qubit(KernelId::X, q[0], dim)),
        Y => push(out, one_qubit(KernelId::Y, q[0], dim)),
        Z => push(out, one_qubit(KernelId::Z, q[0], dim)),
        H => push(out, one_qubit(KernelId::H, q[0], dim)),
        S | SDG | T | TDG | U1 => {
            let lambda = match g.kind() {
                S => PI / 2.0,
                SDG => -PI / 2.0,
                T => FRAC_PI_4,
                TDG => -FRAC_PI_4,
                _ => p[0],
            };
            let (id, mut a) = one_qubit(KernelId::Phase, q[0], dim);
            a.s0 = lambda.cos();
            a.s1 = lambda.sin();
            push(out, (id, a));
        }
        RZ => {
            let (id, mut a) = one_qubit(KernelId::Rz, q[0], dim);
            a.s0 = (p[0] / 2.0).cos();
            a.s1 = (p[0] / 2.0).sin();
            push(out, (id, a));
        }
        RX | RY | U2 | U3 => {
            let (id, mut a) = one_qubit(KernelId::OneQ, q[0], dim);
            m2_into(&mut a, &matrices::single_qubit(g.kind(), p));
            push(out, (id, a));
        }
        CX => {
            let mut a = base_args(dim / 4);
            set_sorted(&mut a, q);
            a.target = q[1];
            a.ctrl_mask = 1 << q[0];
            push(out, (KernelId::Cx, a));
        }
        CZ | CU1 => {
            let lambda = if g.kind() == CZ { PI } else { p[0] };
            let mut a = base_args(dim / 4);
            set_sorted(&mut a, q);
            a.ctrl_mask = mask_of(q);
            a.s0 = lambda.cos();
            a.s1 = lambda.sin();
            push(out, (KernelId::CPhase, a));
        }
        CRZ => {
            let mut a = base_args(dim / 4);
            set_sorted(&mut a, q);
            a.target = q[1];
            a.ctrl_mask = 1 << q[0];
            a.s0 = (p[0] / 2.0).cos();
            a.s1 = (p[0] / 2.0).sin();
            push(out, (KernelId::Crz, a));
        }
        CY | CH | CRX | CRY | CU3 | CCX | C3X | C4X | C3SQRTX => {
            let payload = match g.kind() {
                CY => matrices::single_qubit(Y, &[]),
                CH => matrices::single_qubit(H, &[]),
                CRX => matrices::rx(p[0]),
                CRY => matrices::ry(p[0]),
                CU3 => matrices::u3(p[0], p[1], p[2]),
                C3SQRTX => matrices::sqrt_x(),
                _ => matrices::single_qubit(X, &[]),
            };
            let nc = q.len() - 1;
            let mut a = base_args(dim >> (nc + 1));
            set_sorted(&mut a, q);
            a.target = q[nc];
            a.ctrl_mask = mask_of(&q[..nc]);
            m2_into(&mut a, &payload);
            push(out, (KernelId::ControlledOneQ, a));
        }
        SWAP => {
            let mut a = base_args(dim / 4);
            set_sorted(&mut a, q);
            a.target = q[0];
            a.aux = q[1];
            push(out, (KernelId::Swap, a));
        }
        CSWAP => {
            let mut a = base_args(dim / 8);
            set_sorted(&mut a, q);
            a.ctrl_mask = 1 << q[0];
            a.target = q[1];
            a.aux = q[2];
            push(out, (KernelId::CSwap, a));
        }
        RZZ => {
            let mut a = base_args(dim / 4);
            set_sorted(&mut a, q);
            a.target = q[0];
            a.aux = q[1];
            a.s0 = (p[0] / 2.0).cos();
            a.s1 = (p[0] / 2.0).sin();
            push(out, (KernelId::Rzz, a));
        }
        RXX => {
            let mut a = base_args(dim / 4);
            set_sorted(&mut a, q);
            a.target = q[0];
            a.aux = q[1];
            m4_into(&mut a, &matrices::rxx(p[0]));
            push(out, (KernelId::TwoQ, a));
        }
        // Relative-phase Toffolis: realized by composing basic/standard
        // gates (the paper's compound-gate strategy).
        RCCX | RC3X => {
            for lg in decompose::lower_gate(g) {
                compile_gate(&lg, n_qubits, true, out);
            }
        }
    }
}

/// Generic-mode compilation: only dense 2×2 / 4×4 applications, like the
/// generalized unitary scheme of Aer/qsim.
fn compile_generic(g: &Gate, dim: u64, out: &mut Vec<CompiledGate>) {
    let q = g.qubits();
    match g.kind().n_qubits() {
        1 => {
            let mut a = base_args(dim / 2);
            set_sorted(&mut a, q);
            a.target = q[0];
            m2_into(&mut a, &matrices::single_qubit(g.kind(), g.params()));
            out.push(CompiledGate {
                id: KernelId::OneQ,
                args: a,
            });
        }
        2 => {
            debug_assert_eq!(g.kind(), GateKind::CX, "lowering emits only CX among 2q");
            let mut a = base_args(dim / 4);
            set_sorted(&mut a, q);
            a.target = q[0];
            a.aux = q[1];
            m4_into(&mut a, &matrices::gate_matrix(g));
            out.push(CompiledGate {
                id: KernelId::TwoQ,
                args: a,
            });
        }
        _ => unreachable!("basic/standard gates are 1q or CX"),
    }
}

/// Compile a gate stream.
#[must_use]
pub fn compile_gates<'a>(
    gates: impl IntoIterator<Item = &'a Gate>,
    n_qubits: u32,
    specialized: bool,
) -> Vec<CompiledGate> {
    let mut out = Vec::new();
    for g in gates {
        compile_gate(g, n_qubits, specialized, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(kind: GateKind, q: &[u32], p: &[f64]) -> Gate {
        Gate::new(kind, q, p).unwrap()
    }

    #[test]
    fn specialized_kernel_selection() {
        let cases = [
            (g(GateKind::X, &[0], &[]), KernelId::X),
            (g(GateKind::T, &[1], &[]), KernelId::Phase),
            (g(GateKind::RZ, &[1], &[0.3]), KernelId::Rz),
            (g(GateKind::U3, &[0], &[0.1, 0.2, 0.3]), KernelId::OneQ),
            (g(GateKind::CX, &[0, 1], &[]), KernelId::Cx),
            (g(GateKind::CZ, &[0, 1], &[]), KernelId::CPhase),
            (g(GateKind::CCX, &[0, 1, 2], &[]), KernelId::ControlledOneQ),
            (
                g(GateKind::C4X, &[0, 1, 2, 3, 4], &[]),
                KernelId::ControlledOneQ,
            ),
            (g(GateKind::SWAP, &[0, 1], &[]), KernelId::Swap),
            (g(GateKind::RZZ, &[0, 1], &[0.5]), KernelId::Rzz),
            (g(GateKind::RXX, &[0, 1], &[0.5]), KernelId::TwoQ),
        ];
        for (gate, id) in cases {
            let mut out = Vec::new();
            compile_gate(&gate, 6, true, &mut out);
            assert_eq!(out.len(), 1, "{gate} should compile to one kernel");
            assert_eq!(out[0].id, id, "{gate}");
        }
    }

    #[test]
    fn id_gate_is_free_when_specialized() {
        let mut out = Vec::new();
        compile_gate(&g(GateKind::ID, &[0], &[]), 4, true, &mut out);
        assert!(out.is_empty());
        // In generic mode it still costs a dense 2x2 pass.
        compile_gate(&g(GateKind::ID, &[0], &[]), 4, false, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, KernelId::OneQ);
    }

    #[test]
    fn work_sizes_reflect_specialization() {
        let dim = 1u64 << 10;
        let mut out = Vec::new();
        compile_gate(&g(GateKind::T, &[3], &[]), 10, true, &mut out);
        assert_eq!(out[0].args.work, dim / 2);
        out.clear();
        compile_gate(&g(GateKind::CZ, &[3, 7], &[]), 10, true, &mut out);
        assert_eq!(out[0].args.work, dim / 4);
        out.clear();
        compile_gate(&g(GateKind::C4X, &[0, 1, 2, 3, 4], &[]), 10, true, &mut out);
        assert_eq!(out[0].args.work, dim / 32);
    }

    #[test]
    fn compound_rccx_composes() {
        let mut out = Vec::new();
        compile_gate(&g(GateKind::RCCX, &[0, 1, 2], &[]), 5, true, &mut out);
        assert!(out.len() > 5, "rccx lowers to a sequence");
        assert!(out
            .iter()
            .all(|c| matches!(c.id, KernelId::H | KernelId::Phase | KernelId::Cx)));
    }

    #[test]
    fn generic_mode_uses_only_dense_kernels() {
        let gates = [
            g(GateKind::H, &[0], &[]),
            g(GateKind::CCX, &[0, 1, 2], &[]),
            g(GateKind::SWAP, &[1, 2], &[]),
            g(GateKind::T, &[2], &[]),
        ];
        let compiled = compile_gates(gates.iter(), 4, false);
        assert!(compiled
            .iter()
            .all(|c| matches!(c.id, KernelId::OneQ | KernelId::TwoQ)));
        // CCX lowers to many gates in generic mode.
        assert!(compiled.len() > 10);
    }

    #[test]
    fn sorted_and_masks() {
        let mut out = Vec::new();
        compile_gate(&g(GateKind::CCX, &[5, 2, 4], &[]), 8, true, &mut out);
        let a = &out[0].args;
        assert_eq!(a.sorted(), &[2, 4, 5]);
        assert_eq!(a.target, 4);
        assert_eq!(a.ctrl_mask, (1 << 5) | (1 << 2));
    }
}
