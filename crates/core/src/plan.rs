//! Ahead-of-time circuit compilation: the [`CompiledPlan`] artifact.
//!
//! Historically every executor call re-lowered its op slice on the spot —
//! [`crate::exec::build_steps`] inside `run_single`/`run_scaleup`/
//! `run_scaleout`, plus a fresh communication-avoiding
//! [`crate::remap::plan_remap`] pass per scale-out segment. That couples
//! circuit elaboration (op → step lowering), kernel specialization
//! (gate → [`CompiledGate`] resolution), and remap planning to execution,
//! so a serving layer cannot overlap "compile job B" with "execute job A",
//! and repeated submissions of one circuit pay the compile cost each time.
//!
//! [`CompiledPlan`] splits that work out: it precompiles a circuit — one
//! [`PlanSegment`] per checkpoint-grid segment, each holding the lowered
//! step stream, the flat compiled-kernel queue, the measurement random
//! budget, and (for remapped scale-out) the relabeling schedule — into a
//! standalone value that [`crate::Simulator::run_plan`] /
//! [`crate::Simulator::resume_plan`] execute without recompiling.
//! Execution from a plan is **bit-identical** to [`crate::Simulator::run`]:
//! the plan stores exactly the data the executor would have rebuilt.

use crate::compile::CompiledGate;
use crate::exec::{build_steps, Step};
use crate::remap::{plan_remap_fused, RemapPlan};
use crate::sim::{BackendKind, SimConfig};
use svsim_ir::{Circuit, Op};

/// One checkpoint-grid segment lowered to executable form.
#[derive(Debug, Clone)]
pub(crate) struct PlanSegment {
    /// First op of the segment (inclusive, grid-aligned).
    pub(crate) start: usize,
    /// One past the last op of the segment.
    pub(crate) end: usize,
    /// Lowered step stream (built from the remapped op stream when
    /// `remap` is set, the raw slice otherwise).
    pub(crate) steps: Vec<Step>,
    /// Flat compiled-kernel queue the steps index into.
    pub(crate) queue: Vec<CompiledGate>,
    /// Random draws the segment's measurements/resets will consume.
    pub(crate) n_rand: usize,
    /// Communication-avoiding relabeling schedule (scale-out with
    /// remapping armed only).
    pub(crate) remap: Option<RemapPlan>,
}

/// Lower `ops[start..end]` into a segment: remap planning first (when
/// `remap_pes > 1`, fusion-aware via [`plan_remap_fused`]), then
/// step/kernel lowering over the stream the executor will actually walk,
/// then the gate-fusion pass ([`crate::fuse::fuse_segment`], `fuse > 0`
/// only). This is the single compile entry point — executors call it as
/// their fallback when no precompiled segment is supplied, so plan-driven
/// and plan-free execution share one lowering.
pub(crate) fn build_segment(
    ops: &[Op],
    start: usize,
    end: usize,
    n_qubits: u32,
    specialized: bool,
    remap_pes: u64,
    fuse: u8,
) -> PlanSegment {
    let slice = &ops[start..end];
    let remap = (remap_pes > 1).then(|| plan_remap_fused(slice, n_qubits, remap_pes, fuse));
    let (mut steps, mut queue, n_rand) = match &remap {
        Some(p) => build_steps(&p.ops, n_qubits, specialized),
        None => build_steps(slice, n_qubits, specialized),
    };
    let mut remap = remap;
    if fuse > 0 {
        crate::fuse::fuse_segment(&mut steps, &mut queue, &mut remap, n_qubits, fuse);
    }
    PlanSegment {
        start,
        end,
        steps,
        queue,
        n_rand,
        remap,
    }
}

/// A circuit compiled ahead of execution for a specific simulator shape
/// (width, specialization, checkpoint cadence, and remap partitioning).
///
/// Build one with [`CompiledPlan::compile`], hand it around freely
/// (`Clone` is deep but execution never mutates it), and execute it with
/// [`crate::Simulator::run_plan`]. A plan is only valid for the
/// circuit/config shape it was compiled against; [`CompiledPlan::matches`]
/// is the compatibility check callers gate on before reusing a cached
/// plan.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    n_qubits: u32,
    specialized: bool,
    checkpoint_every: u32,
    remap_pes: u64,
    n_ops: usize,
    /// Fusion window the plan was compiled with (0 = unfused).
    fuse: u8,
    /// Source kernels before fusion, across all segments — the numerator
    /// of the gates-per-amplitude-pass metric (`n_kernels()` is the
    /// denominator).
    n_source_kernels: usize,
    segments: Vec<PlanSegment>,
}

impl CompiledPlan {
    /// Compile `circuit` for a simulator of `n_qubits` qubits running
    /// under `config`. Segmentation follows the same fixed checkpoint grid
    /// as [`crate::Simulator::run`] (multiples of `checkpoint_every` from
    /// op 0), so resumed executions reuse the same segments.
    #[must_use]
    pub fn compile(circuit: &Circuit, n_qubits: u32, config: &SimConfig) -> Self {
        let ops = circuit.ops();
        let remap_pes = match config.backend {
            BackendKind::ScaleOut { n_pes } if config.remap && n_pes > 1 => n_pes as u64,
            _ => 0,
        };
        let k = config.checkpoint_every as usize;
        let mut segments = Vec::new();
        if k == 0 {
            segments.push(build_segment(
                ops,
                0,
                ops.len(),
                n_qubits,
                config.specialized,
                remap_pes,
                config.fuse,
            ));
        } else {
            let mut pos = 0usize;
            while pos < ops.len() {
                // The smallest checkpoint-grid multiple strictly past `pos`.
                let end = usize::min(ops.len(), (pos + 1).next_multiple_of(k));
                segments.push(build_segment(
                    ops,
                    pos,
                    end,
                    n_qubits,
                    config.specialized,
                    remap_pes,
                    config.fuse,
                ));
                pos = end;
            }
        }
        let n_source_kernels = segments
            .iter()
            .map(|s| crate::fuse::source_kernels(&s.queue))
            .sum();
        Self {
            n_qubits,
            specialized: config.specialized,
            checkpoint_every: config.checkpoint_every,
            remap_pes,
            n_ops: ops.len(),
            fuse: config.fuse,
            n_source_kernels,
            segments,
        }
    }

    /// Whether this plan was compiled for exactly this simulator shape and
    /// an identically-shaped circuit. The op count is a cheap structural
    /// sanity check; supplying a *different* circuit with the same length
    /// is a caller contract violation, same as [`crate::Simulator::resume`]
    /// with the wrong circuit.
    #[must_use]
    pub fn matches(&self, circuit: &Circuit, n_qubits: u32, config: &SimConfig) -> bool {
        let remap_pes = match config.backend {
            BackendKind::ScaleOut { n_pes } if config.remap && n_pes > 1 => n_pes as u64,
            _ => 0,
        };
        self.n_qubits == n_qubits
            && self.specialized == config.specialized
            && self.checkpoint_every == config.checkpoint_every
            && self.remap_pes == remap_pes
            && self.fuse == config.fuse
            && self.n_ops == circuit.ops().len()
    }

    /// Segments in the plan (one when checkpointing is off).
    #[must_use]
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// Compiled kernels across all segments — the "device-resident circuit
    /// buffer" footprint of the plan, and the number of amplitude passes
    /// its unitary portion performs.
    #[must_use]
    pub fn n_kernels(&self) -> usize {
        self.segments.iter().map(|s| s.queue.len()).sum()
    }

    /// Source kernels before fusion (equals [`Self::n_kernels`] for an
    /// unfused plan). `n_source_kernels() / n_kernels()` is the plan's
    /// gates-per-amplitude-pass.
    #[must_use]
    pub fn n_source_kernels(&self) -> usize {
        self.n_source_kernels
    }

    /// The fusion window the plan was compiled with (0 = unfused).
    #[must_use]
    pub fn fuse_window(&self) -> u8 {
        self.fuse
    }

    /// The precompiled segment covering exactly `ops[start..end]`, if the
    /// plan holds one (segment lookups that miss fall back to on-the-fly
    /// lowering in the executor).
    pub(crate) fn segment(&self, start: usize, end: usize) -> Option<&PlanSegment> {
        let idx = if self.checkpoint_every == 0 {
            0
        } else {
            start / self.checkpoint_every as usize
        };
        self.segments
            .get(idx)
            .filter(|s| s.start == start && s.end == end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_ir::GateKind;

    fn circuit() -> Circuit {
        let mut c = Circuit::with_cbits(5, 1);
        for q in 0..5 {
            c.apply(GateKind::H, &[q], &[]).unwrap();
        }
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::T, &[4], &[]).unwrap();
        c.measure(0, 0).unwrap();
        c
    }

    #[test]
    fn segments_follow_the_checkpoint_grid() {
        let c = circuit();
        let cfg = SimConfig::single_device().with_checkpoint_every(3);
        let plan = CompiledPlan::compile(&c, 5, &cfg);
        assert_eq!(plan.n_segments(), c.ops().len().div_ceil(3));
        // Every grid segment resolves; a misaligned range does not.
        assert!(plan.segment(0, 3).is_some());
        assert!(plan.segment(3, 6).is_some());
        assert!(plan.segment(1, 3).is_none());
        assert!(plan.n_kernels() >= c.gates().count());
    }

    #[test]
    fn unsegmented_plan_is_one_segment() {
        let c = circuit();
        let cfg = SimConfig::single_device();
        let plan = CompiledPlan::compile(&c, 5, &cfg);
        assert_eq!(plan.n_segments(), 1);
        assert!(plan.segment(0, c.ops().len()).is_some());
    }

    #[test]
    fn matches_is_shape_exact() {
        let c = circuit();
        let cfg = SimConfig::scale_out(4).with_remap();
        let plan = CompiledPlan::compile(&c, 5, &cfg);
        assert!(plan.matches(&c, 5, &cfg));
        assert!(!plan.matches(&c, 6, &cfg), "width differs");
        assert!(
            !plan.matches(&c, 5, &SimConfig::scale_out(2).with_remap()),
            "remap partitioning differs"
        );
        assert!(
            !plan.matches(&c, 5, &cfg.with_checkpoint_every(2)),
            "checkpoint grid differs"
        );
        let seg = plan.segment(0, c.ops().len()).unwrap();
        assert!(seg.remap.is_some(), "remapped plan carries the schedule");
        assert_eq!(seg.n_rand, 1, "one measurement draw");
    }
}
