//! Batched variational simulation — the paper's stated future work
//! ("further parallelizing the variational optimization loop", §7) built
//! on its own flexibility goal: simulate dynamically generated circuits
//! *without* re-parsing or recompiling per trial.
//!
//! A [`ParamCircuit`] is a circuit template whose rotation angles may be
//! variational parameters. [`CompiledTemplate`] compiles the structure
//! exactly once (kernel resolution, index layout, control masks); each
//! trial then only *patches* the scalar/matrix payloads of the
//! parameterized kernels and re-executes the preloaded queue. For VQA
//! loops that synthesize thousands of near-identical circuits (the QNN use
//! case evaluates 28,641 per epoch), this removes the entire per-trial
//! synthesis cost.

use crate::compile::{compile_gate, CompiledGate};
use crate::dispatch::resolve;
use crate::state::StateVector;
use crate::view::LocalView;
use svsim_ir::{matrices, Circuit, Gate, GateKind};
use svsim_types::{SvError, SvResult};

/// A gate parameter: fixed at template-build time or bound per trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// A constant angle.
    Fixed(f64),
    /// The `i`-th variational parameter.
    Var(usize),
}

/// One templated gate.
#[derive(Debug, Clone)]
struct ParamGateSpec {
    kind: GateKind,
    qubits: Vec<u32>,
    params: Vec<ParamValue>,
}

/// A parameterized circuit template (unitary gates only).
#[derive(Debug, Clone, Default)]
pub struct ParamCircuit {
    n_qubits: u32,
    gates: Vec<ParamGateSpec>,
    n_vars: usize,
}

impl ParamCircuit {
    /// Empty template over `n_qubits`.
    #[must_use]
    pub fn new(n_qubits: u32) -> Self {
        Self {
            n_qubits,
            gates: Vec::new(),
            n_vars: 0,
        }
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Number of variational parameters referenced.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Append a gate. Gates with a `Var` parameter must compile to exactly
    /// one kernel (true for every parameterized ISA gate).
    ///
    /// # Errors
    /// Arity/range errors, or a `Var` on a non-parameterized gate.
    pub fn push(&mut self, kind: GateKind, qubits: &[u32], params: &[ParamValue]) -> SvResult<()> {
        if params.len() != kind.n_params() {
            return Err(SvError::Arity {
                gate: format!("{kind}(params)"),
                expected: kind.n_params(),
                got: params.len(),
            });
        }
        let has_var = params.iter().any(|p| matches!(p, ParamValue::Var(_)));
        if has_var && matches!(kind, GateKind::RCCX | GateKind::RC3X) {
            return Err(SvError::InvalidConfig(format!(
                "{kind} lowers to a sequence and cannot carry variational parameters"
            )));
        }
        // Validate structure eagerly with zero angles.
        let zeros = vec![0.0; params.len()];
        let probe = Gate::new(kind, qubits, &zeros)?;
        if probe.max_qubit() >= self.n_qubits {
            return Err(SvError::QubitOutOfRange {
                qubit: u64::from(probe.max_qubit()),
                n_qubits: u64::from(self.n_qubits),
            });
        }
        for p in params {
            if let ParamValue::Var(i) = p {
                self.n_vars = self.n_vars.max(i + 1);
            }
        }
        self.gates.push(ParamGateSpec {
            kind,
            qubits: qubits.to_vec(),
            params: params.to_vec(),
        });
        Ok(())
    }

    /// Fixed-gate convenience.
    ///
    /// # Errors
    /// As [`Self::push`].
    pub fn push_fixed(&mut self, kind: GateKind, qubits: &[u32], params: &[f64]) -> SvResult<()> {
        let wrapped: Vec<ParamValue> = params.iter().map(|&p| ParamValue::Fixed(p)).collect();
        self.push(kind, qubits, &wrapped)
    }

    /// Materialize a plain circuit at `values` (the reference path that
    /// [`CompiledTemplate`] is tested against).
    ///
    /// # Errors
    /// Parameter-count mismatch.
    pub fn bind(&self, values: &[f64]) -> SvResult<Circuit> {
        if values.len() < self.n_vars {
            return Err(SvError::InvalidConfig(format!(
                "need {} parameters, got {}",
                self.n_vars,
                values.len()
            )));
        }
        let mut c = Circuit::new(self.n_qubits);
        for g in &self.gates {
            let params: Vec<f64> = g
                .params
                .iter()
                .map(|p| match p {
                    ParamValue::Fixed(v) => *v,
                    ParamValue::Var(i) => values[*i],
                })
                .collect();
            c.apply(g.kind, &g.qubits, &params)?;
        }
        Ok(c)
    }

    /// Compile the structure once for batched execution.
    ///
    /// # Errors
    /// Propagates compilation errors.
    pub fn compile(&self) -> SvResult<CompiledTemplate> {
        let mut queue: Vec<CompiledGate> = Vec::new();
        let mut patches: Vec<Patch> = Vec::new();
        for g in &self.gates {
            let zeros: Vec<f64> = g
                .params
                .iter()
                .map(|p| match p {
                    ParamValue::Fixed(v) => *v,
                    ParamValue::Var(_) => 0.0,
                })
                .collect();
            let gate = Gate::new(g.kind, &g.qubits, &zeros)?;
            let start = queue.len();
            compile_gate(&gate, self.n_qubits, true, &mut queue);
            let has_var = g.params.iter().any(|p| matches!(p, ParamValue::Var(_)));
            if has_var {
                debug_assert_eq!(
                    queue.len(),
                    start + 1,
                    "parameterized gates compile to one kernel"
                );
                patches.push(Patch {
                    gate_idx: start,
                    micro: None,
                    kind: g.kind,
                    params: g.params.clone(),
                });
            }
        }
        Ok(CompiledTemplate {
            n_qubits: self.n_qubits,
            n_vars: self.n_vars,
            queue,
            patches,
        })
    }
}

/// A pending parameter substitution. `micro` addresses the constituent
/// kernel inside a fused window sweep (`None` for a bare kernel): fused
/// templates keep **symbolic angle slots** — only the micro-op's payload
/// is rewritten between trials, never the fusion structure.
#[derive(Debug, Clone)]
struct Patch {
    gate_idx: usize,
    micro: Option<usize>,
    kind: GateKind,
    params: Vec<ParamValue>,
}

/// A structure-compiled template: execute many parameter sets without
/// recompiling. `Clone` is cheap relative to compilation and lets a
/// serving engine hand each worker its own patchable copy.
#[derive(Debug, Clone)]
pub struct CompiledTemplate {
    n_qubits: u32,
    n_vars: usize,
    queue: Vec<CompiledGate>,
    patches: Vec<Patch>,
}

impl CompiledTemplate {
    /// Number of variational parameters.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Fuse the compiled queue in place (see [`crate::fuse`]): runs of
    /// adjacent kernels sharing a ≤`window`-qubit footprint collapse into
    /// one window sweep, and every parameter patch is re-addressed to its
    /// micro-op inside the fused gate. Trials still only substitute
    /// payloads — no re-fusion per batch member — and results stay
    /// bit-identical to the unfused template.
    pub fn fuse(&mut self, window: u8) {
        if window == 0 {
            return;
        }
        let (fused, origin) = crate::fuse::fuse_compiled(&self.queue, self.n_qubits, window);
        for patch in &mut self.patches {
            let j = origin
                .iter()
                .position(|r| r.contains(&patch.gate_idx))
                .expect("every source kernel survives fusion");
            patch.micro =
                (!fused[j].args.fused.is_empty()).then(|| patch.gate_idx - origin[j].start);
            patch.gate_idx = j;
        }
        self.queue = fused;
    }

    /// Amplitude passes one trial performs (the compiled queue length).
    #[must_use]
    pub fn n_passes(&self) -> usize {
        self.queue.len()
    }

    /// Source kernels behind those passes (equal to [`Self::n_passes`]
    /// until [`Self::fuse`] merges some).
    #[must_use]
    pub fn n_source_kernels(&self) -> usize {
        crate::fuse::source_kernels(&self.queue)
    }

    /// Patch the queue payloads for `values`.
    fn apply_patches(&mut self, values: &[f64]) {
        for patch in &self.patches {
            let resolved: Vec<f64> = patch
                .params
                .iter()
                .map(|p| match p {
                    ParamValue::Fixed(v) => *v,
                    ParamValue::Var(i) => values[*i],
                })
                .collect();
            let args = match patch.micro {
                Some(m) => &mut self.queue[patch.gate_idx].args.fused[m].args,
                None => &mut self.queue[patch.gate_idx].args,
            };
            match patch.kind {
                GateKind::U1 | GateKind::CU1 => {
                    args.s0 = resolved[0].cos();
                    args.s1 = resolved[0].sin();
                }
                GateKind::RZ | GateKind::CRZ | GateKind::RZZ => {
                    args.s0 = (resolved[0] / 2.0).cos();
                    args.s1 = (resolved[0] / 2.0).sin();
                }
                GateKind::RX | GateKind::RY | GateKind::U2 | GateKind::U3 => {
                    let m = matrices::single_qubit(patch.kind, &resolved);
                    args.m[..4].copy_from_slice(m.data());
                }
                GateKind::CRX => {
                    let m = matrices::rx(resolved[0]);
                    args.m[..4].copy_from_slice(m.data());
                }
                GateKind::CRY => {
                    let m = matrices::ry(resolved[0]);
                    args.m[..4].copy_from_slice(m.data());
                }
                GateKind::CU3 => {
                    let m = matrices::u3(resolved[0], resolved[1], resolved[2]);
                    args.m[..4].copy_from_slice(m.data());
                }
                GateKind::RXX => {
                    let m = matrices::rxx(resolved[0]);
                    args.m[..16].copy_from_slice(m.data());
                }
                // Non-parameterized kinds never carry Var values.
                _ => unreachable!("validated at push time"),
            }
        }
    }

    /// Run one trial: patch, execute from `|0...0>`, return the state.
    ///
    /// # Errors
    /// Parameter-count mismatch or width failures.
    pub fn run(&mut self, values: &[f64]) -> SvResult<StateVector> {
        let mut state = StateVector::zero_state(self.n_qubits)?;
        self.run_into(values, &mut state)?;
        Ok(state)
    }

    /// Run one trial into a caller-provided state buffer, which is reset to
    /// `|0...0>` in place first. The allocation-reuse hook for pooled
    /// serving: a batch of trials can cycle one buffer instead of
    /// allocating `2^n` doubles per trial.
    ///
    /// # Errors
    /// Parameter-count or width mismatch.
    pub fn run_into(&mut self, values: &[f64], state: &mut StateVector) -> SvResult<()> {
        if values.len() < self.n_vars {
            return Err(SvError::InvalidConfig(format!(
                "need {} parameters, got {}",
                self.n_vars,
                values.len()
            )));
        }
        if state.n_qubits() != self.n_qubits {
            return Err(SvError::InvalidConfig(format!(
                "template is over {} qubits, buffer has {}",
                self.n_qubits,
                state.n_qubits()
            )));
        }
        self.apply_patches(values);
        state.reset_zero();
        {
            let (re, im) = state.parts_mut();
            let view = LocalView::new(re, im);
            for cg in &self.queue {
                resolve::<LocalView>(cg.id)(&view, &cg.args, 0..cg.args.work);
            }
        }
        Ok(())
    }

    /// Run a whole batch, returning one state per parameter set.
    ///
    /// # Errors
    /// As [`Self::run`].
    pub fn run_batch(&mut self, param_sets: &[Vec<f64>]) -> SvResult<Vec<StateVector>> {
        param_sets.iter().map(|v| self.run(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulator};
    use svsim_types::SvRng;

    /// A little variational ansatz exercising every patchable gate kind.
    fn template() -> ParamCircuit {
        let mut t = ParamCircuit::new(4);
        t.push_fixed(GateKind::H, &[0], &[]).unwrap();
        t.push(GateKind::RY, &[0], &[ParamValue::Var(0)]).unwrap();
        t.push(GateKind::RZ, &[1], &[ParamValue::Var(1)]).unwrap();
        t.push_fixed(GateKind::CX, &[0, 1], &[]).unwrap();
        t.push(GateKind::CRY, &[1, 2], &[ParamValue::Var(2)])
            .unwrap();
        t.push(GateKind::CU1, &[2, 3], &[ParamValue::Var(3)])
            .unwrap();
        t.push(GateKind::RZZ, &[0, 3], &[ParamValue::Var(4)])
            .unwrap();
        t.push(GateKind::RXX, &[1, 2], &[ParamValue::Var(5)])
            .unwrap();
        t.push(
            GateKind::U3,
            &[3],
            &[
                ParamValue::Var(6),
                ParamValue::Fixed(0.2),
                ParamValue::Var(7),
            ],
        )
        .unwrap();
        t
    }

    #[test]
    fn template_matches_naive_rebuild() {
        let t = template();
        let mut compiled = t.compile().unwrap();
        let mut rng = SvRng::seed_from_u64(5);
        for _ in 0..8 {
            let values: Vec<f64> = (0..t.n_vars()).map(|_| rng.range_f64(-3.0, 3.0)).collect();
            let fast = compiled.run(&values).unwrap();
            let circuit = t.bind(&values).unwrap();
            let mut sim = Simulator::new(4, SimConfig::single_device()).unwrap();
            sim.run(&circuit).unwrap();
            assert!(
                fast.max_diff(sim.state()) < 1e-12,
                "template diverged from rebuild"
            );
        }
    }

    #[test]
    fn fused_template_is_bit_identical_and_collapses_passes() {
        let t = template();
        let mut plain = t.compile().unwrap();
        for window in 1..=3u8 {
            let mut fused = t.compile().unwrap();
            fused.fuse(window);
            assert_eq!(
                fused.n_source_kernels(),
                plain.n_passes(),
                "window {window}: fusion must preserve every source kernel"
            );
            if window >= 2 {
                assert!(
                    fused.n_passes() < plain.n_passes(),
                    "window {window}: a dense ansatz must fuse"
                );
            }
            let mut rng = SvRng::seed_from_u64(17);
            for trial in 0..6 {
                let values: Vec<f64> = (0..t.n_vars()).map(|_| rng.range_f64(-3.0, 3.0)).collect();
                let a = plain.run(&values).unwrap();
                let b = fused.run(&values).unwrap();
                assert_eq!(a.re(), b.re(), "window {window} trial {trial}");
                assert_eq!(a.im(), b.im(), "window {window} trial {trial}");
            }
        }
    }

    #[test]
    fn repeated_runs_do_not_accumulate_state() {
        let t = template();
        let mut compiled = t.compile().unwrap();
        let v = vec![0.3; t.n_vars()];
        let a = compiled.run(&v).unwrap();
        let _ = compiled.run(&vec![1.7; t.n_vars()]).unwrap();
        let b = compiled.run(&v).unwrap();
        assert!(a.max_diff(&b) < 1e-15, "runs must be independent");
    }

    #[test]
    fn run_into_reuses_buffer_exactly() {
        let t = template();
        let mut compiled = t.compile().unwrap();
        let v = vec![0.4; t.n_vars()];
        let fresh = compiled.run(&v).unwrap();
        let mut buf = StateVector::zero_state(4).unwrap();
        // Dirty the buffer with another trial, then rerun the target one.
        compiled.run_into(&vec![1.1; t.n_vars()], &mut buf).unwrap();
        compiled.run_into(&v, &mut buf).unwrap();
        assert_eq!(buf.re(), fresh.re(), "reused buffer must be bit-identical");
        assert_eq!(buf.im(), fresh.im());
        let mut wrong_width = StateVector::zero_state(3).unwrap();
        assert!(compiled.run_into(&v, &mut wrong_width).is_err());
    }

    #[test]
    fn batch_api() {
        let t = template();
        let mut compiled = t.compile().unwrap();
        let sets: Vec<Vec<f64>> = (0..5).map(|i| vec![0.1 * i as f64; t.n_vars()]).collect();
        let states = compiled.run_batch(&sets).unwrap();
        assert_eq!(states.len(), 5);
        for s in &states {
            assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn validation() {
        let mut t = ParamCircuit::new(2);
        // Var on a parameterless gate is an arity error.
        assert!(t.push(GateKind::H, &[0], &[ParamValue::Var(0)]).is_err());
        // Out-of-range qubit.
        assert!(t.push(GateKind::RZ, &[5], &[ParamValue::Var(0)]).is_err());
        // Missing values at bind time.
        t.push(GateKind::RZ, &[0], &[ParamValue::Var(3)]).unwrap();
        assert_eq!(t.n_vars(), 4);
        assert!(t.bind(&[0.0, 0.0]).is_err());
        let mut compiled = t.compile().unwrap();
        assert!(compiled.run(&[0.0]).is_err());
    }
}
