//! Minimal fork-join parallelism for the diagonal reductions.
//!
//! The only data-parallel shapes the simulator needs outside the SPMD
//! backends are index-space sum reductions (probabilities, expectations).
//! This module provides exactly that over `std::thread::scope`, keeping the
//! workspace free of external dependencies. Chunking is deterministic, and
//! f64 partials are combined in chunk order, so results do not vary from
//! run to run on a fixed thread count — and the *chunk count* is fixed
//! (`MAX_CHUNKS`) regardless of how many worker threads the machine offers,
//! so results are identical across machines too.

use std::ops::Range;

/// Upper bound on reduction chunks. Fixing the split (rather than deriving
/// it from `available_parallelism`) keeps floating-point sums bit-stable
/// across machines; 32 chunks saturate the memory bandwidth these
/// reductions are bound by.
const MAX_CHUNKS: usize = 32;

/// Sum `f` over `0..len` split into deterministic chunks evaluated in
/// parallel. `f` receives a subrange and returns its partial sum; partials
/// are added in chunk order.
pub fn parallel_sum<F>(len: usize, f: F) -> f64
where
    F: Fn(Range<usize>) -> f64 + Sync,
{
    if len < 2 {
        return f(0..len);
    }
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // The chunk split never depends on the worker count, only the summation
    // schedule does — so the reduced value is bit-identical everywhere.
    let n_chunks = MAX_CHUNKS.min(len);
    let chunk = len.div_ceil(n_chunks);
    let mut partials = vec![0.0f64; n_chunks];
    if workers <= 1 {
        for (c, slot) in partials.iter_mut().enumerate() {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(len);
            if start < end {
                *slot = f(start..end);
            }
        }
    } else {
        std::thread::scope(|scope| {
            let f = &f;
            for (c, slot) in partials.iter_mut().enumerate() {
                let start = c * chunk;
                let end = ((c + 1) * chunk).min(len);
                if start >= end {
                    continue;
                }
                scope.spawn(move || {
                    *slot = f(start..end);
                });
            }
        });
    }
    partials.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential() {
        for len in [0usize, 1, 5, 1000, 65_537] {
            let par = parallel_sum(len, |r| r.map(|i| i as f64).sum());
            let seq: f64 = (0..len).map(|i| i as f64).sum();
            assert_eq!(par, seq, "len {len}");
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let a = parallel_sum(100_000, |r| r.map(|i| 1.0 / (i as f64 + 1.0)).sum());
        let b = parallel_sum(100_000, |r| r.map(|i| 1.0 / (i as f64 + 1.0)).sum());
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
