//! Specialized gate kernels, written once and monomorphized per memory
//! fabric ([`StateView`]).
//!
//! Mirrors the paper's *specialized gate implementation* (§3.2.1): each gate
//! family has its own kernel touching exactly the amplitudes it must (a
//! phase gate touches half the vector, CX permutes a quarter, a diagonal
//! controlled phase touches `2^{n-k}` amplitudes), instead of a generalized
//! dense-matrix application. The savings are real and measured — the
//! baselines crate provides the generalized implementation for comparison.
//!
//! Every kernel processes a caller-supplied sub-range of its *work-item
//! space*, so the same code serves the single device (full range), the
//! scale-up executor (one chunk per device thread) and the scale-out SPMD
//! PEs (one chunk per PE), exactly like the grid-strided loops of
//! Listings 3-5.

use crate::compile::CompiledGate;
use crate::dispatch::KernelFn;
use crate::view::{LocalView, StateView};
use std::ops::Range;
use svsim_types::bits::{insert_zero_bit, insert_zero_bits};
use svsim_types::Complex64;

/// Uniform argument block for every kernel (the analog of the paper's
/// fixed-format `Gate` object that makes device function pointers possible:
/// one parameter layout shared by all gate functions).
#[derive(Debug, Clone, PartialEq)]
pub struct GateArgs {
    /// Ascending positions of all involved qubits (for base-index
    /// enumeration via zero-bit insertion).
    pub sorted: [u32; 5],
    /// Number of valid entries in `sorted`.
    pub n_sorted: u8,
    /// Target qubit (payload bit for controlled/1q kernels; first operand
    /// for 2q matrix kernels).
    pub target: u32,
    /// Second operand (swap partner / second matrix qubit).
    pub aux: u32,
    /// OR of the control-qubit bit masks (or, for pure-diagonal phase
    /// kernels, of *all* involved qubits).
    pub ctrl_mask: u64,
    /// Payload matrix: 2×2 in `m[..4]` (row-major), 4×4 in `m[..16]`.
    pub m: [Complex64; 16],
    /// Scalar parameter (e.g. `cos`).
    pub s0: f64,
    /// Scalar parameter (e.g. `sin`).
    pub s1: f64,
    /// Number of work items for this kernel over the full state.
    pub work: u64,
    /// Constituent micro-ops of a fused window kernel, rewritten to
    /// window-local coordinates (empty for every ordinary kernel). The
    /// fused kernels gather one `2^k` window, replay these through the
    /// constituent kernels over a [`LocalView`] of the window, and scatter
    /// back — so the per-amplitude arithmetic is the exact expression the
    /// unfused gates would have evaluated, bit for bit.
    pub fused: Vec<CompiledGate>,
}

impl GateArgs {
    /// Sorted involved-qubit positions.
    #[inline]
    #[must_use]
    pub fn sorted(&self) -> &[u32] {
        &self.sorted[..self.n_sorted as usize]
    }
}

/// Contiguous work split: item range owned by `worker` of `n_workers`.
///
/// The intermediate product is widened to `u128`: the traffic model calls
/// this with Summit-scale `work` (up to `2^63` items), where
/// `work * worker` overflows `u64` long before the division brings the
/// quotient back in range.
#[inline]
#[must_use]
pub fn worker_range(work: u64, n_workers: u64, worker: u64) -> Range<u64> {
    let split = |w: u64| (u128::from(work) * u128::from(w) / u128::from(n_workers)) as u64;
    split(worker)..split(worker + 1)
}

/// Pauli-X: swap the amplitude pair.
pub fn k_x<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let t = a.target;
    for i in r {
        let i0 = insert_zero_bit(i, t);
        let i1 = i0 | (1 << t);
        let (r0, m0) = v.get(i0);
        let (r1, m1) = v.get(i1);
        v.set(i0, r1, m1);
        v.set(i1, r0, m0);
    }
}

/// Pauli-Y: swap with `±i` phases.
pub fn k_y<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let t = a.target;
    for i in r {
        let i0 = insert_zero_bit(i, t);
        let i1 = i0 | (1 << t);
        let (r0, m0) = v.get(i0);
        let (r1, m1) = v.get(i1);
        // |0> component <- -i * amp1 ; |1> component <- i * amp0
        v.set(i0, m1, -r1);
        v.set(i1, -m0, r0);
    }
}

/// Pauli-Z: negate the `|1>` half only (half the traffic of a generic 1q
/// gate — the paper's T-gate argument).
pub fn k_z<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let t = a.target;
    for i in r {
        let i1 = insert_zero_bit(i, t) | (1 << t);
        let (re, im) = v.get(i1);
        v.set(i1, -re, -im);
    }
}

/// Hadamard.
pub fn k_h<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    const S2I: f64 = svsim_types::S2I;
    let t = a.target;
    for i in r {
        let i0 = insert_zero_bit(i, t);
        let i1 = i0 | (1 << t);
        let (r0, m0) = v.get(i0);
        let (r1, m1) = v.get(i1);
        v.set(i0, S2I * (r0 + r1), S2I * (m0 + m1));
        v.set(i1, S2I * (r0 - r1), S2I * (m0 - m1));
    }
}

/// Phase gate `diag(1, s0 + i s1)`: S, SDG, T, TDG, U1. Touches only the
/// `|1>` half.
pub fn k_phase<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let t = a.target;
    let (c, s) = (a.s0, a.s1);
    for i in r {
        let i1 = insert_zero_bit(i, t) | (1 << t);
        let (re, im) = v.get(i1);
        v.set(i1, c * re - s * im, c * im + s * re);
    }
}

/// `RZ = diag(e^{-i th/2}, e^{i th/2})` with `s0 + i s1 = e^{i th/2}`.
pub fn k_rz<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let t = a.target;
    let (c, s) = (a.s0, a.s1);
    for i in r {
        let i0 = insert_zero_bit(i, t);
        let i1 = i0 | (1 << t);
        let (r0, m0) = v.get(i0);
        v.set(i0, c * r0 + s * m0, c * m0 - s * r0); // conj(ph) * amp0
        let (r1, m1) = v.get(i1);
        v.set(i1, c * r1 - s * m1, c * m1 + s * r1); // ph * amp1
    }
}

/// Generic dense 2×2 gate (`U3`, `U2`, `RX`, `RY`, and the non-specialized
/// fallback).
pub fn k_oneq<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let t = a.target;
    let m = &a.m;
    for i in r {
        let i0 = insert_zero_bit(i, t);
        let i1 = i0 | (1 << t);
        let (r0, m0) = v.get(i0);
        let (r1, m1) = v.get(i1);
        v.set(
            i0,
            m[0].re * r0 - m[0].im * m0 + m[1].re * r1 - m[1].im * m1,
            m[0].re * m0 + m[0].im * r0 + m[1].re * m1 + m[1].im * r1,
        );
        v.set(
            i1,
            m[2].re * r0 - m[2].im * m0 + m[3].re * r1 - m[3].im * m1,
            m[2].re * m0 + m[2].im * r0 + m[3].re * m1 + m[3].im * r1,
        );
    }
}

/// CNOT: permutes the quarter of amplitudes with the control set.
pub fn k_cx<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let t = a.target;
    let cm = a.ctrl_mask;
    let sorted = a.sorted();
    for i in r {
        let i0 = insert_zero_bits(i, sorted) | cm;
        let i1 = i0 | (1 << t);
        let (r0, m0) = v.get(i0);
        let (r1, m1) = v.get(i1);
        v.set(i0, r1, m1);
        v.set(i1, r0, m0);
    }
}

/// Diagonal controlled phase on the all-ones subspace of the involved
/// qubits: CZ, CU1 (and exact multi-controlled phases). Touches
/// `2^{n-k}` amplitudes only.
pub fn k_cphase<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let (c, s) = (a.s0, a.s1);
    let mask = a.ctrl_mask;
    let sorted = a.sorted();
    for i in r {
        let idx = insert_zero_bits(i, sorted) | mask;
        let (re, im) = v.get(idx);
        v.set(idx, c * re - s * im, c * im + s * re);
    }
}

/// Controlled-RZ: both target halves rotate under the control.
pub fn k_crz<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let t = a.target;
    let cm = a.ctrl_mask;
    let (c, s) = (a.s0, a.s1);
    let sorted = a.sorted();
    for i in r {
        let i0 = insert_zero_bits(i, sorted) | cm;
        let i1 = i0 | (1 << t);
        let (r0, m0) = v.get(i0);
        v.set(i0, c * r0 + s * m0, c * m0 - s * r0);
        let (r1, m1) = v.get(i1);
        v.set(i1, c * r1 - s * m1, c * m1 + s * r1);
    }
}

/// Generic (multi-)controlled dense 2×2: CY, CH, CRX, CRY, CU3, CCX, C3X,
/// C4X, C3SQRTX.
pub fn k_controlled_oneq<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let t = a.target;
    let cm = a.ctrl_mask;
    let m = &a.m;
    let sorted = a.sorted();
    for i in r {
        let i0 = insert_zero_bits(i, sorted) | cm;
        let i1 = i0 | (1 << t);
        let (r0, m0) = v.get(i0);
        let (r1, m1) = v.get(i1);
        v.set(
            i0,
            m[0].re * r0 - m[0].im * m0 + m[1].re * r1 - m[1].im * m1,
            m[0].re * m0 + m[0].im * r0 + m[1].re * m1 + m[1].im * r1,
        );
        v.set(
            i1,
            m[2].re * r0 - m[2].im * m0 + m[3].re * r1 - m[3].im * m1,
            m[2].re * m0 + m[2].im * r0 + m[3].re * m1 + m[3].im * r1,
        );
    }
}

/// SWAP: exchanges the `|01>` and `|10>` amplitudes (quarter of the vector).
pub fn k_swap<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let (p, q) = (a.target, a.aux);
    let sorted = a.sorted();
    for i in r {
        let base = insert_zero_bits(i, sorted);
        let ia = base | (1 << p);
        let ib = base | (1 << q);
        let (ra, ma) = v.get(ia);
        let (rb, mb) = v.get(ib);
        v.set(ia, rb, mb);
        v.set(ib, ra, ma);
    }
}

/// Fredkin (controlled SWAP).
pub fn k_cswap<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let (p, q) = (a.target, a.aux);
    let cm = a.ctrl_mask;
    let sorted = a.sorted();
    for i in r {
        let base = insert_zero_bits(i, sorted) | cm;
        let ia = base | (1 << p);
        let ib = base | (1 << q);
        let (ra, ma) = v.get(ia);
        let (rb, mb) = v.get(ib);
        v.set(ia, rb, mb);
        v.set(ib, ra, ma);
    }
}

/// `RZZ`: pure diagonal two-qubit rotation — phases by bit parity, no
/// mixing, no data exchange between amplitudes.
pub fn k_rzz<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let (p, q) = (a.target, a.aux);
    let (c, s) = (a.s0, a.s1); // e^{i th/2} = c + i s
    let sorted = a.sorted();
    for i in r {
        let base = insert_zero_bits(i, sorted);
        // Even parity (00, 11): e^{-i th/2}; odd parity (01, 10): e^{+i th/2}.
        for (idx, sign) in [
            (base, -1.0),
            (base | (1 << p), 1.0),
            (base | (1 << q), 1.0),
            (base | (1 << p) | (1 << q), -1.0),
        ] {
            let (re, im) = v.get(idx);
            let ss = s * sign;
            v.set(idx, c * re - ss * im, c * im + ss * re);
        }
    }
}

/// Generic dense 4×4 two-qubit gate (`RXX`, and the non-specialized CX
/// fallback). Local bit 0 of the matrix is `target` (first operand), local
/// bit 1 is `aux`.
pub fn k_twoq<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    let (q0, q1) = (a.target, a.aux);
    let m = &a.m;
    let sorted = a.sorted();
    for i in r {
        let base = insert_zero_bits(i, sorted);
        let idx = [
            base,
            base | (1 << q0),
            base | (1 << q1),
            base | (1 << q0) | (1 << q1),
        ];
        let mut re = [0.0f64; 4];
        let mut im = [0.0f64; 4];
        for (k, &ix) in idx.iter().enumerate() {
            let (r_, i_) = v.get(ix);
            re[k] = r_;
            im[k] = i_;
        }
        for (row, &ix) in idx.iter().enumerate() {
            let mut ar = 0.0;
            let mut ai = 0.0;
            for col in 0..4 {
                let c = m[row * 4 + col];
                ar += c.re * re[col] - c.im * im[col];
                ai += c.re * im[col] + c.im * re[col];
            }
            v.set(ix, ar, ai);
        }
    }
}

/// Shared body of the fused window kernels: one pass over the `2^{n-k}`
/// windows of the `k` qubits in `sorted`. Each window's `2^k` amplitudes
/// are gathered into stack buffers, the constituent micro-ops in
/// `a.fused` (already rewritten to window-local coordinates) are replayed
/// through their own kernels over a [`LocalView`] of the window, and the
/// result is scattered back. Because every constituent runs its exact
/// per-amplitude arithmetic on the same values it would have seen running
/// gate by gate (windows are disjoint, so there is no cross-window
/// dataflow), the fused sweep is **bit-identical** to unfused execution —
/// while touching each amplitude once instead of once per gate.
#[inline]
fn k_fused_body<V: StateView, const DIM: usize>(v: &V, a: &GateArgs, r: Range<u64>) {
    let sorted = a.sorted();
    debug_assert_eq!(1usize << sorted.len(), DIM);
    // Local index j maps to the window offset with bit b of j at global
    // position sorted[b].
    let mut offs = [0u64; DIM];
    for (j, o) in offs.iter_mut().enumerate() {
        for (b, &q) in sorted.iter().enumerate() {
            if j & (1 << b) != 0 {
                *o |= 1 << q;
            }
        }
    }
    // One scratch window reused for every iteration, wrapped in a single
    // `LocalView` whose `Cell` planes let the gather/replay/scatter all go
    // through `&self` access. Resolving each micro-op's kernel once per
    // sweep (not once per window) keeps the dispatch lookup off the
    // 2^(n-k)-iteration hot loop.
    let mut re = [0.0f64; DIM];
    let mut im = [0.0f64; DIM];
    let lv = LocalView::new(&mut re, &mut im);
    type Micro<'q> = (KernelFn<LocalView<'q>>, &'q GateArgs);
    let micros: Vec<Micro<'_>> = a
        .fused
        .iter()
        .map(|cg| (crate::dispatch::resolve::<LocalView>(cg.id), &cg.args))
        .collect();
    for i in r {
        let base = insert_zero_bits(i, sorted);
        for (j, &o) in offs.iter().enumerate() {
            let (r_, i_) = v.get(base | o);
            lv.set(j as u64, r_, i_);
        }
        for (kernel, args) in &micros {
            kernel(&lv, args, 0..args.work);
        }
        for (j, &o) in offs.iter().enumerate() {
            let (r_, i_) = lv.get(j as u64);
            v.set(base | o, r_, i_);
        }
    }
}

/// Fused 1-qubit window: a run of gates sharing one qubit, one sweep.
pub fn k_fused1<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    k_fused_body::<V, 2>(v, a, r);
}

/// Fused 2-qubit window: a run of gates inside one 2-qubit window.
pub fn k_fused2<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    k_fused_body::<V, 4>(v, a, r);
}

/// Fused 3-qubit window: a run of gates inside one 3-qubit window.
pub fn k_fused3<V: StateView>(v: &V, a: &GateArgs, r: Range<u64>) {
    k_fused_body::<V, 8>(v, a, r);
}

/// Partial sum of `|amp|^2` over amplitudes in `r` with bit `q` set
/// (work-item space: `dim/2`), accumulated sequentially. The executors'
/// measurement paths use the canonical-tree sums in `crate::measure`
/// instead — a sequential association is not reproducible across
/// partition counts; this kernel remains for range-sliced diagnostics.
#[must_use]
pub fn prob_one_partial<V: StateView>(v: &V, q: u32, r: Range<u64>) -> f64 {
    let mut p = 0.0;
    for i in r {
        let i1 = insert_zero_bit(i, q) | (1 << q);
        let (re, im) = v.get(i1);
        p += re * re + im * im;
    }
    p
}

/// Collapse after measuring qubit `q` as `outcome`: zero the losing half,
/// scale the surviving half by `1/sqrt(p)`. Work-item space: `dim/2`
/// (each item handles one pair — all accesses are pair-local).
pub fn collapse_pairs<V: StateView>(v: &V, q: u32, outcome: u8, inv_sqrt_p: f64, r: Range<u64>) {
    for i in r {
        let i0 = insert_zero_bit(i, q);
        let i1 = i0 | (1 << q);
        let (keep, kill) = if outcome == 1 { (i1, i0) } else { (i0, i1) };
        let (re, im) = v.get(keep);
        v.set(keep, re * inv_sqrt_p, im * inv_sqrt_p);
        v.set(kill, 0.0, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::LocalView;

    fn zero_state(n: u32) -> (Vec<f64>, Vec<f64>) {
        let dim = 1usize << n;
        let mut re = vec![0.0; dim];
        let im = vec![0.0; dim];
        re[0] = 1.0;
        (re, im)
    }

    fn args_1q(t: u32, dim: u64) -> GateArgs {
        GateArgs {
            sorted: [t, 0, 0, 0, 0],
            n_sorted: 1,
            target: t,
            aux: 0,
            ctrl_mask: 0,
            m: [Complex64::ZERO; 16],
            s0: 0.0,
            s1: 0.0,
            work: dim / 2,
            fused: Vec::new(),
        }
    }

    #[test]
    fn worker_range_covers_exactly() {
        for n_workers in [1u64, 2, 3, 7, 16] {
            let mut total = 0;
            let mut prev_end = 0;
            for w in 0..n_workers {
                let r = worker_range(100, n_workers, w);
                assert_eq!(r.start, prev_end);
                prev_end = r.end;
                total += r.end - r.start;
            }
            assert_eq!(total, 100);
            assert_eq!(prev_end, 100);
        }
    }

    #[test]
    fn worker_range_survives_summit_scale_work() {
        // 2^63 items over 1024 PEs: `work * worker` overflows u64 for every
        // worker past the first — the u128 intermediate must keep the split
        // exact, contiguous, and covering.
        let work = 1u64 << 63;
        let n_workers = 1024u64;
        let mut prev_end = 0u64;
        for w in 0..n_workers {
            let r = worker_range(work, n_workers, w);
            assert_eq!(r.start, prev_end, "worker {w} must start where {w}-1 ended");
            assert_eq!(r.end - r.start, work / n_workers);
            prev_end = r.end;
        }
        assert_eq!(prev_end, work);
        // Uneven split at scale: ranges still partition the work exactly.
        let work = (1u64 << 63) + 12_345;
        let mut total = 0u64;
        let mut prev_end = 0u64;
        for w in 0..7 {
            let r = worker_range(work, 7, w);
            assert_eq!(r.start, prev_end);
            total += r.end - r.start;
            prev_end = r.end;
        }
        assert_eq!(total, work);
    }

    #[test]
    fn x_flips_basis_state() {
        let (mut re, mut im) = zero_state(3);
        let v = LocalView::new(&mut re, &mut im);
        let a = args_1q(1, 8);
        k_x(&v, &a, 0..4);
        assert_eq!(re[0b010], 1.0);
        assert_eq!(re[0], 0.0);
    }

    #[test]
    fn h_then_h_is_identity() {
        let (mut re, mut im) = zero_state(2);
        {
            let v = LocalView::new(&mut re, &mut im);
            let a = args_1q(0, 4);
            k_h(&v, &a, 0..2);
            k_h(&v, &a, 0..2);
        }
        assert!((re[0] - 1.0).abs() < 1e-15);
        assert!(re[1].abs() < 1e-15);
    }

    #[test]
    fn z_only_negates_one_half() {
        let dim = 8usize;
        let mut re: Vec<f64> = (0..dim).map(|i| i as f64).collect();
        let mut im = vec![0.0; dim];
        {
            let v = LocalView::new(&mut re, &mut im);
            let a = args_1q(2, 8);
            k_z(&v, &a, 0..4);
        }
        for (i, &r) in re.iter().enumerate() {
            let expect = if i & 0b100 != 0 {
                -(i as f64)
            } else {
                i as f64
            };
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn cx_permutes_controlled_quarter() {
        // state |01> (q0=1, q1=0) --CX(0,1)--> |11>
        let (mut re, mut im) = zero_state(2);
        re[0] = 0.0;
        re[0b01] = 1.0;
        {
            let v = LocalView::new(&mut re, &mut im);
            let a = GateArgs {
                sorted: [0, 1, 0, 0, 0],
                n_sorted: 2,
                target: 1,
                aux: 0,
                ctrl_mask: 0b1,
                m: [Complex64::ZERO; 16],
                s0: 0.0,
                s1: 0.0,
                work: 1,
                fused: Vec::new(),
            };
            k_cx(&v, &a, 0..1);
        }
        assert_eq!(re[0b11], 1.0);
        assert_eq!(re[0b01], 0.0);
    }

    #[test]
    fn swap_exchanges() {
        let (mut re, mut im) = zero_state(2);
        re[0] = 0.0;
        re[0b01] = 1.0;
        {
            let v = LocalView::new(&mut re, &mut im);
            let a = GateArgs {
                sorted: [0, 1, 0, 0, 0],
                n_sorted: 2,
                target: 0,
                aux: 1,
                ctrl_mask: 0,
                m: [Complex64::ZERO; 16],
                s0: 0.0,
                s1: 0.0,
                work: 1,
                fused: Vec::new(),
            };
            k_swap(&v, &a, 0..1);
        }
        assert_eq!(re[0b10], 1.0);
        assert_eq!(re[0b01], 0.0);
    }

    #[test]
    fn prob_and_collapse() {
        // |+> on qubit 0 of 2 qubits.
        let mut re = vec![svsim_types::S2I, svsim_types::S2I, 0.0, 0.0];
        let mut im = vec![0.0; 4];
        {
            let v = LocalView::new(&mut re, &mut im);
            let p1 = prob_one_partial(&v, 0, 0..2);
            assert!((p1 - 0.5).abs() < 1e-15);
            collapse_pairs(&v, 0, 1, (1.0f64 / 0.5).sqrt(), 0..2);
        }
        assert_eq!(re[0], 0.0);
        assert!((re[1] - 1.0).abs() < 1e-12);
    }
}
