//! Measurement, collapse, sampling, and expectation values.
//!
//! Projective measurement is the only non-unitary operation the simulator
//! needs. Probability accumulation and collapse are *embarrassingly local*
//! under the natural-order partitioning (they are diagonal), so the
//! distributed backends run them on their own partitions with a single
//! scalar reduction — no amplitude exchange.
//!
//! Probability mass is summed with the canonical pairwise-tree association
//! of [`svsim_types::numeric`]: every backend evaluates nodes of the same
//! perfect binary tree over the amplitude index space, so a partition's
//! partial is exactly one subtree value and the cross-PE combine
//! ([`svsim_types::numeric::pairwise_sum`]) reproduces the single-device
//! sum bit-for-bit at any PE count. A sequential accumulation here would
//! differ in the last ULPs, and the `1/sqrt(p)` collapse rescale would leak
//! that ULP into every amplitude, breaking cross-backend bit-identity.

use crate::par::parallel_sum;
use crate::state::StateVector;
use svsim_ir::{Pauli, PauliString};
use svsim_shmem::SharedF64Vec;
use svsim_types::bits::{bit, masked_parity};
use svsim_types::{SvError, SvResult, SvRng};

/// States at or above this size use fork-join threads for the diagonal
/// reductions (probabilities, expectations); below it the spawn overhead
/// loses.
const PAR_THRESHOLD: usize = 1 << 16;

/// Number of aligned subtrees evaluated in parallel by [`prob_one`] on
/// large states. Must be a power of two so each chunk is a node of the
/// canonical tree; 32 matches `par::MAX_CHUNKS`.
const PROB_CHUNKS: usize = 32;

/// Value of the canonical probability tree node covering the aligned block
/// `[base + start, base + start + len)` (global indices; `len` and the
/// block alignment are powers of two). `term(off)` yields `|amp|^2` at
/// local offset `off`. Blocks where bit `q` is constant-zero contribute an
/// exact `0.0` and are pruned without touching the amplitudes.
fn prob_tree<F: Fn(usize) -> f64>(term: &F, base: u64, start: usize, len: usize, q: u32) -> f64 {
    debug_assert!(len.is_power_of_two());
    if len as u64 <= 1u64 << q && bit(base + start as u64, q) == 0 {
        return 0.0;
    }
    if len <= 64 {
        // Iterative fold of the same perfect tree (leaf pairs, then their
        // parents, ...) — identical association to the recursion, without
        // the per-leaf call overhead.
        let mut buf = [0.0f64; 64];
        for (k, slot) in buf.iter_mut().take(len).enumerate() {
            *slot = if bit(base + (start + k) as u64, q) == 1 {
                term(start + k)
            } else {
                0.0
            };
        }
        let mut m = len;
        while m > 1 {
            m /= 2;
            for k in 0..m {
                buf[k] = buf[2 * k] + buf[2 * k + 1];
            }
        }
        return buf[0];
    }
    let half = len / 2;
    prob_tree(term, base, start, half, q) + prob_tree(term, base, start + half, half, q)
}

/// Canonical-tree probability that qubit `q` measures 1, over a full
/// [`crate::view::StateView`] of dimension `dim` — the single-device
/// executor's measurement path. Same association as [`prob_one`] and as
/// the partitioned partials, so every backend agrees bit-for-bit.
#[must_use]
pub(crate) fn prob_one_view<V: crate::view::StateView>(v: &V, q: u32, dim: u64) -> f64 {
    let term = |i: usize| {
        let (re, im) = v.get(i as u64);
        re * re + im * im
    };
    prob_tree(&term, 0, 0, dim as usize, q)
}

/// Probability that qubit `q` measures 1 (full local state).
///
/// Uses the canonical tree association (see module docs), so the result is
/// bit-identical to a partitioned evaluation combined with
/// [`svsim_types::numeric::pairwise_sum`].
#[must_use]
pub fn prob_one(state: &StateVector, q: u32) -> f64 {
    let (re, im) = (state.re(), state.im());
    let len = re.len();
    let term = |i: usize| re[i] * re[i] + im[i] * im[i];
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if len >= PAR_THRESHOLD && workers > 1 {
        // Evaluate aligned subtrees in parallel and combine them pairwise:
        // identical association to the sequential tree below.
        let chunk = len / PROB_CHUNKS;
        let mut partials = vec![0.0f64; PROB_CHUNKS];
        std::thread::scope(|scope| {
            for (c, slot) in partials.iter_mut().enumerate() {
                let term = &term;
                scope.spawn(move || {
                    *slot = prob_tree(term, 0, c * chunk, chunk, q);
                });
            }
        });
        return svsim_types::numeric::pairwise_sum(&partials);
    }
    prob_tree(&term, 0, 0, len, q)
}

/// Collapse qubit `q` to `outcome` with pre-computed branch probability `p`.
///
/// # Errors
/// [`SvError::Numeric`] when collapsing onto a ~zero-probability branch.
pub fn collapse(state: &mut StateVector, q: u32, outcome: u8, p: f64) -> SvResult<()> {
    if p < 1e-300 {
        return Err(SvError::Numeric(format!(
            "collapse of qubit {q} onto outcome {outcome} with probability ~0"
        )));
    }
    let scale = 1.0 / p.sqrt();
    let (re, im) = state.parts_mut();
    for i in 0..re.len() {
        if bit(i as u64, q) == u64::from(outcome) {
            re[i] *= scale;
            im[i] *= scale;
        } else {
            re[i] = 0.0;
            im[i] = 0.0;
        }
    }
    Ok(())
}

/// Measure qubit `q`: draw the outcome from `r in [0,1)`, collapse, return
/// the outcome. (`r` is supplied by the caller so distributed executors can
/// share one pre-drawn random stream.)
///
/// # Errors
/// Propagates [`collapse`] failures.
pub fn measure_with(state: &mut StateVector, q: u32, r: f64) -> SvResult<u8> {
    let p1 = prob_one(state, q);
    let outcome = u8::from(r < p1);
    let p = if outcome == 1 { p1 } else { 1.0 - p1 };
    collapse(state, q, outcome, p)?;
    Ok(outcome)
}

/// Reset qubit `q` to `|0>`: measure, then flip if it came out 1.
///
/// # Errors
/// Propagates collapse failures.
pub fn reset_with(state: &mut StateVector, q: u32, r: f64) -> SvResult<()> {
    let outcome = measure_with(state, q, r)?;
    if outcome == 1 {
        // Deterministic X on the collapsed state.
        let (re, im) = state.parts_mut();
        let half = re.len() / 2;
        for i in 0..half {
            let i0 = svsim_types::bits::pair_base_1q(i as u64, q) as usize;
            let i1 = i0 | (1usize << q);
            re.swap(i0, i1);
            im.swap(i0, i1);
        }
    }
    Ok(())
}

/// Partition-local partial probability of qubit `q` being 1, for a
/// partition whose first global amplitude index is `base`.
///
/// The partial is the canonical tree node for this partition's aligned
/// block, so combining the per-PE partials with
/// [`svsim_types::numeric::pairwise_sum`] equals [`prob_one`] on the whole
/// state bit-for-bit.
#[must_use]
pub fn partial_prob_one_partition(re: &SharedF64Vec, im: &SharedF64Vec, base: u64, q: u32) -> f64 {
    let term = |off: usize| {
        let (r, i) = (re.load(off), im.load(off));
        r * r + i * i
    };
    prob_tree(&term, base, 0, re.len(), q)
}

/// Partition partial of P(q=1) under a block-preserving qubit layout.
///
/// The partition holds one logical subcube starting at `logical_base`; the
/// walk enumerates it in logical order, translating each logical offset `o`
/// to the local physical offset through `low_pos` (`low_pos[k]` = physical
/// position of logical qubit `k`, all below the boundary). The tree shape is
/// therefore the single-device logical tree, bit-identical regardless of the
/// within-partition scramble. `q` is the LOGICAL measured qubit.
pub fn partial_prob_one_mapped(
    re: &SharedF64Vec,
    im: &SharedF64Vec,
    logical_base: u64,
    low_pos: &[u32],
    q: u32,
) -> f64 {
    let term = |o: usize| {
        let mut off = 0usize;
        for (k, &pos) in low_pos.iter().enumerate() {
            off |= ((o >> k) & 1) << (pos as usize);
        }
        let (r, i) = (re.load(off), im.load(off));
        r * r + i * i
    };
    prob_tree(&term, logical_base, 0, re.len(), q)
}

/// Partition-local collapse (diagonal, no communication).
pub fn collapse_partition(
    re: &SharedF64Vec,
    im: &SharedF64Vec,
    base: u64,
    q: u32,
    outcome: u8,
    inv_sqrt_p: f64,
) {
    for off in 0..re.len() {
        if bit(base + off as u64, q) == u64::from(outcome) {
            re.store(off, re.load(off) * inv_sqrt_p);
            im.store(off, im.load(off) * inv_sqrt_p);
        } else {
            re.store(off, 0.0);
            im.store(off, 0.0);
        }
    }
}

/// Sample `shots` basis states from the final distribution (inverse-CDF per
/// shot; the repeated sampling of VQA workloads, §1 of the paper).
#[must_use]
pub fn sample_shots(probabilities: &[f64], rng: &mut SvRng, shots: usize) -> Vec<u64> {
    // Cumulative distribution once, binary search per shot.
    let mut cdf = Vec::with_capacity(probabilities.len());
    let mut acc = 0.0;
    for &p in probabilities {
        acc += p;
        cdf.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    (0..shots)
        .map(|_| {
            let r = rng.next_f64() * total;
            match cdf.binary_search_by(|c| c.partial_cmp(&r).expect("no NaN")) {
                Ok(i) | Err(i) => (i.min(cdf.len() - 1)) as u64,
            }
        })
        .collect()
}

/// Histogram of sampled outcomes.
#[must_use]
pub fn histogram(samples: &[u64]) -> std::collections::BTreeMap<u64, usize> {
    let mut h = std::collections::BTreeMap::new();
    for &s in samples {
        *h.entry(s).or_insert(0) += 1;
    }
    h
}

/// `<Z-mask>` expectation from probabilities: `sum_i (-1)^{parity(i & mask)} p_i`.
#[must_use]
pub fn expval_z_mask(state: &StateVector, mask: u64) -> f64 {
    let (re, im) = (state.re(), state.im());
    let term = |i: usize, r: f64, m: f64| {
        let p = r * r + m * m;
        if masked_parity(i as u64, mask) == 1 {
            -p
        } else {
            p
        }
    };
    if re.len() >= PAR_THRESHOLD {
        return parallel_sum(re.len(), |range| {
            let mut e = 0.0;
            for i in range {
                e += term(i, re[i], im[i]);
            }
            e
        });
    }
    let mut e = 0.0;
    for i in 0..re.len() {
        e += term(i, re[i], im[i]);
    }
    e
}

/// `<P>` for an arbitrary Pauli string: basis-change a *copy* of the state
/// into the Z frame, then take the Z-mask expectation.
#[must_use]
pub fn expval_pauli(state: &StateVector, string: &PauliString) -> f64 {
    if string.is_identity() {
        return state.norm_sqr();
    }
    let needs_rotation = string.factors().iter().any(|&(p, _)| p != Pauli::Z);
    if !needs_rotation {
        return expval_z_mask(state, string.qubit_mask());
    }
    let mut rotated = state.clone();
    {
        use crate::compile::compile_gate;
        use crate::dispatch::resolve;
        use crate::kernels::worker_range;
        use crate::view::LocalView;
        let n = rotated.n_qubits();
        let (re, im) = rotated.parts_mut();
        let view = LocalView::new(re, im);
        let mut compiled = Vec::new();
        for &(p, q) in string.factors() {
            match p {
                Pauli::X => {
                    let g = svsim_ir::Gate::new(svsim_ir::GateKind::H, &[q], &[]).expect("h");
                    compile_gate(&g, n, true, &mut compiled);
                }
                Pauli::Y => {
                    // Rotate Y into Z: apply B† = H * S† (circuit: sdg, h).
                    for kind in [svsim_ir::GateKind::SDG, svsim_ir::GateKind::H] {
                        let g = svsim_ir::Gate::new(kind, &[q], &[]).expect("1q");
                        compile_gate(&g, n, true, &mut compiled);
                    }
                }
                _ => {}
            }
        }
        for cg in &compiled {
            resolve::<LocalView>(cg.id)(&view, &cg.args, worker_range(cg.args.work, 1, 0));
        }
    }
    expval_z_mask(&rotated, string.qubit_mask())
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_types::Complex64;

    fn plus_state() -> StateVector {
        let s2i = svsim_types::S2I;
        let mut s = StateVector::zero_state(1).unwrap();
        s.set_complex(&[Complex64::real(s2i), Complex64::real(s2i)])
            .unwrap();
        s
    }

    #[test]
    fn prob_of_basis_states() {
        let s = StateVector::zero_state(3).unwrap();
        assert_eq!(prob_one(&s, 0), 0.0);
        assert!((prob_one(&plus_state(), 0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn measure_collapses_and_normalizes() {
        let mut s = plus_state();
        let outcome = measure_with(&mut s, 0, 0.3).unwrap(); // 0.3 < 0.5 -> 1
        assert_eq!(outcome, 1);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(prob_one(&s, 0), 1.0);

        let mut s = plus_state();
        let outcome = measure_with(&mut s, 0, 0.9).unwrap(); // 0.9 >= 0.5 -> 0
        assert_eq!(outcome, 0);
        assert_eq!(prob_one(&s, 0), 0.0);
    }

    #[test]
    fn collapse_zero_probability_errors() {
        let mut s = StateVector::zero_state(1).unwrap();
        assert!(collapse(&mut s, 0, 1, 0.0).is_err());
    }

    #[test]
    fn reset_restores_zero() {
        let mut s = plus_state();
        reset_with(&mut s, 0, 0.1).unwrap(); // collapses to 1, then X
        assert_eq!(prob_one(&s, 0), 0.0);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_statistics() {
        let mut rng = SvRng::seed_from_u64(17);
        // 25/75 distribution.
        let probs = vec![0.25, 0.75];
        let samples = sample_shots(&probs, &mut rng, 20_000);
        let h = histogram(&samples);
        let f1 = h[&1] as f64 / 20_000.0;
        assert!((f1 - 0.75).abs() < 0.02, "frequency was {f1}");
    }

    #[test]
    fn sampling_never_out_of_range() {
        let mut rng = SvRng::seed_from_u64(3);
        let probs = vec![0.0, 0.0, 1.0, 0.0];
        for s in sample_shots(&probs, &mut rng, 1000) {
            assert_eq!(s, 2);
        }
    }

    #[test]
    fn z_expectations() {
        let s = StateVector::zero_state(2).unwrap();
        assert!((expval_z_mask(&s, 0b01) - 1.0).abs() < 1e-15);
        // |+> has <Z> = 0, <X> = 1.
        let p = plus_state();
        assert!(expval_z_mask(&p, 1).abs() < 1e-15);
        let x = PauliString::parse("X").unwrap();
        assert!((expval_pauli(&p, &x) - 1.0).abs() < 1e-12);
        let z = PauliString::parse("Z").unwrap();
        assert!(expval_pauli(&p, &z).abs() < 1e-12);
    }

    #[test]
    fn y_expectation() {
        // |i> = (|0> + i|1>)/sqrt2 has <Y> = +1.
        let s2i = svsim_types::S2I;
        let mut s = StateVector::zero_state(1).unwrap();
        s.set_complex(&[Complex64::real(s2i), Complex64::new(0.0, s2i)])
            .unwrap();
        let y = PauliString::parse("Y").unwrap();
        assert!((expval_pauli(&s, &y) - 1.0).abs() < 1e-12);
        // And the original state is untouched (expval works on a copy).
        assert!((s.amplitude(1).im - s2i).abs() < 1e-15);
    }

    #[test]
    fn identity_expectation_is_norm() {
        let s = plus_state();
        let id = PauliString::parse("I").unwrap();
        assert!((expval_pauli(&s, &id) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partition_partials_match_prob_one_bitwise() {
        // Irrational amplitudes (the qf21 kickback regime) where sequential
        // and chunked summation differ in ULPs: the canonical tree must make
        // per-partition partials combine to exactly the single-device value
        // for every power-of-two partitioning.
        let n = 10u32;
        let dim = 1usize << n;
        let mut s = StateVector::zero_state(n).unwrap();
        let amps: Vec<Complex64> = (0..dim)
            .map(|i| {
                let t = f64::from(i as u32) * 0.737_123;
                Complex64::new(t.sin(), t.cos() * 0.5)
            })
            .collect();
        s.set_complex(&amps).unwrap();
        for q in [0, 3, n - 1] {
            let whole = prob_one(&s, q);
            for n_pes in [2usize, 4, 8] {
                let per = dim / n_pes;
                let partials: Vec<f64> = (0..n_pes)
                    .map(|pe| {
                        let re = SharedF64Vec::new(per, 0.0);
                        let im = SharedF64Vec::new(per, 0.0);
                        for off in 0..per {
                            re.store(off, s.re()[pe * per + off]);
                            im.store(off, s.im()[pe * per + off]);
                        }
                        partial_prob_one_partition(&re, &im, (pe * per) as u64, q)
                    })
                    .collect();
                let combined = svsim_types::numeric::pairwise_sum(&partials);
                assert_eq!(
                    whole.to_bits(),
                    combined.to_bits(),
                    "q={q} n_pes={n_pes}: partitioned sum must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn partition_prob_and_collapse() {
        // 2 partitions of a 2-qubit |+> x |0> state: amps (s2i, s2i, 0, 0).
        let s2i = svsim_types::S2I;
        let re0 = SharedF64Vec::new(2, 0.0);
        let im0 = SharedF64Vec::new(2, 0.0);
        let re1 = SharedF64Vec::new(2, 0.0);
        let im1 = SharedF64Vec::new(2, 0.0);
        re0.store(0, s2i);
        re0.store(1, s2i);
        let p = partial_prob_one_partition(&re0, &im0, 0, 0)
            + partial_prob_one_partition(&re1, &im1, 2, 0);
        assert!((p - 0.5).abs() < 1e-15);
        // Collapse to outcome 0.
        let inv = (1.0f64 / 0.5).sqrt();
        collapse_partition(&re0, &im0, 0, 0, 0, inv);
        collapse_partition(&re1, &im1, 2, 0, 0, inv);
        assert!((re0.load(0) - 1.0).abs() < 1e-12);
        assert_eq!(re0.load(1), 0.0);
    }
}
