//! The `StateView` memory-fabric abstraction.
//!
//! Every gate kernel in [`crate::kernels`] is written once, generic over a
//! [`StateView`]. Monomorphization then produces three fused backends, the
//! exact structure of the paper's unified framework:
//!
//! - [`LocalView`]: a plain slice — the single-device path (§3.2.1).
//! - [`PeerView`]: a partitioned pointer array — the scale-up path over
//!   GPUDirect-style peer access (§3.2.2, Listing 4): the global index is
//!   split into `(partition, offset)` and dereferenced through the peer
//!   table.
//! - [`ShmemView`]: one-sided `get`/`put` through the SHMEM runtime — the
//!   scale-out path (§3.2.3, Listing 5), with traffic accounting.

use std::cell::Cell;
use svsim_shmem::{ShmemCtx, SymF64};

/// Read/write access to the distributed (or local) state vector.
///
/// `set` takes `&self` because the scale-up/scale-out fabrics are inherently
/// shared; data-race freedom is guaranteed by the work partitioning (each
/// amplitude pair has exactly one owner per gate) plus the inter-gate
/// barrier, exactly as on real SHMEM hardware.
pub trait StateView {
    /// Total number of amplitudes.
    fn dim(&self) -> u64;
    /// Load amplitude `idx` as `(re, im)`.
    fn get(&self, idx: u64) -> (f64, f64);
    /// Store amplitude `idx`.
    fn set(&self, idx: u64, re: f64, im: f64);
}

/// Single-device view over two local slices (SoA).
///
/// `Cell` gives shared in-place mutation with zero overhead on a single
/// thread (plain loads/stores after optimization).
pub struct LocalView<'a> {
    re: &'a [Cell<f64>],
    im: &'a [Cell<f64>],
}

impl<'a> LocalView<'a> {
    /// Wrap mutable slices.
    #[must_use]
    pub fn new(re: &'a mut [f64], im: &'a mut [f64]) -> Self {
        assert_eq!(re.len(), im.len());
        Self {
            re: Cell::from_mut(re).as_slice_of_cells(),
            im: Cell::from_mut(im).as_slice_of_cells(),
        }
    }
}

impl StateView for LocalView<'_> {
    #[inline]
    fn dim(&self) -> u64 {
        self.re.len() as u64
    }

    #[inline]
    fn get(&self, idx: u64) -> (f64, f64) {
        (self.re[idx as usize].get(), self.im[idx as usize].get())
    }

    #[inline]
    fn set(&self, idx: u64, re: f64, im: f64) {
        self.re[idx as usize].set(re);
        self.im[idx as usize].set(im);
    }
}

/// Scale-up view: the state vector partitioned evenly across `n_dev`
/// device partitions, addressed through a shared pointer table.
///
/// This is the Rust analog of Listing 4's `sv_real_ptr[pos_gid][pos]`:
/// `partition = idx >> log2(per_dev)`, `offset = idx & (per_dev - 1)`.
pub struct PeerView<'a> {
    re_parts: &'a [svsim_shmem::SharedF64Vec],
    im_parts: &'a [svsim_shmem::SharedF64Vec],
    /// log2 of the per-device amplitude count.
    shift: u32,
    mask: u64,
    dim: u64,
    /// Which partition this executor thread is pinned to (for traffic
    /// classification); access to any other partition is "remote".
    my_dev: usize,
    counters: Option<&'a svsim_shmem::PeCounters>,
}

impl<'a> PeerView<'a> {
    /// Build over per-device partitions (all equal power-of-two length).
    #[must_use]
    pub fn new(
        re_parts: &'a [svsim_shmem::SharedF64Vec],
        im_parts: &'a [svsim_shmem::SharedF64Vec],
        my_dev: usize,
        counters: Option<&'a svsim_shmem::PeCounters>,
    ) -> Self {
        assert_eq!(re_parts.len(), im_parts.len());
        assert!(!re_parts.is_empty());
        let per_dev = re_parts[0].len() as u64;
        assert!(per_dev.is_power_of_two());
        assert!(re_parts.iter().all(|p| p.len() as u64 == per_dev));
        Self {
            re_parts,
            im_parts,
            shift: per_dev.trailing_zeros(),
            mask: per_dev - 1,
            dim: per_dev * re_parts.len() as u64,
            my_dev,
            counters,
        }
    }
}

impl StateView for PeerView<'_> {
    #[inline]
    fn dim(&self) -> u64 {
        self.dim
    }

    #[inline]
    fn get(&self, idx: u64) -> (f64, f64) {
        let dev = (idx >> self.shift) as usize;
        let off = (idx & self.mask) as usize;
        if let Some(c) = self.counters {
            c.count_get(dev != self.my_dev, 16);
        }
        (self.re_parts[dev].load(off), self.im_parts[dev].load(off))
    }

    #[inline]
    fn set(&self, idx: u64, re: f64, im: f64) {
        let dev = (idx >> self.shift) as usize;
        let off = (idx & self.mask) as usize;
        if let Some(c) = self.counters {
            c.count_put(dev != self.my_dev, 16);
        }
        self.re_parts[dev].store(off, re);
        self.im_parts[dev].store(off, im);
    }
}

/// Scale-out view: one-sided SHMEM access to a symmetric-heap state vector.
pub struct ShmemView<'a, 'w> {
    ctx: &'a ShmemCtx<'w>,
    re: &'a SymF64,
    im: &'a SymF64,
    shift: u32,
    mask: u64,
    dim: u64,
}

impl<'a, 'w> ShmemView<'a, 'w> {
    /// Build over symmetric arrays (power-of-two words per PE).
    #[must_use]
    pub fn new(ctx: &'a ShmemCtx<'w>, re: &'a SymF64, im: &'a SymF64) -> Self {
        let per_pe = re.len_per_pe() as u64;
        assert!(per_pe.is_power_of_two());
        assert_eq!(im.len_per_pe() as u64, per_pe);
        Self {
            ctx,
            re,
            im,
            shift: per_pe.trailing_zeros(),
            mask: per_pe - 1,
            dim: per_pe * ctx.n_pes() as u64,
        }
    }
}

impl ShmemView<'_, '_> {
    /// Bulk slab exchange realizing a relabeling SWAP of physical qubit
    /// positions `a` (below the partition boundary) and `b` (at/above it).
    ///
    /// Every PE is paired with `partner = pe ^ (1 << (b - shift))`; the
    /// amplitude pairs to exchange sit in runs of `2^a` contiguous words
    /// (bit `a` of the local offset selects the outgoing half: hi-side PEs
    /// send their `bit_a = 0` runs, lo-side PEs their `bit_a = 1` runs).
    /// Two barrier epochs stage the move through the symmetric exchange
    /// buffers `xch_re`/`xch_im` (each `per_pe / 2` words):
    ///
    /// 1. each PE packs its outgoing runs into its *partner's* exchange
    ///    buffer — one `put_slice` message per run per component (the only
    ///    remote traffic of the whole swap); barrier;
    /// 2. each PE unpacks its own exchange buffer into the slots it just
    ///    sent away — purely local; barrier.
    ///
    /// Both epochs are race-free by construction: in epoch 1 every
    /// exchange-buffer word has exactly one writer (the owner's unique
    /// partner) and every state word one reader (its owner); epoch 2 is
    /// PE-local.
    ///
    /// All PEs must call this collectively with identical arguments.
    ///
    /// # Panics
    /// If `a` is not below the per-PE boundary or `b` not at/above it.
    pub fn exchange_pair(&self, a: u32, b: u32, xch_re: &SymF64, xch_im: &SymF64) {
        let per_pe = (self.mask + 1) as usize;
        assert!(a < self.shift, "low position must be intra-partition");
        assert!(b >= self.shift, "high position must be partition-indexing");
        let pe = self.ctx.my_pe();
        let pe_bit = b - self.shift;
        let partner = pe ^ (1usize << pe_bit);
        let my_hi = (pe >> pe_bit) & 1 == 1;
        let run = 1usize << a;
        let n_runs = per_pe / (2 * run);
        let mut buf = vec![0.0f64; run];
        for r in 0..n_runs {
            let src = 2 * r * run + if my_hi { 0 } else { run };
            for (sym, xch) in [(self.re, xch_re), (self.im, xch_im)] {
                self.ctx.get_slice_f64(sym, pe, src, &mut buf);
                self.ctx.put_slice_f64(xch, partner, r * run, &buf);
            }
        }
        self.ctx.barrier_all();
        for r in 0..n_runs {
            // Incoming data lands exactly where the outgoing data left:
            // the partner's run r is this PE's run r with bit `a` flipped.
            let dst = 2 * r * run + if my_hi { 0 } else { run };
            for (sym, xch) in [(self.re, xch_re), (self.im, xch_im)] {
                self.ctx.get_slice_f64(xch, pe, r * run, &mut buf);
                self.ctx.put_slice_f64(sym, pe, dst, &buf);
            }
        }
        self.ctx.barrier_all();
    }
}

impl StateView for ShmemView<'_, '_> {
    #[inline]
    fn dim(&self) -> u64 {
        self.dim
    }

    #[inline]
    fn get(&self, idx: u64) -> (f64, f64) {
        let pe = (idx >> self.shift) as usize;
        let off = (idx & self.mask) as usize;
        (
            self.ctx.get_f64(self.re, pe, off),
            self.ctx.get_f64(self.im, pe, off),
        )
    }

    #[inline]
    fn set(&self, idx: u64, re: f64, im: f64) {
        let pe = (idx >> self.shift) as usize;
        let off = (idx & self.mask) as usize;
        self.ctx.put_f64(self.re, pe, off, re);
        self.ctx.put_f64(self.im, pe, off, im);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_shmem::SharedF64Vec;

    #[test]
    fn local_view_roundtrip() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        let v = LocalView::new(&mut re, &mut im);
        assert_eq!(v.dim(), 8);
        v.set(3, 0.5, -0.5);
        assert_eq!(v.get(3), (0.5, -0.5));
        assert_eq!(re[3], 0.5);
        assert_eq!(im[3], -0.5);
    }

    #[test]
    fn peer_view_partition_arithmetic() {
        // 2 partitions of 4 amplitudes: idx 5 lands in partition 1, offset 1.
        let re: Vec<SharedF64Vec> = (0..2).map(|_| SharedF64Vec::new(4, 0.0)).collect();
        let im: Vec<SharedF64Vec> = (0..2).map(|_| SharedF64Vec::new(4, 0.0)).collect();
        let v = PeerView::new(&re, &im, 0, None);
        assert_eq!(v.dim(), 8);
        v.set(5, 1.25, 2.5);
        assert_eq!(re[1].load(1), 1.25);
        assert_eq!(im[1].load(1), 2.5);
        assert_eq!(v.get(5), (1.25, 2.5));
    }

    #[test]
    fn peer_view_counts_remote_accesses() {
        let re: Vec<SharedF64Vec> = (0..4).map(|_| SharedF64Vec::new(2, 0.0)).collect();
        let im: Vec<SharedF64Vec> = (0..4).map(|_| SharedF64Vec::new(2, 0.0)).collect();
        let counters = svsim_shmem::PeCounters::default();
        let v = PeerView::new(&re, &im, 1, Some(&counters));
        v.get(2); // partition 1: local
        v.get(0); // partition 0: remote
        v.set(7, 0.0, 0.0); // partition 3: remote
        let s = counters.snapshot();
        assert_eq!(s.local_gets, 1);
        assert_eq!(s.remote_gets, 1);
        assert_eq!(s.remote_puts, 1);
    }

    #[test]
    fn exchange_pair_realizes_a_physical_swap() {
        // 4 qubits over 4 PEs (per_pe = 4, boundary at position 2):
        // exchanging positions (0, 3) must permute amplitudes exactly like
        // a SWAP(0, 3) gate, using only bulk slab messages.
        let out = svsim_shmem::launch(4, |ctx| {
            let pe = ctx.my_pe();
            let re = ctx.malloc_f64(4).expect("alloc");
            let im = ctx.malloc_f64(4).expect("alloc");
            let xr = ctx.malloc_f64(2).expect("alloc");
            let xi = ctx.malloc_f64(2).expect("alloc");
            for off in 0..4 {
                let g = (pe * 4 + off) as f64;
                re.partition(pe).store(off, g);
                im.partition(pe).store(off, -g);
            }
            ctx.barrier_all();
            let v = ShmemView::new(ctx, &re, &im);
            v.exchange_pair(0, 3, &xr, &xi);
            (re.partition(pe).to_vec(), im.partition(pe).to_vec())
        })
        .unwrap();
        for i in 0u64..16 {
            let j = if (i & 1) != ((i >> 3) & 1) {
                i ^ 0b1001
            } else {
                i
            };
            let (pe, off) = ((i >> 2) as usize, (i & 3) as usize);
            assert_eq!(out.results[pe].0[off], j as f64, "re at {i}");
            assert_eq!(out.results[pe].1[off], -(j as f64), "im at {i}");
        }
        // Remote traffic is the phase-1 puts only: 2 runs x 2 components
        // per PE, 8 bytes each (run length 2^0 = 1 word).
        for t in &out.traffic {
            assert_eq!(t.remote_puts, 4);
            assert_eq!(t.remote_put_bytes, 32);
            assert_eq!(t.remote_gets, 0);
        }
    }

    #[test]
    fn shmem_view_roundtrip() {
        let out = svsim_shmem::launch(2, |ctx| {
            let re = ctx.malloc_f64(4).expect("alloc");
            let im = ctx.malloc_f64(4).expect("alloc");
            let v = ShmemView::new(ctx, &re, &im);
            assert_eq!(v.dim(), 8);
            if ctx.my_pe() == 0 {
                v.set(6, 3.0, 4.0); // lands on PE 1, offset 2
            }
            ctx.barrier_all();
            v.get(6)
        })
        .unwrap();
        assert_eq!(out.results, vec![(3.0, 4.0), (3.0, 4.0)]);
        // PE0's set crossed the fabric: 2 remote puts (re + im).
        assert_eq!(out.traffic[0].remote_puts, 2);
    }
}
