//! The `StateView` memory-fabric abstraction.
//!
//! Every gate kernel in [`crate::kernels`] is written once, generic over a
//! [`StateView`]. Monomorphization then produces three fused backends, the
//! exact structure of the paper's unified framework:
//!
//! - [`LocalView`]: a plain slice — the single-device path (§3.2.1).
//! - [`PeerView`]: a partitioned pointer array — the scale-up path over
//!   GPUDirect-style peer access (§3.2.2, Listing 4): the global index is
//!   split into `(partition, offset)` and dereferenced through the peer
//!   table.
//! - [`ShmemView`]: one-sided `get`/`put` through the SHMEM runtime — the
//!   scale-out path (§3.2.3, Listing 5), with traffic accounting.

use std::cell::Cell;
use svsim_shmem::{ShmemCtx, SymF64};

/// Read/write access to the distributed (or local) state vector.
///
/// `set` takes `&self` because the scale-up/scale-out fabrics are inherently
/// shared; data-race freedom is guaranteed by the work partitioning (each
/// amplitude pair has exactly one owner per gate) plus the inter-gate
/// barrier, exactly as on real SHMEM hardware.
pub trait StateView {
    /// Total number of amplitudes.
    fn dim(&self) -> u64;
    /// Load amplitude `idx` as `(re, im)`.
    fn get(&self, idx: u64) -> (f64, f64);
    /// Store amplitude `idx`.
    fn set(&self, idx: u64, re: f64, im: f64);
}

/// Single-device view over two local slices (SoA).
///
/// `Cell` gives shared in-place mutation with zero overhead on a single
/// thread (plain loads/stores after optimization).
pub struct LocalView<'a> {
    re: &'a [Cell<f64>],
    im: &'a [Cell<f64>],
}

impl<'a> LocalView<'a> {
    /// Wrap mutable slices.
    #[must_use]
    pub fn new(re: &'a mut [f64], im: &'a mut [f64]) -> Self {
        assert_eq!(re.len(), im.len());
        Self {
            re: Cell::from_mut(re).as_slice_of_cells(),
            im: Cell::from_mut(im).as_slice_of_cells(),
        }
    }
}

impl StateView for LocalView<'_> {
    #[inline]
    fn dim(&self) -> u64 {
        self.re.len() as u64
    }

    #[inline]
    fn get(&self, idx: u64) -> (f64, f64) {
        (self.re[idx as usize].get(), self.im[idx as usize].get())
    }

    #[inline]
    fn set(&self, idx: u64, re: f64, im: f64) {
        self.re[idx as usize].set(re);
        self.im[idx as usize].set(im);
    }
}

/// Scale-up view: the state vector partitioned evenly across `n_dev`
/// device partitions, addressed through a shared pointer table.
///
/// This is the Rust analog of Listing 4's `sv_real_ptr[pos_gid][pos]`:
/// `partition = idx >> log2(per_dev)`, `offset = idx & (per_dev - 1)`.
pub struct PeerView<'a> {
    re_parts: &'a [svsim_shmem::SharedF64Vec],
    im_parts: &'a [svsim_shmem::SharedF64Vec],
    /// log2 of the per-device amplitude count.
    shift: u32,
    mask: u64,
    dim: u64,
    /// Which partition this executor thread is pinned to (for traffic
    /// classification); access to any other partition is "remote".
    my_dev: usize,
    counters: Option<&'a svsim_shmem::PeCounters>,
}

impl<'a> PeerView<'a> {
    /// Build over per-device partitions (all equal power-of-two length).
    #[must_use]
    pub fn new(
        re_parts: &'a [svsim_shmem::SharedF64Vec],
        im_parts: &'a [svsim_shmem::SharedF64Vec],
        my_dev: usize,
        counters: Option<&'a svsim_shmem::PeCounters>,
    ) -> Self {
        assert_eq!(re_parts.len(), im_parts.len());
        assert!(!re_parts.is_empty());
        let per_dev = re_parts[0].len() as u64;
        assert!(per_dev.is_power_of_two());
        assert!(re_parts.iter().all(|p| p.len() as u64 == per_dev));
        Self {
            re_parts,
            im_parts,
            shift: per_dev.trailing_zeros(),
            mask: per_dev - 1,
            dim: per_dev * re_parts.len() as u64,
            my_dev,
            counters,
        }
    }
}

impl StateView for PeerView<'_> {
    #[inline]
    fn dim(&self) -> u64 {
        self.dim
    }

    #[inline]
    fn get(&self, idx: u64) -> (f64, f64) {
        let dev = (idx >> self.shift) as usize;
        let off = (idx & self.mask) as usize;
        if let Some(c) = self.counters {
            c.count_get(dev != self.my_dev, 16);
        }
        (self.re_parts[dev].load(off), self.im_parts[dev].load(off))
    }

    #[inline]
    fn set(&self, idx: u64, re: f64, im: f64) {
        let dev = (idx >> self.shift) as usize;
        let off = (idx & self.mask) as usize;
        if let Some(c) = self.counters {
            c.count_put(dev != self.my_dev, 16);
        }
        self.re_parts[dev].store(off, re);
        self.im_parts[dev].store(off, im);
    }
}

/// Scale-out view: one-sided SHMEM access to a symmetric-heap state vector.
pub struct ShmemView<'a, 'w> {
    ctx: &'a ShmemCtx<'w>,
    re: &'a SymF64,
    im: &'a SymF64,
    shift: u32,
    mask: u64,
    dim: u64,
}

impl<'a, 'w> ShmemView<'a, 'w> {
    /// Build over symmetric arrays (power-of-two words per PE).
    #[must_use]
    pub fn new(ctx: &'a ShmemCtx<'w>, re: &'a SymF64, im: &'a SymF64) -> Self {
        let per_pe = re.len_per_pe() as u64;
        assert!(per_pe.is_power_of_two());
        assert_eq!(im.len_per_pe() as u64, per_pe);
        Self {
            ctx,
            re,
            im,
            shift: per_pe.trailing_zeros(),
            mask: per_pe - 1,
            dim: per_pe * ctx.n_pes() as u64,
        }
    }
}

impl StateView for ShmemView<'_, '_> {
    #[inline]
    fn dim(&self) -> u64 {
        self.dim
    }

    #[inline]
    fn get(&self, idx: u64) -> (f64, f64) {
        let pe = (idx >> self.shift) as usize;
        let off = (idx & self.mask) as usize;
        (
            self.ctx.get_f64(self.re, pe, off),
            self.ctx.get_f64(self.im, pe, off),
        )
    }

    #[inline]
    fn set(&self, idx: u64, re: f64, im: f64) {
        let pe = (idx >> self.shift) as usize;
        let off = (idx & self.mask) as usize;
        self.ctx.put_f64(self.re, pe, off, re);
        self.ctx.put_f64(self.im, pe, off, im);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_shmem::SharedF64Vec;

    #[test]
    fn local_view_roundtrip() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        let v = LocalView::new(&mut re, &mut im);
        assert_eq!(v.dim(), 8);
        v.set(3, 0.5, -0.5);
        assert_eq!(v.get(3), (0.5, -0.5));
        assert_eq!(re[3], 0.5);
        assert_eq!(im[3], -0.5);
    }

    #[test]
    fn peer_view_partition_arithmetic() {
        // 2 partitions of 4 amplitudes: idx 5 lands in partition 1, offset 1.
        let re: Vec<SharedF64Vec> = (0..2).map(|_| SharedF64Vec::new(4, 0.0)).collect();
        let im: Vec<SharedF64Vec> = (0..2).map(|_| SharedF64Vec::new(4, 0.0)).collect();
        let v = PeerView::new(&re, &im, 0, None);
        assert_eq!(v.dim(), 8);
        v.set(5, 1.25, 2.5);
        assert_eq!(re[1].load(1), 1.25);
        assert_eq!(im[1].load(1), 2.5);
        assert_eq!(v.get(5), (1.25, 2.5));
    }

    #[test]
    fn peer_view_counts_remote_accesses() {
        let re: Vec<SharedF64Vec> = (0..4).map(|_| SharedF64Vec::new(2, 0.0)).collect();
        let im: Vec<SharedF64Vec> = (0..4).map(|_| SharedF64Vec::new(2, 0.0)).collect();
        let counters = svsim_shmem::PeCounters::default();
        let v = PeerView::new(&re, &im, 1, Some(&counters));
        v.get(2); // partition 1: local
        v.get(0); // partition 0: remote
        v.set(7, 0.0, 0.0); // partition 3: remote
        let s = counters.snapshot();
        assert_eq!(s.local_gets, 1);
        assert_eq!(s.remote_gets, 1);
        assert_eq!(s.remote_puts, 1);
    }

    #[test]
    fn shmem_view_roundtrip() {
        let out = svsim_shmem::launch(2, |ctx| {
            let re = ctx.malloc_f64(4).expect("alloc");
            let im = ctx.malloc_f64(4).expect("alloc");
            let v = ShmemView::new(ctx, &re, &im);
            assert_eq!(v.dim(), 8);
            if ctx.my_pe() == 0 {
                v.set(6, 3.0, 4.0); // lands on PE 1, offset 2
            }
            ctx.barrier_all();
            v.get(6)
        })
        .unwrap();
        assert_eq!(out.results, vec![(3.0, 4.0), (3.0, 4.0)]);
        // PE0's set crossed the fabric: 2 remote puts (re + im).
        assert_eq!(out.traffic[0].remote_puts, 2);
    }
}
