//! Amplitude checkpointing for fault-tolerant long runs.
//!
//! The paper's target machines run state-vector jobs for hours across many
//! PEs; a single failed rank must not lose the whole run. A [`Checkpoint`]
//! captures everything needed to resume a circuit bit-identically from an
//! op boundary: the amplitudes, the classical register, the op index, and
//! a *clone of the RNG* (measurement randomness is part of the state — a
//! resumed run must draw the same stream it would have drawn uninterrupted).
//!
//! Integrity is guarded by an FNV-1a checksum over the amplitude bits and
//! metadata, verified on [`Checkpoint::verify`] before a restore — a
//! checkpoint corrupted in flight fails loudly instead of resuming into a
//! silently wrong state.

use crate::state::StateVector;
use svsim_types::{SvError, SvResult, SvRng};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a-64 hasher over 64-bit words.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one 64-bit word (byte-at-a-time, little-endian).
    pub fn write_u64(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb an `f64` by its raw bit pattern (bit-identity, not numeric
    /// equality: `-0.0` and `0.0` hash differently, NaNs hash stably).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Final digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a digest of a state vector's amplitude bits — the "final state
/// checksum" that fault-bench compares between faulted and fault-free
/// runs. Bit-identical states ⇔ equal checksums.
#[must_use]
pub fn state_checksum(state: &StateVector) -> u64 {
    let mut h = Fnv1a::new();
    for &v in state.re() {
        h.write_f64(v);
    }
    for &v in state.im() {
        h.write_f64(v);
    }
    h.finish()
}

/// A resumable snapshot of a simulation at an op boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    op_index: usize,
    cbits: u64,
    rng: SvRng,
    re: Vec<f64>,
    im: Vec<f64>,
    checksum: u64,
}

impl Checkpoint {
    /// Capture the simulation state after `op_index` circuit ops.
    #[must_use]
    pub fn capture(op_index: usize, cbits: u64, rng: &SvRng, state: &StateVector) -> Self {
        let re = state.re().to_vec();
        let im = state.im().to_vec();
        let checksum = Self::digest(op_index, cbits, &re, &im);
        Self {
            op_index,
            cbits,
            rng: rng.clone(),
            re,
            im,
            checksum,
        }
    }

    fn digest(op_index: usize, cbits: u64, re: &[f64], im: &[f64]) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(op_index as u64);
        h.write_u64(cbits);
        for &v in re {
            h.write_f64(v);
        }
        for &v in im {
            h.write_f64(v);
        }
        h.finish()
    }

    /// Ops of the circuit already executed when this checkpoint was taken.
    #[must_use]
    pub fn op_index(&self) -> usize {
        self.op_index
    }

    /// Classical register at the checkpoint.
    #[must_use]
    pub fn cbits(&self) -> u64 {
        self.cbits
    }

    /// Stored FNV-1a checksum.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Serialized footprint in bytes (amplitudes + metadata) — what a real
    /// deployment would write to stable storage; reported to the engine's
    /// `checkpoint_bytes` metric.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.re.len() + self.im.len()) as u64 * 8 + 3 * 8
    }

    /// Recompute the checksum and compare with the stored one.
    ///
    /// # Errors
    /// [`SvError::Numeric`] on mismatch (the checkpoint is corrupt and
    /// must not be restored).
    pub fn verify(&self) -> SvResult<()> {
        let got = Self::digest(self.op_index, self.cbits, &self.re, &self.im);
        if got != self.checksum {
            return Err(SvError::Numeric(format!(
                "checkpoint checksum mismatch at op {}: stored {:#018x}, computed {got:#018x}",
                self.op_index, self.checksum
            )));
        }
        Ok(())
    }

    /// Restore amplitudes, classical bits and RNG into the simulator's
    /// parts. The caller must [`verify`](Self::verify) first.
    ///
    /// # Errors
    /// [`SvError::InvalidConfig`] when the state dimensions disagree.
    pub(crate) fn restore_into(
        &self,
        state: &mut StateVector,
        cbits: &mut u64,
        rng: &mut SvRng,
    ) -> SvResult<()> {
        if state.re().len() != self.re.len() {
            return Err(SvError::InvalidConfig(format!(
                "checkpoint holds {} amplitudes, simulator has {}",
                self.re.len(),
                state.re().len()
            )));
        }
        let (re, im) = state.parts_mut();
        re.copy_from_slice(&self.re);
        im.copy_from_slice(&self.im);
        *cbits = self.cbits;
        *rng = self.rng.clone();
        Ok(())
    }

    /// Corrupt one amplitude in place — test-only hook for exercising the
    /// checksum-mismatch path.
    #[cfg(test)]
    pub(crate) fn corrupt_for_test(&mut self) {
        if let Some(v) = self.re.first_mut() {
            *v += 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c; one byte 0x61 then 7 zero
        // bytes via write_u64 would differ, so check the primitive
        // directly against a hand-rolled loop.
        let mut h = Fnv1a::new();
        h.write_u64(0x61);
        let mut expect = FNV_OFFSET;
        for b in 0x61u64.to_le_bytes() {
            expect ^= u64::from(b);
            expect = expect.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(h.finish(), expect);
        // First byte alone matches the classic "a" vector prefix step.
        let mut one = FNV_OFFSET;
        one ^= 0x61;
        one = one.wrapping_mul(FNV_PRIME);
        assert_eq!(one, 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn capture_verify_restore_roundtrip() {
        let mut state = StateVector::zero_state(3).unwrap();
        {
            let (re, im) = state.parts_mut();
            re[3] = 0.25;
            im[5] = -0.5;
        }
        let rng = SvRng::seed_from_u64(7);
        let cp = Checkpoint::capture(4, 0b101, &rng, &state);
        cp.verify().unwrap();
        assert_eq!(cp.op_index(), 4);
        assert_eq!(cp.cbits(), 0b101);
        assert_eq!(cp.bytes(), 16 * 8 + 24);

        let mut other = StateVector::zero_state(3).unwrap();
        let mut cbits = 0u64;
        let mut rng2 = SvRng::seed_from_u64(999);
        cp.restore_into(&mut other, &mut cbits, &mut rng2).unwrap();
        assert_eq!(other.re(), state.re());
        assert_eq!(other.im(), state.im());
        assert_eq!(cbits, 0b101);
        assert_eq!(state_checksum(&other), state_checksum(&state));
    }

    #[test]
    fn corruption_is_detected() {
        let state = StateVector::zero_state(2).unwrap();
        let rng = SvRng::seed_from_u64(1);
        let mut cp = Checkpoint::capture(0, 0, &rng, &state);
        cp.corrupt_for_test();
        let err = cp.verify().unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let state = StateVector::zero_state(2).unwrap();
        let rng = SvRng::seed_from_u64(1);
        let cp = Checkpoint::capture(0, 0, &rng, &state);
        let mut small = StateVector::zero_state(1).unwrap();
        let mut cbits = 0;
        let mut r = SvRng::seed_from_u64(2);
        assert!(cp.restore_into(&mut small, &mut cbits, &mut r).is_err());
    }
}
