//! Amplitude checkpointing for fault-tolerant long runs.
//!
//! The paper's target machines run state-vector jobs for hours across many
//! PEs; a single failed rank must not lose the whole run. A [`Checkpoint`]
//! captures everything needed to resume a circuit bit-identically from an
//! op boundary: the amplitudes, the classical register, the op index, and
//! a *clone of the RNG* (measurement randomness is part of the state — a
//! resumed run must draw the same stream it would have drawn uninterrupted).
//!
//! Integrity is guarded by an FNV-1a checksum over the amplitude bits and
//! metadata, verified on [`Checkpoint::verify`] before a restore — a
//! checkpoint corrupted in flight fails loudly instead of resuming into a
//! silently wrong state.
//!
//! [`CheckpointStore`] persists checkpoints to disk crash-consistently:
//! each save is a new *generation* written to a temporary file, `fsync`ed,
//! then atomically renamed into place — a crash at any instant leaves
//! either the complete new generation or the untouched previous one, never
//! a half-written file under a valid name. Loads verify a whole-file
//! checksum trailer plus the embedded generation number and fall back to
//! the previous generation when the newest is corrupt (bit flip,
//! truncation, torn write).

use crate::state::StateVector;
use std::io::Write;
use std::path::{Path, PathBuf};
use svsim_types::{SvError, SvResult, SvRng};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a-64 hasher over 64-bit words.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one 64-bit word (byte-at-a-time, little-endian).
    pub fn write_u64(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb an `f64` by its raw bit pattern (bit-identity, not numeric
    /// equality: `-0.0` and `0.0` hash differently, NaNs hash stably).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Final digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a digest of a state vector's amplitude bits — the "final state
/// checksum" that fault-bench compares between faulted and fault-free
/// runs. Bit-identical states ⇔ equal checksums.
#[must_use]
pub fn state_checksum(state: &StateVector) -> u64 {
    let mut h = Fnv1a::new();
    for &v in state.re() {
        h.write_f64(v);
    }
    for &v in state.im() {
        h.write_f64(v);
    }
    h.finish()
}

/// A resumable snapshot of a simulation at an op boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    op_index: usize,
    cbits: u64,
    rng: SvRng,
    re: Vec<f64>,
    im: Vec<f64>,
    checksum: u64,
}

impl Checkpoint {
    /// Capture the simulation state after `op_index` circuit ops.
    #[must_use]
    pub fn capture(op_index: usize, cbits: u64, rng: &SvRng, state: &StateVector) -> Self {
        let re = state.re().to_vec();
        let im = state.im().to_vec();
        let checksum = Self::digest(op_index, cbits, &re, &im);
        Self {
            op_index,
            cbits,
            rng: rng.clone(),
            re,
            im,
            checksum,
        }
    }

    fn digest(op_index: usize, cbits: u64, re: &[f64], im: &[f64]) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(op_index as u64);
        h.write_u64(cbits);
        for &v in re {
            h.write_f64(v);
        }
        for &v in im {
            h.write_f64(v);
        }
        h.finish()
    }

    /// Ops of the circuit already executed when this checkpoint was taken.
    #[must_use]
    pub fn op_index(&self) -> usize {
        self.op_index
    }

    /// Classical register at the checkpoint.
    #[must_use]
    pub fn cbits(&self) -> u64 {
        self.cbits
    }

    /// Stored FNV-1a checksum.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Serialized footprint in bytes (amplitudes + metadata) — what a real
    /// deployment would write to stable storage; reported to the engine's
    /// `checkpoint_bytes` metric.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.re.len() + self.im.len()) as u64 * 8 + 3 * 8
    }

    /// Number of amplitudes in the captured state (the state-vector
    /// dimension `2^n`); dimension check before adopting a checkpoint into
    /// a differently-partitioned simulator.
    #[must_use]
    pub fn n_amplitudes(&self) -> usize {
        self.re.len()
    }

    /// Recompute the checksum and compare with the stored one.
    ///
    /// # Errors
    /// [`SvError::Numeric`] on mismatch (the checkpoint is corrupt and
    /// must not be restored).
    pub fn verify(&self) -> SvResult<()> {
        let got = Self::digest(self.op_index, self.cbits, &self.re, &self.im);
        if got != self.checksum {
            return Err(SvError::Numeric(format!(
                "checkpoint checksum mismatch at op {}: stored {:#018x}, computed {got:#018x}",
                self.op_index, self.checksum
            )));
        }
        Ok(())
    }

    /// Restore amplitudes, classical bits and RNG into the simulator's
    /// parts. The caller must [`verify`](Self::verify) first.
    ///
    /// # Errors
    /// [`SvError::InvalidConfig`] when the state dimensions disagree.
    pub(crate) fn restore_into(
        &self,
        state: &mut StateVector,
        cbits: &mut u64,
        rng: &mut SvRng,
    ) -> SvResult<()> {
        if state.re().len() != self.re.len() {
            return Err(SvError::InvalidConfig(format!(
                "checkpoint holds {} amplitudes, simulator has {}",
                self.re.len(),
                state.re().len()
            )));
        }
        let (re, im) = state.parts_mut();
        re.copy_from_slice(&self.re);
        im.copy_from_slice(&self.im);
        *cbits = self.cbits;
        *rng = self.rng.clone();
        Ok(())
    }

    /// Corrupt one amplitude in place — test-only hook for exercising the
    /// checksum-mismatch path.
    #[cfg(test)]
    pub(crate) fn corrupt_for_test(&mut self) {
        if let Some(v) = self.re.first_mut() {
            *v += 1.0;
        }
    }

    /// Serialize into the on-disk generation format: little-endian 64-bit
    /// words, self-describing, with a whole-file FNV-1a trailer appended
    /// last so any torn prefix fails verification.
    fn to_bytes(&self, generation: u64) -> Vec<u8> {
        let (s, spare) = self.rng.state();
        let mut buf = Vec::with_capacity((self.re.len() + self.im.len()) * 8 + 13 * 8);
        let push = |buf: &mut Vec<u8>, w: u64| buf.extend_from_slice(&w.to_le_bytes());
        push(&mut buf, STORE_MAGIC);
        push(&mut buf, generation);
        push(&mut buf, self.op_index as u64);
        push(&mut buf, self.cbits);
        for w in s {
            push(&mut buf, w);
        }
        push(&mut buf, u64::from(spare.is_some()));
        push(&mut buf, spare.unwrap_or(0.0).to_bits());
        push(&mut buf, self.re.len() as u64);
        for &v in &self.re {
            push(&mut buf, v.to_bits());
        }
        for &v in &self.im {
            push(&mut buf, v.to_bits());
        }
        push(&mut buf, self.checksum);
        let mut h = Fnv1a::new();
        for chunk in buf.chunks_exact(8) {
            h.write_u64(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let trailer = h.finish();
        buf.extend_from_slice(&trailer.to_le_bytes());
        buf
    }

    /// Parse and fully verify a serialized generation: length, magic,
    /// whole-file trailer, embedded generation number, and the in-memory
    /// checkpoint digest must all hold.
    fn from_bytes(bytes: &[u8], expect_generation: u64) -> SvResult<Self> {
        let corrupt =
            |what: &str| SvError::Checkpoint(format!("generation {expect_generation}: {what}"));
        if !bytes.len().is_multiple_of(8) || bytes.len() < 14 * 8 {
            return Err(corrupt("truncated (not a whole number of records)"));
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        let mut h = Fnv1a::new();
        for &w in &words[..words.len() - 1] {
            h.write_u64(w);
        }
        if h.finish() != words[words.len() - 1] {
            return Err(corrupt("file checksum mismatch (bit flip or torn write)"));
        }
        if words[0] != STORE_MAGIC {
            return Err(corrupt("bad magic (not a checkpoint generation)"));
        }
        if words[1] != expect_generation {
            return Err(corrupt(&format!(
                "stale generation: file claims generation {}",
                words[1]
            )));
        }
        let op_index = usize::try_from(words[2])
            .map_err(|_| corrupt("op index does not fit this platform"))?;
        let cbits = words[3];
        let s = [words[4], words[5], words[6], words[7]];
        let spare = (words[8] != 0).then(|| f64::from_bits(words[9]));
        let n = usize::try_from(words[10]).map_err(|_| corrupt("amplitude count overflow"))?;
        let body = &words[11..words.len() - 2];
        if body.len() != 2 * n {
            return Err(corrupt("truncated amplitude payload"));
        }
        let re: Vec<f64> = body[..n].iter().map(|&w| f64::from_bits(w)).collect();
        let im: Vec<f64> = body[n..].iter().map(|&w| f64::from_bits(w)).collect();
        let cp = Self {
            op_index,
            cbits,
            rng: SvRng::from_state(s, spare),
            re,
            im,
            checksum: words[words.len() - 2],
        };
        cp.verify()
            .map_err(|e| corrupt(&format!("payload digest mismatch: {e}")))?;
        Ok(cp)
    }
}

/// First word of every on-disk generation (`b"SVCKPT01"` little-endian).
const STORE_MAGIC: u64 = u64::from_le_bytes(*b"SVCKPT01");

/// Generations retained after a save: the newest plus its predecessor, so
/// a corrupt newest generation always has a fallback.
const KEEP_GENERATIONS: usize = 2;

/// Where a simulated crash interrupts the commit protocol — used by the
/// `svsim-verify` crash-at-any-write checker, which drives the *same*
/// commit code [`CheckpointStore::save`] runs in production.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitCrash {
    /// Die right after creating the temp file (zero bytes written).
    AfterCreate,
    /// Die mid-write: only the first `n` bytes of the temp file land.
    AfterTempBytes(usize),
    /// Die after the full write and fsync, before the rename — the temp
    /// file is durable but no generation name points at it.
    BeforeRename,
}

/// Crash-consistent on-disk checkpoint store.
///
/// Each [`save`](Self::save) writes a new numbered generation with the
/// write-temp → `fsync` → atomic-rename protocol; loads are fully verified
/// and [`load_latest`](Self::load_latest) falls back to the previous
/// generation when the newest is corrupt.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    next_gen: u64,
}

impl CheckpointStore {
    /// Open (creating if needed) a store rooted at `dir`, resuming the
    /// generation counter after the newest file already present.
    ///
    /// # Errors
    /// [`SvError::Checkpoint`] when the directory cannot be created or
    /// scanned.
    pub fn open(dir: impl Into<PathBuf>) -> SvResult<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            SvError::Checkpoint(format!("cannot create store at {}: {e}", dir.display()))
        })?;
        let mut store = Self { dir, next_gen: 0 };
        store.next_gen = store.generations()?.last().map_or(0, |g| g + 1);
        Ok(store)
    }

    /// Directory the store persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn gen_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:06}.ckpt"))
    }

    /// Generation numbers currently on disk, ascending (no validity check —
    /// a listed generation may still fail to load).
    ///
    /// # Errors
    /// [`SvError::Checkpoint`] when the directory cannot be read.
    pub fn generations(&self) -> SvResult<Vec<u64>> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| SvError::Checkpoint(format!("cannot scan {}: {e}", self.dir.display())))?;
        let mut gens: Vec<u64> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                let digits = name.strip_prefix("gen-")?.strip_suffix(".ckpt")?;
                digits.parse().ok()
            })
            .collect();
        gens.sort_unstable();
        Ok(gens)
    }

    /// Persist `cp` as the next generation and prune old ones, returning
    /// the generation number written.
    ///
    /// The bytes land in `gen-N.tmp` first, are `fsync`ed, then renamed to
    /// `gen-N.ckpt` — the store never exposes a partially written file
    /// under a valid generation name.
    ///
    /// # Errors
    /// [`SvError::Checkpoint`] on any I/O failure (the store is left with
    /// its previous generations intact).
    pub fn save(&mut self, cp: &Checkpoint) -> SvResult<u64> {
        Ok(self
            .commit(cp, None)?
            .expect("commit without crash injection always completes"))
    }

    /// Run the *real* commit protocol but stop dead at `crash`, as if the
    /// process died at that instant — the `svsim-verify` checker calls
    /// this for every possible crash point and proves
    /// [`load_latest`](Self::load_latest) never returns an uncommitted
    /// generation. The store must be treated as lost afterwards (a real
    /// crash kills the process); recovery reopens the directory with
    /// [`open`](Self::open).
    ///
    /// # Errors
    /// [`SvError::Checkpoint`] on I/O failure before the crash point.
    pub fn save_crashed(&mut self, cp: &Checkpoint, crash: CommitCrash) -> SvResult<()> {
        self.commit(cp, Some(crash)).map(|_| ())
    }

    /// The commit protocol: write `gen-N.tmp`, `fsync`, rename into
    /// place. `crash` simulates dying at a protocol step (`None` on the
    /// production path — [`save`](Self::save) is this code, so what the
    /// checker crashes is exactly what ships).
    fn commit(&mut self, cp: &Checkpoint, crash: Option<CommitCrash>) -> SvResult<Option<u64>> {
        let generation = self.next_gen;
        let bytes = cp.to_bytes(generation);
        let tmp = self.dir.join(format!("gen-{generation:06}.tmp"));
        let io_err = |what: &str, e: std::io::Error| {
            SvError::Checkpoint(format!("generation {generation}: {what}: {e}"))
        };
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create temp", e))?;
        if crash == Some(CommitCrash::AfterCreate) {
            return Ok(None);
        }
        if let Some(CommitCrash::AfterTempBytes(n)) = crash {
            f.write_all(&bytes[..n.min(bytes.len())])
                .map_err(|e| io_err("write", e))?;
            return Ok(None);
        }
        f.write_all(&bytes).map_err(|e| io_err("write", e))?;
        // The barrier that makes the rename atomic in the crash sense:
        // the data must be durable before the name is.
        f.sync_all().map_err(|e| io_err("fsync", e))?;
        drop(f);
        if crash == Some(CommitCrash::BeforeRename) {
            return Ok(None);
        }
        std::fs::rename(&tmp, self.gen_path(generation)).map_err(|e| io_err("rename", e))?;
        self.next_gen = generation + 1;
        self.prune();
        Ok(Some(generation))
    }

    /// Simulate a mid-write crash for fault injection
    /// ([`svsim_shmem::FaultAction::TornCheckpoint`]): half the serialized
    /// bytes are written *directly at the final generation name*, skipping
    /// the temp + fsync + rename protocol — exactly the torn state that
    /// protocol exists to prevent. The next [`load_latest`](Self::load_latest)
    /// must reject this generation and fall back to its predecessor.
    ///
    /// # Errors
    /// [`SvError::Checkpoint`] on I/O failure.
    pub fn save_torn(&mut self, cp: &Checkpoint) -> SvResult<u64> {
        let generation = self.next_gen;
        let bytes = cp.to_bytes(generation);
        std::fs::write(self.gen_path(generation), &bytes[..bytes.len() / 2]).map_err(|e| {
            SvError::Checkpoint(format!("generation {generation}: torn write: {e}"))
        })?;
        self.next_gen = generation + 1;
        Ok(generation)
    }

    /// Delete everything but the newest [`KEEP_GENERATIONS`] generations.
    /// Best-effort: a file that cannot be deleted is simply retained.
    fn prune(&self) {
        if let Ok(gens) = self.generations() {
            for &g in gens.iter().rev().skip(KEEP_GENERATIONS) {
                let _ = std::fs::remove_file(self.gen_path(g));
            }
        }
    }

    /// Load and fully verify one specific generation.
    ///
    /// # Errors
    /// [`SvError::Checkpoint`] when the file is missing, truncated, fails
    /// the whole-file checksum, carries the wrong embedded generation
    /// number (stale file under a renamed path), or fails the payload
    /// digest.
    pub fn load_generation(&self, generation: u64) -> SvResult<Checkpoint> {
        let bytes = std::fs::read(self.gen_path(generation)).map_err(|e| {
            SvError::Checkpoint(format!("generation {generation}: cannot read: {e}"))
        })?;
        Checkpoint::from_bytes(&bytes, generation)
    }

    /// Load the newest generation that verifies, falling back through older
    /// ones — the crash-recovery entry point. Returns `Ok(None)` when the
    /// store holds no generations at all.
    ///
    /// # Errors
    /// [`SvError::Checkpoint`] when generations exist but none verifies.
    pub fn load_latest(&self) -> SvResult<Option<(u64, Checkpoint)>> {
        let gens = self.generations()?;
        if gens.is_empty() {
            return Ok(None);
        }
        let mut last_err = None;
        for &g in gens.iter().rev() {
            match self.load_generation(g) {
                Ok(cp) => return Ok(Some((g, cp))),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| SvError::Checkpoint("no loadable generation".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c; one byte 0x61 then 7 zero
        // bytes via write_u64 would differ, so check the primitive
        // directly against a hand-rolled loop.
        let mut h = Fnv1a::new();
        h.write_u64(0x61);
        let mut expect = FNV_OFFSET;
        for b in 0x61u64.to_le_bytes() {
            expect ^= u64::from(b);
            expect = expect.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(h.finish(), expect);
        // First byte alone matches the classic "a" vector prefix step.
        let mut one = FNV_OFFSET;
        one ^= 0x61;
        one = one.wrapping_mul(FNV_PRIME);
        assert_eq!(one, 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn capture_verify_restore_roundtrip() {
        let mut state = StateVector::zero_state(3).unwrap();
        {
            let (re, im) = state.parts_mut();
            re[3] = 0.25;
            im[5] = -0.5;
        }
        let rng = SvRng::seed_from_u64(7);
        let cp = Checkpoint::capture(4, 0b101, &rng, &state);
        cp.verify().unwrap();
        assert_eq!(cp.op_index(), 4);
        assert_eq!(cp.cbits(), 0b101);
        assert_eq!(cp.bytes(), 16 * 8 + 24);

        let mut other = StateVector::zero_state(3).unwrap();
        let mut cbits = 0u64;
        let mut rng2 = SvRng::seed_from_u64(999);
        cp.restore_into(&mut other, &mut cbits, &mut rng2).unwrap();
        assert_eq!(other.re(), state.re());
        assert_eq!(other.im(), state.im());
        assert_eq!(cbits, 0b101);
        assert_eq!(state_checksum(&other), state_checksum(&state));
    }

    #[test]
    fn corruption_is_detected() {
        let state = StateVector::zero_state(2).unwrap();
        let rng = SvRng::seed_from_u64(1);
        let mut cp = Checkpoint::capture(0, 0, &rng, &state);
        cp.corrupt_for_test();
        let err = cp.verify().unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let state = StateVector::zero_state(2).unwrap();
        let rng = SvRng::seed_from_u64(1);
        let cp = Checkpoint::capture(0, 0, &rng, &state);
        let mut small = StateVector::zero_state(1).unwrap();
        let mut cbits = 0;
        let mut r = SvRng::seed_from_u64(2);
        assert!(cp.restore_into(&mut small, &mut cbits, &mut r).is_err());
    }

    /// Fresh scratch directory under the OS temp root; removed up front so
    /// reruns start clean.
    fn tmp_store(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("svsim-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_checkpoint(op: usize, salt: u64) -> Checkpoint {
        let mut state = StateVector::zero_state(3).unwrap();
        {
            let (re, im) = state.parts_mut();
            re[1] = 0.5 + salt as f64;
            im[6] = -0.25;
        }
        let mut rng = SvRng::seed_from_u64(salt);
        let _ = rng.next_gaussian(); // cache a Box-Muller spare
        Checkpoint::capture(op, salt, &rng, &state)
    }

    fn assert_same(a: &Checkpoint, b: &Checkpoint) {
        assert_eq!(a.op_index, b.op_index);
        assert_eq!(a.cbits, b.cbits);
        assert_eq!(a.rng.state(), b.rng.state());
        assert_eq!(a.re, b.re);
        assert_eq!(a.im, b.im);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn store_save_load_roundtrip_including_rng_spare() {
        let dir = tmp_store("roundtrip");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let cp = sample_checkpoint(4, 7);
        let g = store.save(&cp).unwrap();
        assert_eq!(g, 0);
        let loaded = store.load_generation(0).unwrap();
        assert_same(&cp, &loaded);
        let (g2, latest) = store.load_latest().unwrap().expect("one generation");
        assert_eq!(g2, 0);
        assert_same(&cp, &latest);
        // Reopening resumes the counter after the newest file.
        let mut reopened = CheckpointStore::open(&dir).unwrap();
        assert_eq!(reopened.save(&sample_checkpoint(8, 9)).unwrap(), 1);
    }

    #[test]
    fn store_prunes_to_two_generations() {
        let dir = tmp_store("prune");
        let mut store = CheckpointStore::open(&dir).unwrap();
        for op in 0..5 {
            store.save(&sample_checkpoint(op, op as u64)).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![3, 4]);
        assert_eq!(store.load_latest().unwrap().unwrap().0, 4);
    }

    #[test]
    fn bit_flip_is_rejected_and_previous_generation_recovers() {
        let dir = tmp_store("bitflip");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let good = sample_checkpoint(2, 1);
        store.save(&good).unwrap();
        store.save(&sample_checkpoint(6, 2)).unwrap();
        // Flip one bit in the middle of the newest generation.
        let path = store.gen_path(1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = store.load_generation(1).unwrap_err();
        assert!(
            matches!(&err, SvError::Checkpoint(m) if m.contains("checksum mismatch")),
            "{err}"
        );
        let (g, cp) = store.load_latest().unwrap().expect("fallback");
        assert_eq!(g, 0, "must fall back to the previous generation");
        assert_same(&good, &cp);
    }

    #[test]
    fn truncation_is_rejected_and_previous_generation_recovers() {
        let dir = tmp_store("trunc");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let good = sample_checkpoint(2, 3);
        store.save(&good).unwrap();
        store.save(&sample_checkpoint(6, 4)).unwrap();
        let path = store.gen_path(1);
        let bytes = std::fs::read(&path).unwrap();
        // Both torn shapes: mid-record (ragged) and record-aligned.
        for cut in [bytes.len() / 2 + 3, bytes.len() - 8] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = store.load_generation(1).unwrap_err();
            assert!(matches!(err, SvError::Checkpoint(_)), "{err}");
            assert_eq!(store.load_latest().unwrap().unwrap().0, 0);
        }
    }

    #[test]
    fn stale_generation_under_a_renamed_path_is_rejected() {
        let dir = tmp_store("stale");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let good = sample_checkpoint(2, 5);
        store.save(&good).unwrap();
        store.save(&sample_checkpoint(6, 6)).unwrap();
        // An operator "restores" an old file under the newest name: the
        // embedded generation number betrays it.
        std::fs::copy(store.gen_path(0), store.gen_path(1)).unwrap();
        let err = store.load_generation(1).unwrap_err();
        assert!(
            matches!(&err, SvError::Checkpoint(m) if m.contains("stale generation")),
            "{err}"
        );
        let (g, cp) = store.load_latest().unwrap().expect("fallback");
        assert_eq!(g, 0);
        assert_same(&good, &cp);
    }

    #[test]
    fn torn_save_is_rejected_and_previous_generation_recovers() {
        let dir = tmp_store("torn");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let good = sample_checkpoint(2, 8);
        store.save(&good).unwrap();
        store.save_torn(&sample_checkpoint(6, 9)).unwrap();
        assert!(store.load_generation(1).is_err());
        let (g, cp) = store.load_latest().unwrap().expect("fallback");
        assert_eq!(g, 0);
        assert_same(&good, &cp);
    }

    #[test]
    fn empty_store_and_all_corrupt_store_are_distinguished() {
        let dir = tmp_store("empty");
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert!(
            store.load_latest().unwrap().is_none(),
            "empty store is Ok(None)"
        );
        store.save_torn(&sample_checkpoint(1, 10)).unwrap();
        assert!(
            store.load_latest().is_err(),
            "only-corrupt store is an error"
        );
    }
}
