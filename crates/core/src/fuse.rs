//! Gate fusion: collapse runs of adjacent kernels sharing a small qubit
//! window into one fused sweep.
//!
//! State-vector simulation is memory-bandwidth bound (arithmetic intensity
//! below 1/2 — PAPER.md §1), so the dominant single-node cost is *passes
//! over the `2^n` amplitudes*, not arithmetic. This pass rewrites a
//! compiled kernel queue so that a run of gates whose combined footprint
//! fits a window of `k ≤ 3` qubits executes as **one** sweep
//! ([`crate::kernels::k_fused1`]/`2`/`3`): each of the `2^{n-k}` windows is
//! gathered once, the constituent kernels are replayed over a
//! [`crate::view::LocalView`] of the window in window-local coordinates,
//! and the window is scattered back.
//!
//! Replaying the constituent kernels — instead of pre-multiplying one dense
//! `2^k × 2^k` matrix — is what keeps fusion **bit-identical**: every
//! amplitude goes through the exact floating-point expressions the unfused
//! schedule would have evaluated, in the same order (windows are disjoint,
//! so per-window replay commutes with the global gate-by-gate order). It
//! also gives batched parameter sweeps symbolic angle slots for free: a
//! template patch rewrites the micro-op's `s0`/`s1`/`m` payload inside the
//! fused gate, with no re-fusion per sweep member.
//!
//! Fusion is traffic-monotone by construction: a run is only fused when
//! the amplitudes the fused sweep touches (`2^n`, always) do not exceed
//! the sum its constituents would have touched — so runs of half-touch
//! diagonal kernels (two `CPhase`s touching `2^{n-2}` each, say) are left
//! alone rather than inflated into a full pass.

use crate::compile::{CompiledGate, KernelId};
use crate::exec::Step;
use crate::kernels::GateArgs;
use crate::remap::RemapPlan;
use svsim_types::Complex64;

/// Maximum fusion window the kernels support (an 8-amplitude gather).
pub const MAX_WINDOW: u8 = 3;

/// Amplitudes one work item of `id` touches (reads or writes).
fn amps_per_item(id: KernelId) -> u64 {
    match id {
        KernelId::Z | KernelId::Phase | KernelId::CPhase => 1,
        KernelId::X
        | KernelId::Y
        | KernelId::H
        | KernelId::OneQ
        | KernelId::Rz
        | KernelId::Cx
        | KernelId::Crz
        | KernelId::ControlledOneQ
        | KernelId::Swap
        | KernelId::CSwap => 2,
        KernelId::Rzz | KernelId::TwoQ => 4,
        KernelId::Fused1 => 2,
        KernelId::Fused2 => 4,
        KernelId::Fused3 => 8,
    }
}

/// Total amplitudes the gate touches across the whole state.
fn amps_touched(cg: &CompiledGate) -> u64 {
    cg.args.work.saturating_mul(amps_per_item(cg.id))
}

/// Whether this kernel can participate in a fused window of size `window`.
fn fusable(cg: &CompiledGate, window: u8) -> bool {
    !matches!(
        cg.id,
        KernelId::Fused1 | KernelId::Fused2 | KernelId::Fused3
    ) && cg.args.n_sorted <= window
}

/// Ascending union of two sorted qubit lists.
fn union_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = a.to_vec();
    for &q in b {
        if let Err(pos) = out.binary_search(&q) {
            out.insert(pos, q);
        }
    }
    out
}

/// Rewrite a compiled gate into window-local coordinates: qubit `q`
/// becomes its index in the ascending `window` list, `work` becomes the
/// gate's work over the `2^k` window. Matrix and scalar payloads are
/// copied untouched — they are what the template patcher rewrites between
/// sweep members.
fn to_local(cg: &CompiledGate, window: &[u32]) -> CompiledGate {
    let k = window.len() as u32;
    let pos = |q: u32| -> u32 {
        window
            .iter()
            .position(|&w| w == q)
            .expect("window covers every involved qubit") as u32
    };
    let mut a = cg.args.clone();
    let involved = cg.args.sorted().to_vec();
    for (i, &q) in involved.iter().enumerate() {
        a.sorted[i] = pos(q);
    }
    // `target`/`aux` are only meaningful when they name an involved qubit
    // (diagonal kernels leave them at their default); map exactly those.
    if involved.contains(&cg.args.target) {
        a.target = pos(cg.args.target);
    }
    if involved.contains(&cg.args.aux) {
        a.aux = pos(cg.args.aux);
    }
    let mut mask = 0u64;
    for &q in &involved {
        if cg.args.ctrl_mask & (1 << q) != 0 {
            mask |= 1 << pos(q);
        }
    }
    a.ctrl_mask = mask;
    debug_assert!(cg.args.n_sorted as u32 <= k);
    a.work = 1u64 << (k - u32::from(cg.args.n_sorted));
    CompiledGate { id: cg.id, args: a }
}

/// Build the fused gate for `window` from its constituent kernels.
fn fused_gate(window: &[u32], parts: &[CompiledGate], n_qubits: u32) -> CompiledGate {
    let k = window.len();
    let id = match k {
        1 => KernelId::Fused1,
        2 => KernelId::Fused2,
        _ => KernelId::Fused3,
    };
    let mut sorted = [0u32; 5];
    sorted[..k].copy_from_slice(window);
    CompiledGate {
        id,
        args: GateArgs {
            sorted,
            n_sorted: k as u8,
            target: 0,
            aux: 0,
            ctrl_mask: 0,
            m: [Complex64::ZERO; 16],
            s0: 0.0,
            s1: 0.0,
            work: (1u64 << n_qubits) >> k,
            fused: parts.iter().map(|cg| to_local(cg, window)).collect(),
        },
    }
}

/// Whether fusing `parts` into one `|window|`-qubit sweep is worthwhile:
/// at least two kernels collapse into one pass, and the fused sweep's
/// amplitude traffic (`2^n`, always) does not exceed what the parts would
/// have touched separately.
fn worth_fusing(window: &[u32], parts: &[CompiledGate], n_qubits: u32) -> bool {
    if parts.len() < 2 || window.is_empty() || window.len() > MAX_WINDOW as usize {
        return false;
    }
    let fused_amps = 1u64 << n_qubits;
    let unfused: u64 = parts
        .iter()
        .map(amps_touched)
        .fold(0u64, u64::saturating_add);
    unfused >= fused_amps
}

/// Fuse a flat kernel run (no steps, no measurements — e.g. a compiled
/// sweep template's queue, or a whole-circuit gate stream for pricing).
/// Greedy: extend the current window while the union stays within
/// `window` qubits; flush when it would grow past it, emitting a fused
/// kernel when [`worth_fusing`] holds and the original kernels otherwise.
///
/// Returns the fused queue together with `micro_origin`: for each output
/// gate, the range of input-queue indices it covers (used by the template
/// patcher to re-address parameter slots).
#[must_use]
pub fn fuse_compiled(
    queue: &[CompiledGate],
    n_qubits: u32,
    window: u8,
) -> (Vec<CompiledGate>, Vec<std::ops::Range<usize>>) {
    let window = window.min(MAX_WINDOW);
    let mut out = Vec::with_capacity(queue.len());
    let mut origin: Vec<std::ops::Range<usize>> = Vec::with_capacity(queue.len());
    let mut pend: Vec<CompiledGate> = Vec::new();
    let mut pend_start = 0usize;
    let mut win: Vec<u32> = Vec::new();
    let flush = |pend: &mut Vec<CompiledGate>,
                 win: &mut Vec<u32>,
                 pend_start: usize,
                 out: &mut Vec<CompiledGate>,
                 origin: &mut Vec<std::ops::Range<usize>>| {
        if worth_fusing(win, pend, n_qubits) {
            out.push(fused_gate(win, pend, n_qubits));
            origin.push(pend_start..pend_start + pend.len());
        } else {
            for (j, cg) in pend.drain(..).enumerate() {
                out.push(cg);
                origin.push(pend_start + j..pend_start + j + 1);
            }
        }
        pend.clear();
        win.clear();
    };
    for (i, cg) in queue.iter().enumerate() {
        if window == 0 || !fusable(cg, window) {
            flush(&mut pend, &mut win, pend_start, &mut out, &mut origin);
            out.push(cg.clone());
            origin.push(i..i + 1);
            continue;
        }
        let merged = union_sorted(&win, cg.args.sorted());
        if merged.len() <= window as usize {
            if pend.is_empty() {
                pend_start = i;
            }
            win = merged;
            pend.push(cg.clone());
        } else {
            flush(&mut pend, &mut win, pend_start, &mut out, &mut origin);
            pend_start = i;
            win = cg.args.sorted().to_vec();
            pend.push(cg.clone());
        }
    }
    flush(&mut pend, &mut win, pend_start, &mut out, &mut origin);
    (out, origin)
}

/// Count the source (pre-fusion) kernels a queue represents: fused gates
/// count their constituents, everything else counts once. The
/// gates-per-amplitude-pass metric is this over `queue.len()`.
#[must_use]
pub fn source_kernels(queue: &[CompiledGate]) -> usize {
    queue
        .iter()
        .map(|cg| {
            if cg.args.fused.is_empty() {
                1
            } else {
                cg.args.fused.len()
            }
        })
        .sum()
}

/// Fuse a lowered segment in place: runs of adjacent [`Step::Gate`] steps
/// whose combined footprint fits the window collapse into [`Step::Fused`]
/// steps backed by one fused kernel each. Runs break at `Measure`/`Reset`
/// (they consume randomness and collapse state), at `IfEq` (its execution
/// depends on runtime classical bits), and — when a [`RemapPlan`] is
/// present — at any step carrying relabeling `pre_swaps` (such a step may
/// *start* a run but never merge into an earlier one, since its exchanges
/// must run between the neighbouring kernels). The plan's
/// `pre_swaps`/`measure_layouts` are compacted in lockstep so they stay
/// aligned 1:1 with the (now shorter) step stream.
pub(crate) fn fuse_segment(
    steps: &mut Vec<Step>,
    queue: &mut Vec<CompiledGate>,
    remap: &mut Option<RemapPlan>,
    n_qubits: u32,
    window: u8,
) {
    let window = window.min(MAX_WINDOW);
    if window == 0 || steps.is_empty() {
        return;
    }
    let empty: Vec<(u32, u32)> = Vec::new();
    let mut new_steps: Vec<Step> = Vec::with_capacity(steps.len());
    let mut new_queue: Vec<CompiledGate> = Vec::with_capacity(queue.len());
    let mut new_pre: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut new_lay: Vec<Option<crate::remap::QubitLayout>> = Vec::new();

    // Pending run of fusable gate steps: (step index, window so far).
    let mut pend: Vec<usize> = Vec::new();
    let mut win: Vec<u32> = Vec::new();

    let step_gates = |si: usize, steps: &[Step]| -> std::ops::Range<usize> {
        match &steps[si] {
            Step::Gate { compiled, .. } => compiled.clone(),
            _ => unreachable!("pending runs hold gate steps only"),
        }
    };
    let pre_of = |si: usize, remap: &Option<RemapPlan>| -> Vec<(u32, u32)> {
        remap
            .as_ref()
            .map_or(&empty, |p| p.pre_swaps.get(si).unwrap_or(&empty))
            .clone()
    };
    let lay_of = |si: usize, remap: &Option<RemapPlan>| -> Option<crate::remap::QubitLayout> {
        remap
            .as_ref()
            .and_then(|p| p.measure_layouts.get(si).cloned().flatten())
    };

    // Emit one original step, rebasing its compiled range onto new_queue.
    let emit_single = |si: usize,
                       steps: &[Step],
                       queue: &[CompiledGate],
                       remap: &Option<RemapPlan>,
                       new_steps: &mut Vec<Step>,
                       new_queue: &mut Vec<CompiledGate>,
                       new_pre: &mut Vec<Vec<(u32, u32)>>,
                       new_lay: &mut Vec<Option<crate::remap::QubitLayout>>| {
        let rebase = |compiled: &std::ops::Range<usize>, new_queue: &mut Vec<CompiledGate>| {
            let start = new_queue.len();
            new_queue.extend(queue[compiled.clone()].iter().cloned());
            start..new_queue.len()
        };
        let step = match &steps[si] {
            Step::Gate { raw, compiled } => Step::Gate {
                raw: *raw,
                compiled: rebase(compiled, new_queue),
            },
            Step::IfEq {
                creg_lo,
                creg_len,
                value,
                raw,
                compiled,
            } => Step::IfEq {
                creg_lo: *creg_lo,
                creg_len: *creg_len,
                value: *value,
                raw: *raw,
                compiled: rebase(compiled, new_queue),
            },
            other => other.clone(),
        };
        new_steps.push(step);
        new_pre.push(pre_of(si, remap));
        new_lay.push(lay_of(si, remap));
    };

    let flush = |pend: &mut Vec<usize>,
                 win: &mut Vec<u32>,
                 steps: &[Step],
                 queue: &[CompiledGate],
                 remap: &Option<RemapPlan>,
                 new_steps: &mut Vec<Step>,
                 new_queue: &mut Vec<CompiledGate>,
                 new_pre: &mut Vec<Vec<(u32, u32)>>,
                 new_lay: &mut Vec<Option<crate::remap::QubitLayout>>| {
        let parts: Vec<CompiledGate> = pend
            .iter()
            .flat_map(|&si| queue[step_gates(si, steps)].iter().cloned())
            .collect();
        if worth_fusing(win, &parts, n_qubits) {
            let raws: Vec<svsim_ir::Gate> = pend
                .iter()
                .map(|&si| match &steps[si] {
                    Step::Gate { raw, .. } => *raw,
                    _ => unreachable!("pending runs hold gate steps only"),
                })
                .collect();
            let start = new_queue.len();
            new_queue.push(fused_gate(win, &parts, n_qubits));
            new_steps.push(Step::Fused {
                raws,
                compiled: start..new_queue.len(),
            });
            // Later run members carry no pre-swaps (the break rule), so
            // the merged step inherits the first member's entries.
            new_pre.push(pre_of(pend[0], remap));
            new_lay.push(lay_of(pend[0], remap));
        } else {
            for &si in pend.iter() {
                emit_single(
                    si, steps, queue, remap, new_steps, new_queue, new_pre, new_lay,
                );
            }
        }
        pend.clear();
        win.clear();
    };

    for si in 0..steps.len() {
        let gate_window = match &steps[si] {
            Step::Gate { compiled, .. } => {
                let gates = &queue[compiled.clone()];
                if gates.iter().all(|cg| fusable(cg, window)) {
                    let mut w: Vec<u32> = Vec::new();
                    for cg in gates {
                        w = union_sorted(&w, cg.args.sorted());
                    }
                    (w.len() <= window as usize && !w.is_empty()).then_some(w)
                } else {
                    None
                }
            }
            _ => None,
        };
        // A step carrying relabeling exchanges may start a run but never
        // merge into one: its swaps must execute before its kernels.
        let blocked = !pend.is_empty() && !pre_of(si, remap).is_empty();
        match gate_window {
            Some(w) if !blocked => {
                let merged = union_sorted(&win, &w);
                if merged.len() <= window as usize {
                    win = merged;
                    pend.push(si);
                } else {
                    flush(
                        &mut pend,
                        &mut win,
                        steps,
                        queue,
                        remap,
                        &mut new_steps,
                        &mut new_queue,
                        &mut new_pre,
                        &mut new_lay,
                    );
                    win = w;
                    pend.push(si);
                }
            }
            Some(w) => {
                flush(
                    &mut pend,
                    &mut win,
                    steps,
                    queue,
                    remap,
                    &mut new_steps,
                    &mut new_queue,
                    &mut new_pre,
                    &mut new_lay,
                );
                win = w;
                pend.push(si);
            }
            None => {
                flush(
                    &mut pend,
                    &mut win,
                    steps,
                    queue,
                    remap,
                    &mut new_steps,
                    &mut new_queue,
                    &mut new_pre,
                    &mut new_lay,
                );
                emit_single(
                    si,
                    steps,
                    queue,
                    remap,
                    &mut new_steps,
                    &mut new_queue,
                    &mut new_pre,
                    &mut new_lay,
                );
            }
        }
    }
    flush(
        &mut pend,
        &mut win,
        steps,
        queue,
        remap,
        &mut new_steps,
        &mut new_queue,
        &mut new_pre,
        &mut new_lay,
    );

    *steps = new_steps;
    *queue = new_queue;
    if let Some(p) = remap.as_mut() {
        p.pre_swaps = new_pre;
        p.measure_layouts = new_lay;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_gates;
    use crate::dispatch::resolve;
    use crate::view::LocalView;
    use svsim_ir::{Circuit, Gate, GateKind};

    fn apply_queue(queue: &[CompiledGate], re: &mut [f64], im: &mut [f64]) {
        let v = LocalView::new(re, im);
        for cg in queue {
            resolve::<LocalView>(cg.id)(&v, &cg.args, 0..cg.args.work);
        }
    }

    fn random_state(n: u32, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = svsim_types::SvRng::seed_from_u64(seed);
        let dim = 1usize << n;
        let re: Vec<f64> = (0..dim).map(|_| rng.next_f64() - 0.5).collect();
        let im: Vec<f64> = (0..dim).map(|_| rng.next_f64() - 0.5).collect();
        (re, im)
    }

    #[test]
    fn fused_run_is_bit_identical_to_gate_by_gate() {
        let n = 6u32;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.apply(GateKind::H, &[q], &[]).unwrap();
        }
        c.apply(GateKind::T, &[0], &[]).unwrap();
        c.apply(GateKind::RX, &[0], &[0.37]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::T, &[1], &[]).unwrap();
        c.apply(GateKind::CCX, &[0, 1, 2], &[]).unwrap();
        c.apply(GateKind::RZZ, &[1, 2], &[0.9]).unwrap();
        c.apply(GateKind::SWAP, &[3, 4], &[]).unwrap();
        c.apply(GateKind::H, &[3], &[]).unwrap();
        let queue = compile_gates(c.gates(), n, true);
        for window in 1..=3u8 {
            let (fused, _) = fuse_compiled(&queue, n, window);
            assert!(fused.len() < queue.len(), "window {window} fused nothing");
            let (mut re_a, mut im_a) = random_state(n, 42);
            let (mut re_b, mut im_b) = (re_a.clone(), im_a.clone());
            apply_queue(&queue, &mut re_a, &mut im_a);
            apply_queue(&fused, &mut re_b, &mut im_b);
            assert_eq!(re_a, re_b, "window {window} re diverged");
            assert_eq!(im_a, im_b, "window {window} im diverged");
        }
    }

    #[test]
    fn property_random_runs_fuse_bit_identically() {
        // Seeded property test: random gate runs fused into dense windows
        // must equal gate-by-gate application amplitude-exactly.
        let n = 5u32;
        let mut rng = svsim_types::SvRng::seed_from_u64(20260808);
        for trial in 0..24 {
            let mut c = Circuit::new(n);
            for _ in 0..20 {
                let q0 = (rng.next_f64() * f64::from(n)) as u32 % n;
                let q1 = (q0 + 1 + (rng.next_f64() * f64::from(n - 1)) as u32 % (n - 1)) % n;
                let th = rng.next_f64() * 6.0 - 3.0;
                match (rng.next_f64() * 6.0) as u32 {
                    0 => c.apply(GateKind::H, &[q0], &[]).unwrap(),
                    1 => c.apply(GateKind::RX, &[q0], &[th]).unwrap(),
                    2 => c.apply(GateKind::RZ, &[q0], &[th]).unwrap(),
                    3 => c.apply(GateKind::CX, &[q0, q1], &[]).unwrap(),
                    4 => c.apply(GateKind::CU1, &[q0, q1], &[th]).unwrap(),
                    _ => c.apply(GateKind::RZZ, &[q0, q1], &[th]).unwrap(),
                };
            }
            let queue = compile_gates(c.gates(), n, true);
            let window = 1 + (trial % 3) as u8;
            let (fused, _) = fuse_compiled(&queue, n, window);
            let (mut re_a, mut im_a) = random_state(n, 1000 + trial);
            let (mut re_b, mut im_b) = (re_a.clone(), im_a.clone());
            apply_queue(&queue, &mut re_a, &mut im_a);
            apply_queue(&fused, &mut re_b, &mut im_b);
            assert_eq!(re_a, re_b, "trial {trial} re diverged");
            assert_eq!(im_a, im_b, "trial {trial} im diverged");
        }
    }

    #[test]
    fn half_touch_diagonal_runs_stay_unfused() {
        // Two CPhase kernels touch 2^{n-2} amplitudes each; a fused
        // 2-qubit sweep would touch all 2^n — fusing would *increase*
        // traffic, so the pass must leave them alone.
        let n = 8u32;
        let mut c = Circuit::new(n);
        c.apply(GateKind::CZ, &[0, 1], &[]).unwrap();
        c.apply(GateKind::CU1, &[0, 1], &[0.4]).unwrap();
        let queue = compile_gates(c.gates(), n, true);
        let (fused, _) = fuse_compiled(&queue, n, 2);
        assert_eq!(fused.len(), 2, "diagonal pair must not fuse");
        assert!(fused.iter().all(|cg| cg.args.fused.is_empty()));
    }

    #[test]
    fn wide_gates_break_runs() {
        let n = 7u32;
        let mut c = Circuit::new(n);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::C4X, &[0, 1, 2, 3, 4], &[]).unwrap();
        c.apply(GateKind::H, &[1], &[]).unwrap();
        c.apply(GateKind::H, &[1], &[]).unwrap();
        let queue = compile_gates(c.gates(), n, true);
        let (fused, _) = fuse_compiled(&queue, n, 3);
        // H;H fuse, C4X stays, H;H fuse.
        assert_eq!(fused.len(), 3);
        assert_eq!(fused[0].id, KernelId::Fused1);
        assert_eq!(fused[1].id, KernelId::ControlledOneQ);
        assert_eq!(fused[2].id, KernelId::Fused1);
        assert_eq!(source_kernels(&fused), queue.len());
    }

    #[test]
    fn micro_ops_are_window_local() {
        let n = 9u32;
        let mut c = Circuit::new(n);
        c.apply(GateKind::H, &[4], &[]).unwrap();
        c.apply(GateKind::CX, &[4, 7], &[]).unwrap();
        let queue = compile_gates(c.gates(), n, true);
        let (fused, origin) = fuse_compiled(&queue, n, 2);
        assert_eq!(fused.len(), 1);
        assert_eq!(origin, vec![0..2]);
        let f = &fused[0];
        assert_eq!(f.id, KernelId::Fused2);
        assert_eq!(f.args.sorted(), &[4, 7]);
        assert_eq!(f.args.work, (1 << n) / 4);
        let h = &f.args.fused[0];
        assert_eq!((h.args.target, h.args.work), (0, 2));
        let cx = &f.args.fused[1];
        assert_eq!(cx.args.sorted(), &[0, 1]);
        assert_eq!((cx.args.target, cx.args.ctrl_mask, cx.args.work), (1, 1, 1));
    }

    #[test]
    fn rccx_fuses_as_one_window() {
        // A compound gate lowering to many kernels over 3 qubits collapses
        // into a single fused-3 sweep.
        let g = Gate::new(GateKind::RCCX, &[0, 1, 2], &[]).unwrap();
        let queue = compile_gates([&g], 5, true);
        assert!(queue.len() > 5);
        let (fused, _) = fuse_compiled(&queue, 5, 3);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].id, KernelId::Fused3);
        assert_eq!(source_kernels(&fused), queue.len());
    }
}
