//! Analytic communication/traffic model for compiled gates.
//!
//! The scale-out backend *measures* traffic through the SHMEM counters; this
//! module *predicts* it in closed form for any partition count, which is
//! what lets the performance model price circuits far larger than this
//! machine can run (Summit-scale figures). The prediction is exact — tests
//! cross-check it against the measured counters of real SPMD runs.
//!
//! Key structural fact: with contiguous work-item partitioning, the
//! partition that an access lands in depends only on (a) the accessing PE
//! and (b) the access's offset pattern — not on the individual item — because
//! the item bits that reach the partition-index range of the address are
//! exactly the item's top bits, which are constant across one PE's chunk.

use crate::compile::{CompiledGate, KernelId};
use svsim_types::bits::insert_zero_bits;

/// Predicted traffic of one compiled gate at a given partitioning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateTraffic {
    /// Work items over the whole state.
    pub items: u64,
    /// Amplitude loads+stores resolved in the accessing PE's partition.
    pub local_amp_ops: u64,
    /// Amplitude loads+stores that cross partitions.
    pub remote_amp_ops: u64,
    /// Bytes crossing the fabric (16 bytes per remote amplitude access).
    pub remote_bytes: u64,
    /// Total bytes touched in memory (local + remote, read + write).
    pub bytes_touched: u64,
    /// Floating-point operations.
    pub flops: u64,
}

impl GateTraffic {
    /// Merge (sum) with another gate's traffic.
    ///
    /// Sums saturate: aggregating a Summit-scale circuit (each gate already
    /// near `2^63` bytes touched) must clamp at `u64::MAX` rather than wrap
    /// into a silently-too-small estimate.
    #[must_use]
    pub fn merged(&self, o: &Self) -> Self {
        Self {
            items: self.items.saturating_add(o.items),
            local_amp_ops: self.local_amp_ops.saturating_add(o.local_amp_ops),
            remote_amp_ops: self.remote_amp_ops.saturating_add(o.remote_amp_ops),
            remote_bytes: self.remote_bytes.saturating_add(o.remote_bytes),
            bytes_touched: self.bytes_touched.saturating_add(o.bytes_touched),
            flops: self.flops.saturating_add(o.flops),
        }
    }

    /// Fraction of amplitude accesses that are remote.
    #[must_use]
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_amp_ops + self.remote_amp_ops;
        if total == 0 {
            0.0
        } else {
            self.remote_amp_ops as f64 / total as f64
        }
    }
}

/// Offset patterns (relative to the zero-inserted base index) accessed per
/// work item, and the per-item flop cost, for each kernel.
///
/// This is the single source of truth for which amplitudes a kernel
/// touches: the traffic model consumes it here, and `svsim-analyzer`'s
/// static plan checker consumes it to derive per-PE index sets
/// symbolically. A pattern places bits only at the kernel's sorted qubit
/// positions; item bits land injectively at the remaining positions.
#[must_use]
pub fn kernel_access_patterns(cg: &CompiledGate) -> (Vec<u64>, u64) {
    let a = &cg.args;
    let t = 1u64 << a.target;
    let x = 1u64 << a.aux;
    let cm = a.ctrl_mask;
    match cg.id {
        KernelId::X | KernelId::Y => (vec![0, t], 0),
        KernelId::Z => (vec![t], 2),
        KernelId::H => (vec![0, t], 8),
        KernelId::Phase => (vec![t], 6),
        KernelId::Rz => (vec![0, t], 12),
        KernelId::OneQ => (vec![0, t], 28),
        KernelId::Cx => (vec![cm, cm | t], 0),
        KernelId::CPhase => (vec![cm], 6),
        KernelId::Crz => (vec![cm, cm | t], 12),
        KernelId::ControlledOneQ => (vec![cm, cm | t], 28),
        KernelId::Swap => (vec![t, x], 0),
        KernelId::CSwap => (vec![cm | t, cm | x], 0),
        KernelId::Rzz => (vec![0, t, x, t | x], 24),
        KernelId::TwoQ => (vec![0, t, x, t | x], 112),
        KernelId::Fused1 | KernelId::Fused2 | KernelId::Fused3 => {
            // One item gathers/scatters the full 2^k window: every bit
            // combination over the window's sorted qubit positions. Flops
            // per item replay every constituent micro-op over its local
            // work range (micro ops are never themselves fused, so the
            // recursion is one level deep).
            let sorted = a.sorted();
            let k = sorted.len();
            let patterns = (0..1u64 << k)
                .map(|j| {
                    let mut o = 0u64;
                    for (b, &q) in sorted.iter().enumerate() {
                        if j & (1 << b) != 0 {
                            o |= 1 << q;
                        }
                    }
                    o
                })
                .collect();
            let flops = a
                .fused
                .iter()
                .map(|m| kernel_access_patterns(m).1.saturating_mul(m.args.work))
                .fold(0u64, u64::saturating_add);
            (patterns, flops)
        }
    }
}

/// Predict the traffic of one compiled gate over `n_qubits`, partitioned
/// across `n_pes` PEs (must be a power of two).
///
/// # Panics
/// If `n_pes` is not a power of two or exceeds the state dimension.
#[must_use]
pub fn gate_traffic(cg: &CompiledGate, n_qubits: u32, n_pes: u64) -> GateTraffic {
    assert!(n_pes.is_power_of_two(), "PE count must be a power of two");
    let dim = 1u64 << n_qubits;
    assert!(n_pes <= dim);
    let k = n_pes.trailing_zeros();
    let shift_l = n_qubits - k; // log2(amplitudes per partition)
    let (patterns, flops_per_item) = kernel_access_patterns(cg);
    let work = cg.args.work;
    let sorted = cg.args.sorted();

    // Each access pattern per item is one load + one store of a complex
    // amplitude = 2 amplitude ops, 32 bytes of memory traffic. Products
    // saturate: at Summit-scale work counts (`2^58+` items) the byte
    // products exceed u64 and must clamp, not wrap.
    let amp_ops_total = work.saturating_mul(patterns.len() as u64 * 2);
    let bytes_touched = work.saturating_mul(patterns.len() as u64 * 32);
    let flops = work.saturating_mul(flops_per_item);

    let mut remote = 0u64;
    if n_pes > 1 {
        if work >= n_pes {
            // Representative-item argument (see module docs): locality is
            // constant across a PE's chunk for each pattern.
            let per_pe = work / n_pes;
            for p in 0..n_pes {
                let rep = p * per_pe;
                for &pat in &patterns {
                    let idx = insert_zero_bits(rep, sorted) | pat;
                    if (idx >> shift_l) != p {
                        remote = remote.saturating_add(per_pe * 2);
                    }
                }
            }
        } else {
            // Fewer items than PEs: walk each PE's (at most one-item) range
            // directly — exact and tiny.
            for p in 0..n_pes {
                for i in crate::kernels::worker_range(work, n_pes, p) {
                    for &pat in &patterns {
                        let idx = insert_zero_bits(i, sorted) | pat;
                        if (idx >> shift_l) != p {
                            remote += 2;
                        }
                    }
                }
            }
        }
    }
    GateTraffic {
        items: work,
        local_amp_ops: amp_ops_total - remote,
        remote_amp_ops: remote,
        remote_bytes: remote.saturating_mul(16),
        bytes_touched,
        flops,
    }
}

/// Aggregate traffic of a compiled gate stream.
#[must_use]
pub fn circuit_traffic(compiled: &[CompiledGate], n_qubits: u32, n_pes: u64) -> GateTraffic {
    compiled
        .iter()
        .map(|cg| gate_traffic(cg, n_qubits, n_pes))
        .fold(GateTraffic::default(), |acc, t| acc.merged(&t))
}

/// Predicted traffic of one relabeling slab exchange
/// ([`crate::view::ShmemView::exchange_pair`]): half the state moves
/// across the fabric once (each PE ships `per_pe / 2` amplitudes to its
/// partner as bulk slabs), plus three local touches per moved amplitude
/// (state read, staging read, state write).
///
/// `remote_amp_ops` counts word-level amplitude stores as everywhere else
/// in this model (so `remote_bytes == 16 * remote_amp_ops` holds); the
/// *message* count is far lower — that is the whole point of the bulk
/// path — and is deliberately not modeled here.
#[must_use]
pub fn exchange_traffic(n_qubits: u32, n_pes: u64) -> GateTraffic {
    assert!(n_pes.is_power_of_two(), "PE count must be a power of two");
    let dim = 1u64 << n_qubits;
    let moved = dim / 2;
    GateTraffic {
        items: moved,
        local_amp_ops: moved.saturating_mul(3),
        remote_amp_ops: moved,
        remote_bytes: moved.saturating_mul(16),
        bytes_touched: moved.saturating_mul(64),
        flops: 0,
    }
}

/// Exact traffic prediction for the *remapped* scale-out schedule of an op
/// stream: plan the relabeling with [`crate::remap::plan_remap`] (the same
/// planner the executor runs), then price every exchange epoch plus every
/// remapped compiled gate. Localized gates contribute zero remote traffic;
/// gates too wide to fit below the partition boundary keep their
/// word-at-a-time remote cost.
///
/// Exact for unitary streams; conditional gates are priced as-if executed
/// (same convention as the naive predictor).
#[must_use]
pub fn remapped_circuit_traffic(
    ops: &[svsim_ir::Op],
    n_qubits: u32,
    n_pes: u64,
    specialized: bool,
) -> GateTraffic {
    let plan = crate::remap::plan_remap(ops, n_qubits, n_pes);
    let mut total = GateTraffic::default();
    let mut queue: Vec<CompiledGate> = Vec::new();
    for (op, swaps) in plan.ops.iter().zip(&plan.pre_swaps) {
        for _ in swaps {
            total = total.merged(&exchange_traffic(n_qubits, n_pes));
        }
        if let svsim_ir::Op::Gate(g) | svsim_ir::Op::IfEq { gate: g, .. } = op {
            queue.clear();
            crate::compile::compile_gate(g, n_qubits, specialized, &mut queue);
            for cg in &queue {
                total = total.merged(&gate_traffic(cg, n_qubits, n_pes));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_gates;
    use svsim_ir::{Gate, GateKind};

    fn compiled_one(kind: GateKind, q: &[u32], p: &[f64], n: u32) -> CompiledGate {
        let g = Gate::new(kind, q, p).unwrap();
        let mut out = Vec::new();
        crate::compile::compile_gate(&g, n, true, &mut out);
        assert_eq!(out.len(), 1);
        out.pop().unwrap()
    }

    #[test]
    fn single_pe_is_all_local() {
        let cg = compiled_one(GateKind::H, &[3], &[], 8);
        let t = gate_traffic(&cg, 8, 1);
        assert_eq!(t.remote_amp_ops, 0);
        assert_eq!(t.local_amp_ops, 2 * 2 * 128); // 128 items, 2 patterns, ld+st
    }

    #[test]
    fn low_qubit_gate_is_local_high_qubit_is_half_remote() {
        // n=6, 4 PEs: partition boundary at qubit 4.
        for q in 0..4u32 {
            let cg = compiled_one(GateKind::H, &[q], &[], 6);
            let t = gate_traffic(&cg, 6, 4);
            assert_eq!(t.remote_amp_ops, 0, "qubit {q} below the boundary");
        }
        for q in 4..6u32 {
            let cg = compiled_one(GateKind::H, &[q], &[], 6);
            let t = gate_traffic(&cg, 6, 4);
            assert!(
                t.remote_fraction() > 0.0,
                "qubit {q} above the boundary must communicate"
            );
        }
    }

    /// Brute-force checker: walk every item of every PE and classify.
    fn brute_force_remote(cg: &CompiledGate, n: u32, n_pes: u64) -> u64 {
        let shift_l = n - n_pes.trailing_zeros();
        let (patterns, _) = kernel_access_patterns(cg);
        let mut remote = 0;
        for p in 0..n_pes {
            let r = crate::kernels::worker_range(cg.args.work, n_pes, p);
            for i in r {
                for &pat in &patterns {
                    let idx = insert_zero_bits(i, cg.args.sorted()) | pat;
                    if (idx >> shift_l) != p {
                        remote += 2;
                    }
                }
            }
        }
        remote
    }

    #[test]
    fn closed_form_matches_brute_force() {
        let n = 8u32;
        let cases = [
            compiled_one(GateKind::H, &[0], &[], n),
            compiled_one(GateKind::H, &[7], &[], n),
            compiled_one(GateKind::T, &[6], &[], n),
            compiled_one(GateKind::CX, &[2, 7], &[], n),
            compiled_one(GateKind::CX, &[7, 2], &[], n),
            compiled_one(GateKind::CX, &[6, 7], &[], n),
            compiled_one(GateKind::CZ, &[3, 6], &[], n),
            compiled_one(GateKind::SWAP, &[1, 7], &[], n),
            compiled_one(GateKind::CCX, &[5, 6, 7], &[], n),
            compiled_one(GateKind::RZZ, &[4, 7], &[0.3], n),
            compiled_one(GateKind::RXX, &[6, 7], &[0.3], n),
            compiled_one(GateKind::CSWAP, &[7, 0, 6], &[], n),
        ];
        for n_pes in [1u64, 2, 4, 8, 16] {
            for cg in &cases {
                let model = gate_traffic(cg, n, n_pes);
                let brute = brute_force_remote(cg, n, n_pes);
                assert_eq!(model.remote_amp_ops, brute, "{:?} at {} PEs", cg.id, n_pes);
            }
        }
    }

    #[test]
    fn more_items_than_pes_not_required() {
        // C4X on 6 qubits has only 2 items; model must still work at 4 PEs.
        let cg = compiled_one(GateKind::C4X, &[0, 1, 2, 3, 4], &[], 6);
        assert_eq!(cg.args.work, 2);
        let model = gate_traffic(&cg, 6, 4);
        let brute = brute_force_remote(&cg, 6, 4);
        assert_eq!(model.remote_amp_ops, brute);
    }

    #[test]
    fn diagonal_gates_touch_less() {
        // T (phase) touches half what H touches; CZ a quarter of a dense 2q.
        let h = gate_traffic(&compiled_one(GateKind::H, &[3], &[], 10), 10, 1);
        let t = gate_traffic(&compiled_one(GateKind::T, &[3], &[], 10), 10, 1);
        assert_eq!(t.bytes_touched * 2, h.bytes_touched);
        let cz = gate_traffic(&compiled_one(GateKind::CZ, &[3, 5], &[], 10), 10, 1);
        let rxx = gate_traffic(&compiled_one(GateKind::RXX, &[3, 5], &[0.1], 10), 10, 1);
        assert_eq!(cz.bytes_touched * 4, rxx.bytes_touched);
    }

    #[test]
    fn summit_scale_products_saturate_instead_of_wrapping() {
        // H on the top qubit of a 63-qubit state: 2^62 work items. The
        // amp-op and byte products exceed u64 and must clamp at MAX (they
        // previously wrapped — a debug-build panic, a silently tiny
        // estimate in release).
        let cg = compiled_one(GateKind::H, &[62], &[], 63);
        assert_eq!(cg.args.work, 1u64 << 62);
        let t = gate_traffic(&cg, 63, 1024);
        assert_eq!(t.items, 1u64 << 62);
        assert_eq!(t.bytes_touched, u64::MAX, "2^62 * 64 must saturate");
        assert!(t.remote_amp_ops > 0, "top qubit crosses every boundary");
        // Aggregating two such gates must also clamp, not wrap.
        let sum = t.merged(&t);
        assert_eq!(sum.bytes_touched, u64::MAX);
        assert_eq!(sum.items, 1u64 << 63);
    }

    #[test]
    fn circuit_aggregation() {
        let mut c = svsim_ir::Circuit::new(6);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 5], &[]).unwrap();
        let gates: Vec<Gate> = c.gates().copied().collect();
        let compiled = compile_gates(gates.iter(), 6, true);
        let agg = circuit_traffic(&compiled, 6, 2);
        assert_eq!(agg.items, 32 + 16);
        assert!(agg.remote_amp_ops > 0, "CX crossing the boundary");
    }
}
