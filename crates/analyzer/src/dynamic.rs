//! Dynamic cross-validation of the static checker.
//!
//! The static side *proves* a plan conflict-free symbolically; the dynamic
//! side *observes* an actual SPMD execution under the vector-clock race
//! detector (`svsim_shmem::RaceDetector`) and checks the two agree: a
//! proven-safe plan must produce zero dynamic race reports, at every PE
//! count, on every workload. One direction only — the detector sees just
//! the remote accesses of one seeded run, so a clean dynamic run does not
//! prove a plan safe; a dynamic race under a proven-safe verdict, however,
//! falsifies the checker (or the executor) and fails loudly.
//!
//! Cross-validation is pinned to the **thread-backed** SHMEM world
//! ([`svsim_shmem::ShmemBackend::Thread`], the `SimConfig` default): the
//! detector's epoch-scoped shadow state lives in in-process `Arc`s and
//! cannot observe forked PEs. Arming the detector on the process backend
//! is a typed `InvalidConfig` error, never a silently-empty report — the
//! access protocol it validates is backend-independent, so the thread-world
//! verdict covers the `memfd`-arena world too.

use crate::check::Verdict;
use svsim_core::{SimConfig, Simulator};
use svsim_ir::Circuit;
use svsim_shmem::RaceReport;
use svsim_types::SvResult;
use svsim_workloads::{large_suite, medium_suite};

/// One workload × PE-count agreement check.
#[derive(Debug)]
pub struct CrossValidation {
    /// Workload (or ad-hoc circuit) name.
    pub name: String,
    /// Circuit width.
    pub n_qubits: u32,
    /// PEs the run executed on.
    pub n_pes: usize,
    /// The static checker's verdict for the schedule.
    pub static_verdict: Verdict,
    /// Every race the dynamic detector observed.
    pub races: Vec<RaceReport>,
}

impl CrossValidation {
    /// The agreement invariant: proven-safe implies zero observed races.
    #[must_use]
    pub fn agrees(&self) -> bool {
        self.static_verdict != Verdict::ProvenSafe || self.races.is_empty()
    }
}

/// Statically analyze `circuit` at `n_pes`, then execute it on the
/// scale-out backend with the race detector on, and return both outcomes.
///
/// # Errors
/// Analysis errors (bad PE count) or simulation errors.
pub fn cross_validate(
    name: &str,
    circuit: &Circuit,
    n_pes: usize,
    seed: u64,
) -> SvResult<CrossValidation> {
    let report = crate::analyze_circuit(circuit, n_pes as u64)?;
    let config = SimConfig::scale_out(n_pes)
        .with_seed(seed)
        .with_race_detection();
    let mut sim = Simulator::new(circuit.n_qubits(), config)?;
    let summary = sim.run(circuit)?;
    Ok(CrossValidation {
        name: name.to_string(),
        n_qubits: circuit.n_qubits(),
        n_pes,
        static_verdict: report.verdict(),
        races: summary.races,
    })
}

/// Like [`cross_validate`], but for the communication-avoiding *remapped*
/// executor: statically check the remapped epoch schedule (relabeling
/// exchanges included), then execute with remapping and the race detector
/// both armed.
///
/// # Errors
/// Analysis errors (bad PE count) or simulation errors.
pub fn cross_validate_remapped(
    name: &str,
    circuit: &Circuit,
    n_pes: usize,
    seed: u64,
) -> SvResult<CrossValidation> {
    let report = crate::analyze_circuit_remapped(circuit, n_pes as u64)?;
    let config = SimConfig::scale_out(n_pes)
        .with_seed(seed)
        .with_race_detection()
        .with_remap();
    let mut sim = Simulator::new(circuit.n_qubits(), config)?;
    let summary = sim.run(circuit)?;
    Ok(CrossValidation {
        name: name.to_string(),
        n_qubits: circuit.n_qubits(),
        n_pes,
        static_verdict: report.verdict(),
        races: summary.races,
    })
}

/// Cross-validate every Table 4 workload of width at most `max_qubits` at
/// each PE count in `pe_counts`.
///
/// # Errors
/// Propagates workload-generator, analysis, and simulation errors.
pub fn cross_validate_suite(
    max_qubits: u32,
    pe_counts: &[usize],
    seed: u64,
) -> SvResult<Vec<CrossValidation>> {
    let mut out = Vec::new();
    for spec in medium_suite().into_iter().chain(large_suite()) {
        let circuit = spec.circuit()?;
        if circuit.n_qubits() > max_qubits {
            continue;
        }
        for &p in pe_counts {
            out.push(cross_validate(spec.name, &circuit, p, seed)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_validation_is_pinned_to_the_thread_backend() {
        // The detector's shadow state cannot cross a fork: the configs this
        // module builds stay thread-backed, and arming the detector on the
        // process backend is refused typed instead of yielding a silently
        // empty race report (which `agrees()` would misread as clean).
        assert_eq!(
            SimConfig::scale_out(2).shmem_backend,
            svsim_shmem::ShmemBackend::Thread,
            "scale_out defaults to the thread world"
        );
        let circuit = svsim_workloads::algos::cat_state(4).unwrap();
        let config = SimConfig::scale_out(2)
            .with_race_detection()
            .with_process_backend();
        let mut sim = Simulator::new(4, config).unwrap();
        match sim.run(&circuit) {
            Err(svsim_types::SvError::InvalidConfig(msg)) => {
                assert!(msg.contains("thread backend"), "actionable: {msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn every_small_workload_agrees_with_the_static_verdict() {
        // Debug-build budget: the ≤13-qubit Table 4 workloads at 2/4/8
        // PEs. Release-mode CI covers the larger ones.
        let results = cross_validate_suite(13, &[2, 4, 8], 0xC0FFEE).unwrap();
        assert!(!results.is_empty());
        for r in &results {
            assert_eq!(
                r.static_verdict,
                Verdict::ProvenSafe,
                "{} at {} PEs must be statically safe",
                r.name,
                r.n_pes
            );
            assert!(
                r.races.is_empty(),
                "{} at {} PEs raced dynamically: {:?}",
                r.name,
                r.n_pes,
                r.races
            );
            assert!(r.agrees());
        }
    }

    #[test]
    fn remapped_suite_is_bit_identical_statically_safe_and_race_free() {
        // The cross-backend property behind the remap feature: for every
        // Table 4 workload, scale-out execution WITH qubit relabeling at
        // 2/4/8 PEs must (a) check out statically ProvenSafe including its
        // exchange epochs, (b) record zero dynamic races, and (c) finish
        // bit-identical to the single-device reference — checksum, raw
        // amplitude words, and classical bits. Debug-build budget: the
        // ≤13-qubit workloads; the release-mode remap-bench CI gate runs
        // the identity check over the full suite.
        use svsim_core::Simulator;
        let seed = 0xC0FFEE;
        for spec in medium_suite().into_iter().chain(large_suite()) {
            let circuit = spec.circuit().unwrap();
            if circuit.n_qubits() > 13 {
                continue;
            }
            let mut reference = Simulator::new(
                circuit.n_qubits(),
                SimConfig::single_device().with_seed(seed),
            )
            .unwrap();
            let ref_summary = reference.run(&circuit).unwrap();
            for n_pes in [2usize, 4, 8] {
                let report = crate::analyze_circuit_remapped(&circuit, n_pes as u64).unwrap();
                assert_eq!(
                    report.verdict(),
                    Verdict::ProvenSafe,
                    "{} remapped at {n_pes} PEs must be statically safe",
                    spec.name
                );
                let config = SimConfig::scale_out(n_pes)
                    .with_seed(seed)
                    .with_race_detection()
                    .with_remap();
                let mut sim = Simulator::new(circuit.n_qubits(), config).unwrap();
                let summary = sim.run(&circuit).unwrap();
                assert!(
                    summary.races.is_empty(),
                    "{} remapped at {n_pes} PEs raced: {:?}",
                    spec.name,
                    summary.races
                );
                assert_eq!(
                    summary.cbits, ref_summary.cbits,
                    "{} at {n_pes} PEs: classical bits diverged",
                    spec.name
                );
                assert_eq!(
                    sim.state_checksum(),
                    reference.state_checksum(),
                    "{} at {n_pes} PEs: remapped amplitudes must be bit-identical",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn measurement_and_conditionals_cross_validate_too() {
        // Exercise collapse epochs and classically conditioned gates (the
        // teleportation-style pattern) under both analyses at once.
        use svsim_ir::{Gate, GateKind};
        let mut c = Circuit::with_cbits(5, 2);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 4], &[]).unwrap();
        c.measure(0, 0).unwrap();
        c.if_eq(0, 1, 1, Gate::new(GateKind::X, &[4], &[]).unwrap())
            .unwrap();
        c.reset(2).unwrap();
        c.apply(GateKind::H, &[4], &[]).unwrap();
        let r = cross_validate("teleport-ish", &c, 4, 7).unwrap();
        assert_eq!(r.static_verdict, Verdict::ProvenSafe);
        assert!(r.races.is_empty() && r.agrees());
    }
}
