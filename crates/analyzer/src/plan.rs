//! Communication plans: the barrier-epoch structure of a compiled circuit.
//!
//! The scale-out executor (`svsim_core::exec::walk_steps`) interleaves
//! compiled kernels with barriers in a fixed, data-independent order: every
//! compiled kernel is followed by a `sync()`, and measurement/reset collapse
//! is likewise fenced before classical bits update. A [`CommPlan`] is the
//! static image of that schedule — one [`Epoch`] per barrier-to-barrier
//! window, each holding the gate kernels that run inside it.
//!
//! The plan is what the static checker ([`crate::check`]) consumes: it never
//! looks at amplitudes, only at which kernels share an epoch. Because the
//! real executor emits exactly one kernel per epoch, a freshly built plan is
//! conflict-free by construction; [`CommPlan::merge_epochs`] deliberately
//! removes a barrier so tests (and the CLI's `--merge-epochs` flag) can
//! exercise the checker against a mis-scheduled plan.

use svsim_core::compile::{compile_gate, CompiledGate, KernelId};
use svsim_ir::{Circuit, Gate, GateKind, Op};
use svsim_types::{SvError, SvResult};

/// Why an epoch exists — which kind of synchronized step it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochKind {
    /// One gate kernel between barriers (or several, after a deliberate
    /// [`CommPlan::merge_epochs`]).
    Kernel,
    /// Measurement/reset collapse: each PE rescales only its own partition,
    /// and the probability reduction is internally synchronized.
    Collapse,
    /// One barrier-fenced stage of a relabeling slab exchange
    /// (`ShmemView::exchange_pair`). Each swap contributes two of these:
    /// the pack stage (each PE reads its own partition and puts into its
    /// unique partner's exchange buffer — one writer per exchange word by
    /// the pairing `partner = pe ^ (1 << (b - shift))`), then the unpack
    /// stage (purely PE-local moves from own exchange buffer into own
    /// partition). Conflict-free by construction in both stages.
    Exchange,
}

/// One gate kernel as scheduled: the compiled kernel plus its provenance in
/// the source circuit.
#[derive(Debug, Clone)]
pub struct PlanGate {
    /// Index of the originating op in [`Circuit::ops`].
    pub source_op: usize,
    /// Which specialized kernel runs.
    pub kernel: KernelId,
    /// Involved qubits, ascending.
    pub qubits: Vec<u32>,
    /// True when execution depends on classical bits (an `IfEq` gate, or
    /// the outcome-dependent X that restores `|0>` after a reset).
    pub conditional: bool,
    /// The compiled argument block (work size, masks, sorted qubits).
    pub cg: CompiledGate,
}

/// One barrier epoch: the plan gates running between two barriers.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// What closes this epoch.
    pub kind: EpochKind,
    /// Indices into [`CommPlan::gates`]; empty for collapse epochs.
    pub gates: Vec<usize>,
}

/// The barrier-epoch schedule of a whole circuit.
#[derive(Debug, Clone)]
pub struct CommPlan {
    /// Circuit width.
    pub n_qubits: u32,
    /// Every scheduled gate kernel, in execution order.
    pub gates: Vec<PlanGate>,
    /// The epochs, in execution order.
    pub epochs: Vec<Epoch>,
}

fn push_gate_epochs(
    gates: &mut Vec<PlanGate>,
    epochs: &mut Vec<Epoch>,
    g: &Gate,
    n_qubits: u32,
    source_op: usize,
    conditional: bool,
) {
    let mut compiled = Vec::new();
    compile_gate(g, n_qubits, true, &mut compiled);
    for cg in compiled {
        let gi = gates.len();
        gates.push(PlanGate {
            source_op,
            kernel: cg.id,
            qubits: cg.args.sorted().to_vec(),
            conditional,
            cg,
        });
        epochs.push(Epoch {
            kind: EpochKind::Kernel,
            gates: vec![gi],
        });
    }
}

impl CommPlan {
    /// Derive the plan the scale-out executor would follow for `c`,
    /// mirroring its step lowering: one epoch per compiled kernel (the
    /// executor syncs after every kernel), one collapse epoch per
    /// measurement or reset, plus the conditional distributed X a reset may
    /// issue. Conditional gates are planned as if they execute — the
    /// conservative choice for safety analysis.
    #[must_use]
    pub fn from_circuit(c: &Circuit) -> Self {
        let n = c.n_qubits();
        let mut gates = Vec::new();
        let mut epochs = Vec::new();
        for (i, op) in c.ops().iter().enumerate() {
            match op {
                Op::Gate(g) => push_gate_epochs(&mut gates, &mut epochs, g, n, i, false),
                Op::IfEq { gate, .. } => {
                    push_gate_epochs(&mut gates, &mut epochs, gate, n, i, true);
                }
                Op::Measure { .. } => epochs.push(Epoch {
                    kind: EpochKind::Collapse,
                    gates: vec![],
                }),
                Op::Reset { qubit } => {
                    epochs.push(Epoch {
                        kind: EpochKind::Collapse,
                        gates: vec![],
                    });
                    let x = Gate::new(GateKind::X, &[*qubit], &[]).expect("X gate is valid");
                    push_gate_epochs(&mut gates, &mut epochs, &x, n, i, true);
                }
                Op::Barrier(_) => {} // scheduling hint; epochs already fence every kernel
            }
        }
        Self {
            n_qubits: n,
            gates,
            epochs,
        }
    }

    /// Derive the plan the scale-out executor would follow for `c` when
    /// the lowering fuses adjacent gates into ≤`window`-qubit dense sweeps
    /// (`SimConfig::with_fusion`). Mirrors the plan lowering's break
    /// rules: runs flush at measurement/reset collapses and at `IfEq`
    /// steps, and the same greedy pass (`svsim_core::fuse_compiled`,
    /// including its traffic-monotone `worth_fusing` cutoff) decides which
    /// runs actually merge — so the checker and the perfmodel see exactly
    /// the kernel stream the executor runs. A fused kernel's epoch claims
    /// the full window (every bit combination over its sorted qubits) via
    /// `kernel_access_patterns`, which keeps the per-epoch disjointness
    /// argument unchanged: one kernel per epoch, injective item bits.
    /// `window == 0` is exactly [`CommPlan::from_circuit`].
    #[must_use]
    pub fn from_circuit_fused(c: &Circuit, window: u8) -> Self {
        if window == 0 {
            return Self::from_circuit(c);
        }
        let n = c.n_qubits();
        let mut gates = Vec::new();
        let mut epochs = Vec::new();
        // Pending unconditional kernel run: the compiled queue plus the
        // source op of each entry, flushed through the fusion pass.
        let mut run: Vec<CompiledGate> = Vec::new();
        let mut run_ops: Vec<usize> = Vec::new();
        fn flush(
            run: &mut Vec<CompiledGate>,
            run_ops: &mut Vec<usize>,
            n: u32,
            window: u8,
            gates: &mut Vec<PlanGate>,
            epochs: &mut Vec<Epoch>,
        ) {
            if run.is_empty() {
                return;
            }
            let (fused, origin) = svsim_core::fuse_compiled(run, n, window);
            for (cg, covers) in fused.into_iter().zip(origin) {
                let gi = gates.len();
                gates.push(PlanGate {
                    source_op: run_ops[covers.start],
                    kernel: cg.id,
                    qubits: cg.args.sorted().to_vec(),
                    conditional: false,
                    cg,
                });
                epochs.push(Epoch {
                    kind: EpochKind::Kernel,
                    gates: vec![gi],
                });
            }
            run.clear();
            run_ops.clear();
        }
        for (i, op) in c.ops().iter().enumerate() {
            match op {
                Op::Gate(g) => {
                    let mut compiled = Vec::new();
                    compile_gate(g, n, true, &mut compiled);
                    for cg in compiled {
                        run.push(cg);
                        run_ops.push(i);
                    }
                }
                Op::IfEq { gate, .. } => {
                    flush(&mut run, &mut run_ops, n, window, &mut gates, &mut epochs);
                    push_gate_epochs(&mut gates, &mut epochs, gate, n, i, true);
                }
                Op::Measure { .. } => {
                    flush(&mut run, &mut run_ops, n, window, &mut gates, &mut epochs);
                    epochs.push(Epoch {
                        kind: EpochKind::Collapse,
                        gates: vec![],
                    });
                }
                Op::Reset { qubit } => {
                    flush(&mut run, &mut run_ops, n, window, &mut gates, &mut epochs);
                    epochs.push(Epoch {
                        kind: EpochKind::Collapse,
                        gates: vec![],
                    });
                    let x = Gate::new(GateKind::X, &[*qubit], &[]).expect("X gate is valid");
                    push_gate_epochs(&mut gates, &mut epochs, &x, n, i, true);
                }
                Op::Barrier(_) => {}
            }
        }
        flush(&mut run, &mut run_ops, n, window, &mut gates, &mut epochs);
        Self {
            n_qubits: n,
            gates,
            epochs,
        }
    }

    /// Derive the plan the *remapped* scale-out executor would follow for
    /// `c` at `n_pes` partitions. The schedule comes from the same planner
    /// the executor and the traffic model use
    /// ([`svsim_core::remap::plan_remap`]) — `CommPlan` stays the single
    /// source of truth for the epoch structure, and the planner stays the
    /// single source of truth for the relabeling policy. Each relabeling
    /// swap contributes two [`EpochKind::Exchange`] epochs (pack, unpack)
    /// mirroring the two barriers of `ShmemView::exchange_pair`; gates are
    /// planned at their *physical* positions, which is exactly what the
    /// executor's kernels index with.
    ///
    /// # Panics
    /// If `n_pes` is not a power of two or exceeds the state dimension
    /// (propagated from the planner).
    #[must_use]
    pub fn from_circuit_remapped(c: &Circuit, n_pes: u64) -> Self {
        let n = c.n_qubits();
        let plan = svsim_core::remap::plan_remap(c.ops(), n, n_pes);
        let mut gates = Vec::new();
        let mut epochs = Vec::new();
        for (i, (op, swaps)) in plan.ops.iter().zip(&plan.pre_swaps).enumerate() {
            for _ in swaps {
                epochs.push(Epoch {
                    kind: EpochKind::Exchange,
                    gates: vec![],
                });
                epochs.push(Epoch {
                    kind: EpochKind::Exchange,
                    gates: vec![],
                });
            }
            match op {
                Op::Gate(g) => push_gate_epochs(&mut gates, &mut epochs, g, n, i, false),
                Op::IfEq { gate, .. } => {
                    push_gate_epochs(&mut gates, &mut epochs, gate, n, i, true);
                }
                Op::Measure { .. } => epochs.push(Epoch {
                    kind: EpochKind::Collapse,
                    gates: vec![],
                }),
                Op::Reset { qubit } => {
                    epochs.push(Epoch {
                        kind: EpochKind::Collapse,
                        gates: vec![],
                    });
                    let x = Gate::new(GateKind::X, &[*qubit], &[]).expect("X gate is valid");
                    push_gate_epochs(&mut gates, &mut epochs, &x, n, i, true);
                }
                Op::Barrier(_) => unreachable!("the remap planner drops barriers"),
            }
        }
        Self {
            n_qubits: n,
            gates,
            epochs,
        }
    }

    /// Merge epoch `i + 1` into epoch `i`, modelling a schedule that omits
    /// the barrier between two kernels. Both epochs must be kernel epochs.
    ///
    /// # Errors
    /// If `i + 1` is out of range or either epoch is a collapse epoch.
    pub fn merge_epochs(&mut self, i: usize) -> SvResult<()> {
        if i + 1 >= self.epochs.len() {
            return Err(SvError::InvalidConfig(format!(
                "cannot merge epochs {i} and {}: plan has {} epochs",
                i + 1,
                self.epochs.len()
            )));
        }
        if self.epochs[i].kind != EpochKind::Kernel || self.epochs[i + 1].kind != EpochKind::Kernel
        {
            return Err(SvError::InvalidConfig(format!(
                "cannot merge epochs {i} and {}: only kernel epochs can merge",
                i + 1
            )));
        }
        let moved = self.epochs.remove(i + 1);
        self.epochs[i].gates.extend(moved.gates);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_epoch_per_compiled_kernel() {
        let mut c = Circuit::new(3);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::CX, &[1, 2], &[]).unwrap();
        let plan = CommPlan::from_circuit(&c);
        assert_eq!(plan.gates.len(), 3);
        assert_eq!(plan.epochs.len(), 3);
        assert!(plan
            .epochs
            .iter()
            .all(|e| e.kind == EpochKind::Kernel && e.gates.len() == 1));
    }

    #[test]
    fn compound_gates_expand_to_their_own_epochs() {
        let mut c = Circuit::new(3);
        c.apply(GateKind::RCCX, &[0, 1, 2], &[]).unwrap();
        let plan = CommPlan::from_circuit(&c);
        assert!(plan.epochs.len() > 5, "RCCX lowers to a kernel sequence");
        assert!(plan.gates.iter().all(|g| g.source_op == 0));
    }

    #[test]
    fn measure_and_reset_produce_collapse_epochs() {
        let mut c = Circuit::with_cbits(2, 1);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.measure(0, 0).unwrap();
        c.reset(1).unwrap();
        let plan = CommPlan::from_circuit(&c);
        let kinds: Vec<EpochKind> = plan.epochs.iter().map(|e| e.kind).collect();
        // H kernel, measure collapse, reset collapse, conditional X kernel.
        assert_eq!(
            kinds,
            vec![
                EpochKind::Kernel,
                EpochKind::Collapse,
                EpochKind::Collapse,
                EpochKind::Kernel
            ]
        );
        assert!(plan.gates[1].conditional, "reset X is outcome-dependent");
    }

    #[test]
    fn remapped_plans_mirror_the_executor_schedule() {
        // n=4 at 4 PEs: boundary = 2, so H(3) triggers one relabeling swap
        // = two Exchange epochs before its kernel epoch, and the kernel is
        // planned at the swapped-in LOW physical position.
        let mut c = Circuit::new(4);
        c.apply(GateKind::H, &[3], &[]).unwrap();
        let plan = CommPlan::from_circuit_remapped(&c, 4);
        let kinds: Vec<EpochKind> = plan.epochs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EpochKind::Exchange, EpochKind::Exchange, EpochKind::Kernel]
        );
        assert!(plan.gates[0].qubits[0] < 2, "gate localized below boundary");
    }

    #[test]
    fn remapped_exchange_epochs_cannot_merge() {
        let mut c = Circuit::new(4);
        c.apply(GateKind::H, &[3], &[]).unwrap();
        let mut plan = CommPlan::from_circuit_remapped(&c, 4);
        assert!(plan.merge_epochs(0).is_err(), "exchange epochs never merge");
    }

    #[test]
    fn remapped_plan_at_one_pe_is_the_plain_plan() {
        let mut c = Circuit::new(3);
        c.apply(GateKind::H, &[2], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 2], &[]).unwrap();
        let plain = CommPlan::from_circuit(&c);
        let remapped = CommPlan::from_circuit_remapped(&c, 1);
        assert_eq!(remapped.epochs.len(), plain.epochs.len());
        assert!(remapped.epochs.iter().all(|e| e.kind == EpochKind::Kernel));
    }

    #[test]
    fn fused_plans_collapse_epochs_and_stay_proven_safe() {
        // A deep rotation ladder on 3 qubits: every gate shares the same
        // ≤3-qubit window, so the fused plan collapses the whole run into
        // a handful of dense sweeps — and every epoch must still prove
        // conflict-free (one kernel per epoch, injective item bits).
        let mut c = Circuit::new(4);
        for layer in 0..6 {
            for q in 0..3 {
                c.apply(GateKind::H, &[q], &[]).unwrap();
                c.apply(GateKind::RZ, &[q], &[0.1 * f64::from(layer + 1)])
                    .unwrap();
            }
            c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
            c.apply(GateKind::CX, &[1, 2], &[]).unwrap();
        }
        let plain = CommPlan::from_circuit(&c);
        let fused = CommPlan::from_circuit_fused(&c, 3);
        assert!(
            fused.epochs.len() < plain.epochs.len() / 2,
            "fusion must collapse the ladder: {} vs {}",
            fused.epochs.len(),
            plain.epochs.len()
        );
        // No source kernel lost or invented by the rewrite.
        let queue: Vec<CompiledGate> = fused.gates.iter().map(|g| g.cg.clone()).collect();
        assert_eq!(svsim_core::source_kernels(&queue), plain.gates.len());
        let report = crate::check::check_plan(&fused, 8).unwrap();
        assert!(report.is_proven_safe(), "fused epochs must prove clean");
    }

    #[test]
    fn fused_runs_break_at_collapse_and_conditional_steps() {
        // The measure collapses the pending run: gates before and after it
        // may fuse among themselves but never across it, and the reset's
        // outcome-dependent X stays an unfused conditional kernel.
        let mut c = Circuit::with_cbits(3, 1);
        for _ in 0..4 {
            c.apply(GateKind::H, &[0], &[]).unwrap();
            c.apply(GateKind::H, &[1], &[]).unwrap();
        }
        c.measure(0, 0).unwrap();
        for _ in 0..4 {
            c.apply(GateKind::H, &[0], &[]).unwrap();
            c.apply(GateKind::H, &[1], &[]).unwrap();
        }
        c.reset(2).unwrap();
        let fused = CommPlan::from_circuit_fused(&c, 2);
        let kinds: Vec<EpochKind> = fused.epochs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EpochKind::Kernel,   // fused pre-measure run
                EpochKind::Collapse, // measure
                EpochKind::Kernel,   // fused post-measure run
                EpochKind::Collapse, // reset
                EpochKind::Kernel,   // conditional X
            ]
        );
        let last = fused.gates.last().unwrap();
        assert!(last.conditional, "reset X is outcome-dependent");
        assert!(last.cg.args.fused.is_empty(), "conditionals never fuse");
    }

    #[test]
    fn fused_plan_at_window_zero_is_the_plain_plan() {
        let mut c = Circuit::new(3);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        let plain = CommPlan::from_circuit(&c);
        let fused = CommPlan::from_circuit_fused(&c, 0);
        assert_eq!(fused.epochs.len(), plain.epochs.len());
        assert_eq!(fused.gates.len(), plain.gates.len());
    }

    #[test]
    fn merge_validates_its_arguments() {
        let mut c = Circuit::with_cbits(2, 1);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.measure(0, 0).unwrap();
        let mut plan = CommPlan::from_circuit(&c);
        assert!(plan.merge_epochs(5).is_err(), "out of range");
        assert!(plan.merge_epochs(0).is_err(), "kernel + collapse");

        let mut c2 = Circuit::new(2);
        c2.apply(GateKind::H, &[0], &[]).unwrap();
        c2.apply(GateKind::H, &[1], &[]).unwrap();
        let mut plan2 = CommPlan::from_circuit(&c2);
        plan2.merge_epochs(0).unwrap();
        assert_eq!(plan2.epochs.len(), 1);
        assert_eq!(plan2.epochs[0].gates, vec![0, 1]);
    }
}
