//! The static communication-plan checker.
//!
//! Proves, per barrier epoch, that no two PEs touch the same amplitude —
//! the §2.2 contract of the one-sided SHMEM protocol — *symbolically*, by
//! pair-index arithmetic over qubit masks, never by enumerating the `2^n`
//! amplitudes.
//!
//! # The index-set algebra
//!
//! Every kernel's accesses follow one formula (shared verbatim with the
//! traffic model through [`kernel_access_patterns`]): work item `i` at
//! access pattern `pat` touches amplitude
//! `insert_zero_bits(i, sorted) | pat`, where `sorted` are the kernel's
//! involved-qubit positions. Item bits land injectively at the non-involved
//! positions; pattern bits live only at involved positions. Two structural
//! facts follow:
//!
//! 1. **A single-kernel epoch is safe by injectivity.** The map
//!    `(item, pat) -> index` is injective, each item belongs to exactly one
//!    PE's contiguous [`worker_range`], so every amplitude is touched by at
//!    most one PE. No arithmetic needed — `O(1)` per epoch.
//!
//! 2. **A PE's index set is a finite union of rectangular blocks.** With
//!    `work >= n_pes` (both powers of two), PE `p` owns items
//!    `[p·w/P, (p+1)·w/P)`: the low item bits range freely, the top
//!    `log2(P)` item bits are pinned to `p`. Mapped through the zero-bit
//!    insertion, the set of indices PE `p` touches through pattern `pat` is
//!    exactly `{ idx : idx & mask == value }` with
//!    `mask = dim_mask & !insert_zero_bits(w/P - 1, sorted)` and
//!    `value = insert_zero_bits(p·w/P, sorted) | pat`. When `work < n_pes`
//!    each PE has at most one item and blocks pin every bit.
//!
//! Two blocks `(mA, vA)` and `(mB, vB)` intersect iff their pinned bits
//! agree: `(vA ^ vB) & mA & mB == 0`, and then `vA | vB` is a concrete
//! witness amplitude in the intersection. Since every kernel both reads and
//! writes each index it touches, any cross-PE intersection is a
//! write/write conflict. Checking an epoch is `O(gates² · P² · patterns²)`
//! block pairs — independent of the amplitude count, so a 23-qubit plan
//! checks as fast as a 4-qubit one.

use crate::plan::{CommPlan, EpochKind};
use std::fmt;
use svsim_core::compile::{CompiledGate, KernelId};
use svsim_core::kernels::worker_range;
use svsim_core::traffic::kernel_access_patterns;
use svsim_types::bits::insert_zero_bits;
use svsim_types::{SvError, SvResult};

/// Outcome of analyzing one epoch (or a whole plan: the worst epoch wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Every cross-PE access pair was proven disjoint.
    ProvenSafe,
    /// The pair budget ran out before the epoch was fully checked.
    Unknown,
    /// At least one cross-PE overlap exists; see [`AnalysisReport::conflicts`].
    Conflicting,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::ProvenSafe => "proven-safe",
            Self::Unknown => "unknown",
            Self::Conflicting => "CONFLICTING",
        })
    }
}

/// A proven cross-PE overlap: two kernels in one epoch whose index sets
/// intersect, with a concrete witness amplitude.
#[derive(Debug, Clone)]
pub struct Conflict {
    /// Epoch index in the plan.
    pub epoch: usize,
    /// First plan-gate index ([`CommPlan::gates`]).
    pub gate_a: usize,
    /// Second plan-gate index.
    pub gate_b: usize,
    /// Kernel of the first gate.
    pub kernel_a: KernelId,
    /// Kernel of the second gate.
    pub kernel_b: KernelId,
    /// Involved qubits of the first gate.
    pub qubits_a: Vec<u32>,
    /// Involved qubits of the second gate.
    pub qubits_b: Vec<u32>,
    /// Source-circuit op index of the first gate.
    pub source_op_a: usize,
    /// Source-circuit op index of the second gate.
    pub source_op_b: usize,
    /// PE executing the first gate's overlapping items.
    pub pe_a: u64,
    /// PE executing the second gate's overlapping items.
    pub pe_b: u64,
    /// A concrete amplitude index both PEs touch.
    pub witness_index: u64,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "write/write conflict in epoch {}: {:?} on q{:?} (gate #{}, op #{}) by PE {} and \
             {:?} on q{:?} (gate #{}, op #{}) by PE {} both touch amplitude {:#x}",
            self.epoch,
            self.kernel_a,
            self.qubits_a,
            self.gate_a,
            self.source_op_a,
            self.pe_a,
            self.kernel_b,
            self.qubits_b,
            self.gate_b,
            self.source_op_b,
            self.pe_b,
            self.witness_index
        )
    }
}

/// Per-epoch analysis outcome.
#[derive(Debug, Clone)]
pub struct EpochSummary {
    /// Epoch index.
    pub epoch: usize,
    /// Epoch kind.
    pub kind: EpochKind,
    /// Number of gate kernels inside.
    pub n_gates: usize,
    /// Verdict for this epoch.
    pub verdict: Verdict,
    /// Block pairs compared (0 for epochs safe by injectivity/locality).
    pub pairs_checked: u64,
}

/// The full analysis of a communication plan at one partitioning.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Circuit width.
    pub n_qubits: u32,
    /// Partition count analyzed.
    pub n_pes: u64,
    /// Per-epoch outcomes, in schedule order.
    pub epochs: Vec<EpochSummary>,
    /// Every recorded conflict (capped per epoch; the verdict is exact).
    pub conflicts: Vec<Conflict>,
}

impl AnalysisReport {
    /// Worst epoch verdict (a plan is only as safe as its worst epoch).
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        self.epochs
            .iter()
            .map(|e| e.verdict)
            .max()
            .unwrap_or(Verdict::ProvenSafe)
    }

    /// True when every epoch was proven conflict-free.
    #[must_use]
    pub fn is_proven_safe(&self) -> bool {
        self.verdict() == Verdict::ProvenSafe
    }

    /// Number of epochs with the given verdict.
    #[must_use]
    pub fn count(&self, v: Verdict) -> usize {
        self.epochs.iter().filter(|e| e.verdict == v).count()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan: {} qubits at {} PEs, {} epochs ({} proven-safe, {} unknown, {} conflicting) => {}",
            self.n_qubits,
            self.n_pes,
            self.epochs.len(),
            self.count(Verdict::ProvenSafe),
            self.count(Verdict::Unknown),
            self.count(Verdict::Conflicting),
            self.verdict()
        )?;
        for c in &self.conflicts {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

/// Default block-pair budget per plan: far above any realistic schedule,
/// low enough to bound a degenerate merged epoch at huge PE counts.
pub const DEFAULT_PAIR_BUDGET: u64 = 50_000_000;

/// Most conflicts recorded per epoch; the verdict stays exact past the cap.
const MAX_CONFLICTS_PER_EPOCH: usize = 8;

/// One rectangular index set `{ idx : idx & mask == value }`.
#[derive(Clone, Copy)]
struct Block {
    mask: u64,
    value: u64,
}

/// The blocks of indices PE `pe` touches executing `cg`, one per
/// (owned-item-group, access pattern).
fn blocks_for(
    cg: &CompiledGate,
    patterns: &[u64],
    n_qubits: u32,
    n_pes: u64,
    pe: u64,
    out: &mut Vec<Block>,
) {
    out.clear();
    let dim_mask = (1u64 << n_qubits) - 1;
    let sorted = cg.args.sorted();
    let work = cg.args.work;
    if work >= n_pes {
        // Power-of-two partitioning: the low log2(work/n_pes) item bits
        // range freely over PE `pe`'s chunk, the rest are pinned.
        let per_pe = work / n_pes;
        let free = insert_zero_bits(per_pe - 1, sorted);
        let mask = dim_mask & !free;
        let base = insert_zero_bits(pe * per_pe, sorted);
        for &pat in patterns {
            out.push(Block {
                mask,
                value: base | pat,
            });
        }
    } else {
        // Fewer items than PEs: each PE has at most one concrete item.
        for i in worker_range(work, n_pes, pe) {
            let base = insert_zero_bits(i, sorted);
            for &pat in patterns {
                out.push(Block {
                    mask: dim_mask,
                    value: base | pat,
                });
            }
        }
    }
}

/// Check all cross-PE block pairs between two distinct gates of one epoch.
#[allow(clippy::too_many_arguments)]
fn check_gate_pair(
    plan: &CommPlan,
    epoch: usize,
    ga: usize,
    gb: usize,
    n_pes: u64,
    pairs: &mut u64,
    budget: u64,
    conflicts: &mut Vec<Conflict>,
    epoch_conflicts: &mut usize,
) -> Verdict {
    let a = &plan.gates[ga];
    let b = &plan.gates[gb];
    let (pats_a, _) = kernel_access_patterns(&a.cg);
    let (pats_b, _) = kernel_access_patterns(&b.cg);
    let mut ba = Vec::new();
    let mut bb = Vec::new();
    let mut verdict = Verdict::ProvenSafe;
    for p in 0..n_pes {
        blocks_for(&a.cg, &pats_a, plan.n_qubits, n_pes, p, &mut ba);
        if ba.is_empty() {
            continue;
        }
        for q in 0..n_pes {
            if q == p {
                continue; // same-PE accesses are sequential, never a race
            }
            blocks_for(&b.cg, &pats_b, plan.n_qubits, n_pes, q, &mut bb);
            for blk_a in &ba {
                for blk_b in &bb {
                    *pairs += 1;
                    if *pairs > budget {
                        return Verdict::Unknown;
                    }
                    if (blk_a.value ^ blk_b.value) & blk_a.mask & blk_b.mask == 0 {
                        verdict = Verdict::Conflicting;
                        if *epoch_conflicts < MAX_CONFLICTS_PER_EPOCH {
                            *epoch_conflicts += 1;
                            conflicts.push(Conflict {
                                epoch,
                                gate_a: ga,
                                gate_b: gb,
                                kernel_a: a.kernel,
                                kernel_b: b.kernel,
                                qubits_a: a.qubits.clone(),
                                qubits_b: b.qubits.clone(),
                                source_op_a: a.source_op,
                                source_op_b: b.source_op,
                                pe_a: p,
                                pe_b: q,
                                witness_index: blk_a.value | blk_b.value,
                            });
                        }
                    }
                }
            }
        }
    }
    verdict
}

/// Check a plan with the default pair budget.
///
/// # Errors
/// [`SvError::InvalidConfig`] on a PE count that is zero, not a power of
/// two, or larger than the state dimension.
pub fn check_plan(plan: &CommPlan, n_pes: u64) -> SvResult<AnalysisReport> {
    check_plan_with_budget(plan, n_pes, DEFAULT_PAIR_BUDGET)
}

/// Check a plan, bounding the symbolic work to `budget` block pairs; an
/// epoch that exhausts the budget is reported [`Verdict::Unknown`] instead
/// of grinding on.
///
/// # Errors
/// [`SvError::InvalidConfig`] on an invalid PE count (see [`check_plan`]).
pub fn check_plan_with_budget(
    plan: &CommPlan,
    n_pes: u64,
    budget: u64,
) -> SvResult<AnalysisReport> {
    if n_pes == 0 || !n_pes.is_power_of_two() {
        return Err(SvError::InvalidConfig(format!(
            "PE count must be a nonzero power of two, got {n_pes}"
        )));
    }
    if plan.n_qubits >= 64 || n_pes > (1u64 << plan.n_qubits) {
        return Err(SvError::InvalidConfig(format!(
            "{n_pes} PEs cannot partition a {}-qubit state",
            plan.n_qubits
        )));
    }
    let mut pairs_spent = 0u64;
    let mut epochs = Vec::with_capacity(plan.epochs.len());
    let mut conflicts = Vec::new();
    for (ei, ep) in plan.epochs.iter().enumerate() {
        let before = pairs_spent;
        let verdict = match ep.kind {
            // Collapse epochs only write each PE's own partition; the
            // probability reduction synchronizes internally.
            EpochKind::Collapse => Verdict::ProvenSafe,
            // Exchange epochs are safe by the pairing construction: in the
            // pack stage every exchange word has exactly one writer (its
            // owner's unique partner under `pe ^ (1 << pe_bit)`), and the
            // unpack stage is purely PE-local. See `EpochKind::Exchange`.
            EpochKind::Exchange => Verdict::ProvenSafe,
            EpochKind::Kernel if ep.gates.len() <= 1 => {
                // Safe by injectivity of (item, pattern) -> index.
                Verdict::ProvenSafe
            }
            EpochKind::Kernel => {
                let mut v = Verdict::ProvenSafe;
                let mut epoch_conflicts = 0usize;
                'pairs: for (i, &ga) in ep.gates.iter().enumerate() {
                    for &gb in &ep.gates[i + 1..] {
                        let pv = check_gate_pair(
                            plan,
                            ei,
                            ga,
                            gb,
                            n_pes,
                            &mut pairs_spent,
                            budget,
                            &mut conflicts,
                            &mut epoch_conflicts,
                        );
                        v = v.max(pv);
                        if pv == Verdict::Unknown {
                            break 'pairs;
                        }
                    }
                }
                v
            }
        };
        epochs.push(EpochSummary {
            epoch: ei,
            kind: ep.kind,
            n_gates: ep.gates.len(),
            verdict,
            pairs_checked: pairs_spent - before,
        });
    }
    Ok(AnalysisReport {
        n_qubits: plan.n_qubits,
        n_pes,
        epochs,
        conflicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CommPlan;
    use svsim_ir::{Circuit, GateKind};

    fn plan_of(n: u32, gates: &[(GateKind, &[u32], &[f64])]) -> CommPlan {
        let mut c = Circuit::new(n);
        for (k, q, p) in gates {
            c.apply(*k, q, p).unwrap();
        }
        CommPlan::from_circuit(&c)
    }

    /// Membership oracle: does `(gate, pe)` touch `idx`? Walks the PE's
    /// items directly — fine at test sizes, never used by the checker.
    fn touches(plan: &CommPlan, gi: usize, n_pes: u64, pe: u64, idx: u64) -> bool {
        let cg = &plan.gates[gi].cg;
        let (pats, _) = kernel_access_patterns(cg);
        worker_range(cg.args.work, n_pes, pe).any(|i| {
            let base = insert_zero_bits(i, cg.args.sorted());
            pats.iter().any(|&p| base | p == idx)
        })
    }

    #[test]
    fn unmerged_plans_are_safe_in_constant_time() {
        let plan = plan_of(
            20,
            &[
                (GateKind::H, &[19], &[]),
                (GateKind::CX, &[0, 19], &[]),
                (GateKind::RZZ, &[10, 19], &[0.3]),
            ],
        );
        let rep = check_plan(&plan, 8).unwrap();
        assert!(rep.is_proven_safe());
        assert!(rep.epochs.iter().all(|e| e.pairs_checked == 0));
    }

    #[test]
    fn merged_overlapping_hadamards_conflict_with_exact_attribution() {
        // H(0);H(3) at n=4, 2 PEs: H(3) makes PE1 write into PE0's half
        // while PE0's H(0) is writing it — the worked example of the docs.
        let mut plan = plan_of(4, &[(GateKind::H, &[0], &[]), (GateKind::H, &[3], &[])]);
        plan.merge_epochs(0).unwrap();
        let rep = check_plan(&plan, 2).unwrap();
        assert_eq!(rep.verdict(), Verdict::Conflicting);
        let c = &rep.conflicts[0];
        assert_eq!(c.epoch, 0);
        assert_eq!((c.gate_a, c.gate_b), (0, 1));
        assert_eq!((c.source_op_a, c.source_op_b), (0, 1));
        assert_eq!(c.qubits_a, vec![0]);
        assert_eq!(c.qubits_b, vec![3]);
        assert_ne!(c.pe_a, c.pe_b);
        // The witness must be real: both PEs actually touch it.
        assert!(touches(&plan, c.gate_a, 2, c.pe_a, c.witness_index));
        assert!(touches(&plan, c.gate_b, 2, c.pe_b, c.witness_index));
    }

    #[test]
    fn merged_low_qubit_gates_stay_provably_safe() {
        // H(0);H(1) at n=6, 2 PEs: both all-local, the merged epoch is
        // genuinely fine and the checker must prove it (not just give up).
        let mut plan = plan_of(6, &[(GateKind::H, &[0], &[]), (GateKind::H, &[1], &[])]);
        plan.merge_epochs(0).unwrap();
        let rep = check_plan(&plan, 2).unwrap();
        assert!(rep.is_proven_safe());
        assert!(rep.epochs[0].pairs_checked > 0, "actually compared blocks");
    }

    #[test]
    fn identical_gates_merged_do_not_self_conflict() {
        let mut plan = plan_of(6, &[(GateKind::H, &[5], &[]), (GateKind::H, &[5], &[])]);
        plan.merge_epochs(0).unwrap();
        // Both gates make the same remote accesses, but item-for-item from
        // the same owning PE — no *cross-PE* overlap exists.
        let rep = check_plan(&plan, 4).unwrap();
        assert!(rep.is_proven_safe());
    }

    #[test]
    fn tiny_work_gates_are_checked_by_exact_enumeration() {
        // C4X has work=2 < 4 PEs; merged with H(0) it collides: PE1's C4X
        // item writes amplitude 0b001111 inside PE0's partition while PE0's
        // H(0) writes it too.
        let mut plan = plan_of(
            6,
            &[
                (GateKind::C4X, &[0, 1, 2, 3, 4], &[]),
                (GateKind::H, &[0], &[]),
            ],
        );
        plan.merge_epochs(0).unwrap();
        let rep = check_plan(&plan, 4).unwrap();
        assert_eq!(rep.verdict(), Verdict::Conflicting);
        let c = rep
            .conflicts
            .iter()
            .find(|c| c.witness_index == 0b00_1111)
            .expect("the hand-computed witness");
        assert!(touches(&plan, c.gate_a, 4, c.pe_a, c.witness_index));
        assert!(touches(&plan, c.gate_b, 4, c.pe_b, c.witness_index));
    }

    #[test]
    fn exhausted_budget_reports_unknown_not_wrong() {
        let mut plan = plan_of(6, &[(GateKind::H, &[0], &[]), (GateKind::H, &[1], &[])]);
        plan.merge_epochs(0).unwrap();
        let rep = check_plan_with_budget(&plan, 2, 1).unwrap();
        assert_eq!(rep.verdict(), Verdict::Unknown);
        assert_eq!(rep.count(Verdict::Unknown), 1);
    }

    #[test]
    fn invalid_pe_counts_are_rejected() {
        let plan = plan_of(3, &[(GateKind::H, &[0], &[])]);
        assert!(check_plan(&plan, 0).is_err());
        assert!(check_plan(&plan, 3).is_err());
        assert!(check_plan(&plan, 16).is_err(), "more PEs than amplitudes");
    }

    #[test]
    fn conflict_display_names_everything_needed_to_fix_the_schedule() {
        let mut plan = plan_of(4, &[(GateKind::H, &[0], &[]), (GateKind::H, &[3], &[])]);
        plan.merge_epochs(0).unwrap();
        let rep = check_plan(&plan, 2).unwrap();
        let msg = rep.conflicts[0].to_string();
        for needle in ["epoch 0", "H", "q[0]", "q[3]", "PE", "write/write"] {
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }
}
