//! svsim-analyzer: static + dynamic race analysis of the one-sided SHMEM
//! access protocol.
//!
//! The scale-out backend's correctness rests on the §2.2 contract: between
//! two barriers, no amplitude may be touched by more than one PE. This
//! crate attacks that contract from both sides:
//!
//! - **Static** ([`plan`], [`check`]): derive the barrier-epoch schedule a
//!   circuit compiles to ([`CommPlan`]) and *prove* each epoch's per-PE
//!   remote index sets pairwise disjoint by symbolic pair-index arithmetic
//!   over qubit masks — `O(PEs² · patterns²)` per epoch, independent of the
//!   `2^n` amplitude count.
//! - **Dynamic** ([`dynamic`]): execute the same schedule under the
//!   vector-clock [`svsim_shmem::RaceDetector`] and check the observed
//!   behaviour agrees with the proof (proven-safe ⇒ zero races).
//!
//! [`analyze_circuit`] is the one-call static entry point;
//! [`checked_run`] gates a simulation on the proof, refusing to execute a
//! plan the checker cannot certify.

pub mod check;
pub mod dynamic;
pub mod plan;

pub use check::{
    check_plan, check_plan_with_budget, AnalysisReport, Conflict, EpochSummary, Verdict,
};
pub use dynamic::{cross_validate, cross_validate_remapped, cross_validate_suite, CrossValidation};
pub use plan::{CommPlan, Epoch, EpochKind, PlanGate};

use svsim_core::{BackendKind, RunSummary, SimConfig, Simulator};
use svsim_ir::Circuit;
use svsim_types::{SvError, SvResult};

/// Build the communication plan of `circuit` and statically check it at
/// `n_pes` partitions.
///
/// # Errors
/// [`SvError::InvalidConfig`] on an invalid PE count.
pub fn analyze_circuit(circuit: &Circuit, n_pes: u64) -> SvResult<AnalysisReport> {
    let plan = CommPlan::from_circuit(circuit);
    check_plan(&plan, n_pes)
}

/// Build the *remapped* communication plan of `circuit` (the schedule the
/// communication-avoiding executor follows, including relabeling exchange
/// epochs) and statically check it at `n_pes` partitions.
///
/// # Errors
/// [`SvError::InvalidConfig`] on an invalid PE count.
pub fn analyze_circuit_remapped(circuit: &Circuit, n_pes: u64) -> SvResult<AnalysisReport> {
    if n_pes == 0 || !n_pes.is_power_of_two() || n_pes > (1u64 << circuit.n_qubits().min(63)) {
        return Err(SvError::InvalidConfig(format!(
            "PE count {n_pes} cannot partition a {}-qubit state",
            circuit.n_qubits()
        )));
    }
    let plan = CommPlan::from_circuit_remapped(circuit, n_pes);
    check_plan(&plan, n_pes)
}

/// Require a conflict-free proof before executing: analyze the circuit's
/// plan at the configured partitioning, refuse to run if any epoch is
/// conflicting, then simulate and return both the proof and the run.
///
/// Non-scale-out backends have a single worker per amplitude partition and
/// are analyzed at one PE (trivially safe); the gate matters on
/// [`BackendKind::ScaleOut`].
///
/// # Errors
/// [`SvError::InvalidConfig`] naming the first conflict when the plan is
/// rejected; otherwise simulation errors.
pub fn checked_run(circuit: &Circuit, config: SimConfig) -> SvResult<(AnalysisReport, RunSummary)> {
    let n_pes = match config.backend {
        BackendKind::ScaleOut { n_pes } => n_pes as u64,
        _ => 1,
    };
    let report = analyze_circuit(circuit, n_pes)?;
    if report.verdict() == Verdict::Conflicting {
        let first = report
            .conflicts
            .first()
            .map_or_else(String::new, ToString::to_string);
        return Err(SvError::InvalidConfig(format!(
            "communication plan rejected by the static checker: {first}"
        )));
    }
    let mut sim = Simulator::new(circuit.n_qubits(), config)?;
    let summary = sim.run(circuit)?;
    Ok((report, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_ir::GateKind;

    #[test]
    fn checked_run_accepts_proven_safe_plans() {
        let mut c = Circuit::new(4);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 3], &[]).unwrap();
        let (report, summary) = checked_run(&c, SimConfig::scale_out(2).with_seed(1)).unwrap();
        assert!(report.is_proven_safe());
        assert!(summary.races.is_empty());
    }

    #[test]
    fn checked_run_covers_non_scaleout_backends_trivially() {
        let mut c = Circuit::new(3);
        c.apply(GateKind::H, &[1], &[]).unwrap();
        let (report, _) = checked_run(&c, SimConfig::single_device()).unwrap();
        assert_eq!(report.n_pes, 1);
        assert!(report.is_proven_safe());
    }

    #[test]
    fn the_whole_suite_is_statically_safe_at_scale() {
        // Every Table 4 workload — including the 20- and 23-qubit ones —
        // must be proven conflict-free at 2 and 8 PEs, fast: the checker
        // works on masks, never on the 2^23 amplitudes.
        let t0 = std::time::Instant::now();
        for spec in svsim_workloads::medium_suite()
            .into_iter()
            .chain(svsim_workloads::large_suite())
        {
            let c = spec.circuit().unwrap();
            for pes in [2u64, 8] {
                let rep = analyze_circuit(&c, pes).unwrap();
                assert!(rep.is_proven_safe(), "{} at {pes} PEs: {rep}", spec.name);
            }
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(1),
            "static analysis of the full suite must stay symbolic-fast, took {:?}",
            t0.elapsed()
        );
    }
}
