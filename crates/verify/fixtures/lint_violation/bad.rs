// Seeded lint violations for the `sv-sim lint` self-test (CI's lint leg
// points the linter at this directory and expects a nonzero exit):
// an `unsafe` block outside the substrate allowlist, with no SAFETY
// justification, plus a raw FFI declaration outside proc.rs. This file
// is not part of any crate — the workspace scan skips `fixtures/`.

pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}

extern "C" {
    fn getpid() -> i32;
}
