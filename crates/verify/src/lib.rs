//! Exhaustive model checking of the shmem protocol state machines.
//!
//! The protocols this crate checks are *not* re-modeled here: the
//! harnesses under [`harness`] step the very state machines production
//! executes ([`svsim_shmem::proto`]) — the same `step()` code the thread
//! barrier, the process world, and the fault injector drive over real
//! atomics, here driven over a plain [`mem::ModelMem`] word vector by an
//! exhaustive breadth-first scheduler that interleaves actors one
//! shared-memory operation at a time and injects kills, reaps, and
//! timeouts before any step.
//!
//! The explorer ([`explore`]) checks three kinds of property:
//!
//! - **Safety**: an invariant evaluated at every reachable state;
//! - **Terminal shape**: a state with no successors must be accepting;
//! - **Liveness**: every reachable state must be able to reach an
//!   accepting state (co-reachability over the explored graph — a cycle
//!   that cannot progress to completion is reported as a livelock).
//!
//! Exploration is over sequentially-consistent interleavings, which is
//! stronger than the release/acquire orderings production requests; the
//! per-transition ordering arguments live next to the machines in
//! [`svsim_shmem::proto`].

pub mod explore;
pub mod harness;
pub mod lint;
pub mod mem;

pub use explore::{explore, Model, Report, Violation};

/// One checked protocol property with its exhaustive proof bound.
#[derive(Debug, Clone)]
pub struct ProofBound {
    /// Which harness ran.
    pub name: &'static str,
    /// How many concurrent actors (PEs plus supervisor-side actors).
    pub actors: usize,
    /// Distinct states visited (the proof is exhaustive over these).
    pub states: usize,
    /// Transitions explored.
    pub edges: usize,
}

impl std::fmt::Display for ProofBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} actors, {} states, {} transitions — exhaustive, no violation",
            self.name, self.actors, self.states, self.edges
        )
    }
}

/// Run every protocol harness at its CI configuration and collect proof
/// bounds. This is the `sv-sim verify` entry point.
///
/// # Errors
/// The first [`Violation`] any harness finds (message plus the full
/// interleaving trace that reaches it).
pub fn check_all(max_states: usize) -> Result<Vec<ProofBound>, Box<Violation>> {
    let mut bounds = Vec::new();
    for model in harness::barrier::ci_models() {
        let report = explore(&model, max_states)?;
        bounds.push(ProofBound {
            name: "barrier",
            actors: model.n,
            states: report.states,
            edges: report.edges,
        });
    }
    {
        let model = harness::round::ci_model();
        let report = explore(&model, max_states)?;
        bounds.push(ProofBound {
            name: "respawn-round",
            actors: model.survivors + 1,
            states: report.states,
            edges: report.edges,
        });
    }
    {
        let model = harness::heap::ci_model();
        let report = explore(&model, max_states)?;
        bounds.push(ProofBound {
            name: "heap-alloc",
            actors: 2,
            states: report.states,
            edges: report.edges,
        });
    }
    {
        let model = harness::fault::ci_model();
        let report = explore(&model, max_states)?;
        bounds.push(ProofBound {
            name: "fault-oneshot",
            actors: model.checkers,
            states: report.states,
            edges: report.edges,
        });
    }
    Ok(bounds)
}
