//! `svsim-lint`: a source scanner enforcing workspace invariants the
//! compiler cannot (`sv-sim lint`, CI's `lint` leg).
//!
//! Five rules:
//!
//! - **R1 `unsafe-confined`** — `unsafe` appears only in the shmem
//!   substrate modules that own raw memory or process state
//!   (`proc.rs`, `shared.rs`, `metrics.rs`). Everything above the
//!   substrate is safe Rust by construction.
//! - **R2 `safety-comment`** — every `unsafe` site in the allowlisted
//!   files carries a nearby `SAFETY:` justification (or a `# Safety`
//!   doc section for `unsafe fn` contracts).
//! - **R3 `ffi-confined`** — raw FFI (`extern "C"`, `libc::`) appears
//!   only in `proc.rs`, the one module allowed to talk to the OS
//!   directly (the workspace links no libc crate; `proc.rs` declares
//!   the handful of syscalls it needs itself).
//! - **R4 `accessor-manifest`** — every one-sided `ShmemCtx` data-plane
//!   accessor is instrumented: a fault injection point
//!   (`transfer_fault`) where the op is droppable, the race-detector
//!   hook (`trace_*`), and the traffic counter (`count_*`), checked
//!   against the manifest below. Any function touching partition
//!   buffers (`.bufs[`) that is *not* in the manifest is flagged, so an
//!   uninstrumented accessor cannot be added silently.
//! - **R5 `retryable-exhaustive`** — `svsim-engine`'s `retryable()`
//!   names every `SvError` variant and has no wildcard arm, so a new
//!   error variant is a lint (and compile) error, not a silently
//!   non-retryable job.
//!
//! The scanner works on comment- and string-stripped source (a small
//! lexer below), so `unsafe` in a doc comment or a string literal never
//! trips a rule. Rules R4/R5 are skipped when their target files are
//! absent (e.g. when pointing the linter at a fixture directory); the
//! workspace self-test asserts all five ran against the real tree.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Finding severity. Errors always fail the lint; warnings fail it only
/// under `--deny-warnings` (which CI passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Invariant broken.
    Error,
    /// Suspicious but not invariant-breaking.
    Warning,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (`unsafe-confined`, ...).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// File, relative to the scanned root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{sev}[{}]: {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// The outcome of a lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, in file order.
    pub findings: Vec<Finding>,
    /// Rules that actually executed (R4/R5 skip on missing targets).
    pub rules_run: Vec<&'static str>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }
}

/// Files allowed to contain `unsafe` (R1): the raw-memory and
/// raw-process substrate of the shmem crate, nothing else.
const ALLOW_UNSAFE: &[&str] = &[
    "crates/shmem/src/proc.rs",
    "crates/shmem/src/shared.rs",
    "crates/shmem/src/metrics.rs",
];

/// Files allowed raw FFI (R3).
const ALLOW_FFI: &[&str] = &["crates/shmem/src/proc.rs"];

/// The `ShmemCtx` accessor instrumentation manifest (R4): every
/// one-sided data-plane accessor and the instrumentation calls its body
/// must contain. Droppable transfers additionally need the fault point;
/// atomics are never dropped (they model network atomics with a
/// completion reply), so they carry trace + counter only.
const ACCESSOR_MANIFEST: &[(&str, &[&str])] = &[
    ("get_f64", &["transfer_fault", "trace_read", "count_get"]),
    ("put_f64", &["transfer_fault", "trace_write", "count_put"]),
    (
        "get_slice_f64",
        &["transfer_fault", "trace_read_slow", "count_get"],
    ),
    (
        "put_slice_f64",
        &["transfer_fault", "trace_write_slow", "count_put"],
    ),
    ("get_u64", &["transfer_fault", "trace_read", "count_get"]),
    ("put_u64", &["transfer_fault", "trace_write", "count_put"]),
    ("atomic_fetch_add_f64", &["trace_atomic", "count_atomic"]),
    ("atomic_fetch_add_u64", &["trace_atomic", "count_atomic"]),
    ("atomic_compare_swap_u64", &["trace_atomic", "count_atomic"]),
    ("atomic_swap_u64", &["trace_atomic", "count_atomic"]),
];

/// Functions allowed to touch partition buffers *without*
/// instrumentation (R4): the `shmem_ptr` analog — handing out a direct
/// reference to one PE's partition for local hot-loop access, where
/// per-element counting would swamp the gate kernel. Everything routed
/// through these references is local by construction; remote traffic
/// must go through the manifested accessors above.
const LOCAL_ACCESS_ALLOW: &[&str] = &["partition"];

/// Run every applicable rule over the `.rs` files under `root`.
///
/// # Errors
/// Propagates I/O failures reading the tree.
pub fn run(root: &Path) -> io::Result<LintReport> {
    let files = collect_rs_files(root)?;
    let mut findings = Vec::new();
    let mut rules_run = vec!["unsafe-confined", "safety-comment", "ffi-confined"];

    for path in &files {
        let rel = rel_path(root, path);
        let src = fs::read_to_string(path)?;
        let code = strip_comments_and_strings(&src);
        let raw_lines: Vec<&str> = src.lines().collect();
        let code_lines: Vec<&str> = code.lines().collect();

        if ALLOW_UNSAFE.contains(&rel.as_str()) {
            check_safety_comments(&rel, &raw_lines, &code_lines, &mut findings);
        } else {
            for (i, cl) in code_lines.iter().enumerate() {
                if has_token(cl, "unsafe") {
                    findings.push(Finding {
                        rule: "unsafe-confined",
                        severity: Severity::Error,
                        file: rel.clone(),
                        line: i + 1,
                        message: format!(
                            "`unsafe` outside the substrate allowlist ({})",
                            ALLOW_UNSAFE.join(", ")
                        ),
                    });
                }
            }
        }

        if !ALLOW_FFI.contains(&rel.as_str()) {
            for (i, cl) in code_lines.iter().enumerate() {
                let is_extern_c = has_token(cl, "extern")
                    && raw_lines.get(i).is_some_and(|r| r.contains("extern \"C\""));
                if is_extern_c || cl.contains("libc::") {
                    findings.push(Finding {
                        rule: "ffi-confined",
                        severity: Severity::Error,
                        file: rel.clone(),
                        line: i + 1,
                        message: "raw FFI (`extern \"C\"`/`libc::`) outside proc.rs".into(),
                    });
                }
            }
        }
    }

    let world = root.join("crates/shmem/src/world.rs");
    if world.is_file() {
        rules_run.push("accessor-manifest");
        let src = fs::read_to_string(&world)?;
        check_accessor_manifest(&rel_path(root, &world), &src, &mut findings);
    }

    let error_rs = root.join("crates/types/src/error.rs");
    let retry_rs = root.join("crates/engine/src/retry.rs");
    if error_rs.is_file() && retry_rs.is_file() {
        rules_run.push("retryable-exhaustive");
        check_retryable(
            &rel_path(root, &retry_rs),
            &fs::read_to_string(&error_rs)?,
            &fs::read_to_string(&retry_rs)?,
            &mut findings,
        );
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintReport {
        findings,
        rules_run,
        files_scanned: files.len(),
    })
}

/// R2: each `unsafe` site needs a `SAFETY:` comment (or a `# Safety`
/// doc section, the rustdoc convention for `unsafe fn` contracts)
/// within the preceding window of lines.
fn check_safety_comments(
    rel: &str,
    raw_lines: &[&str],
    code_lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    const WINDOW: usize = 10;
    for (i, cl) in code_lines.iter().enumerate() {
        if !has_token(cl, "unsafe") {
            continue;
        }
        let lo = i.saturating_sub(WINDOW);
        let justified = raw_lines[lo..=i.min(raw_lines.len() - 1)]
            .iter()
            .any(|l| l.contains("SAFETY:") || l.contains("# Safety"));
        if !justified {
            findings.push(Finding {
                rule: "safety-comment",
                severity: Severity::Warning,
                file: rel.to_string(),
                line: i + 1,
                message: "`unsafe` without a nearby `SAFETY:` justification".into(),
            });
        }
    }
}

/// R4: manifest cross-check over `ShmemCtx`'s accessor bodies.
fn check_accessor_manifest(rel: &str, src: &str, findings: &mut Vec<Finding>) {
    let code = strip_comments_and_strings(src);
    let fns = extract_fns(&code);
    for (name, markers) in ACCESSOR_MANIFEST {
        match fns.iter().find(|f| f.name == *name) {
            None => findings.push(Finding {
                rule: "accessor-manifest",
                severity: Severity::Error,
                file: rel.to_string(),
                line: 1,
                message: format!("manifest accessor `{name}` not found in ShmemCtx"),
            }),
            Some(f) => {
                for m in *markers {
                    if !f.body.contains(m) {
                        findings.push(Finding {
                            rule: "accessor-manifest",
                            severity: Severity::Error,
                            file: rel.to_string(),
                            line: f.line,
                            message: format!(
                                "accessor `{name}` is missing its `{m}` instrumentation"
                            ),
                        });
                    }
                }
            }
        }
    }
    // Drift guard: anything touching partition buffers directly must be
    // a manifested (and therefore instrumented) accessor.
    for f in &fns {
        if f.body.contains(".bufs[")
            && !ACCESSOR_MANIFEST.iter().any(|(n, _)| *n == f.name)
            && !LOCAL_ACCESS_ALLOW.contains(&f.name.as_str())
        {
            findings.push(Finding {
                rule: "accessor-manifest",
                severity: Severity::Error,
                file: rel.to_string(),
                line: f.line,
                message: format!(
                    "`{}` touches partition buffers but is not in the accessor manifest",
                    f.name
                ),
            });
        }
    }
}

/// R5: `retryable()` must name every `SvError` variant and carry no
/// wildcard arm (a `matches!` with its implicit `_ => false` cannot
/// name them all without being degenerate, so variant coverage is the
/// check that matters).
fn check_retryable(rel: &str, error_src: &str, retry_src: &str, findings: &mut Vec<Finding>) {
    let variants = enum_variants(&strip_comments_and_strings(error_src), "SvError");
    if variants.is_empty() {
        findings.push(Finding {
            rule: "retryable-exhaustive",
            severity: Severity::Error,
            file: rel.to_string(),
            line: 1,
            message: "could not parse `SvError` variants from types/error.rs".into(),
        });
        return;
    }
    let code = strip_comments_and_strings(retry_src);
    let Some(f) = extract_fns(&code)
        .into_iter()
        .find(|f| f.name == "retryable")
    else {
        findings.push(Finding {
            rule: "retryable-exhaustive",
            severity: Severity::Error,
            file: rel.to_string(),
            line: 1,
            message: "no `retryable` function found".into(),
        });
        return;
    };
    if f.body.contains("_ =>") || f.body.contains("_=>") {
        findings.push(Finding {
            rule: "retryable-exhaustive",
            severity: Severity::Error,
            file: rel.to_string(),
            line: f.line,
            message: "`retryable()` has a wildcard arm; the match must be exhaustive".into(),
        });
    }
    for v in &variants {
        if !f.body.contains(&format!("SvError::{v}")) {
            findings.push(Finding {
                rule: "retryable-exhaustive",
                severity: Severity::Error,
                file: rel.to_string(),
                line: f.line,
                message: format!("`retryable()` does not classify `SvError::{v}`"),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Source-walking helpers.
// ---------------------------------------------------------------------

fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                // `fixtures` holds deliberately-violating sources for
                // the self-test; they lint only when targeted directly.
                if name != "target" && name != ".git" && name != "fixtures" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// True when `line` contains `word` delimited by non-identifier chars.
fn has_token(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// A function extracted from stripped source.
struct FnItem {
    name: String,
    /// 1-based line of the `fn` keyword.
    line: usize,
    /// Body text between the outermost braces.
    body: String,
}

/// Find every `fn name(...) ... { body }` in stripped source by brace
/// matching. Good enough for lint purposes: the stripped text has no
/// braces hiding in strings or comments.
fn extract_fns(code: &str) -> Vec<FnItem> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if code[i..].starts_with("fn ") && (i == 0 || !is_ident(bytes[i - 1])) {
            let name: String = code[i + 3..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii() && is_ident(*c as u8))
                .collect();
            let line = code[..i].matches('\n').count() + 1;
            // Body = first `{` after the signature, to its match. A `;`
            // first means a bodiless declaration (trait method, FFI).
            let mut j = i;
            while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'{' {
                let mut depth = 0usize;
                let start = j;
                while j < bytes.len() {
                    match bytes[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if !name.is_empty() {
                    out.push(FnItem {
                        name,
                        line,
                        body: code[start..=j.min(bytes.len() - 1)].to_string(),
                    });
                }
                i = j;
            } else {
                i = j;
            }
        }
        i += 1;
    }
    out
}

/// Variant names of `pub enum <name> { ... }` in stripped source.
fn enum_variants(code: &str, name: &str) -> Vec<String> {
    let needle = format!("enum {name}");
    let Some(pos) = code.find(&needle) else {
        return Vec::new();
    };
    let Some(open) = code[pos..].find('{').map(|o| pos + o) else {
        return Vec::new();
    };
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut j = open;
    let mut variants = Vec::new();
    let mut at_variant_start = true;
    while j < bytes.len() {
        match bytes[j] {
            b'{' | b'(' | b'[' => {
                depth += 1;
                // The enum's own `{` begins the first variant; nested
                // delimiters are inside a variant's payload.
                at_variant_start = depth == 1;
            }
            b'}' | b')' | b']' => {
                if depth == 1 && bytes[j] == b'}' {
                    break;
                }
                depth -= 1;
            }
            b',' if depth == 1 => at_variant_start = true,
            b'#' if depth == 1 => {
                // Skip `#[...]` attributes between variants.
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
            }
            c if depth == 1 && at_variant_start && c.is_ascii_uppercase() => {
                let mut k = j;
                while k < bytes.len() && is_ident(bytes[k]) {
                    k += 1;
                }
                variants.push(code[j..k].to_string());
                at_variant_start = false;
                j = k;
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    variants
}

/// Blank out comments and string/char-literal contents, preserving line
/// structure (every newline survives) so line numbers stay aligned.
fn strip_comments_and_strings(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::Line;
                    out.push(b' ');
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(1);
                    out.push(b' ');
                } else if c == b'"' {
                    st = St::Str;
                    out.push(b'"');
                } else if c == b'r' && matches!(b.get(i + 1), Some(&b'"') | Some(&b'#')) {
                    // Raw string: r"..." or r#"..."# (any hash count).
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        st = St::RawStr(hashes);
                        out.resize(out.len() + (j - i) + 1, b' ');
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                } else if c == b'\''
                    && b.get(i + 1).is_some_and(|&n| {
                        // Distinguish a char literal from a lifetime:
                        // 'x' closes within two chars or is an escape.
                        n == b'\\' || b.get(i + 2) == Some(&b'\'')
                    })
                {
                    st = St::Char;
                    out.push(b'\'');
                } else {
                    out.push(c);
                }
            }
            St::Line => {
                if c == b'\n' {
                    st = St::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
            }
            St::Block(d) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(d + 1);
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    continue;
                }
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    continue;
                }
                out.push(if c == b'\n' { b'\n' } else { b' ' });
            }
            St::Str => {
                if c == b'\\' {
                    // A backslash-newline continuation must keep its
                    // newline or every later line number drifts.
                    out.push(b' ');
                    if b.get(i + 1) == Some(&b'\n') {
                        out.push(b'\n');
                    } else {
                        out.push(b' ');
                    }
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    st = St::Code;
                    out.push(b'"');
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            St::RawStr(hashes) => {
                if c == b'"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if b.get(i + 1 + k) != Some(&b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        out.resize(out.len() + hashes + 1, b' ');
                        i += 1 + hashes;
                        continue;
                    }
                }
                out.push(if c == b'\n' { b'\n' } else { b' ' });
            }
            St::Char => {
                if c == b'\\' {
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    continue;
                }
                if c == b'\'' {
                    st = St::Code;
                    out.push(b'\'');
                } else {
                    out.push(b' ');
                }
            }
        }
        i += 1;
    }
    String::from_utf8(out).expect("stripper only writes ASCII over ASCII positions")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_comments_and_strings() {
        let src =
            "let x = \"unsafe\"; // unsafe here\nlet y = 'u';\n/* unsafe\nblock */ fn f() {}\n";
        let code = strip_comments_and_strings(src);
        assert!(!code.contains("unsafe"));
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
        assert!(code.contains("fn f()"));
    }

    #[test]
    fn stripper_keeps_string_continuation_newlines() {
        let src = "let s = \"first \\\n    second\";\nunsafe {}\n";
        let code = strip_comments_and_strings(src);
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
        // The `unsafe` must still be on line 3 after stripping.
        assert!(has_token(code.lines().nth(2).unwrap(), "unsafe"));
    }

    #[test]
    fn token_matching_respects_boundaries() {
        assert!(has_token("unsafe { x }", "unsafe"));
        assert!(!has_token("#[allow(unsafe_code)]", "unsafe"));
        assert!(!has_token("my_unsafe", "unsafe"));
    }

    #[test]
    fn enum_parse_finds_all_variants() {
        let code = "pub enum SvError { A { x: u64 }, B(String), C, #[doc] D { y: u8 } }";
        assert_eq!(enum_variants(code, "SvError"), ["A", "B", "C", "D"]);
    }

    #[test]
    fn fn_extraction_brace_matches() {
        let code = "impl X { pub fn get(&self) -> u64 { self.a.load(1) } fn other() {} }";
        let fns = extract_fns(code);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "get");
        assert!(fns[0].body.contains("load"));
    }
}
