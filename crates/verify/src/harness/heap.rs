//! Heap-allocation harness: PE 0 publishes a symmetric allocation, both
//! PEs cross the collective barrier, both resolve the entry — the
//! production [`Publish`]/[`Lookup`]/[`BarrierSm`] machines laid out in
//! one model memory exactly as the process backend lays them out in one
//! arena, with the publisher killable at any step.
//!
//! Checked properties (ISSUE 9, property c):
//! - no surviving PE ever resolves a half-published entry: every
//!   `Resolved` carries the correct offset, and `NotPublished` /
//!   `Mismatch` / `Exhausted` are unreachable;
//! - a PE that cannot resolve fails *typed* at the barrier (poisoned by
//!   the reap, or its own bounded wait) — never by reading garbage;
//! - the scenario always terminates (no livelock).

use crate::mem::{ModelMem, OffsetMem};
use crate::Model;
use svsim_shmem::proto::alloc::{self, Lookup, LookupStep, Publish, PublishStep};
use svsim_shmem::proto::bar::{self, Actor, BarrierSm, Step};

/// Word offset of the allocation-entry slots inside the model memory
/// (barrier words sit at `0..BAR_WORDS`).
const ALLOC_BASE: usize = bar::BAR_WORDS;

/// Published entry: 2 words per PE at heap offset 0.
const LEN_PER_PE: u64 = 2;
/// Heap capacity in words.
const CAP: u64 = 8;

/// Scenario: publisher + one peer, with kill/timeout injection.
#[derive(Debug, Clone)]
pub struct HeapModel {
    /// The barrier machine both PEs cross between publish and lookup.
    pub sm: BarrierSm,
    /// How many PEs may be killed.
    pub kills: u8,
    /// How many bounded barrier waits may expire.
    pub timeouts: u8,
}

/// How one PE ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Resolved the entry at this word offset.
    Resolved(u64),
    /// Published the entry at this word offset (publisher only).
    Published(u64),
    /// Failed typed at the barrier.
    Poisoned,
    /// Its own bounded barrier wait expired.
    TimedOut,
    /// Saw an unpublished entry — always a violation here.
    NotPublished,
    /// Saw a mismatched entry — always a violation here.
    Mismatch,
    /// Heap reported exhausted — always a violation here.
    Exhausted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pe {
    Publishing(Publish),
    AtBarrier(Actor),
    Resolving(Lookup),
    Done(Outcome),
    Killed,
}

/// Global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeapState {
    mem: Vec<u64>,
    pes: Vec<Pe>,
    kills_left: u8,
    timeouts_left: u8,
    reaped: bool,
}

impl HeapModel {
    fn step_pe(&self, s: &HeapState, i: usize, pe: Pe) -> (String, HeapState) {
        let mut t = s.clone();
        let mem = ModelMem::new(std::mem::take(&mut t.mem));
        let (label, next) = match pe {
            Pe::Publishing(mut p) => {
                let phase = p.phase();
                let next = match p.step(&OffsetMem::new(&mem, ALLOC_BASE)) {
                    PublishStep::Pending => Pe::Publishing(p),
                    // Published: on to the collective barrier, carrying
                    // the offset to cross-check after resolution.
                    PublishStep::Published(0) => Pe::AtBarrier(Actor::new(false)),
                    PublishStep::Published(_) | PublishStep::Exhausted { .. } => {
                        Pe::Done(Outcome::Exhausted)
                    }
                };
                (format!("pe{i}:pub:{phase:?}"), next)
            }
            Pe::AtBarrier(mut a) => {
                let phase = a.phase();
                let next = match self.sm.step(&mut a, &mem) {
                    Step::Pending => Pe::AtBarrier(a),
                    Step::Released => Pe::Resolving(Lookup::new(LEN_PER_PE)),
                    Step::Poisoned => Pe::Done(Outcome::Poisoned),
                    Step::TimedOut => Pe::Done(Outcome::TimedOut),
                };
                (format!("pe{i}:bar:{phase:?}"), next)
            }
            Pe::Resolving(mut l) => {
                let phase = l.phase();
                let next = match l.step(&OffsetMem::new(&mem, ALLOC_BASE)) {
                    LookupStep::Pending => Pe::Resolving(l),
                    LookupStep::Resolved(off) => Pe::Done(Outcome::Resolved(off)),
                    LookupStep::NotPublished => Pe::Done(Outcome::NotPublished),
                    LookupStep::Mismatch { .. } => Pe::Done(Outcome::Mismatch),
                };
                (format!("pe{i}:look:{phase:?}"), next)
            }
            Pe::Done(_) | Pe::Killed => unreachable!("only running PEs are stepped"),
        };
        t.mem = mem.into_words();
        t.pes[i] = next;
        (label, t)
    }
}

fn running(pe: &Pe) -> bool {
    matches!(pe, Pe::Publishing(_) | Pe::AtBarrier(_) | Pe::Resolving(_))
}

impl Model for HeapModel {
    type State = HeapState;

    fn init(&self) -> Vec<HeapState> {
        vec![HeapState {
            mem: vec![0; ALLOC_BASE + alloc::ALLOC_WORDS],
            pes: vec![
                Pe::Publishing(Publish::new(2 * LEN_PER_PE, CAP, LEN_PER_PE, 0)),
                Pe::AtBarrier(Actor::new(false)),
            ],
            kills_left: self.kills,
            timeouts_left: self.timeouts,
            reaped: false,
        }]
    }

    fn successors(&self, s: &HeapState) -> Vec<(String, HeapState)> {
        let mut out = Vec::new();
        for (i, pe) in s.pes.iter().enumerate() {
            if running(pe) {
                out.push(self.step_pe(s, i, *pe));
            }
        }
        if s.kills_left > 0 {
            for (i, pe) in s.pes.iter().enumerate() {
                if running(pe) {
                    let mut t = s.clone();
                    t.pes[i] = Pe::Killed;
                    t.kills_left -= 1;
                    out.push((format!("kill:pe{i}"), t));
                }
            }
        }
        if !s.reaped && s.pes.iter().any(|p| matches!(p, Pe::Killed)) {
            let mut t = s.clone();
            let mem = ModelMem::new(std::mem::take(&mut t.mem));
            bar::post_poison(&mem);
            t.mem = mem.into_words();
            t.reaped = true;
            out.push(("reap:poison".into(), t));
        }
        if s.timeouts_left > 0 {
            for (i, pe) in s.pes.iter().enumerate() {
                if let Pe::AtBarrier(a) = pe {
                    if a.is_waiting() {
                        let mut t = s.clone();
                        let mut a = *a;
                        self.sm.request_timeout(&mut a);
                        t.pes[i] = Pe::AtBarrier(a);
                        t.timeouts_left -= 1;
                        out.push((format!("timeout:pe{i}"), t));
                    }
                }
            }
        }
        out
    }

    fn invariant(&self, s: &HeapState) -> Result<(), String> {
        for (i, pe) in s.pes.iter().enumerate() {
            match pe {
                Pe::Done(Outcome::Resolved(off)) if *off != 0 => {
                    return Err(format!("pe{i} resolved the entry at offset {off}, not 0"));
                }
                Pe::Done(Outcome::NotPublished) => {
                    return Err(format!(
                        "pe{i} crossed the collective barrier yet saw an unpublished entry"
                    ));
                }
                Pe::Done(Outcome::Mismatch) => {
                    return Err(format!(
                        "pe{i} crossed the collective barrier yet saw a half-published entry"
                    ));
                }
                Pe::Done(Outcome::Exhausted) => {
                    return Err(format!(
                        "pe{i} saw heap exhaustion / a wrong offset on an empty heap"
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn accepting(&self, s: &HeapState) -> bool {
        let all_done = s.pes.iter().all(|p| !running(p));
        if !all_done {
            return false;
        }
        let fault_free = s.kills_left == self.kills && s.timeouts_left == self.timeouts;
        if fault_free {
            // Nothing went wrong: both PEs must have resolved offset 0.
            s.pes
                .iter()
                .all(|p| matches!(p, Pe::Done(Outcome::Resolved(0))))
        } else {
            true
        }
    }
}

/// The configuration `sv-sim verify` proves in CI: publisher + peer with
/// a kill and a bounded-wait expiry injectable anywhere.
#[must_use]
pub fn ci_model() -> HeapModel {
    HeapModel {
        sm: BarrierSm {
            n: 2,
            timeout_recheck: true,
        },
        kills: 1,
        timeouts: 1,
    }
}
