//! Respawn-round harness: parked survivors and the supervisor's release
//! attempt, stepping the production [`Survivor`] and [`Release`] machines
//! with kills injectable while parked and an optional abort path.
//!
//! Checked properties (ISSUE 9, property b):
//! - a released survivor rejoins at the *last released epoch*: when it
//!   observes the round bump, the barrier words are reset and the
//!   driver's table reset for that round already happened;
//! - a survivor never acks two rounds from one park (exactly one ack
//!   write per park, and only ever `parked + 1`);
//! - `Publish` happens only under a confirmed abort for the survivor's
//!   own round; `ReRunStale` only when a newer round raced past it;
//! - the recovery always completes: released, published, or killed — no
//!   livelock even when a survivor dies mid-park and the supervisor's
//!   in-flight attempt holds a stale survivor list.

use crate::mem::ModelMem;
use crate::Model;
use svsim_shmem::proto::round::{
    self, Release, ReleasePhase, ReleaseStep, Survivor, SurvivorPhase, SurvivorStep,
};

/// Scenario: `survivors` parked PEs, one supervisor, `kills` kill budget,
/// `regens` additional whole-world re-wrecks after a successful release.
#[derive(Debug, Clone)]
pub struct RoundModel {
    /// Parked PEs.
    pub survivors: usize,
    /// How many parked survivors may be killed.
    pub kills: u8,
    /// Whether the supervisor may abandon respawn and post the abort.
    pub allow_abort: bool,
    /// How many times the released world may wreck again and re-park.
    pub regens: u8,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Sv {
    Parked(Survivor),
    /// Released into round `r`, body re-run cleanly.
    Rejoined(u64),
    /// Published the wrecked round `r`'s result after an abort.
    Published(u64),
    Killed,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Sup {
    Idle,
    Releasing {
        m: Release,
        round: u64,
    },
    /// Posted the abort; never releases again.
    Aborted,
}

/// Global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RoundState {
    mem: Vec<u64>,
    svs: Vec<Sv>,
    sup: Sup,
    /// The supervisor's current wrecked-round number.
    round: u64,
    kills_left: u8,
    regens_left: u8,
    /// Ack-slot writes per survivor in its *current* park.
    ack_writes: Vec<u8>,
    /// The new round whose driver-side table reset has completed.
    tables_reset_for: Option<u64>,
    /// A transition-level property broken while generating this state.
    broke: Option<String>,
}

fn wrecked_mem(survivors: usize) -> Vec<u64> {
    let mut mem = vec![0; round::ACK_BASE + survivors];
    // A wrecked epoch: one arrival absorbed, barrier poisoned.
    mem[round::RB_COUNT] = 1;
    mem[round::RB_POISON] = 1;
    mem
}

impl RoundModel {
    fn step_survivor(&self, s: &RoundState, i: usize, sv: Survivor) -> (String, RoundState) {
        let mut t = s.clone();
        let mem = ModelMem::new(std::mem::take(&mut t.mem));
        let mut m = sv;
        let phase = m.phase();
        if phase == SurvivorPhase::Ack {
            t.ack_writes[i] += 1;
        }
        let step = m.step(&mem);
        t.mem = mem.into_words();
        t.svs[i] = match step {
            SurvivorStep::Pending => Sv::Parked(m),
            SurvivorStep::Released(r) => {
                if t.mem[round::RB_COUNT] != 0
                    || t.mem[round::RB_SENSE] != 0
                    || t.mem[round::RB_POISON] != 0
                {
                    t.broke = Some(format!(
                        "pe{i} released into round {r} with barrier words not reset \
                         (count={} sense={} poison={})",
                        t.mem[round::RB_COUNT],
                        t.mem[round::RB_SENSE],
                        t.mem[round::RB_POISON]
                    ));
                }
                if t.tables_reset_for != Some(r) {
                    t.broke = Some(format!(
                        "pe{i} released into round {r} before the driver's table reset \
                         for it (reset done for {:?})",
                        t.tables_reset_for
                    ));
                }
                Sv::Rejoined(r)
            }
            SurvivorStep::Publish => {
                if t.mem[round::ABORT] != 1 || t.mem[round::ROUND] != sv.parked {
                    t.broke = Some(format!(
                        "pe{i} publishing round {} without a confirmed abort for it \
                         (abort={} round={})",
                        sv.parked,
                        t.mem[round::ABORT],
                        t.mem[round::ROUND]
                    ));
                }
                Sv::Published(sv.parked)
            }
            SurvivorStep::ReRunStale => {
                if t.mem[round::ROUND] <= sv.parked {
                    t.broke = Some(format!(
                        "pe{i} told to re-run a stale round but round {} is not newer \
                         than its parked {}",
                        t.mem[round::ROUND],
                        sv.parked
                    ));
                }
                // The re-run hits the (sticky) poisoned barrier and parks
                // again at the same round.
                t.ack_writes[i] = 0;
                Sv::Parked(Survivor::new(sv.parked, i))
            }
        };
        (format!("pe{i}:{phase:?}"), t)
    }

    fn step_sup(&self, s: &RoundState, m: &Release, round: u64) -> (String, RoundState) {
        let mut t = s.clone();
        let mut m = m.clone();
        let phase = m.phase();
        if phase == ReleasePhase::ResetCount {
            // The driver resets the heap bump, allocation tables, epochs
            // and result slots exactly when the machine reaches the
            // barrier-word resets (all survivor acks verified).
            t.tables_reset_for = Some(round + 1);
        }
        let mem = ModelMem::new(std::mem::take(&mut t.mem));
        let step = m.step(&mem);
        t.mem = mem.into_words();
        t.sup = match step {
            ReleaseStep::Pending => Sup::Releasing { m, round },
            ReleaseStep::NotParked => Sup::Idle,
            ReleaseStep::Released => {
                t.round = round + 1;
                Sup::Idle
            }
        };
        (format!("sup:{phase:?}"), t)
    }
}

impl Model for RoundModel {
    type State = RoundState;

    fn init(&self) -> Vec<RoundState> {
        vec![RoundState {
            mem: wrecked_mem(self.survivors),
            svs: (0..self.survivors)
                .map(|pe| Sv::Parked(Survivor::new(0, pe)))
                .collect(),
            sup: Sup::Idle,
            round: 0,
            kills_left: self.kills,
            regens_left: self.regens,
            ack_writes: vec![0; self.survivors],
            tables_reset_for: None,
            broke: None,
        }]
    }

    fn successors(&self, s: &RoundState) -> Vec<(String, RoundState)> {
        let mut out = Vec::new();
        for (i, sv) in s.svs.iter().enumerate() {
            if let Sv::Parked(m) = sv {
                out.push(self.step_survivor(s, i, *m));
            }
        }
        let parked = s.svs.iter().filter(|v| matches!(v, Sv::Parked(_))).count();
        match &s.sup {
            Sup::Idle if parked > 0 => {
                // Recompute the live survivor set at attempt time, exactly
                // as the production supervisor recomputes victims per tick.
                let acks: Vec<usize> = s
                    .svs
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !matches!(v, Sv::Killed))
                    .map(|(pe, _)| round::ACK_BASE + pe)
                    .collect();
                let mut t = s.clone();
                t.sup = Sup::Releasing {
                    m: Release::new(acks, s.round),
                    round: s.round,
                };
                out.push(("sup:attempt".into(), t));
                if self.allow_abort {
                    let mut t = s.clone();
                    let mem = ModelMem::new(std::mem::take(&mut t.mem));
                    round::post_abort(&mem);
                    t.mem = mem.into_words();
                    t.sup = Sup::Aborted;
                    out.push(("sup:abort".into(), t));
                }
            }
            Sup::Releasing { m, round } => out.push(self.step_sup(s, m, *round)),
            Sup::Idle | Sup::Aborted => {}
        }
        if s.kills_left > 0 {
            for (i, sv) in s.svs.iter().enumerate() {
                if matches!(sv, Sv::Parked(_)) {
                    let mut t = s.clone();
                    t.svs[i] = Sv::Killed;
                    t.kills_left -= 1;
                    out.push((format!("kill:pe{i}"), t));
                }
            }
        }
        // The released world wrecks again: every rejoined survivor hits
        // the re-poisoned barrier and parks at the new round together.
        if s.regens_left > 0
            && s.svs
                .iter()
                .all(|v| matches!(v, Sv::Rejoined(_) | Sv::Killed))
            && s.svs.iter().any(|v| matches!(v, Sv::Rejoined(_)))
        {
            let mut t = s.clone();
            t.regens_left -= 1;
            t.mem[round::RB_POISON] = 1;
            t.mem[round::RB_COUNT] = 1;
            for (i, sv) in s.svs.iter().enumerate() {
                if let Sv::Rejoined(r) = sv {
                    t.svs[i] = Sv::Parked(Survivor::new(*r, i));
                    t.ack_writes[i] = 0;
                }
            }
            out.push(("world:wreck".into(), t));
        }
        out
    }

    fn invariant(&self, s: &RoundState) -> Result<(), String> {
        if let Some(broke) = &s.broke {
            return Err(broke.clone());
        }
        if let Some(i) = s.ack_writes.iter().position(|&w| w > 1) {
            return Err(format!("pe{i} acked twice in one park"));
        }
        for (i, sv) in s.svs.iter().enumerate() {
            let ack = s.mem[round::ACK_BASE + i];
            let valid = match sv {
                // Mid-park: the ack slot holds 0 (not written yet), the
                // current park's ack, or a stale one from an earlier round.
                Sv::Parked(m) => ack <= m.parked + 1,
                // A survivor released into round `r` last acked `r` at most.
                Sv::Rejoined(r) => ack <= *r,
                // Publishing round `r` required acking `r + 1` first.
                Sv::Published(r) => ack <= *r + 1,
                Sv::Killed => true,
            };
            if !valid {
                return Err(format!("pe{i} ack slot holds {ack}, acking a future round"));
            }
        }
        Ok(())
    }

    fn accepting(&self, s: &RoundState) -> bool {
        s.svs
            .iter()
            .all(|v| matches!(v, Sv::Rejoined(_) | Sv::Published(_) | Sv::Killed))
            && !matches!(s.sup, Sup::Releasing { .. })
    }
}

/// The configuration `sv-sim verify` proves in CI: two survivors, a kill
/// anywhere while parked, the abort path enabled, and one extra
/// whole-world wreck after a successful release (so "never acks two
/// rounds" is checked across two parks).
#[must_use]
pub fn ci_model() -> RoundModel {
    RoundModel {
        survivors: 2,
        kills: 1,
        allow_abort: true,
        regens: 1,
    }
}
