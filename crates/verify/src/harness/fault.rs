//! Fault-word harness: several PEs count matching ops against one shared
//! fault spec, stepping the production [`Check`] machine — the CAS
//! disarm must make a wildcard one-shot fault fire *exactly once*
//! world-wide under every interleaving, even with a PE killed mid-check.
//!
//! Checked properties:
//! - at most one `Fired` ever, under any interleaving and any kill;
//! - with no kill, exactly one `Fired` once enough ops were counted;
//! - no livelock.

use crate::mem::ModelMem;
use crate::Model;
use svsim_shmem::proto::fault::{self, Check, Step};

/// Scenario: `checkers` PEs each checking one op against a spec that
/// fires at `at` counted ops, with `kills` killable mid-check.
#[derive(Debug, Clone)]
pub struct FaultModel {
    /// Concurrent checking PEs (one op each).
    pub checkers: usize,
    /// Fire threshold of the spec.
    pub at: u64,
    /// How many checkers may be killed mid-check.
    pub kills: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pe {
    Run(Check),
    Done(Step),
    Killed,
}

/// Global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaultState {
    mem: Vec<u64>,
    pes: Vec<Pe>,
    kills_left: u8,
}

impl Model for FaultModel {
    type State = FaultState;

    fn init(&self) -> Vec<FaultState> {
        let mut mem = vec![0; fault::FAULT_WORDS];
        mem[fault::ARMED] = 1;
        vec![FaultState {
            mem,
            pes: vec![Pe::Run(Check::new(self.at)); self.checkers],
            kills_left: self.kills,
        }]
    }

    fn successors(&self, s: &FaultState) -> Vec<(String, FaultState)> {
        let mut out = Vec::new();
        for (i, pe) in s.pes.iter().enumerate() {
            if let Pe::Run(c) = pe {
                let mut t = s.clone();
                let mut c = *c;
                let phase = c.phase();
                let mem = ModelMem::new(std::mem::take(&mut t.mem));
                let step = c.step(&mem);
                t.mem = mem.into_words();
                t.pes[i] = match step {
                    Step::Pending => Pe::Run(c),
                    done => Pe::Done(done),
                };
                out.push((format!("pe{i}:{phase:?}"), t));
            }
        }
        if s.kills_left > 0 {
            for (i, pe) in s.pes.iter().enumerate() {
                if matches!(pe, Pe::Run(_)) {
                    let mut t = s.clone();
                    t.pes[i] = Pe::Killed;
                    t.kills_left -= 1;
                    out.push((format!("kill:pe{i}"), t));
                }
            }
        }
        out
    }

    fn invariant(&self, s: &FaultState) -> Result<(), String> {
        let fired = s
            .pes
            .iter()
            .filter(|p| matches!(p, Pe::Done(Step::Fired)))
            .count();
        if fired > 1 {
            return Err(format!("one-shot fault fired {fired} times"));
        }
        Ok(())
    }

    fn accepting(&self, s: &FaultState) -> bool {
        let all_done = s.pes.iter().all(|p| !matches!(p, Pe::Run(_)));
        if !all_done {
            return false;
        }
        let fired = s
            .pes
            .iter()
            .filter(|p| matches!(p, Pe::Done(Step::Fired)))
            .count();
        if s.kills_left == self.kills && self.checkers as u64 >= self.at {
            // Kill-free with enough ops: the fault must have fired.
            fired == 1
        } else {
            fired <= 1
        }
    }
}

/// The configuration `sv-sim verify` proves in CI: three checkers racing
/// a fire-at-2 spec, one killable mid-check.
#[must_use]
pub fn ci_model() -> FaultModel {
    FaultModel {
        checkers: 3,
        at: 2,
        kills: 1,
    }
}
