//! Barrier harness: `n` PEs run `epochs` epochs of the production
//! [`BarrierSm`], with a kill (and subsequent launcher reap, which posts
//! the poison) and a bounded-wait expiry injectable before any step.
//!
//! Checked properties (ISSUE 9, property a):
//! - the arrival counter never exceeds `n` and no epoch releases twice;
//! - every PE that fails, fails in the *same* epoch, and no PE fails an
//!   epoch that any PE completed (the released-epoch rule);
//! - fault-free runs complete all epochs (terminal shape), and every
//!   state can still reach an accepted outcome (no livelock).

use crate::mem::ModelMem;
use crate::Model;
use svsim_shmem::proto::bar::{self, Actor, BarrierSm, Step};

/// Scenario: `n` PEs x `epochs` epochs with injection budgets.
#[derive(Debug, Clone)]
pub struct BarrierModel {
    /// The production machine under test (including its timeout knob).
    pub sm: BarrierSm,
    /// Participants.
    pub n: usize,
    /// Epochs each PE attempts.
    pub epochs: u8,
    /// How many PEs may be killed.
    pub kills: u8,
    /// How many bounded waits may expire.
    pub timeouts: u8,
}

/// How one PE ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Completed every epoch.
    Completed,
    /// Observed a peer's poison.
    Poisoned,
    /// Its own bounded wait expired.
    TimedOut,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pe {
    /// Executing `epoch` (epochs `0..epoch` completed).
    Run { actor: Actor, epoch: u8 },
    /// Finished: for `Completed`, `epoch` is the epoch count; for a
    /// failure, the epoch it failed in.
    Done { outcome: Outcome, epoch: u8 },
    /// Killed mid-protocol (never observes anything again).
    Killed,
}

/// Global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BarrierState {
    mem: Vec<u64>,
    pes: Vec<Pe>,
    kills_left: u8,
    timeouts_left: u8,
    reaped: bool,
    /// Release transitions per epoch (no-double-release check).
    releases: Vec<u8>,
}

impl BarrierModel {
    fn step_pe(
        &self,
        s: &BarrierState,
        i: usize,
        actor: Actor,
        epoch: u8,
    ) -> (String, BarrierState) {
        let mut t = s.clone();
        let mem = ModelMem::new(std::mem::take(&mut t.mem));
        let mut a = actor;
        let phase = a.phase();
        let step = self.sm.step(&mut a, &mem);
        t.mem = mem.into_words();
        if phase == bar::Phase::ReleaseSense && step == Step::Released {
            t.releases[epoch as usize] += 1;
        }
        t.pes[i] = match step {
            Step::Pending => Pe::Run { actor: a, epoch },
            Step::Released => {
                let e = epoch + 1;
                if e == self.epochs {
                    Pe::Done {
                        outcome: Outcome::Completed,
                        epoch: e,
                    }
                } else {
                    Pe::Run { actor: a, epoch: e }
                }
            }
            Step::Poisoned => Pe::Done {
                outcome: Outcome::Poisoned,
                epoch,
            },
            Step::TimedOut => Pe::Done {
                outcome: Outcome::TimedOut,
                epoch,
            },
        };
        (format!("pe{i}:{phase:?}"), t)
    }
}

/// Epochs completed by this PE so far.
fn completed(pe: &Pe) -> u8 {
    match *pe {
        Pe::Run { epoch, .. } => epoch,
        Pe::Done {
            outcome: Outcome::Completed,
            epoch,
        } => epoch,
        // A failure in `epoch` means epochs `0..epoch` completed.
        Pe::Done { epoch, .. } => epoch,
        Pe::Killed => 0,
    }
}

impl Model for BarrierModel {
    type State = BarrierState;

    fn init(&self) -> Vec<BarrierState> {
        vec![BarrierState {
            mem: vec![0; bar::BAR_WORDS],
            pes: vec![
                Pe::Run {
                    actor: Actor::new(false),
                    epoch: 0,
                };
                self.n
            ],
            kills_left: self.kills,
            timeouts_left: self.timeouts,
            reaped: false,
            releases: vec![0; self.epochs as usize],
        }]
    }

    fn successors(&self, s: &BarrierState) -> Vec<(String, BarrierState)> {
        let mut out = Vec::new();
        for (i, pe) in s.pes.iter().enumerate() {
            if let Pe::Run { actor, epoch } = *pe {
                out.push(self.step_pe(s, i, actor, epoch));
            }
        }
        if s.kills_left > 0 {
            for (i, pe) in s.pes.iter().enumerate() {
                if matches!(pe, Pe::Run { .. }) {
                    let mut t = s.clone();
                    t.pes[i] = Pe::Killed;
                    t.kills_left -= 1;
                    out.push((format!("kill:pe{i}"), t));
                }
            }
        }
        // The launcher reaps the dead PE and poisons the barrier — an SC
        // model of the single poison publication.
        if !s.reaped && s.pes.iter().any(|p| matches!(p, Pe::Killed)) {
            let mut t = s.clone();
            let mem = ModelMem::new(std::mem::take(&mut t.mem));
            bar::post_poison(&mem);
            t.mem = mem.into_words();
            t.reaped = true;
            out.push(("reap:poison".into(), t));
        }
        if s.timeouts_left > 0 {
            for (i, pe) in s.pes.iter().enumerate() {
                if let Pe::Run { actor, epoch } = *pe {
                    if actor.is_waiting() {
                        let mut t = s.clone();
                        let mut a = actor;
                        self.sm.request_timeout(&mut a);
                        t.pes[i] = Pe::Run { actor: a, epoch };
                        t.timeouts_left -= 1;
                        out.push((format!("timeout:pe{i}"), t));
                    }
                }
            }
        }
        out
    }

    fn invariant(&self, s: &BarrierState) -> Result<(), String> {
        if s.mem[bar::BAR_COUNT] > self.n as u64 {
            return Err(format!(
                "arrival counter {} exceeds {} participants",
                s.mem[bar::BAR_COUNT],
                self.n
            ));
        }
        if let Some(e) = s.releases.iter().position(|&r| r > 1) {
            return Err(format!("epoch {e} released twice"));
        }
        let fails: Vec<(usize, u8)> = s
            .pes
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Pe::Done {
                    outcome: Outcome::Poisoned | Outcome::TimedOut,
                    epoch,
                } => Some((i, *epoch)),
                _ => None,
            })
            .collect();
        if let Some(&(i0, f)) = fails.first() {
            if let Some(&(i1, g)) = fails.iter().find(|&&(_, g)| g != f) {
                return Err(format!(
                    "split-epoch failure: pe{i0} failed in epoch {f} but pe{i1} failed in epoch {g}"
                ));
            }
            if let Some((i1, done)) = s
                .pes
                .iter()
                .enumerate()
                .map(|(i, p)| (i, completed(p)))
                .find(|&(_, done)| done > f)
            {
                return Err(format!(
                    "released-epoch rule broken: pe{i0} failed in epoch {f}, which pe{i1} \
                     completed (pe{i1} is past epoch {})",
                    done - 1
                ));
            }
        }
        Ok(())
    }

    fn accepting(&self, s: &BarrierState) -> bool {
        let all_done = s
            .pes
            .iter()
            .all(|p| matches!(p, Pe::Done { .. } | Pe::Killed));
        if !all_done {
            return false;
        }
        let fault_free = s.kills_left == self.kills && s.timeouts_left == self.timeouts;
        if fault_free {
            // Nothing went wrong: every PE must have completed all epochs.
            s.pes.iter().all(|p| {
                matches!(
                    p,
                    Pe::Done {
                        outcome: Outcome::Completed,
                        ..
                    }
                )
            })
        } else {
            true
        }
    }
}

/// The configurations `sv-sim verify` proves in CI.
///
/// Both carry a kill *and* a timeout budget: since the sense and poison
/// bits moved into one word, the full fault matrix passes — the fault-free
/// subspace (no budget spent) still proves plain liveness, because
/// acceptance demands every PE complete when no fault fired.
#[must_use]
pub fn ci_models() -> Vec<BarrierModel> {
    vec![
        // 2 PEs, 2 epochs, kill + timeout injectable anywhere.
        BarrierModel {
            sm: BarrierSm {
                n: 2,
                timeout_recheck: true,
            },
            n: 2,
            epochs: 2,
            kills: 1,
            timeouts: 1,
        },
        // 3 PEs, 2 epochs, kill + timeout injectable anywhere.
        BarrierModel {
            sm: BarrierSm {
                n: 3,
                timeout_recheck: true,
            },
            n: 3,
            epochs: 2,
            kills: 1,
            timeouts: 1,
        },
    ]
}
