//! Protocol harnesses: one [`crate::Model`] per shmem protocol, each
//! stepping the production state machines from [`svsim_shmem::proto`].

pub mod barrier;
pub mod fault;
pub mod heap;
pub mod round;
