//! Model memories the checker instantiates [`ProtoMem`] over.

use std::cell::RefCell;
use svsim_shmem::{MemOrder, ProtoMem};

/// A plain word vector behind a `RefCell`, implementing [`ProtoMem`].
///
/// Orderings are ignored: the checker explores sequentially-consistent
/// interleavings, a superset of anything the release/acquire annotations
/// allow, so every behavior it proves absent is absent under SC. (The
/// argument from SC down to the production orderings is made per
/// transition in [`svsim_shmem::proto`].)
#[derive(Debug)]
pub struct ModelMem {
    words: RefCell<Vec<u64>>,
}

impl ModelMem {
    /// Wrap a snapshot of the shared words.
    #[must_use]
    pub fn new(words: Vec<u64>) -> Self {
        Self {
            words: RefCell::new(words),
        }
    }

    /// Unwrap the (possibly mutated) words.
    #[must_use]
    pub fn into_words(self) -> Vec<u64> {
        self.words.into_inner()
    }
}

impl ProtoMem for ModelMem {
    fn load(&self, slot: usize, _order: MemOrder) -> u64 {
        self.words.borrow()[slot]
    }

    fn store(&self, slot: usize, v: u64, _order: MemOrder) {
        self.words.borrow_mut()[slot] = v;
    }

    fn fetch_add(&self, slot: usize, delta: u64, _order: MemOrder) -> u64 {
        let mut w = self.words.borrow_mut();
        let prev = w[slot];
        w[slot] = prev.wrapping_add(delta);
        prev
    }

    fn compare_exchange(
        &self,
        slot: usize,
        current: u64,
        new: u64,
        _order: MemOrder,
    ) -> Result<u64, u64> {
        let mut w = self.words.borrow_mut();
        let prev = w[slot];
        if prev == current {
            w[slot] = new;
            Ok(prev)
        } else {
            Err(prev)
        }
    }
}

/// A base-offset view of another [`ProtoMem`]: slot `s` maps to
/// `base + s`. Harnesses use it to lay several protocol instances out in
/// one model memory, exactly as the process backend lays them out in one
/// arena.
#[derive(Debug)]
pub struct OffsetMem<'a, M: ProtoMem> {
    inner: &'a M,
    base: usize,
}

impl<'a, M: ProtoMem> OffsetMem<'a, M> {
    /// View of `inner` starting at word `base`.
    #[must_use]
    pub fn new(inner: &'a M, base: usize) -> Self {
        Self { inner, base }
    }
}

impl<M: ProtoMem> ProtoMem for OffsetMem<'_, M> {
    fn load(&self, slot: usize, order: MemOrder) -> u64 {
        self.inner.load(self.base + slot, order)
    }

    fn store(&self, slot: usize, v: u64, order: MemOrder) {
        self.inner.store(self.base + slot, v, order);
    }

    fn fetch_add(&self, slot: usize, delta: u64, order: MemOrder) -> u64 {
        self.inner.fetch_add(self.base + slot, delta, order)
    }

    fn compare_exchange(
        &self,
        slot: usize,
        current: u64,
        new: u64,
        order: MemOrder,
    ) -> Result<u64, u64> {
        self.inner
            .compare_exchange(self.base + slot, current, new, order)
    }
}
