//! The exhaustive interleaving explorer.
//!
//! Breadth-first search over the full state graph of a [`Model`], with
//! state deduplication (a `HashMap` from state to id), parent pointers
//! for counterexample traces, and a liveness pass: after the graph is
//! fully explored, every state must be co-reachable to an accepting
//! state, otherwise the model can livelock and the explorer reports the
//! shortest path into the trap.
//!
//! The state cap is a hard bound: exceeding it is a *failure* (a
//! truncated exploration proves nothing), never a silent truncation.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A finite-state model of one protocol scenario.
pub trait Model {
    /// Global state: shared words plus every actor's private machine
    /// state plus injection budgets.
    type State: Clone + Eq + Hash + std::fmt::Debug;

    /// Initial state(s).
    fn init(&self) -> Vec<Self::State>;

    /// Every state reachable in exactly one atomic step, labeled with
    /// the action that takes it there (one shared-memory operation, or
    /// one injected kill/reap/timeout).
    fn successors(&self, s: &Self::State) -> Vec<(String, Self::State)>;

    /// Safety property; checked at every reachable state.
    ///
    /// # Errors
    /// A human-readable description of the violated property.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// True for states that count as a correct outcome. Terminal states
    /// must be accepting, and every state must be able to reach an
    /// accepting state (liveness).
    fn accepting(&self, s: &Self::State) -> bool;
}

/// Exhaustive-exploration summary: the proof bound.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions explored.
    pub edges: usize,
    /// How many visited states were accepting.
    pub accepting: usize,
}

/// A property violation, with the interleaving that reaches it.
#[derive(Debug)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// Action labels from an initial state to the violating state.
    pub trace: Vec<String>,
    /// Debug rendering of the violating state.
    pub state: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        writeln!(f, "state: {}", self.state)?;
        writeln!(f, "trace ({} steps):", self.trace.len())?;
        for (i, a) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:3}: {a}")?;
        }
        Ok(())
    }
}

struct Graph<S> {
    states: Vec<S>,
    parent: Vec<Option<(usize, String)>>,
    preds: Vec<Vec<usize>>,
    accepting: Vec<bool>,
}

impl<S: std::fmt::Debug> Graph<S> {
    fn violation(&self, id: usize, message: String) -> Box<Violation> {
        let mut trace = Vec::new();
        let mut at = id;
        while let Some((p, label)) = &self.parent[at] {
            trace.push(label.clone());
            at = *p;
        }
        trace.reverse();
        Box::new(Violation {
            message,
            trace,
            state: format!("{:?}", self.states[id]),
        })
    }
}

/// Exhaustively explore `m`, proving its invariant over every reachable
/// state, its terminal states accepting, and every state co-reachable to
/// an accepting one.
///
/// # Errors
/// The first [`Violation`] found; exceeding `max_states` is itself a
/// violation (truncated exploration proves nothing).
pub fn explore<M: Model>(m: &M, max_states: usize) -> Result<Report, Box<Violation>> {
    let mut index: HashMap<M::State, usize> = HashMap::new();
    let mut g: Graph<M::State> = Graph {
        states: Vec::new(),
        parent: Vec::new(),
        preds: Vec::new(),
        accepting: Vec::new(),
    };
    let mut queue = VecDeque::new();
    let mut edges = 0usize;

    let intern = |s: M::State,
                  from: Option<(usize, String)>,
                  index: &mut HashMap<M::State, usize>,
                  g: &mut Graph<M::State>,
                  queue: &mut VecDeque<usize>|
     -> usize {
        if let Some(&id) = index.get(&s) {
            if let Some((p, _)) = from {
                g.preds[id].push(p);
            }
            return id;
        }
        let id = g.states.len();
        index.insert(s.clone(), id);
        g.states.push(s);
        g.preds.push(from.iter().map(|(p, _)| *p).collect());
        g.parent.push(from);
        g.accepting.push(false);
        queue.push_back(id);
        id
    };

    for s in m.init() {
        intern(s, None, &mut index, &mut g, &mut queue);
    }

    while let Some(id) = queue.pop_front() {
        if g.states.len() > max_states {
            return Err(g.violation(
                id,
                format!(
                    "state space exceeded the {max_states}-state cap: the run is truncated and \
                     proves nothing — raise the cap or shrink the scenario"
                ),
            ));
        }
        let s = g.states[id].clone();
        if let Err(msg) = m.invariant(&s) {
            return Err(g.violation(id, msg));
        }
        g.accepting[id] = m.accepting(&s);
        let succ = m.successors(&s);
        if succ.is_empty() && !g.accepting[id] {
            return Err(g.violation(id, "terminal state is not an accepted outcome".into()));
        }
        for (label, t) in succ {
            edges += 1;
            intern(t, Some((id, label)), &mut index, &mut g, &mut queue);
        }
    }

    // Liveness: backward reachability from the accepting states. Any
    // state that cannot reach one is a trap the protocol can never leave.
    let n = g.states.len();
    let mut coreach = vec![false; n];
    let mut back: VecDeque<usize> = (0..n).filter(|&i| g.accepting[i]).collect();
    for &i in &back {
        coreach[i] = true;
    }
    while let Some(i) = back.pop_front() {
        for &p in &g.preds[i] {
            if !coreach[p] {
                coreach[p] = true;
                back.push_back(p);
            }
        }
    }
    if let Some(trapped) = (0..n).find(|&i| !coreach[i]) {
        return Err(g.violation(
            trapped,
            "livelock: no accepting outcome is reachable from this state".into(),
        ));
    }

    Ok(Report {
        states: n,
        edges,
        accepting: g.accepting.iter().filter(|&&a| a).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that steps 0..=limit; even terminal = accepting.
    struct Count {
        limit: u8,
        poison: Option<u8>,
    }

    impl Model for Count {
        type State = u8;

        fn init(&self) -> Vec<u8> {
            vec![0]
        }

        fn successors(&self, s: &u8) -> Vec<(String, u8)> {
            if *s >= self.limit {
                vec![]
            } else {
                vec![(format!("inc:{s}"), s + 1)]
            }
        }

        fn invariant(&self, s: &u8) -> Result<(), String> {
            if Some(*s) == self.poison {
                Err(format!("hit poison value {s}"))
            } else {
                Ok(())
            }
        }

        fn accepting(&self, s: &u8) -> bool {
            *s == self.limit
        }
    }

    #[test]
    fn explores_to_terminal() {
        let r = explore(
            &Count {
                limit: 5,
                poison: None,
            },
            100,
        )
        .unwrap();
        assert_eq!(r.states, 6);
        assert_eq!(r.edges, 5);
        assert_eq!(r.accepting, 1);
    }

    #[test]
    fn invariant_violation_carries_trace() {
        let v = explore(
            &Count {
                limit: 5,
                poison: Some(3),
            },
            100,
        )
        .unwrap_err();
        assert!(v.message.contains("poison value 3"));
        assert_eq!(v.trace, vec!["inc:0", "inc:1", "inc:2"]);
    }

    #[test]
    fn cap_overflow_is_a_failure() {
        let v = explore(
            &Count {
                limit: 50,
                poison: None,
            },
            10,
        )
        .unwrap_err();
        assert!(v.message.contains("cap"));
    }

    /// Two branches: one terminates accepting, one cycles forever.
    struct Trap;

    impl Model for Trap {
        type State = u8;

        fn init(&self) -> Vec<u8> {
            vec![0]
        }

        fn successors(&self, s: &u8) -> Vec<(String, u8)> {
            match s {
                0 => vec![("finish".into(), 1), ("trap".into(), 2)],
                2 => vec![("spin".into(), 3)],
                3 => vec![("spin".into(), 2)],
                _ => vec![],
            }
        }

        fn invariant(&self, _: &u8) -> Result<(), String> {
            Ok(())
        }

        fn accepting(&self, s: &u8) -> bool {
            *s == 1
        }
    }

    #[test]
    fn livelock_detected() {
        let v = explore(&Trap, 100).unwrap_err();
        assert!(v.message.contains("livelock"), "{}", v.message);
    }
}
