//! Exhaustive protocol checks: the CI property runs plus regression
//! tests pinning the checker's findings against historical protocol
//! configurations.

use svsim_shmem::proto::bar::BarrierSm;
use svsim_verify::harness::{barrier, fault, heap, round};
use svsim_verify::{check_all, explore};

const MAX_STATES: usize = 2_000_000;

#[test]
fn ci_property_suite_passes() {
    let bounds = check_all(MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(bounds.len(), 5, "expected five proof bounds: {bounds:?}");
    for b in &bounds {
        assert!(b.states > 0 && b.edges > b.states / 2, "{b}");
        println!("{b}");
    }
}

#[test]
fn barrier_survives_kill_and_timeout_anywhere() {
    for model in barrier::ci_models() {
        let r = explore(&model, MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
        assert!(r.accepting > 0);
    }
}

/// The checker's first finding: with the historical blind timeout
/// (`timeout_recheck: false`, what `ProcBarrier` shipped), a bounded
/// wait that expires while the releasing PE is mid-release poisons an
/// epoch the peer already completed — a split-epoch failure.
#[test]
fn finds_blind_timeout_split_epoch() {
    let model = barrier::BarrierModel {
        sm: BarrierSm {
            n: 2,
            timeout_recheck: false,
        },
        n: 2,
        epochs: 1,
        kills: 0,
        timeouts: 1,
    };
    let v = explore(&model, MAX_STATES).expect_err("blind timeout must split epochs");
    assert!(
        v.message.contains("released-epoch rule") || v.message.contains("split-epoch"),
        "unexpected violation: {v}"
    );
    println!("finding reproduced:\n{v}");
}

/// The checker's second finding, now closed: with sense and poison on
/// *one* word, the timeout re-check is a decisive CAS — it either claims
/// the poison or observes the committed flip, so an expiring wait can
/// never fail an epoch whose release already committed. Exhaustively
/// proven over every interleaving of a 2-PE epoch with a timeout.
#[test]
fn timeout_recheck_race_is_closed() {
    let model = barrier::BarrierModel {
        sm: BarrierSm {
            n: 2,
            timeout_recheck: true,
        },
        n: 2,
        epochs: 1,
        kills: 0,
        timeouts: 1,
    };
    let r = explore(&model, MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
    assert!(r.accepting > 0);
}

/// The checker's third finding, now closed: the reaper's poison is a
/// `fetch_or` into the sense word, so it totally orders against the
/// release CAS — a poison that lands after the flip can no longer fail
/// an epoch a peer completed. Exhaustively proven over every
/// interleaving of a 3-PE epoch with a kill + reap.
#[test]
fn reap_after_arrival_race_is_closed() {
    let model = barrier::BarrierModel {
        sm: BarrierSm {
            n: 3,
            timeout_recheck: true,
        },
        n: 3,
        epochs: 1,
        kills: 1,
        timeouts: 0,
    };
    let r = explore(&model, MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
    assert!(r.accepting > 0);
}

#[test]
fn round_recovery_passes() {
    let r = explore(&round::ci_model(), MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
    assert!(r.accepting > 0);
}

#[test]
fn heap_alloc_kill_anywhere_passes() {
    let r = explore(&heap::ci_model(), MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
    assert!(r.accepting > 0);
}

#[test]
fn fault_oneshot_fires_exactly_once() {
    let r = explore(&fault::ci_model(), MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
    assert!(r.accepting > 0);
}
