//! Exhaustive protocol checks: the CI property runs plus regression
//! tests pinning the checker's findings against historical protocol
//! configurations.

use svsim_shmem::proto::bar::BarrierSm;
use svsim_verify::harness::{barrier, fault, heap, round};
use svsim_verify::{check_all, explore};

const MAX_STATES: usize = 2_000_000;

#[test]
fn ci_property_suite_passes() {
    let bounds = check_all(MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(bounds.len(), 5, "expected five proof bounds: {bounds:?}");
    for b in &bounds {
        assert!(b.states > 0 && b.edges > b.states / 2, "{b}");
        println!("{b}");
    }
}

#[test]
fn barrier_fault_free_completes_all_epochs() {
    for model in barrier::ci_models() {
        let r = explore(&model, MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
        assert!(r.accepting > 0);
    }
}

/// The checker's first finding: with the historical blind timeout
/// (`timeout_recheck: false`, what `ProcBarrier` shipped), a bounded
/// wait that expires while the releasing PE is mid-release poisons an
/// epoch the peer already completed — a split-epoch failure.
#[test]
fn finds_blind_timeout_split_epoch() {
    let model = barrier::BarrierModel {
        sm: BarrierSm {
            n: 2,
            timeout_recheck: false,
        },
        n: 2,
        epochs: 1,
        kills: 0,
        timeouts: 1,
    };
    let v = explore(&model, MAX_STATES).expect_err("blind timeout must split epochs");
    assert!(
        v.message.contains("released-epoch rule") || v.message.contains("split-epoch"),
        "unexpected violation: {v}"
    );
    println!("finding reproduced:\n{v}");
}

/// The checker's second finding: the timeout *re-check* narrows the
/// window but cannot close it — the sense re-check and the releasing
/// PE's flip are two operations on two words, so the expiry can still
/// poison an epoch whose release is already committed (all arrivals
/// absorbed).
#[test]
fn finds_timeout_release_race_despite_recheck() {
    let model = barrier::BarrierModel {
        sm: BarrierSm {
            n: 2,
            timeout_recheck: true,
        },
        n: 2,
        epochs: 1,
        kills: 0,
        timeouts: 1,
    };
    let v =
        explore(&model, MAX_STATES).expect_err("two-word timeout recheck still races the release");
    assert!(
        v.message.contains("released-epoch rule") || v.message.contains("split-epoch"),
        "unexpected violation: {v}"
    );
    println!("finding reproduced:\n{v}");
}

/// The checker's third finding: a PE that arrives and *then* dies lets
/// the epoch release concurrently with the reaper's poison, so a waiter
/// that saw the poison first fails an epoch a peer completes — poison
/// and release live on different words, so nothing orders them.
#[test]
fn finds_reap_after_arrival_split_epoch() {
    let model = barrier::BarrierModel {
        sm: BarrierSm {
            n: 3,
            timeout_recheck: true,
        },
        n: 3,
        epochs: 1,
        kills: 1,
        timeouts: 0,
    };
    let v = explore(&model, MAX_STATES)
        .expect_err("reap poison races the release of an already-full epoch");
    assert!(
        v.message.contains("released-epoch rule") || v.message.contains("split-epoch"),
        "unexpected violation: {v}"
    );
    println!("finding reproduced:\n{v}");
}

#[test]
fn round_recovery_passes() {
    let r = explore(&round::ci_model(), MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
    assert!(r.accepting > 0);
}

#[test]
fn heap_alloc_kill_anywhere_passes() {
    let r = explore(&heap::ci_model(), MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
    assert!(r.accepting > 0);
}

#[test]
fn fault_oneshot_fires_exactly_once() {
    let r = explore(&fault::ci_model(), MAX_STATES).unwrap_or_else(|v| panic!("{v}"));
    assert!(r.accepting > 0);
}
