//! Crash-at-any-write checking of the checkpoint commit protocol
//! (ISSUE 9, property d): for every possible crash point of the *real*
//! [`CheckpointStore`] commit path — temp file created empty, every torn
//! byte prefix, full write with no rename, and a torn write at the final
//! name — a reopened store must never surface the uncommitted
//! generation: `load_latest` returns the previous committed generation
//! bit-identically, or `None` when nothing was ever committed.

use std::path::PathBuf;
use svsim_core::{Checkpoint, CheckpointStore, CommitCrash, StateVector};
use svsim_types::SvRng;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svsim-verify-ckpt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn checkpoint(op_index: usize, cbits: u64, seed: u64) -> Checkpoint {
    let rng = SvRng::seed_from_u64(seed);
    let state = StateVector::zero_state(3).unwrap();
    Checkpoint::capture(op_index, cbits, &rng, &state)
}

fn assert_recovers_committed(dir: &PathBuf, committed: &Checkpoint) {
    // A real crash killed the process: recovery reopens the directory.
    let store = CheckpointStore::open(dir).unwrap();
    let (generation, loaded) = store
        .load_latest()
        .expect("a committed generation must verify")
        .expect("the committed generation must still be listed");
    assert_eq!(generation, 0, "recovery must fall back to generation 0");
    assert_eq!(loaded.op_index(), committed.op_index());
    assert_eq!(loaded.cbits(), committed.cbits());
    assert_eq!(
        loaded.checksum(),
        committed.checksum(),
        "recovered checkpoint must be bit-identical to what was committed"
    );
    loaded.verify().unwrap();
}

#[test]
fn crash_at_every_commit_step_never_surfaces_uncommitted() {
    let committed = checkpoint(1, 0b01, 7);
    let doomed = checkpoint(2, 0b10, 23);
    // `bytes()` is the payload footprint; pad past the serialization
    // header so the sweep provably covers every byte of the real file
    // (`AfterTempBytes` clamps to the actual length).
    let doomed_len = usize::try_from(doomed.bytes()).unwrap() + 128;

    let mut crashes = vec![CommitCrash::AfterCreate, CommitCrash::BeforeRename];
    // Exhaustive over every torn temp-file prefix, including 0 and full.
    crashes.extend((0..=doomed_len).map(CommitCrash::AfterTempBytes));

    for crash in crashes {
        let dir = fresh_dir(&format!("{crash:?}").replace(['(', ')'], "-"));
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save(&committed).unwrap();
        store.save_crashed(&doomed, crash).unwrap();
        drop(store);
        assert_recovers_committed(&dir, &committed);

        // And the reopened store must keep working: the next save lands
        // as a fresh generation above the committed one.
        let mut store = CheckpointStore::open(&dir).unwrap();
        let g = store.save(&doomed).unwrap();
        assert!(g >= 1, "post-recovery save must not reuse generation 0");
        let (latest, cp) = store.load_latest().unwrap().unwrap();
        assert_eq!(latest, g);
        assert_eq!(cp.checksum(), doomed.checksum());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_write_at_final_name_falls_back() {
    let committed = checkpoint(1, 0b01, 7);
    let doomed = checkpoint(2, 0b10, 23);
    let dir = fresh_dir("torn-final");
    let mut store = CheckpointStore::open(&dir).unwrap();
    store.save(&committed).unwrap();
    // Half the bytes land directly at the committed generation name —
    // the torn state the temp+fsync+rename protocol exists to prevent.
    store.save_torn(&doomed).unwrap();
    drop(store);
    assert_recovers_committed(&dir, &committed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_with_nothing_committed_recovers_empty() {
    for crash in [
        CommitCrash::AfterCreate,
        CommitCrash::AfterTempBytes(16),
        CommitCrash::BeforeRename,
    ] {
        let dir = fresh_dir(&format!("empty-{crash:?}").replace(['(', ')'], "-"));
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save_crashed(&checkpoint(2, 0b10, 23), crash).unwrap();
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(
            store.load_latest().unwrap().is_none(),
            "an uncommitted generation must never load ({crash:?})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
