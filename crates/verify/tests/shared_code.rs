//! Proof that the checker and production share one protocol module: the
//! very `BarrierSm` the harnesses explore over a model memory is driven
//! here over real atomics by real racing threads — same types, same
//! `step()` code, different `ProtoMem` host.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use svsim_shmem::proto::bar::{Actor, BarrierSm, Step};
use svsim_shmem::AtomicWords;

#[test]
fn proto_machine_runs_threads_and_model_identically() {
    const N: usize = 4;
    const EPOCHS: usize = 200;
    let sm = Arc::new(BarrierSm {
        n: N as u64,
        timeout_recheck: true,
    });
    let words = Arc::new(AtomicWords::<3>::default());
    let counter = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..N {
            let sm = Arc::clone(&sm);
            let words = Arc::clone(&words);
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                let mut actor = Actor::new(false);
                for epoch in 1..=EPOCHS {
                    counter.fetch_add(1, Ordering::Relaxed);
                    loop {
                        match sm.step(&mut actor, &*words) {
                            Step::Released => break,
                            Step::Pending => {
                                if actor.is_waiting() {
                                    std::thread::yield_now();
                                }
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    // Phase separation: between the two barriers every
                    // thread sits in the same epoch, so exactly N
                    // increments per completed epoch are visible.
                    assert_eq!(
                        counter.load(Ordering::Relaxed),
                        (epoch * N) as u64,
                        "phase leak at epoch {epoch}"
                    );
                    loop {
                        match sm.step(&mut actor, &*words) {
                            Step::Released => break,
                            Step::Pending => {
                                if actor.is_waiting() {
                                    std::thread::yield_now();
                                }
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                }
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), (N * EPOCHS) as u64);
}
