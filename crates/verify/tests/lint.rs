//! The linter's own gates: the real workspace must scan clean (all five
//! rules running), and the seeded fixture violation must be caught —
//! proving the rules actually fire, not that the scanner is inert.

use std::path::{Path, PathBuf};
use svsim_verify::lint::{run, Severity};

fn repo_root() -> PathBuf {
    // crates/verify -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn workspace_scans_clean_with_all_rules() {
    let report = run(&repo_root()).expect("lint scan");
    for f in &report.findings {
        eprintln!("{f}");
    }
    assert_eq!(report.errors(), 0, "workspace must lint clean");
    assert_eq!(
        report.warnings(),
        0,
        "workspace must lint clean under --deny-warnings"
    );
    for rule in [
        "unsafe-confined",
        "safety-comment",
        "ffi-confined",
        "accessor-manifest",
        "retryable-exhaustive",
    ] {
        assert!(
            report.rules_run.contains(&rule),
            "rule {rule} did not run on the workspace"
        );
    }
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn seeded_fixture_violations_are_caught() {
    let fixture = repo_root().join("crates/verify/fixtures/lint_violation");
    let report = run(&fixture).expect("fixture scan");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(
        rules.contains(&"unsafe-confined"),
        "fixture unsafe not flagged: {rules:?}"
    );
    assert!(
        rules.contains(&"ffi-confined"),
        "fixture extern \"C\" not flagged: {rules:?}"
    );
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.severity == Severity::Error),
        "fixture violations must be errors"
    );
}
