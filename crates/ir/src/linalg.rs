//! Small dense complex linear algebra for gate matrices.
//!
//! Gates touch at most [`MAX_GATE_QUBITS`](crate::gate::MAX_GATE_QUBITS)
//! qubits, so everything here is sized for matrices up to 32×32. This module
//! also carries the 2×2 eigendecomposition and U3-parameter extraction used
//! by the generic (multi-)controlled-unitary lowering in
//! [`decompose`](crate::decompose).

use std::ops::{Index, IndexMut};
use svsim_types::Complex64;

/// A square, row-major complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    dim: usize,
    data: Vec<Complex64>,
}

impl Mat {
    /// Zero matrix of dimension `dim`.
    #[must_use]
    pub fn zeros(dim: usize) -> Self {
        Self {
            dim,
            data: vec![Complex64::ZERO; dim * dim],
        }
    }

    /// Identity of dimension `dim`.
    #[must_use]
    pub fn identity(dim: usize) -> Self {
        let mut m = Self::zeros(dim);
        for i in 0..dim {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Build from a row-major slice.
    ///
    /// # Panics
    /// If `data.len()` is not a perfect square.
    #[must_use]
    pub fn from_rows(data: &[Complex64]) -> Self {
        let dim = (data.len() as f64).sqrt() as usize;
        assert_eq!(dim * dim, data.len(), "matrix data must be square");
        Self {
            dim,
            data: data.to_vec(),
        }
    }

    /// 2×2 matrix from four entries `[[a, b], [c, d]]`.
    #[must_use]
    pub fn m2(a: Complex64, b: Complex64, c: Complex64, d: Complex64) -> Self {
        Self {
            dim: 2,
            data: vec![a, b, c, d],
        }
    }

    /// Dimension (rows == cols).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row-major data.
    #[must_use]
    pub fn data(&self) -> &[Complex64] {
        &self.data
    }

    /// Matrix product `self * rhs`.
    #[must_use]
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.dim, rhs.dim);
        let n = self.dim;
        let mut out = Self::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    #[must_use]
    pub fn dagger(&self) -> Self {
        let n = self.dim;
        let mut out = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Kronecker product `self ⊗ rhs` (`rhs` indexes the low bits).
    #[must_use]
    pub fn kron(&self, rhs: &Self) -> Self {
        let (a, b) = (self.dim, rhs.dim);
        let mut out = Self::zeros(a * b);
        for i in 0..a {
            for j in 0..a {
                for k in 0..b {
                    for l in 0..b {
                        out[(i * b + k, j * b + l)] = self[(i, j)] * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Scale every entry.
    #[must_use]
    pub fn scaled(&self, k: Complex64) -> Self {
        Self {
            dim: self.dim,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Max |entry difference| against `other`.
    #[must_use]
    pub fn max_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.dim, other.dim);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max)
    }

    /// Entry-wise approximate equality.
    #[must_use]
    pub fn approx_eq(&self, other: &Self, eps: f64) -> bool {
        self.dim == other.dim && self.max_diff(other) <= eps
    }

    /// Approximate equality up to a global phase.
    #[must_use]
    pub fn approx_eq_up_to_phase(&self, other: &Self, eps: f64) -> bool {
        if self.dim != other.dim {
            return false;
        }
        // Find the largest entry of `other` to estimate the phase.
        let (idx, _) = other
            .data
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.norm_sqr().total_cmp(&b.norm_sqr()))
            .expect("non-empty");
        if other.data[idx].norm() < eps {
            return self.approx_eq(other, eps);
        }
        let phase = self.data[idx] / other.data[idx];
        if (phase.norm() - 1.0).abs() > eps {
            return false;
        }
        self.approx_eq(&other.scaled(phase), eps)
    }

    /// `||U† U - I||_max` — unitarity defect.
    #[must_use]
    pub fn unitarity_defect(&self) -> f64 {
        self.dagger()
            .matmul(self)
            .max_diff(&Self::identity(self.dim))
    }

    /// Apply this `2^k`-dimensional matrix to a full `2^n` state vector over
    /// the given qubits (`qubits[0]` is the least-significant local bit).
    ///
    /// Reference implementation used by tests and baselines — clarity over
    /// speed.
    pub fn apply_to_state(&self, state: &mut [Complex64], qubits: &[u32]) {
        let k = qubits.len();
        assert_eq!(self.dim, 1 << k, "matrix/operand mismatch");
        let n_total = state.len();
        assert!(n_total.is_power_of_two());
        // Enumerate base indices where all operand qubits are 0 by inserting
        // zero bits at the (ascending-sorted) operand positions.
        let mut sorted: Vec<u32> = qubits.to_vec();
        sorted.sort_unstable();
        let free = n_total >> k;
        let mut local = vec![Complex64::ZERO; 1 << k];
        for i in 0..free {
            let base = svsim_types::bits::insert_zero_bits(i as u64, &sorted);
            // Gather the 2^k involved amplitudes in local (gate) bit order.
            for (li, slot) in local.iter_mut().enumerate() {
                let mut idx = base;
                for (b, &q) in qubits.iter().enumerate() {
                    if (li >> b) & 1 == 1 {
                        idx |= 1 << q;
                    }
                }
                *slot = state[idx as usize];
            }
            for (row, slot) in (0..self.dim).zip(0..) {
                let mut acc = Complex64::ZERO;
                for (col, &amp) in local.iter().enumerate() {
                    acc += self[(row, col)] * amp;
                }
                let mut idx = base;
                for (b, &q) in qubits.iter().enumerate() {
                    if (slot >> b) & 1 == 1 {
                        idx |= 1 << q;
                    }
                }
                state[idx as usize] = acc;
            }
        }
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = Complex64;
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.dim + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.dim + j]
    }
}

/// Eigendecomposition of a 2×2 unitary: returns `(phi0, phi1, w)` such that
/// `U = W · diag(e^{i phi0}, e^{i phi1}) · W†` with `W` unitary.
///
/// Used to lower arbitrary (multi-)controlled single-qubit unitaries into
/// phase networks: `C^k U = (I⊗W) · C^k diag · (I⊗W†)`.
#[must_use]
pub fn eig2_unitary(u: &Mat) -> (f64, f64, Mat) {
    assert_eq!(u.dim(), 2);
    let (a, b, c, d) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
    const EPS: f64 = 1e-14;
    if b.norm() < EPS && c.norm() < EPS {
        // Already diagonal.
        return (a.arg(), d.arg(), Mat::identity(2));
    }
    // Characteristic polynomial: l^2 - tr l + det = 0.
    let tr = a + d;
    let det = a * d - b * c;
    let disc = (tr * tr - Complex64::real(4.0) * det).sqrt();
    let l0 = (tr + disc) * 0.5;
    let l1 = (tr - disc) * 0.5;
    // Eigenvector for l0: rows of (U - l) are dependent; null vector of
    // [a-l, b] is (b, l-a) (up to scale), or (l-d, c) — pick the larger.
    let mut v0 = {
        let cand1 = (b, l0 - a);
        let cand2 = (l0 - d, c);
        if cand1.0.norm_sqr() + cand1.1.norm_sqr() >= cand2.0.norm_sqr() + cand2.1.norm_sqr() {
            cand1
        } else {
            cand2
        }
    };
    let n0 = (v0.0.norm_sqr() + v0.1.norm_sqr()).sqrt();
    v0 = (v0.0.scale(1.0 / n0), v0.1.scale(1.0 / n0));
    // A normal matrix has orthogonal eigenvectors: v1 = (-conj(y), conj(x)).
    let v1 = (-v0.1.conj(), v0.0.conj());
    // W columns are the eigenvectors.
    let w = Mat::m2(v0.0, v1.0, v0.1, v1.1);
    (l0.arg(), l1.arg(), w)
}

/// Express a 2×2 unitary as `e^{i alpha} · U3(theta, phi, lambda)` and return
/// `(alpha, theta, phi, lambda)` where `U3` is the OpenQASM matrix
/// `[[cos(t/2), -e^{il} sin(t/2)], [e^{ip} sin(t/2), e^{i(p+l)} cos(t/2)]]`.
#[must_use]
pub fn to_u3_params(u: &Mat) -> (f64, f64, f64, f64) {
    assert_eq!(u.dim(), 2);
    let (a, b, c, d) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
    let cos_half = a.norm().min(1.0);
    let theta = 2.0 * cos_half.acos().min(std::f64::consts::PI);
    const EPS: f64 = 1e-12;
    if a.norm() < EPS {
        // theta = pi: a = d = 0; U = [[0, -e^{i(alpha+l)}], [e^{i(alpha+p)}, 0]].
        let alpha_plus_phi = c.arg();
        let alpha_plus_lambda = (-b).arg();
        // Split freely: put everything in phi/lambda, alpha from consistency.
        return (0.0, theta, alpha_plus_phi, alpha_plus_lambda);
    }
    if c.norm() < EPS {
        // theta = 0: diagonal. U = e^{i alpha} diag(1, e^{i(p+l)}).
        let alpha = a.arg();
        let lambda = (d / a).arg();
        return (alpha, 0.0, 0.0, lambda);
    }
    // a = e^{i alpha} cos, c = e^{i(alpha+phi)} sin, -b = e^{i(alpha+lambda)} sin.
    let alpha = a.arg();
    let phi = (c / a).arg();
    let lambda = (-b / a).arg();
    (alpha, theta, phi, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_types::S2I;

    fn h_mat() -> Mat {
        Mat::m2(
            Complex64::real(S2I),
            Complex64::real(S2I),
            Complex64::real(S2I),
            Complex64::real(-S2I),
        )
    }

    fn x_mat() -> Mat {
        Mat::m2(
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ONE,
            Complex64::ZERO,
        )
    }

    #[test]
    fn identity_times_anything() {
        let h = h_mat();
        assert!(Mat::identity(2).matmul(&h).approx_eq(&h, 1e-15));
        assert!(h.matmul(&Mat::identity(2)).approx_eq(&h, 1e-15));
    }

    #[test]
    fn h_is_unitary_and_self_inverse() {
        let h = h_mat();
        assert!(h.unitarity_defect() < 1e-14);
        assert!(h.matmul(&h).approx_eq(&Mat::identity(2), 1e-14));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = x_mat();
        let i = Mat::identity(2);
        let xi = x.kron(&i); // X on high bit, I on low bit
        assert_eq!(xi.dim(), 4);
        // |00> -> |10>: column 0 has a 1 at row 2.
        assert_eq!(xi[(2, 0)], Complex64::ONE);
        assert_eq!(xi[(0, 0)], Complex64::ZERO);
    }

    #[test]
    fn dagger_of_product() {
        let h = h_mat();
        let x = x_mat();
        let hx = h.matmul(&x);
        assert!(hx
            .dagger()
            .approx_eq(&x.dagger().matmul(&h.dagger()), 1e-14));
    }

    #[test]
    fn phase_equality() {
        let h = h_mat();
        let ph = h.scaled(Complex64::cis(0.37));
        assert!(!ph.approx_eq(&h, 1e-9));
        assert!(ph.approx_eq_up_to_phase(&h, 1e-9));
    }

    #[test]
    fn eig2_reconstructs_h() {
        let h = h_mat();
        let (p0, p1, w) = eig2_unitary(&h);
        let d = Mat::m2(
            Complex64::cis(p0),
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::cis(p1),
        );
        let rec = w.matmul(&d).matmul(&w.dagger());
        assert!(rec.approx_eq(&h, 1e-12));
        assert!(w.unitarity_defect() < 1e-12);
    }

    #[test]
    fn eig2_reconstructs_many() {
        // A spread of unitaries: phases, rotations, and compositions.
        let mats = [
            x_mat(),
            h_mat(),
            Mat::m2(
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::I,
            ),
            h_mat().matmul(&x_mat()),
            Mat::m2(
                Complex64::new(0.6, 0.0),
                Complex64::new(0.0, 0.8),
                Complex64::new(0.0, 0.8),
                Complex64::new(0.6, 0.0),
            ),
        ];
        for m in &mats {
            let (p0, p1, w) = eig2_unitary(m);
            let d = Mat::m2(
                Complex64::cis(p0),
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::cis(p1),
            );
            let rec = w.matmul(&d).matmul(&w.dagger());
            assert!(
                rec.approx_eq(m, 1e-11),
                "failed to reconstruct, diff={}",
                rec.max_diff(m)
            );
        }
    }

    #[test]
    fn u3_params_roundtrip() {
        use std::f64::consts::PI;
        let cases = [
            h_mat(),
            x_mat(),
            Mat::m2(
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::cis(0.7),
            ),
            h_mat().matmul(&x_mat()).scaled(Complex64::cis(1.1)),
        ];
        for m in &cases {
            let (alpha, theta, phi, lambda) = to_u3_params(m);
            let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
            let u3 = Mat::m2(
                Complex64::real(c),
                -Complex64::cis(lambda) * s,
                Complex64::cis(phi) * s,
                Complex64::cis(phi + lambda) * c,
            )
            .scaled(Complex64::cis(alpha));
            assert!(
                u3.approx_eq_up_to_phase(m, 1e-11),
                "u3 roundtrip failed: theta={theta} phi={phi} lambda={lambda} PI={PI}"
            );
        }
    }

    #[test]
    fn apply_to_state_x_gate() {
        let mut state = vec![Complex64::ZERO; 8];
        state[0] = Complex64::ONE;
        x_mat().apply_to_state(&mut state, &[1]);
        assert_eq!(state[0b010], Complex64::ONE);
        assert_eq!(state[0], Complex64::ZERO);
    }

    #[test]
    fn apply_to_state_respects_qubit_order() {
        // CX with control q2, target q0 on |100> -> |101>.
        // Control = local bit 0, target = local bit 1: columns 1 <-> 3 swap.
        let cx = Mat::from_rows(&[
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
        ]);
        // Local bit 0 = control (q2), local bit 1 = target (q0).
        let mut state = vec![Complex64::ZERO; 8];
        state[0b100] = Complex64::ONE;
        cx.apply_to_state(&mut state, &[2, 0]);
        assert_eq!(state[0b101], Complex64::ONE);
    }
}
