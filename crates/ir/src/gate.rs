//! The SV-Sim gate ISA.
//!
//! [`GateKind`] enumerates the 34 gates of the IBM OpenQASM standard
//! (paper Table 1): 5 *basic* gates natively executed by IBM-Q hardware,
//! 11 *standard* gates defined atomically, and 18 *compound* gates defined
//! by composition. [`Gate`] is the runtime gate object: kind + qubit
//! operands + real parameters, compact enough to sit in the circuit queue
//! that is shipped to the device in one transfer (paper §3.2.2).

use std::fmt;
use svsim_types::{SvError, SvResult};

/// Maximum operand count of any ISA gate (`C4X` uses 5 qubits).
pub const MAX_GATE_QUBITS: usize = 5;
/// Maximum parameter count of any ISA gate (`U3`/`CU3` use 3).
pub const MAX_GATE_PARAMS: usize = 3;

/// Every gate of the SV-Sim ISA (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum GateKind {
    /// 3-parameter 2-pulse single-qubit gate.
    U3,
    /// 2-parameter 1-pulse single-qubit gate.
    U2,
    /// 1-parameter 0-pulse single-qubit phase gate.
    U1,
    /// Controlled-NOT.
    CX,
    /// Idle / identity.
    ID,
    /// Pauli-X bit flip.
    X,
    /// Pauli-Y bit and phase flip.
    Y,
    /// Pauli-Z phase flip.
    Z,
    /// Hadamard.
    H,
    /// sqrt(Z) phase gate.
    S,
    /// Conjugate of sqrt(Z).
    SDG,
    /// sqrt(S) phase gate.
    T,
    /// Conjugate of sqrt(S).
    TDG,
    /// X-axis rotation.
    RX,
    /// Y-axis rotation.
    RY,
    /// Z-axis rotation.
    RZ,
    /// Controlled phase (controlled-Z).
    CZ,
    /// Controlled Y.
    CY,
    /// Swap.
    SWAP,
    /// Controlled H.
    CH,
    /// Toffoli (controlled-controlled-X).
    CCX,
    /// Fredkin (controlled swap).
    CSWAP,
    /// Controlled RX rotation.
    CRX,
    /// Controlled RY rotation.
    CRY,
    /// Controlled RZ rotation.
    CRZ,
    /// Controlled phase rotation.
    CU1,
    /// Controlled U3.
    CU3,
    /// Two-qubit XX rotation.
    RXX,
    /// Two-qubit ZZ rotation.
    RZZ,
    /// Relative-phase Toffoli.
    RCCX,
    /// Relative-phase 3-controlled X.
    RC3X,
    /// 3-controlled X.
    C3X,
    /// 3-controlled sqrt(X).
    C3SQRTX,
    /// 4-controlled X.
    C4X,
}

/// Classification of a gate within the OpenQASM standard (Table 1 layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateClass {
    /// Natively executed by IBM-Q machines (U3, U2, U1, CX, ID).
    Basic,
    /// Defined atomically, lowered to basic gates by hardware assemblers.
    Standard,
    /// Constituted from basic and standard gates.
    Compound,
}

impl GateKind {
    /// All 34 ISA gates, in Table 1 order.
    pub const ALL: [GateKind; 34] = [
        GateKind::U3,
        GateKind::U2,
        GateKind::U1,
        GateKind::CX,
        GateKind::ID,
        GateKind::X,
        GateKind::Y,
        GateKind::Z,
        GateKind::H,
        GateKind::S,
        GateKind::SDG,
        GateKind::T,
        GateKind::TDG,
        GateKind::RX,
        GateKind::RY,
        GateKind::RZ,
        GateKind::CZ,
        GateKind::CY,
        GateKind::SWAP,
        GateKind::CH,
        GateKind::CCX,
        GateKind::CSWAP,
        GateKind::CRX,
        GateKind::CRY,
        GateKind::CRZ,
        GateKind::CU1,
        GateKind::CU3,
        GateKind::RXX,
        GateKind::RZZ,
        GateKind::RCCX,
        GateKind::RC3X,
        GateKind::C3X,
        GateKind::C3SQRTX,
        GateKind::C4X,
    ];

    /// Number of qubit operands.
    #[must_use]
    pub const fn n_qubits(self) -> usize {
        match self {
            GateKind::U3
            | GateKind::U2
            | GateKind::U1
            | GateKind::ID
            | GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::H
            | GateKind::S
            | GateKind::SDG
            | GateKind::T
            | GateKind::TDG
            | GateKind::RX
            | GateKind::RY
            | GateKind::RZ => 1,
            GateKind::CX
            | GateKind::CZ
            | GateKind::CY
            | GateKind::SWAP
            | GateKind::CH
            | GateKind::CRX
            | GateKind::CRY
            | GateKind::CRZ
            | GateKind::CU1
            | GateKind::CU3
            | GateKind::RXX
            | GateKind::RZZ => 2,
            GateKind::CCX | GateKind::CSWAP | GateKind::RCCX => 3,
            GateKind::RC3X | GateKind::C3X | GateKind::C3SQRTX => 4,
            GateKind::C4X => 5,
        }
    }

    /// Number of real parameters.
    #[must_use]
    pub const fn n_params(self) -> usize {
        match self {
            GateKind::U3 | GateKind::CU3 => 3,
            GateKind::U2 => 2,
            GateKind::U1
            | GateKind::RX
            | GateKind::RY
            | GateKind::RZ
            | GateKind::CRX
            | GateKind::CRY
            | GateKind::CRZ
            | GateKind::CU1
            | GateKind::RXX
            | GateKind::RZZ => 1,
            _ => 0,
        }
    }

    /// Table 1 classification.
    #[must_use]
    pub const fn class(self) -> GateClass {
        match self {
            GateKind::U3 | GateKind::U2 | GateKind::U1 | GateKind::CX | GateKind::ID => {
                GateClass::Basic
            }
            GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::H
            | GateKind::S
            | GateKind::SDG
            | GateKind::T
            | GateKind::TDG
            | GateKind::RX
            | GateKind::RY
            | GateKind::RZ => GateClass::Standard,
            _ => GateClass::Compound,
        }
    }

    /// OpenQASM mnemonic (lowercase).
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            GateKind::U3 => "u3",
            GateKind::U2 => "u2",
            GateKind::U1 => "u1",
            GateKind::CX => "cx",
            GateKind::ID => "id",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::H => "h",
            GateKind::S => "s",
            GateKind::SDG => "sdg",
            GateKind::T => "t",
            GateKind::TDG => "tdg",
            GateKind::RX => "rx",
            GateKind::RY => "ry",
            GateKind::RZ => "rz",
            GateKind::CZ => "cz",
            GateKind::CY => "cy",
            GateKind::SWAP => "swap",
            GateKind::CH => "ch",
            GateKind::CCX => "ccx",
            GateKind::CSWAP => "cswap",
            GateKind::CRX => "crx",
            GateKind::CRY => "cry",
            GateKind::CRZ => "crz",
            GateKind::CU1 => "cu1",
            GateKind::CU3 => "cu3",
            GateKind::RXX => "rxx",
            GateKind::RZZ => "rzz",
            GateKind::RCCX => "rccx",
            GateKind::RC3X => "rc3x",
            GateKind::C3X => "c3x",
            GateKind::C3SQRTX => "c3sqrtx",
            GateKind::C4X => "c4x",
        }
    }

    /// Look a gate up by OpenQASM mnemonic.
    #[must_use]
    pub fn from_mnemonic(name: &str) -> Option<Self> {
        GateKind::ALL.iter().copied().find(|k| k.mnemonic() == name)
    }

    /// True if this is a diagonal gate in the computational basis — diagonal
    /// gates never mix amplitudes, which the specialized kernels exploit.
    #[must_use]
    pub const fn is_diagonal(self) -> bool {
        matches!(
            self,
            GateKind::ID
                | GateKind::Z
                | GateKind::S
                | GateKind::SDG
                | GateKind::T
                | GateKind::TDG
                | GateKind::U1
                | GateKind::RZ
                | GateKind::CZ
                | GateKind::CRZ
                | GateKind::CU1
                | GateKind::RZZ
        )
    }

    /// True for the entangling two-or-more-qubit gates counted in the "CX"
    /// column of the paper's Table 4 once compounds are lowered.
    #[must_use]
    pub const fn is_entangling(self) -> bool {
        self.n_qubits() >= 2
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A gate instance: kind, qubit operands and parameters.
///
/// Kept at a fixed small size (no heap) so a circuit is a flat contiguous
/// queue, mirroring the paper's device-resident circuit buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gate {
    kind: GateKind,
    qubits: [u32; MAX_GATE_QUBITS],
    params: [f64; MAX_GATE_PARAMS],
    n_qubits: u8,
    n_params: u8,
}

impl Gate {
    /// Build a gate, validating arity and operand distinctness.
    ///
    /// # Errors
    /// [`SvError::Arity`] on operand/parameter count mismatch,
    /// [`SvError::DuplicateQubit`] if a qubit repeats.
    pub fn new(kind: GateKind, qubits: &[u32], params: &[f64]) -> SvResult<Self> {
        if qubits.len() != kind.n_qubits() {
            return Err(SvError::Arity {
                gate: kind.mnemonic().to_string(),
                expected: kind.n_qubits(),
                got: qubits.len(),
            });
        }
        if params.len() != kind.n_params() {
            return Err(SvError::Arity {
                gate: format!("{}(params)", kind.mnemonic()),
                expected: kind.n_params(),
                got: params.len(),
            });
        }
        for (i, &q) in qubits.iter().enumerate() {
            if qubits[..i].contains(&q) {
                return Err(SvError::DuplicateQubit {
                    qubit: u64::from(q),
                });
            }
        }
        let mut qs = [0u32; MAX_GATE_QUBITS];
        qs[..qubits.len()].copy_from_slice(qubits);
        let mut ps = [0f64; MAX_GATE_PARAMS];
        ps[..params.len()].copy_from_slice(params);
        Ok(Self {
            kind,
            qubits: qs,
            params: ps,
            n_qubits: qubits.len() as u8,
            n_params: params.len() as u8,
        })
    }

    /// Gate kind.
    #[inline]
    #[must_use]
    pub const fn kind(&self) -> GateKind {
        self.kind
    }

    /// Qubit operands. For controlled gates, controls come first and the
    /// target is last (OpenQASM convention).
    #[inline]
    #[must_use]
    pub fn qubits(&self) -> &[u32] {
        &self.qubits[..self.n_qubits as usize]
    }

    /// Real parameters.
    #[inline]
    #[must_use]
    pub fn params(&self) -> &[f64] {
        &self.params[..self.n_params as usize]
    }

    /// The target qubit (last operand).
    #[inline]
    #[must_use]
    pub fn target(&self) -> u32 {
        self.qubits[self.n_qubits as usize - 1]
    }

    /// Control qubits (all but the last operand) for controlled gates; for
    /// non-controlled multi-qubit gates this is a structural prefix only.
    #[inline]
    #[must_use]
    pub fn controls(&self) -> &[u32] {
        &self.qubits[..self.n_qubits as usize - 1]
    }

    /// Highest qubit index used.
    #[must_use]
    pub fn max_qubit(&self) -> u32 {
        *self.qubits().iter().max().expect("gates have >= 1 operand")
    }

    /// Rewrite operands through `f` (used when inlining circuits at offsets).
    #[must_use]
    pub fn map_qubits(mut self, f: impl Fn(u32) -> u32) -> Self {
        for q in &mut self.qubits[..self.n_qubits as usize] {
            *q = f(*q);
        }
        self
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.mnemonic())?;
        if !self.params().is_empty() {
            write!(f, "(")?;
            for (i, p) in self.params().iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
        }
        for (i, q) in self.qubits().iter().enumerate() {
            write!(f, "{}q[{q}]", if i == 0 { " " } else { ", " })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_34_gates() {
        assert_eq!(GateKind::ALL.len(), 34);
        // 5 basic + 11 standard + 18 compound, per the paper.
        let basic = GateKind::ALL
            .iter()
            .filter(|k| k.class() == GateClass::Basic)
            .count();
        let standard = GateKind::ALL
            .iter()
            .filter(|k| k.class() == GateClass::Standard)
            .count();
        let compound = GateKind::ALL
            .iter()
            .filter(|k| k.class() == GateClass::Compound)
            .count();
        assert_eq!((basic, standard, compound), (5, 11, 18));
    }

    #[test]
    fn mnemonic_roundtrip() {
        for k in GateKind::ALL {
            assert_eq!(GateKind::from_mnemonic(k.mnemonic()), Some(k));
        }
        assert_eq!(GateKind::from_mnemonic("nope"), None);
    }

    #[test]
    fn arity_validation() {
        assert!(Gate::new(GateKind::H, &[0], &[]).is_ok());
        assert!(matches!(
            Gate::new(GateKind::H, &[0, 1], &[]),
            Err(SvError::Arity { .. })
        ));
        assert!(matches!(
            Gate::new(GateKind::RX, &[0], &[]),
            Err(SvError::Arity { .. })
        ));
        assert!(matches!(
            Gate::new(GateKind::CX, &[2, 2], &[]),
            Err(SvError::DuplicateQubit { qubit: 2 })
        ));
    }

    #[test]
    fn operand_roles() {
        let g = Gate::new(GateKind::CCX, &[4, 2, 7], &[]).unwrap();
        assert_eq!(g.controls(), &[4, 2]);
        assert_eq!(g.target(), 7);
        assert_eq!(g.max_qubit(), 7);
    }

    #[test]
    fn gate_is_small_and_copy() {
        // The circuit queue stays flat; keep the object well under a cache line pair.
        assert!(std::mem::size_of::<Gate>() <= 64);
    }

    #[test]
    fn display_format() {
        let g = Gate::new(GateKind::CRZ, &[0, 3], &[1.5]).unwrap();
        assert_eq!(g.to_string(), "crz(1.5) q[0], q[3]");
    }

    #[test]
    fn diagonal_classification() {
        assert!(GateKind::RZ.is_diagonal());
        assert!(GateKind::CZ.is_diagonal());
        assert!(GateKind::RZZ.is_diagonal());
        assert!(!GateKind::H.is_diagonal());
        assert!(!GateKind::CX.is_diagonal());
    }

    #[test]
    fn map_qubits_offsets() {
        let g = Gate::new(GateKind::CX, &[0, 1], &[])
            .unwrap()
            .map_qubits(|q| q + 5);
        assert_eq!(g.qubits(), &[5, 6]);
    }
}
