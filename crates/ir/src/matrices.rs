//! Dense unitary matrices for every ISA gate.
//!
//! The local basis convention: for a gate on operands `[q0, q1, ..]`, local
//! bit 0 is `q0`, local bit 1 is `q1`, etc. For controlled gates the controls
//! are the *first* operands (OpenQASM order), so e.g. `CX` flips the target
//! (high local bit) when the control (low local bit) is set.
//!
//! These matrices are the ground truth for the whole repository: the
//! specialized kernels, the SHMEM backends, the decompositions, and the
//! baselines are all tested against them.

use crate::gate::{Gate, GateKind};
use crate::linalg::Mat;
use svsim_types::{Complex64, S2I};

const Z0: Complex64 = Complex64::ZERO;
const O1: Complex64 = Complex64::ONE;
const IM: Complex64 = Complex64::I;

/// 2×2 matrix of the OpenQASM `U3(theta, phi, lambda)` gate.
#[must_use]
pub fn u3(theta: f64, phi: f64, lambda: f64) -> Mat {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Mat::m2(
        Complex64::real(c),
        -Complex64::cis(lambda) * s,
        Complex64::cis(phi) * s,
        Complex64::cis(phi + lambda) * c,
    )
}

/// `U2(phi, lambda) = U3(pi/2, phi, lambda)`.
#[must_use]
pub fn u2(phi: f64, lambda: f64) -> Mat {
    u3(std::f64::consts::FRAC_PI_2, phi, lambda)
}

/// `U1(lambda) = diag(1, e^{i lambda})`.
#[must_use]
pub fn u1(lambda: f64) -> Mat {
    Mat::m2(O1, Z0, Z0, Complex64::cis(lambda))
}

/// `RX(theta) = exp(-i theta X / 2)`.
#[must_use]
pub fn rx(theta: f64) -> Mat {
    let c = Complex64::real((theta / 2.0).cos());
    let s = Complex64::new(0.0, -(theta / 2.0).sin());
    Mat::m2(c, s, s, c)
}

/// `RY(theta) = exp(-i theta Y / 2)`.
#[must_use]
pub fn ry(theta: f64) -> Mat {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Mat::m2(
        Complex64::real(c),
        Complex64::real(-s),
        Complex64::real(s),
        Complex64::real(c),
    )
}

/// `RZ(theta) = diag(e^{-i theta/2}, e^{i theta/2})`.
#[must_use]
pub fn rz(theta: f64) -> Mat {
    Mat::m2(
        Complex64::cis(-theta / 2.0),
        Z0,
        Z0,
        Complex64::cis(theta / 2.0),
    )
}

/// The 2×2 matrix of each single-qubit standard gate.
#[must_use]
pub fn single_qubit(kind: GateKind, params: &[f64]) -> Mat {
    match kind {
        GateKind::ID => Mat::identity(2),
        GateKind::X => Mat::m2(Z0, O1, O1, Z0),
        GateKind::Y => Mat::m2(Z0, -IM, IM, Z0),
        GateKind::Z => Mat::m2(O1, Z0, Z0, -O1),
        GateKind::H => Mat::m2(
            Complex64::real(S2I),
            Complex64::real(S2I),
            Complex64::real(S2I),
            Complex64::real(-S2I),
        ),
        GateKind::S => Mat::m2(O1, Z0, Z0, IM),
        GateKind::SDG => Mat::m2(O1, Z0, Z0, -IM),
        GateKind::T => Mat::m2(O1, Z0, Z0, Complex64::cis(std::f64::consts::FRAC_PI_4)),
        GateKind::TDG => Mat::m2(O1, Z0, Z0, Complex64::cis(-std::f64::consts::FRAC_PI_4)),
        GateKind::U3 => u3(params[0], params[1], params[2]),
        GateKind::U2 => u2(params[0], params[1]),
        GateKind::U1 => u1(params[0]),
        GateKind::RX => rx(params[0]),
        GateKind::RY => ry(params[0]),
        GateKind::RZ => rz(params[0]),
        _ => panic!("{kind} is not a single-qubit gate"),
    }
}

/// sqrt(X) — eigenbasis of H applied to S: `H S H`.
#[must_use]
pub fn sqrt_x() -> Mat {
    let h = single_qubit(GateKind::H, &[]);
    let s = single_qubit(GateKind::S, &[]);
    h.matmul(&s).matmul(&h)
}

/// SWAP on two qubits.
#[must_use]
pub fn swap() -> Mat {
    let mut m = Mat::zeros(4);
    m[(0, 0)] = O1;
    m[(1, 2)] = O1;
    m[(2, 1)] = O1;
    m[(3, 3)] = O1;
    m
}

/// `RXX(theta) = exp(-i theta XX / 2)`.
#[must_use]
pub fn rxx(theta: f64) -> Mat {
    let c = Complex64::real((theta / 2.0).cos());
    let s = Complex64::new(0.0, -(theta / 2.0).sin());
    let mut m = Mat::zeros(4);
    for i in 0..4 {
        m[(i, i)] = c;
        m[(i, 3 - i)] = s;
    }
    m
}

/// `RZZ(theta) = exp(-i theta ZZ / 2) = diag(e^{-it/2}, e^{it/2}, e^{it/2}, e^{-it/2})`.
#[must_use]
pub fn rzz(theta: f64) -> Mat {
    let lo = Complex64::cis(-theta / 2.0);
    let hi = Complex64::cis(theta / 2.0);
    let mut m = Mat::zeros(4);
    m[(0, 0)] = lo;
    m[(1, 1)] = hi;
    m[(2, 2)] = hi;
    m[(3, 3)] = lo;
    m
}

/// Multi-controlled single-qubit unitary: `n_controls` controls on local bits
/// `0..n_controls`, payload on the top local bit.
#[must_use]
pub fn multi_controlled(u: &Mat, n_controls: usize) -> Mat {
    assert_eq!(u.dim(), 2);
    let dim = 1usize << (n_controls + 1);
    let mut m = Mat::identity(dim);
    let cmask = (1usize << n_controls) - 1;
    let tbit = 1usize << n_controls;
    for i in 0..dim {
        if i & cmask == cmask {
            let row_t = (i & tbit != 0) as usize;
            for col_t in 0..2 {
                let j = (i & !tbit) | (col_t << n_controls);
                m[(i, j)] = u[(row_t, col_t)];
            }
        }
    }
    m
}

/// Dense matrix of a gate instance, in its local operand basis.
///
/// For `RCCX`/`RC3X` (defined only up to relative phases by the standard)
/// the matrix is the product of the qelib1 defining sequence, computed via
/// [`crate::decompose`]; every other gate has an independent closed form.
#[must_use]
pub fn gate_matrix(g: &Gate) -> Mat {
    let p = g.params();
    match g.kind() {
        k if k.n_qubits() == 1 => single_qubit(k, p),
        GateKind::CX => multi_controlled(&single_qubit(GateKind::X, &[]), 1),
        GateKind::CY => multi_controlled(&single_qubit(GateKind::Y, &[]), 1),
        GateKind::CZ => multi_controlled(&single_qubit(GateKind::Z, &[]), 1),
        GateKind::CH => multi_controlled(&single_qubit(GateKind::H, &[]), 1),
        GateKind::CRX => multi_controlled(&rx(p[0]), 1),
        GateKind::CRY => multi_controlled(&ry(p[0]), 1),
        GateKind::CRZ => multi_controlled(&rz(p[0]), 1),
        GateKind::CU1 => multi_controlled(&u1(p[0]), 1),
        GateKind::CU3 => multi_controlled(&u3(p[0], p[1], p[2]), 1),
        GateKind::SWAP => swap(),
        GateKind::RXX => rxx(p[0]),
        GateKind::RZZ => rzz(p[0]),
        GateKind::CCX => multi_controlled(&single_qubit(GateKind::X, &[]), 2),
        GateKind::C3X => multi_controlled(&single_qubit(GateKind::X, &[]), 3),
        GateKind::C4X => multi_controlled(&single_qubit(GateKind::X, &[]), 4),
        GateKind::C3SQRTX => multi_controlled(&sqrt_x(), 3),
        GateKind::CSWAP => {
            // Control = local bit 0; swap local bits 1 and 2.
            let mut m = Mat::identity(8);
            // States with control set: indices 1,3,5,7; swap (a,b) bits:
            // |c=1,a=1,b=0> (0b011=3) <-> |c=1,a=0,b=1> (0b101=5).
            m[(3, 3)] = Z0;
            m[(5, 5)] = Z0;
            m[(3, 5)] = O1;
            m[(5, 3)] = O1;
            m
        }
        GateKind::RCCX | GateKind::RC3X => crate::decompose::defining_matrix(g),
        k => panic!("no matrix form for {k}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    #[test]
    fn all_iso_gates_are_unitary() {
        for kind in GateKind::ALL {
            let params: Vec<f64> = (0..kind.n_params()).map(|i| 0.3 + i as f64).collect();
            let qubits: Vec<u32> = (0..kind.n_qubits() as u32).collect();
            let g = Gate::new(kind, &qubits, &params).unwrap();
            let m = gate_matrix(&g);
            assert_eq!(m.dim(), 1 << kind.n_qubits());
            assert!(
                m.unitarity_defect() < EPS,
                "{kind} defect {}",
                m.unitarity_defect()
            );
        }
    }

    #[test]
    fn identities_between_gates() {
        let h = single_qubit(GateKind::H, &[]);
        let x = single_qubit(GateKind::X, &[]);
        let z = single_qubit(GateKind::Z, &[]);
        let s = single_qubit(GateKind::S, &[]);
        let t = single_qubit(GateKind::T, &[]);
        // HZH = X
        assert!(h.matmul(&z).matmul(&h).approx_eq(&x, EPS));
        // S = T^2, Z = S^2
        assert!(t.matmul(&t).approx_eq(&s, EPS));
        assert!(s.matmul(&s).approx_eq(&z, EPS));
        // sqrt(X)^2 = X
        assert!(sqrt_x().matmul(&sqrt_x()).approx_eq(&x, EPS));
    }

    #[test]
    fn dagger_pairs() {
        let s = single_qubit(GateKind::S, &[]);
        let sdg = single_qubit(GateKind::SDG, &[]);
        let t = single_qubit(GateKind::T, &[]);
        let tdg = single_qubit(GateKind::TDG, &[]);
        assert!(s.matmul(&sdg).approx_eq(&Mat::identity(2), EPS));
        assert!(t.matmul(&tdg).approx_eq(&Mat::identity(2), EPS));
    }

    #[test]
    fn u_family_consistency() {
        // u1(l) == u3(0,0,l) up to global phase; u2 = u3(pi/2,...)
        assert!(u1(0.7).approx_eq_up_to_phase(&u3(0.0, 0.0, 0.7), EPS));
        assert!(u2(0.3, 0.9).approx_eq(&u3(FRAC_PI_2, 0.3, 0.9), EPS));
        // H == u3(pi/2, 0, pi)
        assert!(single_qubit(GateKind::H, &[]).approx_eq(&u3(FRAC_PI_2, 0.0, PI), EPS));
        // X == u3(pi, 0, pi)
        assert!(single_qubit(GateKind::X, &[]).approx_eq(&u3(PI, 0.0, PI), EPS));
    }

    #[test]
    fn rotations_at_special_angles() {
        // RZ(pi) == Z up to phase; RX(pi) == X up to phase.
        assert!(rz(PI).approx_eq_up_to_phase(&single_qubit(GateKind::Z, &[]), EPS));
        assert!(rx(PI).approx_eq_up_to_phase(&single_qubit(GateKind::X, &[]), EPS));
        assert!(ry(PI).approx_eq_up_to_phase(&single_qubit(GateKind::Y, &[]), EPS));
        // theta = 0 is identity.
        assert!(rx(0.0).approx_eq(&Mat::identity(2), EPS));
        assert!(rz(0.0).approx_eq(&Mat::identity(2), EPS));
    }

    #[test]
    fn cx_truth_table() {
        let g = Gate::new(GateKind::CX, &[0, 1], &[]).unwrap();
        let m = gate_matrix(&g);
        // Control = local bit 0. |c=1,t=0> (idx 1) -> |c=1,t=1> (idx 3).
        assert_eq!(m[(3, 1)], O1);
        assert_eq!(m[(1, 3)], O1);
        assert_eq!(m[(0, 0)], O1);
        assert_eq!(m[(2, 2)], O1);
        assert_eq!(m[(1, 1)], Z0);
    }

    #[test]
    fn swap_symmetry() {
        let m = swap();
        assert!(m.matmul(&m).approx_eq(&Mat::identity(4), EPS));
        // SWAP = CX(0,1) CX(1,0) CX(0,1) in matrix form: build CX both ways.
        let cx01 = multi_controlled(&single_qubit(GateKind::X, &[]), 1);
        // CX with control on local bit 1 / target bit 0:
        let mut cx10 = Mat::identity(4);
        cx10[(2, 2)] = Z0;
        cx10[(3, 3)] = Z0;
        cx10[(2, 3)] = O1;
        cx10[(3, 2)] = O1;
        let built = cx01.matmul(&cx10).matmul(&cx01);
        assert!(built.approx_eq(&m, EPS));
    }

    #[test]
    fn ccx_is_toffoli() {
        let m = multi_controlled(&single_qubit(GateKind::X, &[]), 2);
        // |c0=1, c1=1, t=0> = idx 0b011 = 3 -> idx 0b111 = 7.
        assert_eq!(m[(7, 3)], O1);
        assert_eq!(m[(3, 7)], O1);
        // Not triggered with only one control.
        assert_eq!(m[(1, 1)], O1);
        assert_eq!(m[(2, 2)], O1);
        assert_eq!(m[(5, 5)], O1);
    }

    #[test]
    fn rzz_diagonal_values() {
        let m = rzz(0.8);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(m[(i, j)], Z0);
                }
            }
        }
        assert!(m[(0, 0)].approx_eq(Complex64::cis(-0.4), EPS));
        assert!(m[(1, 1)].approx_eq(Complex64::cis(0.4), EPS));
    }

    #[test]
    fn rxx_via_conjugation() {
        // RXX(t) = (H x H) RZZ(t) (H x H)
        let h = single_qubit(GateKind::H, &[]);
        let hh = h.kron(&h);
        let built = hh.matmul(&rzz(0.8)).matmul(&hh);
        assert!(built.approx_eq(&rxx(0.8), EPS));
    }

    #[test]
    fn cswap_truth_table() {
        let g = Gate::new(GateKind::CSWAP, &[0, 1, 2], &[]).unwrap();
        let m = gate_matrix(&g);
        // control set (bit0), a=1 (bit1), b=0 (bit2): 0b011=3 -> 0b101=5.
        assert_eq!(m[(5, 3)], O1);
        assert_eq!(m[(3, 5)], O1);
        // control clear: identity.
        assert_eq!(m[(2, 2)], O1);
        assert_eq!(m[(4, 4)], O1);
        assert_eq!(m[(6, 6)], O1);
    }

    #[test]
    fn c3sqrtx_squares_to_c3x_on_triggered_block() {
        let g3 = Gate::new(GateKind::C3SQRTX, &[0, 1, 2, 3], &[]).unwrap();
        let m = gate_matrix(&g3);
        let m2 = m.matmul(&m);
        let c3x = multi_controlled(&single_qubit(GateKind::X, &[]), 3);
        assert!(m2.approx_eq(&c3x, EPS));
    }
}
