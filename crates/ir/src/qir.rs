//! The Microsoft QIR-runtime gate set (paper Table 2).
//!
//! The paper connects SV-Sim to Q# by concretizing the virtual gate
//! functions of the QIR runtime's simulator template. [`QirBuilder`] is the
//! Rust analog of that wrapper: every Table 2 operation appends its exact
//! realization (in SV-Sim ISA gates) to an underlying [`Circuit`].

use crate::circuit::Circuit;
use crate::decompose::{controlled_unitary, mcu1, mcx};
use crate::gate::{Gate, GateKind};
use crate::matrices;
use crate::pauli::{exp_pauli_gates, Pauli, PauliString};
use svsim_types::{SvError, SvResult};

/// Builder implementing the QIR-runtime gate API on top of a [`Circuit`].
#[derive(Debug)]
pub struct QirBuilder {
    circuit: Circuit,
}

impl QirBuilder {
    /// Start a QIR program over `n_qubits` qubits.
    #[must_use]
    pub fn new(n_qubits: u32) -> Self {
        Self {
            circuit: Circuit::new(n_qubits),
        }
    }

    /// Finish and return the accumulated circuit.
    #[must_use]
    pub fn finish(self) -> Circuit {
        self.circuit
    }

    /// Read-only view of the accumulated circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    fn push_all(&mut self, gates: Vec<Gate>) -> SvResult<()> {
        for g in gates {
            self.circuit.push_gate(g)?;
        }
        Ok(())
    }

    fn simple(&mut self, kind: GateKind, q: u32) -> SvResult<()> {
        self.circuit.apply(kind, &[q], &[])
    }

    /// QIR `X`.
    pub fn x(&mut self, q: u32) -> SvResult<()> {
        self.simple(GateKind::X, q)
    }
    /// QIR `Y`.
    pub fn y(&mut self, q: u32) -> SvResult<()> {
        self.simple(GateKind::Y, q)
    }
    /// QIR `Z`.
    pub fn z(&mut self, q: u32) -> SvResult<()> {
        self.simple(GateKind::Z, q)
    }
    /// QIR `H`.
    pub fn h(&mut self, q: u32) -> SvResult<()> {
        self.simple(GateKind::H, q)
    }
    /// QIR `S`.
    pub fn s(&mut self, q: u32) -> SvResult<()> {
        self.simple(GateKind::S, q)
    }
    /// QIR `T`.
    pub fn t(&mut self, q: u32) -> SvResult<()> {
        self.simple(GateKind::T, q)
    }
    /// QIR `AdjointS`.
    pub fn adjoint_s(&mut self, q: u32) -> SvResult<()> {
        self.simple(GateKind::SDG, q)
    }
    /// QIR `AdjointT`.
    pub fn adjoint_t(&mut self, q: u32) -> SvResult<()> {
        self.simple(GateKind::TDG, q)
    }

    /// QIR `R(pauli, theta, q)` — the unified rotation gate
    /// `exp(-i theta/2 * pauli)`.
    ///
    /// `R(PauliI, theta)` is a global phase `e^{-i theta/2}`, unobservable on
    /// an uncontrolled register, so it appends nothing.
    pub fn r(&mut self, pauli: Pauli, theta: f64, q: u32) -> SvResult<()> {
        match pauli {
            Pauli::I => Ok(()),
            Pauli::X => self.circuit.apply(GateKind::RX, &[q], &[theta]),
            Pauli::Y => self.circuit.apply(GateKind::RY, &[q], &[theta]),
            Pauli::Z => self.circuit.apply(GateKind::RZ, &[q], &[theta]),
        }
    }

    /// QIR `Exp(paulis, theta, qubits)` — `exp(i theta * P)`.
    ///
    /// Note the sign convention: QIR's `Exp` uses `+i theta P`, which equals
    /// `exp(-i (-2 theta)/2 P)`.
    pub fn exp(&mut self, factors: &[(Pauli, u32)], theta: f64) -> SvResult<()> {
        let s = PauliString::new(factors)?;
        self.push_all(exp_pauli_gates(-2.0 * theta, &s))
    }

    /// QIR `ControlledX` (1 control = `CX`; more controls lower via
    /// the exact multi-controlled network).
    pub fn controlled_x(&mut self, controls: &[u32], q: u32) -> SvResult<()> {
        match controls {
            [] => self.x(q),
            [c] => self.circuit.apply(GateKind::CX, &[*c, q], &[]),
            _ => {
                let mut gs = Vec::new();
                mcx(&mut gs, controls, q);
                self.push_all(gs)
            }
        }
    }

    /// QIR `ControlledY`.
    pub fn controlled_y(&mut self, controls: &[u32], q: u32) -> SvResult<()> {
        match controls {
            [] => self.y(q),
            [c] => self.circuit.apply(GateKind::CY, &[*c, q], &[]),
            _ => self.generic_controlled(&matrices::single_qubit(GateKind::Y, &[]), controls, q),
        }
    }

    /// QIR `ControlledZ`.
    pub fn controlled_z(&mut self, controls: &[u32], q: u32) -> SvResult<()> {
        match controls {
            [] => self.z(q),
            [c] => self.circuit.apply(GateKind::CZ, &[*c, q], &[]),
            _ => {
                let mut gs = Vec::new();
                mcu1(&mut gs, std::f64::consts::PI, controls, q);
                self.push_all(gs)
            }
        }
    }

    /// QIR `ControlledH`.
    pub fn controlled_h(&mut self, controls: &[u32], q: u32) -> SvResult<()> {
        match controls {
            [] => self.h(q),
            [c] => self.circuit.apply(GateKind::CH, &[*c, q], &[]),
            _ => self.generic_controlled(&matrices::single_qubit(GateKind::H, &[]), controls, q),
        }
    }

    /// QIR `ControlledS`.
    pub fn controlled_s(&mut self, controls: &[u32], q: u32) -> SvResult<()> {
        self.controlled_phase(std::f64::consts::FRAC_PI_2, controls, q)
    }

    /// QIR `ControlledAdjointS`.
    pub fn controlled_adjoint_s(&mut self, controls: &[u32], q: u32) -> SvResult<()> {
        self.controlled_phase(-std::f64::consts::FRAC_PI_2, controls, q)
    }

    /// QIR `ControlledT`.
    pub fn controlled_t(&mut self, controls: &[u32], q: u32) -> SvResult<()> {
        self.controlled_phase(std::f64::consts::FRAC_PI_4, controls, q)
    }

    /// QIR `ControlledAdjointT`.
    pub fn controlled_adjoint_t(&mut self, controls: &[u32], q: u32) -> SvResult<()> {
        self.controlled_phase(-std::f64::consts::FRAC_PI_4, controls, q)
    }

    fn controlled_phase(&mut self, lambda: f64, controls: &[u32], q: u32) -> SvResult<()> {
        match controls {
            [] => self.circuit.apply(GateKind::U1, &[q], &[lambda]),
            [c] => self.circuit.apply(GateKind::CU1, &[*c, q], &[lambda]),
            _ => {
                let mut gs = Vec::new();
                mcu1(&mut gs, lambda, controls, q);
                self.push_all(gs)
            }
        }
    }

    /// QIR `ControlledR(pauli, theta)`.
    ///
    /// `R(PauliI, theta)` is the global phase `e^{-i theta/2}`; controlled,
    /// it becomes an observable phase on the control subspace.
    pub fn controlled_r(
        &mut self,
        pauli: Pauli,
        theta: f64,
        controls: &[u32],
        q: u32,
    ) -> SvResult<()> {
        if controls.is_empty() {
            return self.r(pauli, theta, q);
        }
        match pauli {
            Pauli::I => {
                // Phase -theta/2 on the all-controls-set subspace.
                let (rest, last) = controls.split_at(controls.len() - 1);
                let mut gs = Vec::new();
                mcu1(&mut gs, -theta / 2.0, rest, last[0]);
                self.push_all(gs)
            }
            Pauli::X => self.generic_controlled(&matrices::rx(theta), controls, q),
            Pauli::Y => self.generic_controlled(&matrices::ry(theta), controls, q),
            Pauli::Z => {
                if controls.len() == 1 {
                    self.circuit
                        .apply(GateKind::CRZ, &[controls[0], q], &[theta])
                } else {
                    self.generic_controlled(&matrices::rz(theta), controls, q)
                }
            }
        }
    }

    /// QIR `ControlledExp(paulis, theta)`.
    pub fn controlled_exp(
        &mut self,
        factors: &[(Pauli, u32)],
        theta: f64,
        controls: &[u32],
    ) -> SvResult<()> {
        if controls.is_empty() {
            return self.exp(factors, theta);
        }
        let s = PauliString::new(factors)?;
        if s.is_identity() {
            // exp(i theta I) controlled = phase theta on the control subspace.
            let (rest, last) = controls.split_at(controls.len() - 1);
            let mut gs = Vec::new();
            mcu1(&mut gs, theta, rest, last[0]);
            return self.push_all(gs);
        }
        for &(_, q) in s.factors() {
            if controls.contains(&q) {
                return Err(SvError::DuplicateQubit {
                    qubit: u64::from(q),
                });
            }
        }
        // Basis change is uncontrolled; only the RZ in the parity ladder is
        // controlled. Build the ladder manually around a controlled RZ.
        let gates = exp_pauli_gates(-2.0 * theta, &s);
        // Find the single RZ and replace it by its controlled version.
        let mut out: Vec<Gate> = Vec::with_capacity(gates.len() + 8);
        for g in gates {
            if g.kind() == GateKind::RZ {
                let angle = g.params()[0];
                let target = g.qubits()[0];
                controlled_unitary(&mut out, &matrices::rz(angle), controls, target);
            } else {
                out.push(g);
            }
        }
        self.push_all(out)
    }

    fn generic_controlled(
        &mut self,
        u: &crate::linalg::Mat,
        controls: &[u32],
        q: u32,
    ) -> SvResult<()> {
        let mut gs = Vec::new();
        controlled_unitary(&mut gs, u, controls, q);
        self.push_all(gs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::gates_unitary;
    use crate::linalg::Mat;
    use crate::matrices::multi_controlled;
    use crate::pauli::exp_pauli_matrix;

    const EPS: f64 = 1e-10;

    fn unitary_of(b: QirBuilder, n: u32) -> Mat {
        let c = b.finish();
        let gates: Vec<Gate> = c.gates().copied().collect();
        gates_unitary(&gates, n)
    }

    #[test]
    fn elementary_gates_match_isa() {
        let mut b = QirBuilder::new(1);
        b.h(0).unwrap();
        b.t(0).unwrap();
        b.adjoint_t(0).unwrap();
        b.h(0).unwrap();
        // H T T† H = I
        assert!(unitary_of(b, 1).approx_eq(&Mat::identity(2), EPS));
    }

    #[test]
    fn r_matches_rotations() {
        let mut b = QirBuilder::new(1);
        b.r(Pauli::Y, 0.9, 0).unwrap();
        let got = unitary_of(b, 1);
        assert!(got.approx_eq(&matrices::ry(0.9), EPS));
        // R(I) appends nothing.
        let mut b = QirBuilder::new(1);
        b.r(Pauli::I, 0.9, 0).unwrap();
        assert!(b.circuit().is_empty());
    }

    #[test]
    fn exp_sign_convention() {
        // QIR Exp(P, theta) = e^{+i theta P} = exp_pauli with angle -2 theta.
        let mut b = QirBuilder::new(2);
        b.exp(&[(Pauli::Z, 0), (Pauli::Z, 1)], 0.4).unwrap();
        let got = unitary_of(b, 2);
        let s = PauliString::parse("ZZ").unwrap();
        let expect = exp_pauli_matrix(-0.8, &s, 2);
        assert!(got.approx_eq(&expect, EPS));
    }

    #[test]
    fn multi_controlled_x_y_z_h() {
        type CtrlFn = fn(&mut QirBuilder, &[u32], u32) -> SvResult<()>;
        let cases: Vec<(CtrlFn, GateKind)> = vec![
            (QirBuilder::controlled_x as CtrlFn, GateKind::X),
            (QirBuilder::controlled_y as CtrlFn, GateKind::Y),
            (QirBuilder::controlled_z as CtrlFn, GateKind::Z),
            (QirBuilder::controlled_h as CtrlFn, GateKind::H),
        ];
        for (f, kind) in cases {
            for n_ctrl in 1..=3u32 {
                let mut b = QirBuilder::new(n_ctrl + 1);
                let controls: Vec<u32> = (0..n_ctrl).collect();
                f(&mut b, &controls, n_ctrl).unwrap();
                let got = unitary_of(b, n_ctrl + 1);
                let expect = multi_controlled(&matrices::single_qubit(kind, &[]), n_ctrl as usize);
                assert!(
                    got.approx_eq(&expect, EPS),
                    "{kind} with {n_ctrl} controls: diff {}",
                    got.max_diff(&expect)
                );
            }
        }
    }

    #[test]
    fn controlled_s_t_and_adjoints() {
        for (lambda, f) in [
            (
                std::f64::consts::FRAC_PI_2,
                QirBuilder::controlled_s as fn(&mut QirBuilder, &[u32], u32) -> SvResult<()>,
            ),
            (
                -std::f64::consts::FRAC_PI_2,
                QirBuilder::controlled_adjoint_s,
            ),
            (std::f64::consts::FRAC_PI_4, QirBuilder::controlled_t),
            (
                -std::f64::consts::FRAC_PI_4,
                QirBuilder::controlled_adjoint_t,
            ),
        ] {
            let mut b = QirBuilder::new(3);
            f(&mut b, &[0, 1], 2).unwrap();
            let got = unitary_of(b, 3);
            let expect = multi_controlled(&matrices::u1(lambda), 2);
            assert!(got.approx_eq(&expect, EPS), "lambda={lambda}");
        }
    }

    #[test]
    fn controlled_r_pauli_i_is_controlled_phase() {
        let mut b = QirBuilder::new(2);
        b.controlled_r(Pauli::I, 1.0, &[0], 1).unwrap();
        let got = unitary_of(b, 2);
        // Phase e^{-i/2} whenever the control (qubit 0) is set.
        let mut expect = Mat::identity(4);
        expect[(1, 1)] = svsim_types::Complex64::cis(-0.5);
        expect[(3, 3)] = svsim_types::Complex64::cis(-0.5);
        assert!(got.approx_eq(&expect, EPS));
    }

    #[test]
    fn controlled_exp_two_controls() {
        let factors = [(Pauli::X, 2), (Pauli::Z, 3)];
        let theta = 0.31;
        let mut b = QirBuilder::new(4);
        b.controlled_exp(&factors, theta, &[0, 1]).unwrap();
        let got = unitary_of(b, 4);
        // Build the expected controlled matrix by hand: blocks on control
        // subspace.
        let s = PauliString::new(&factors).unwrap();
        let payload = exp_pauli_matrix(-2.0 * theta, &s, 4);
        let mut expect = Mat::identity(16);
        for i in 0..16usize {
            for j in 0..16usize {
                if i & 0b11 == 0b11 && j & 0b11 == 0b11 {
                    expect[(i, j)] = payload[(i, j)];
                }
            }
        }
        assert!(
            got.approx_eq(&expect, EPS),
            "diff {}",
            got.max_diff(&expect)
        );
    }

    #[test]
    fn controlled_exp_rejects_overlap() {
        let mut b = QirBuilder::new(3);
        assert!(b.controlled_exp(&[(Pauli::X, 0)], 0.2, &[0, 1]).is_err());
    }

    #[test]
    fn table2_coverage() {
        // Smoke-exercise every Table 2 entry once.
        let mut b = QirBuilder::new(4);
        b.x(0).unwrap();
        b.y(0).unwrap();
        b.z(0).unwrap();
        b.h(0).unwrap();
        b.s(0).unwrap();
        b.t(0).unwrap();
        b.r(Pauli::X, 0.1, 0).unwrap();
        b.exp(&[(Pauli::X, 0), (Pauli::Y, 1)], 0.1).unwrap();
        b.controlled_x(&[1], 0).unwrap();
        b.controlled_y(&[1], 0).unwrap();
        b.controlled_z(&[1], 0).unwrap();
        b.controlled_h(&[1], 0).unwrap();
        b.controlled_s(&[1], 0).unwrap();
        b.controlled_t(&[1], 0).unwrap();
        b.controlled_r(Pauli::Z, 0.2, &[1], 0).unwrap();
        b.controlled_exp(&[(Pauli::Z, 0)], 0.2, &[1]).unwrap();
        b.adjoint_t(0).unwrap();
        b.adjoint_s(0).unwrap();
        b.controlled_adjoint_s(&[1], 0).unwrap();
        b.controlled_adjoint_t(&[1], 0).unwrap();
        assert!(b.circuit().len() >= 20);
    }
}
