//! Pauli operators, Pauli strings, and exact Pauli-exponential circuits.
//!
//! `exp(-i theta/2 * P)` for a Pauli string `P` is the workhorse of both the
//! QIR `Exp` functor (Table 2) and the UCCSD-VQE ansatz (§5): each term
//! lowers to a basis change, a CX parity ladder, and one `RZ`.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use crate::linalg::Mat;
use svsim_types::{Complex64, SvResult};

/// Single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// 2×2 matrix.
    #[must_use]
    pub fn matrix(self) -> Mat {
        match self {
            Pauli::I => Mat::identity(2),
            Pauli::X => crate::matrices::single_qubit(GateKind::X, &[]),
            Pauli::Y => crate::matrices::single_qubit(GateKind::Y, &[]),
            Pauli::Z => crate::matrices::single_qubit(GateKind::Z, &[]),
        }
    }

    /// Parse from a character (`I`, `X`, `Y`, `Z`, case-insensitive).
    #[must_use]
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }
}

/// A Pauli string: a list of non-identity Pauli factors on distinct qubits,
/// e.g. `X0 Y2 Z3`.
#[derive(Debug, Clone, PartialEq)]
pub struct PauliString {
    factors: Vec<(Pauli, u32)>,
}

impl PauliString {
    /// Build from factors; identity factors are dropped, qubits must be
    /// distinct.
    ///
    /// # Errors
    /// [`svsim_types::SvError::DuplicateQubit`] on repeated qubits.
    pub fn new(factors: &[(Pauli, u32)]) -> SvResult<Self> {
        let mut kept: Vec<(Pauli, u32)> = Vec::new();
        for &(p, q) in factors {
            if p == Pauli::I {
                continue;
            }
            if kept.iter().any(|&(_, q2)| q2 == q) {
                return Err(svsim_types::SvError::DuplicateQubit {
                    qubit: u64::from(q),
                });
            }
            kept.push((p, q));
        }
        kept.sort_by_key(|&(_, q)| q);
        Ok(Self { factors: kept })
    }

    /// Parse a label like `"XIYZ"`: character `i` acts on qubit `i`.
    ///
    /// # Errors
    /// [`svsim_types::SvError::Undefined`] on bad characters.
    pub fn parse(label: &str) -> SvResult<Self> {
        let mut factors = Vec::new();
        for (i, c) in label.chars().enumerate() {
            let p = Pauli::from_char(c)
                .ok_or_else(|| svsim_types::SvError::Undefined(format!("Pauli '{c}'")))?;
            factors.push((p, i as u32));
        }
        Self::new(&factors)
    }

    /// Factors, sorted by qubit.
    #[must_use]
    pub fn factors(&self) -> &[(Pauli, u32)] {
        &self.factors
    }

    /// True when the string is the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.factors.is_empty()
    }

    /// Weight (number of non-identity factors).
    #[must_use]
    pub fn weight(&self) -> usize {
        self.factors.len()
    }

    /// Mask of qubits carrying `Z` or `Y` factors (the ones whose bit parity
    /// enters a Z-basis expectation after basis change).
    #[must_use]
    pub fn qubit_mask(&self) -> u64 {
        self.factors.iter().fold(0u64, |m, &(_, q)| m | (1 << q))
    }

    /// Dense matrix over `n` qubits (tests only; exponential in `n`).
    #[must_use]
    pub fn matrix(&self, n_qubits: u32) -> Mat {
        let mut m = Mat::identity(1);
        // Build kron from the highest qubit down so that qubit 0 is the
        // least-significant local bit.
        for q in (0..n_qubits).rev() {
            let p = self
                .factors
                .iter()
                .find(|&&(_, fq)| fq == q)
                .map_or(Pauli::I, |&(p, _)| p);
            m = m.kron(&p.matrix());
        }
        m
    }
}

/// Append the exact circuit of `exp(-i theta/2 * P)` to `circuit`.
///
/// For the identity string this is a global phase `e^{-i theta/2}`, which is
/// unobservable and therefore skipped (the controlled variant in
/// [`crate::qir`] does emit it as a controlled phase).
///
/// # Errors
/// Range errors if the string touches qubits outside the circuit.
pub fn append_exp_pauli(circuit: &mut Circuit, theta: f64, string: &PauliString) -> SvResult<()> {
    if string.is_identity() {
        return Ok(());
    }
    let gates = exp_pauli_gates(theta, string);
    for g in gates {
        circuit.push_gate(g)?;
    }
    Ok(())
}

/// The gate sequence of `exp(-i theta/2 * P)`.
#[must_use]
pub fn exp_pauli_gates(theta: f64, string: &PauliString) -> Vec<Gate> {
    let mut out = Vec::new();
    if string.is_identity() {
        return out;
    }
    basis_change(&mut out, string, false);
    parity_ladder(&mut out, string, theta);
    basis_change(&mut out, string, true);
    out
}

/// Basis change into (or out of) the Z frame: `B Z B† = P` per factor with
/// `B = H` for X and `B = S·H` for Y.
fn basis_change(out: &mut Vec<Gate>, string: &PauliString, undo: bool) {
    for &(p, q) in string.factors() {
        match (p, undo) {
            (Pauli::X, _) => {
                out.push(Gate::new(GateKind::H, &[q], &[]).expect("h"));
            }
            // Entering the Z frame applies B† = H·S† (circuit: sdg, h);
            // leaving applies B = S·H (circuit: h, s).
            (Pauli::Y, false) => {
                out.push(Gate::new(GateKind::SDG, &[q], &[]).expect("sdg"));
                out.push(Gate::new(GateKind::H, &[q], &[]).expect("h"));
            }
            (Pauli::Y, true) => {
                out.push(Gate::new(GateKind::H, &[q], &[]).expect("h"));
                out.push(Gate::new(GateKind::S, &[q], &[]).expect("s"));
            }
            _ => {}
        }
    }
}

/// CX parity ladder onto the last factor qubit, RZ, and the unladder.
fn parity_ladder(out: &mut Vec<Gate>, string: &PauliString, theta: f64) {
    let qs: Vec<u32> = string.factors().iter().map(|&(_, q)| q).collect();
    let last = *qs.last().expect("non-identity string");
    for w in qs.windows(2) {
        out.push(Gate::new(GateKind::CX, &[w[0], w[1]], &[]).expect("cx"));
    }
    out.push(Gate::new(GateKind::RZ, &[last], &[theta]).expect("rz"));
    for w in qs.windows(2).rev() {
        out.push(Gate::new(GateKind::CX, &[w[0], w[1]], &[]).expect("cx"));
    }
}

/// Closed form `exp(-i theta/2 P) = cos(theta/2) I - i sin(theta/2) P`
/// (valid because `P^2 = I`). Tests compare circuits against this.
#[must_use]
pub fn exp_pauli_matrix(theta: f64, string: &PauliString, n_qubits: u32) -> Mat {
    let dim = 1usize << n_qubits;
    let p = string.matrix(n_qubits);
    let c = Complex64::real((theta / 2.0).cos());
    let s = Complex64::new(0.0, -(theta / 2.0).sin());
    let mut m = Mat::zeros(dim);
    for i in 0..dim {
        for j in 0..dim {
            let id = if i == j {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
            m[(i, j)] = c * id + s * p[(i, j)];
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::gates_unitary;

    const EPS: f64 = 1e-11;

    #[test]
    fn parse_and_weight() {
        let s = PauliString::parse("XIYZ").unwrap();
        assert_eq!(s.weight(), 3);
        assert_eq!(s.factors(), &[(Pauli::X, 0), (Pauli::Y, 2), (Pauli::Z, 3)]);
        assert!(PauliString::parse("II").unwrap().is_identity());
        assert!(PauliString::parse("XQ").is_err());
    }

    #[test]
    fn duplicate_qubit_rejected() {
        assert!(PauliString::new(&[(Pauli::X, 1), (Pauli::Z, 1)]).is_err());
        // Identity factors never clash.
        assert!(PauliString::new(&[(Pauli::I, 1), (Pauli::Z, 1)]).is_ok());
    }

    #[test]
    fn string_matrix_kron_order() {
        // Z on qubit 0 of 2: diag(1,-1,1,-1) (qubit 0 = low bit).
        let s = PauliString::parse("ZI").unwrap();
        let m = s.matrix(2);
        assert_eq!(m[(0, 0)], Complex64::ONE);
        assert_eq!(m[(1, 1)], -Complex64::ONE);
        assert_eq!(m[(2, 2)], Complex64::ONE);
        assert_eq!(m[(3, 3)], -Complex64::ONE);
    }

    #[test]
    fn exp_single_paulis_match_rotations() {
        for (label, kind) in [
            ("X", GateKind::RX),
            ("Y", GateKind::RY),
            ("Z", GateKind::RZ),
        ] {
            let s = PauliString::parse(label).unwrap();
            let gates = exp_pauli_gates(0.83, &s);
            let got = gates_unitary(&gates, 1);
            let rot = gates_unitary(&[Gate::new(kind, &[0], &[0.83]).unwrap()], 1);
            assert!(
                got.approx_eq(&rot, EPS),
                "{label}: diff {}",
                got.max_diff(&rot)
            );
        }
    }

    #[test]
    fn exp_matches_closed_form_multi_qubit() {
        for label in ["ZZ", "XX", "XY", "YZX", "XIZ", "YY"] {
            let s = PauliString::parse(label).unwrap();
            let n = label.len() as u32;
            let theta = 1.37;
            let gates = exp_pauli_gates(theta, &s);
            let got = gates_unitary(&gates, n);
            let expect = exp_pauli_matrix(theta, &s, n);
            assert!(
                got.approx_eq(&expect, EPS),
                "{label}: diff {}",
                got.max_diff(&expect)
            );
        }
    }

    #[test]
    fn exp_zero_angle_is_identity() {
        let s = PauliString::parse("XYZ").unwrap();
        let gates = exp_pauli_gates(0.0, &s);
        let got = gates_unitary(&gates, 3);
        assert!(got.approx_eq(&Mat::identity(8), EPS));
    }

    #[test]
    fn append_into_circuit() {
        let mut c = Circuit::new(4);
        let s = PauliString::parse("XIYZ").unwrap();
        append_exp_pauli(&mut c, 0.5, &s).unwrap();
        assert!(!c.is_empty());
        // Identity string appends nothing.
        let before = c.len();
        append_exp_pauli(&mut c, 0.5, &PauliString::parse("IIII").unwrap()).unwrap();
        assert_eq!(c.len(), before);
    }
}
