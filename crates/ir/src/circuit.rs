//! Quantum circuit representation: a flat queue of operations.
//!
//! Mirrors the paper's circuit buffer (§3.2.2): gates stream from the
//! frontend into a queue that is handed to a backend in one piece, so the
//! whole circuit is simulated "in a single kernel".

use crate::gate::{Gate, GateKind};
use std::fmt;
use svsim_types::{SvError, SvResult};

/// One operation in a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A unitary gate.
    Gate(Gate),
    /// Projective measurement of `qubit` into classical bit `cbit`.
    Measure {
        /// Measured qubit.
        qubit: u32,
        /// Destination classical bit.
        cbit: u32,
    },
    /// Reset `qubit` to |0>.
    Reset {
        /// Qubit to reset.
        qubit: u32,
    },
    /// Scheduling barrier over the listed qubits (empty = all). No effect on
    /// the state; kept for fidelity with OpenQASM inputs.
    Barrier(Vec<u32>),
    /// Classically-conditioned gate: apply `gate` iff the classical bits
    /// `[creg_lo, creg_lo + creg_len)` (little-endian) equal `value`.
    IfEq {
        /// First classical bit of the compared register.
        creg_lo: u32,
        /// Width of the compared register.
        creg_len: u32,
        /// Comparison value.
        value: u64,
        /// Conditioned gate.
        gate: Gate,
    },
}

impl Op {
    /// Highest qubit index referenced, if any.
    #[must_use]
    pub fn max_qubit(&self) -> Option<u32> {
        match self {
            Op::Gate(g) | Op::IfEq { gate: g, .. } => Some(g.max_qubit()),
            Op::Measure { qubit, .. } | Op::Reset { qubit } => Some(*qubit),
            Op::Barrier(qs) => qs.iter().max().copied(),
        }
    }
}

/// A quantum circuit over `n_qubits` qubits and `n_cbits` classical bits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: u32,
    n_cbits: u32,
    ops: Vec<Op>,
}

/// Aggregate statistics of a circuit (the columns of the paper's Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitStats {
    /// Register width.
    pub qubits: u32,
    /// Total gate count (unitary ops, conditionals included).
    pub gates: usize,
    /// Entangling (>= 2-qubit) gate count — Table 4's "CX" column counts the
    /// two-qubit gates of the circuit.
    pub cx: usize,
    /// Measurements.
    pub measures: usize,
    /// Circuit depth (longest qubit-dependency chain; barriers synchronize).
    pub depth: usize,
}

impl Circuit {
    /// Empty circuit over `n_qubits` qubits (no classical bits).
    #[must_use]
    pub fn new(n_qubits: u32) -> Self {
        Self {
            n_qubits,
            n_cbits: 0,
            ops: Vec::new(),
        }
    }

    /// Empty circuit with a classical register.
    #[must_use]
    pub fn with_cbits(n_qubits: u32, n_cbits: u32) -> Self {
        Self {
            n_qubits,
            n_cbits,
            ops: Vec::new(),
        }
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Classical register width.
    #[must_use]
    pub fn n_cbits(&self) -> u32 {
        self.n_cbits
    }

    /// Operation stream.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn check_gate(&self, g: &Gate) -> SvResult<()> {
        let m = g.max_qubit();
        if m >= self.n_qubits {
            return Err(SvError::QubitOutOfRange {
                qubit: u64::from(m),
                n_qubits: u64::from(self.n_qubits),
            });
        }
        Ok(())
    }

    /// Append a validated gate.
    ///
    /// # Errors
    /// [`SvError::QubitOutOfRange`] if an operand exceeds the register.
    pub fn push_gate(&mut self, g: Gate) -> SvResult<()> {
        self.check_gate(&g)?;
        self.ops.push(Op::Gate(g));
        Ok(())
    }

    /// Build and append a gate in one call.
    ///
    /// # Errors
    /// Propagates gate-construction and range errors.
    pub fn apply(&mut self, kind: GateKind, qubits: &[u32], params: &[f64]) -> SvResult<()> {
        self.push_gate(Gate::new(kind, qubits, params)?)
    }

    /// Append a measurement.
    ///
    /// # Errors
    /// Range errors on either index.
    pub fn measure(&mut self, qubit: u32, cbit: u32) -> SvResult<()> {
        if qubit >= self.n_qubits {
            return Err(SvError::QubitOutOfRange {
                qubit: u64::from(qubit),
                n_qubits: u64::from(self.n_qubits),
            });
        }
        if cbit >= self.n_cbits {
            return Err(SvError::InvalidConfig(format!(
                "classical bit {cbit} out of range for {} cbits",
                self.n_cbits
            )));
        }
        self.ops.push(Op::Measure { qubit, cbit });
        Ok(())
    }

    /// Append a reset.
    ///
    /// # Errors
    /// Range error on the qubit.
    pub fn reset(&mut self, qubit: u32) -> SvResult<()> {
        if qubit >= self.n_qubits {
            return Err(SvError::QubitOutOfRange {
                qubit: u64::from(qubit),
                n_qubits: u64::from(self.n_qubits),
            });
        }
        self.ops.push(Op::Reset { qubit });
        Ok(())
    }

    /// Append a barrier.
    pub fn barrier(&mut self, qubits: &[u32]) {
        self.ops.push(Op::Barrier(qubits.to_vec()));
    }

    /// Append a classically-conditioned gate.
    ///
    /// # Errors
    /// Range errors.
    pub fn if_eq(&mut self, creg_lo: u32, creg_len: u32, value: u64, gate: Gate) -> SvResult<()> {
        self.check_gate(&gate)?;
        if creg_lo + creg_len > self.n_cbits {
            return Err(SvError::InvalidConfig(format!(
                "conditional register [{creg_lo}, {}) exceeds {} cbits",
                creg_lo + creg_len,
                self.n_cbits
            )));
        }
        self.ops.push(Op::IfEq {
            creg_lo,
            creg_len,
            value,
            gate,
        });
        Ok(())
    }

    /// Append all ops of `other` (registers must fit).
    ///
    /// # Errors
    /// [`SvError::InvalidConfig`] if `other` uses more qubits/cbits.
    pub fn extend(&mut self, other: &Circuit) -> SvResult<()> {
        if other.n_qubits > self.n_qubits || other.n_cbits > self.n_cbits {
            return Err(SvError::InvalidConfig(
                "extend: register of appended circuit is wider".into(),
            ));
        }
        self.ops.extend(other.ops.iter().cloned());
        Ok(())
    }

    /// The adjoint (inverse) of the unitary part of this circuit.
    ///
    /// # Errors
    /// [`SvError::InvalidConfig`] if the circuit contains measurements or
    /// resets (not invertible).
    pub fn inverse(&self) -> SvResult<Circuit> {
        let mut out = Circuit::with_cbits(self.n_qubits, self.n_cbits);
        for op in self.ops.iter().rev() {
            match op {
                Op::Gate(g) => out.ops.push(Op::Gate(invert_gate(g)?)),
                Op::Barrier(qs) => out.ops.push(Op::Barrier(qs.clone())),
                _ => {
                    return Err(SvError::InvalidConfig(
                        "cannot invert a circuit with measurement/reset/conditionals".into(),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Iterate over just the unitary gates (conditionals excluded).
    pub fn gates(&self) -> impl Iterator<Item = &Gate> {
        self.ops.iter().filter_map(|op| match op {
            Op::Gate(g) => Some(g),
            _ => None,
        })
    }

    /// Table 4-style statistics.
    #[must_use]
    pub fn stats(&self) -> CircuitStats {
        let mut gates = 0usize;
        let mut cx = 0usize;
        let mut measures = 0usize;
        let mut level = vec![0usize; self.n_qubits as usize];
        let mut depth = 0usize;
        for op in &self.ops {
            match op {
                Op::Gate(g) | Op::IfEq { gate: g, .. } => {
                    gates += 1;
                    if g.kind().is_entangling() {
                        cx += 1;
                    }
                    let next = g
                        .qubits()
                        .iter()
                        .map(|&q| level[q as usize])
                        .max()
                        .unwrap_or(0)
                        + 1;
                    for &q in g.qubits() {
                        level[q as usize] = next;
                    }
                    depth = depth.max(next);
                }
                Op::Measure { qubit, .. } => {
                    measures += 1;
                    level[*qubit as usize] += 1;
                    depth = depth.max(level[*qubit as usize]);
                }
                Op::Reset { qubit } => {
                    level[*qubit as usize] += 1;
                    depth = depth.max(level[*qubit as usize]);
                }
                Op::Barrier(qs) => {
                    let involved: Vec<usize> = if qs.is_empty() {
                        (0..self.n_qubits as usize).collect()
                    } else {
                        qs.iter().map(|&q| q as usize).collect()
                    };
                    let m = involved.iter().map(|&q| level[q]).max().unwrap_or(0);
                    for q in involved {
                        level[q] = m;
                    }
                }
            }
        }
        CircuitStats {
            qubits: self.n_qubits,
            gates,
            cx,
            measures,
            depth,
        }
    }

    /// Lower every compound gate to basic + standard gates
    /// (see [`crate::decompose`]); basic/standard gates pass through.
    #[must_use]
    pub fn decompose_compound(&self) -> Circuit {
        let mut out = Circuit::with_cbits(self.n_qubits, self.n_cbits);
        for op in &self.ops {
            match op {
                Op::Gate(g) => {
                    for dg in crate::decompose::lower_gate(g) {
                        out.ops.push(Op::Gate(dg));
                    }
                }
                other => out.ops.push(other.clone()),
            }
        }
        out
    }
}

/// Invert a single gate into an ISA gate (adjoint).
fn invert_gate(g: &Gate) -> SvResult<Gate> {
    use GateKind::*;
    let q = g.qubits();
    let p = g.params();
    let mk = |kind: GateKind, params: &[f64]| Gate::new(kind, q, params);
    match g.kind() {
        // Self-inverse gates.
        ID | X | Y | Z | H | CX | CZ | CY | SWAP | CH | CCX | CSWAP | C3X | C4X => mk(g.kind(), p),
        S => mk(SDG, &[]),
        SDG => mk(S, &[]),
        T => mk(TDG, &[]),
        TDG => mk(T, &[]),
        RX | RY | RZ | CRX | CRY | CRZ | U1 | CU1 | RXX | RZZ => mk(g.kind(), &[-p[0]]),
        U2 => {
            // u2(phi, lambda)^-1 = u3(-pi/2, -lambda, -phi)
            mk(U3, &[-std::f64::consts::FRAC_PI_2, -p[1], -p[0]])
        }
        U3 => mk(U3, &[-p[0], -p[2], -p[1]]),
        CU3 => mk(CU3, &[-p[0], -p[2], -p[1]]),
        RCCX | RC3X | C3SQRTX => Err(SvError::InvalidConfig(format!(
            "no ISA adjoint for {}; decompose first",
            g.kind()
        ))),
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// {} qubits, {} cbits", self.n_qubits, self.n_cbits)?;
        for op in &self.ops {
            match op {
                Op::Gate(g) => writeln!(f, "{g};")?,
                Op::Measure { qubit, cbit } => writeln!(f, "measure q[{qubit}] -> c[{cbit}];")?,
                Op::Reset { qubit } => writeln!(f, "reset q[{qubit}];")?,
                Op::Barrier(qs) => {
                    if qs.is_empty() {
                        writeln!(f, "barrier;")?;
                    } else {
                        let list: Vec<String> = qs.iter().map(|q| format!("q[{q}]")).collect();
                        writeln!(f, "barrier {};", list.join(", "))?;
                    }
                }
                Op::IfEq {
                    creg_lo,
                    creg_len,
                    value,
                    gate,
                } => writeln!(f, "if (c[{creg_lo}..+{creg_len}] == {value}) {gate};")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::with_cbits(2, 2);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.measure(0, 0).unwrap();
        c.measure(1, 1).unwrap();
        c
    }

    #[test]
    fn build_and_stats() {
        let c = bell();
        let s = c.stats();
        assert_eq!(s.qubits, 2);
        assert_eq!(s.gates, 2);
        assert_eq!(s.cx, 1);
        assert_eq!(s.measures, 2);
        assert_eq!(s.depth, 3); // H, CX, measure
    }

    #[test]
    fn range_validation() {
        let mut c = Circuit::new(2);
        assert!(matches!(
            c.apply(GateKind::H, &[2], &[]),
            Err(SvError::QubitOutOfRange { qubit: 2, .. })
        ));
        assert!(c.measure(0, 0).is_err(), "no cbits allocated");
    }

    #[test]
    fn depth_parallel_gates() {
        let mut c = Circuit::new(4);
        // Two disjoint CX at the same level.
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::CX, &[2, 3], &[]).unwrap();
        assert_eq!(c.stats().depth, 1);
        // A gate bridging both halves raises depth.
        c.apply(GateKind::CX, &[1, 2], &[]).unwrap();
        assert_eq!(c.stats().depth, 2);
    }

    #[test]
    fn barrier_synchronizes_depth() {
        let mut c = Circuit::new(2);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.barrier(&[]);
        c.apply(GateKind::X, &[1], &[]).unwrap();
        // X is forced after the barrier level of H.
        assert_eq!(c.stats().depth, 2);
    }

    #[test]
    fn inverse_reverses_and_adjoints() {
        let mut c = Circuit::new(2);
        c.apply(GateKind::S, &[0], &[]).unwrap();
        c.apply(GateKind::RX, &[1], &[0.5]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        let inv = c.inverse().unwrap();
        let kinds: Vec<GateKind> = inv.gates().map(Gate::kind).collect();
        assert_eq!(kinds, vec![GateKind::CX, GateKind::RX, GateKind::SDG]);
        let params: Vec<f64> = inv.gates().flat_map(|g| g.params().to_vec()).collect();
        assert_eq!(params, vec![-0.5]);
    }

    #[test]
    fn inverse_rejects_measurement() {
        assert!(bell().inverse().is_err());
    }

    #[test]
    fn extend_checks_width() {
        let mut a = Circuit::new(3);
        let b = bell();
        assert!(a.extend(&b).is_err(), "b has cbits a lacks");
        let mut a = Circuit::with_cbits(3, 2);
        assert!(a.extend(&b).is_ok());
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn display_is_qasm_like() {
        let text = bell().to_string();
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0], q[1];"));
        assert!(text.contains("measure q[0] -> c[0];"));
    }
}
