//! Lowering of compound ISA gates to basic + standard gates.
//!
//! The paper's backend implements the OpenQASM *basic* and *standard* gates
//! natively and realizes the 18 *compound* gates by composing calls
//! (§3.3.1). This module provides that composition. It is also where the
//! generic (multi-)controlled-unitary machinery lives, which the QIR
//! adapter ([`crate::qir`]) reuses for arbitrary `Controlled` functors.
//!
//! All lowerings are **exact** (global phase included), which lets tests
//! assert matrix equality rather than phase-folded equality.

use crate::gate::{Gate, GateKind};
use crate::linalg::{eig2_unitary, to_u3_params, Mat};
use crate::matrices;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// Emit `u1(lambda)` on `q`.
fn u1(out: &mut Vec<Gate>, lambda: f64, q: u32) {
    out.push(Gate::new(GateKind::U1, &[q], &[lambda]).expect("valid u1"));
}

/// Emit `u3(theta, phi, lambda)` on `q`.
fn u3(out: &mut Vec<Gate>, theta: f64, phi: f64, lambda: f64, q: u32) {
    out.push(Gate::new(GateKind::U3, &[q], &[theta, phi, lambda]).expect("valid u3"));
}

fn h(out: &mut Vec<Gate>, q: u32) {
    out.push(Gate::new(GateKind::H, &[q], &[]).expect("valid h"));
}

fn x(out: &mut Vec<Gate>, q: u32) {
    out.push(Gate::new(GateKind::X, &[q], &[]).expect("valid x"));
}

fn t(out: &mut Vec<Gate>, q: u32) {
    out.push(Gate::new(GateKind::T, &[q], &[]).expect("valid t"));
}

fn tdg(out: &mut Vec<Gate>, q: u32) {
    out.push(Gate::new(GateKind::TDG, &[q], &[]).expect("valid tdg"));
}

fn rz(out: &mut Vec<Gate>, theta: f64, q: u32) {
    out.push(Gate::new(GateKind::RZ, &[q], &[theta]).expect("valid rz"));
}

fn cx(out: &mut Vec<Gate>, a: u32, b: u32) {
    out.push(Gate::new(GateKind::CX, &[a, b], &[]).expect("valid cx"));
}

/// Exact controlled-phase: `cu1(lambda)` on `(a, b)` (qelib1 definition).
pub fn cu1(out: &mut Vec<Gate>, lambda: f64, a: u32, b: u32) {
    u1(out, lambda / 2.0, a);
    cx(out, a, b);
    u1(out, -lambda / 2.0, b);
    cx(out, a, b);
    u1(out, lambda / 2.0, b);
}

/// Exact multi-controlled phase `diag(1, .., 1, e^{i lambda})` over
/// `controls + [target]` (symmetric in its operands).
///
/// Recursive construction: `C^k P(l) = CP(l/2)(c_k, t) · C^{k-1}X(c_k) ·
/// CP(-l/2)(c_k, t) · C^{k-1}X(c_k) · C^{k-1}P(l/2)(t)`.
pub fn mcu1(out: &mut Vec<Gate>, lambda: f64, controls: &[u32], target: u32) {
    match controls {
        [] => u1(out, lambda, target),
        [c] => cu1(out, lambda, *c, target),
        [rest @ .., last] => {
            cu1(out, lambda / 2.0, *last, target);
            mcx(out, rest, *last);
            cu1(out, -lambda / 2.0, *last, target);
            mcx(out, rest, *last);
            mcu1(out, lambda / 2.0, rest, target);
        }
    }
}

/// Exact multi-controlled X: `H(t) · C^k P(pi) · H(t)`; 0/1/2 controls use
/// the direct network.
pub fn mcx(out: &mut Vec<Gate>, controls: &[u32], target: u32) {
    match controls {
        [] => x(out, target),
        [c] => cx(out, *c, target),
        [a, b] => ccx_network(out, *a, *b, target),
        _ => {
            h(out, target);
            mcu1(out, PI, controls, target);
            h(out, target);
        }
    }
}

/// The standard 15-gate Toffoli network (exact, phase included).
fn ccx_network(out: &mut Vec<Gate>, a: u32, b: u32, c: u32) {
    h(out, c);
    cx(out, b, c);
    tdg(out, c);
    cx(out, a, c);
    t(out, c);
    cx(out, b, c);
    tdg(out, c);
    cx(out, a, c);
    t(out, b);
    t(out, c);
    h(out, c);
    cx(out, a, b);
    t(out, a);
    tdg(out, b);
    cx(out, a, b);
}

/// Exact lowering of an arbitrary multi-controlled 2×2 unitary.
///
/// Uses the eigendecomposition `U = W diag(e^{i p0}, e^{i p1}) W†`:
/// the controlled diagonal splits into a phase `p0` on the control subspace
/// plus a controlled `u1(p1 - p0)`, both realized with [`mcu1`]; `W` wraps
/// the target as `u3` rotations (its global phase cancels between `W` and
/// `W†`).
pub fn controlled_unitary(out: &mut Vec<Gate>, u: &Mat, controls: &[u32], target: u32) {
    assert!(!controls.is_empty(), "use a plain u3 for zero controls");
    let (p0, p1, w) = eig2_unitary(u);
    let wd = w.dagger();
    emit_as_u3(out, &wd, target);
    if p0.abs() > 1e-15 {
        // Phase on the all-controls-set subspace, independent of the target.
        match controls {
            [] => unreachable!("asserted non-empty above"),
            [c] => u1(out, p0, *c),
            [rest @ .., last] => mcu1(out, p0, rest, *last),
        }
    }
    if (p1 - p0).abs() > 1e-15 {
        mcu1(out, p1 - p0, controls, target);
    }
    emit_as_u3(out, &w, target);
}

/// Emit a 2×2 unitary as a single `u3` (up to global phase — callers must
/// only use this where the phase cancels, e.g. basis-change conjugations).
fn emit_as_u3(out: &mut Vec<Gate>, m: &Mat, q: u32) {
    let (_alpha, theta, phi, lambda) = to_u3_params(m);
    if theta.abs() < 1e-15 && phi.abs() < 1e-15 && lambda.abs() < 1e-15 {
        return; // identity
    }
    u3(out, theta, phi, lambda, q);
}

/// Lower one gate to basic + standard gates. Basic and standard gates pass
/// through unchanged.
#[must_use]
pub fn lower_gate(g: &Gate) -> Vec<Gate> {
    use GateKind::*;
    let q = g.qubits();
    let p = g.params();
    let mut out = Vec::new();
    match g.kind() {
        // Basic + standard: pass through.
        U3 | U2 | U1 | CX | ID | X | Y | Z | H | S | SDG | T | TDG | RX | RY | RZ => {
            out.push(*g);
        }
        CZ => {
            h(&mut out, q[1]);
            cx(&mut out, q[0], q[1]);
            h(&mut out, q[1]);
        }
        CY => {
            // sdg t; cx; s t
            out.push(Gate::new(SDG, &[q[1]], &[]).expect("sdg"));
            cx(&mut out, q[0], q[1]);
            out.push(Gate::new(S, &[q[1]], &[]).expect("s"));
        }
        SWAP => {
            cx(&mut out, q[0], q[1]);
            cx(&mut out, q[1], q[0]);
            cx(&mut out, q[0], q[1]);
        }
        CH => controlled_unitary(&mut out, &matrices::single_qubit(H, &[]), &[q[0]], q[1]),
        CCX => ccx_network(&mut out, q[0], q[1], q[2]),
        CSWAP => {
            cx(&mut out, q[2], q[1]);
            ccx_network(&mut out, q[0], q[1], q[2]);
            cx(&mut out, q[2], q[1]);
        }
        CRX => controlled_unitary(&mut out, &matrices::rx(p[0]), &[q[0]], q[1]),
        CRY => controlled_unitary(&mut out, &matrices::ry(p[0]), &[q[0]], q[1]),
        CRZ => {
            rz(&mut out, p[0] / 2.0, q[1]);
            cx(&mut out, q[0], q[1]);
            rz(&mut out, -p[0] / 2.0, q[1]);
            cx(&mut out, q[0], q[1]);
        }
        CU1 => cu1(&mut out, p[0], q[0], q[1]),
        CU3 => controlled_unitary(&mut out, &matrices::u3(p[0], p[1], p[2]), &[q[0]], q[1]),
        RZZ => {
            cx(&mut out, q[0], q[1]);
            rz(&mut out, p[0], q[1]);
            cx(&mut out, q[0], q[1]);
        }
        RXX => {
            h(&mut out, q[0]);
            h(&mut out, q[1]);
            cx(&mut out, q[0], q[1]);
            rz(&mut out, p[0], q[1]);
            cx(&mut out, q[0], q[1]);
            h(&mut out, q[0]);
            h(&mut out, q[1]);
        }
        RCCX => {
            // qelib1: relative-phase Toffoli (u2(0,pi) == H).
            let (a, b, c) = (q[0], q[1], q[2]);
            h(&mut out, c);
            u1(&mut out, FRAC_PI_4, c);
            cx(&mut out, b, c);
            u1(&mut out, -FRAC_PI_4, c);
            cx(&mut out, a, c);
            u1(&mut out, FRAC_PI_4, c);
            cx(&mut out, b, c);
            u1(&mut out, -FRAC_PI_4, c);
            h(&mut out, c);
        }
        RC3X => {
            // qelib1: relative-phase 3-controlled X.
            let (a, b, c, d) = (q[0], q[1], q[2], q[3]);
            h(&mut out, d);
            u1(&mut out, FRAC_PI_4, d);
            cx(&mut out, c, d);
            u1(&mut out, -FRAC_PI_4, d);
            h(&mut out, d);
            cx(&mut out, a, d);
            u1(&mut out, FRAC_PI_4, d);
            cx(&mut out, b, d);
            u1(&mut out, -FRAC_PI_4, d);
            cx(&mut out, a, d);
            u1(&mut out, FRAC_PI_4, d);
            cx(&mut out, b, d);
            u1(&mut out, -FRAC_PI_4, d);
            h(&mut out, d);
            u1(&mut out, FRAC_PI_4, d);
            cx(&mut out, c, d);
            u1(&mut out, -FRAC_PI_4, d);
            h(&mut out, d);
        }
        C3X => mcx(&mut out, &q[..3], q[3]),
        C4X => mcx(&mut out, &q[..4], q[4]),
        C3SQRTX => {
            // sqrt(X) = H S H = H diag(1, i) H: conjugate a C^3 P(pi/2).
            h(&mut out, q[3]);
            mcu1(&mut out, FRAC_PI_2, &q[..3], q[3]);
            h(&mut out, q[3]);
        }
    }
    out
}

/// Unitary matrix of a gate sequence over `n` qubits (reference
/// implementation; exponential in `n`, for tests and tiny circuits only).
#[must_use]
pub fn gates_unitary(gates: &[Gate], n_qubits: u32) -> Mat {
    let dim = 1usize << n_qubits;
    let mut cols: Vec<Vec<svsim_types::Complex64>> = (0..dim)
        .map(|j| {
            let mut v = vec![svsim_types::Complex64::ZERO; dim];
            v[j] = svsim_types::Complex64::ONE;
            v
        })
        .collect();
    for g in gates {
        let m = matrices::gate_matrix(g);
        for col in &mut cols {
            m.apply_to_state(col, g.qubits());
        }
    }
    let mut out = Mat::zeros(dim);
    for (j, col) in cols.iter().enumerate() {
        for (i, &z) in col.iter().enumerate() {
            out[(i, j)] = z;
        }
    }
    out
}

/// The matrix *defined by* a gate's qelib1 lowering — the semantic ground
/// truth for the relative-phase gates (`RCCX`, `RC3X`) whose matrices the
/// standard only pins down through their definitions.
#[must_use]
pub fn defining_matrix(g: &Gate) -> Mat {
    let k = g.kind().n_qubits() as u32;
    let canonical =
        Gate::new(g.kind(), &(0..k).collect::<Vec<_>>(), g.params()).expect("canonical relabel");
    let lowered = lower_gate(&canonical);
    // The lowering of RCCX/RC3X must not recurse back here.
    assert!(lowered
        .iter()
        .all(|lg| !matches!(lg.kind(), GateKind::RCCX | GateKind::RC3X)));
    gates_unitary(&lowered, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::gate_matrix;

    const EPS: f64 = 1e-10;

    /// Lowered sequence must reproduce the gate matrix exactly (phase
    /// included) for every compound gate with an independent matrix.
    #[test]
    fn exact_lowering_of_all_compounds() {
        for kind in GateKind::ALL {
            if matches!(kind, GateKind::RCCX | GateKind::RC3X) {
                continue; // matrix is defined by the lowering itself
            }
            let nq = kind.n_qubits() as u32;
            let params: Vec<f64> = (0..kind.n_params()).map(|i| 0.4 + 0.3 * i as f64).collect();
            let qubits: Vec<u32> = (0..nq).collect();
            let g = Gate::new(kind, &qubits, &params).unwrap();
            let expect = {
                // Embed the local matrix over qubits 0..nq.
                let mut id = gates_unitary(&[], nq);
                let m = gate_matrix(&g);
                // Column-wise application.
                let dim = 1usize << nq;
                for j in 0..dim {
                    let mut col: Vec<svsim_types::Complex64> =
                        (0..dim).map(|i| id[(i, j)]).collect();
                    m.apply_to_state(&mut col, g.qubits());
                    for i in 0..dim {
                        id[(i, j)] = col[i];
                    }
                }
                id
            };
            let lowered = lower_gate(&g);
            // All lowered gates must be basic or standard.
            for lg in &lowered {
                assert_ne!(
                    lg.kind().class(),
                    crate::gate::GateClass::Compound,
                    "{kind} lowered to compound {}",
                    lg.kind()
                );
            }
            let got = gates_unitary(&lowered, nq);
            assert!(
                got.approx_eq(&expect, EPS),
                "{kind}: lowering mismatch, max diff {}",
                got.max_diff(&expect)
            );
        }
    }

    /// Lowering with scrambled operand order must also match (exercises the
    /// qubit-relabeling paths).
    #[test]
    fn lowering_with_permuted_operands() {
        let g = Gate::new(GateKind::CCX, &[3, 0, 2], &[]).unwrap();
        let lowered = lower_gate(&g);
        let got = gates_unitary(&lowered, 4);
        let expect = gates_unitary(&[g], 4);
        assert!(got.approx_eq(&expect, EPS));
    }

    #[test]
    fn rccx_is_toffoli_up_to_diagonal_phases() {
        let g = Gate::new(GateKind::RCCX, &[0, 1, 2], &[]).unwrap();
        let m = defining_matrix(&g);
        assert!(m.unitarity_defect() < EPS);
        let ccx = gate_matrix(&Gate::new(GateKind::CCX, &[0, 1, 2], &[]).unwrap());
        // D = M * CCX^-1 must be diagonal with unit-modulus entries.
        let d = m.matmul(&ccx.dagger());
        for i in 0..8 {
            for j in 0..8 {
                if i == j {
                    assert!((d[(i, j)].norm() - 1.0).abs() < EPS);
                } else {
                    assert!(d[(i, j)].norm() < EPS, "off-diagonal at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn rc3x_is_c3x_up_to_diagonal_phases() {
        let g = Gate::new(GateKind::RC3X, &[0, 1, 2, 3], &[]).unwrap();
        let m = defining_matrix(&g);
        assert!(m.unitarity_defect() < EPS);
        let c3x = gate_matrix(&Gate::new(GateKind::C3X, &[0, 1, 2, 3], &[]).unwrap());
        let d = m.matmul(&c3x.dagger());
        for i in 0..16 {
            for j in 0..16 {
                if i == j {
                    assert!((d[(i, j)].norm() - 1.0).abs() < EPS);
                } else {
                    assert!(d[(i, j)].norm() < EPS, "off-diagonal at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn mcu1_matches_diagonal_for_three_controls() {
        let mut gs = Vec::new();
        mcu1(&mut gs, 0.9, &[0, 1, 2], 3);
        let m = gates_unitary(&gs, 4);
        let mut expect = Mat::identity(16);
        expect[(15, 15)] = svsim_types::Complex64::cis(0.9);
        assert!(m.approx_eq(&expect, EPS));
    }

    #[test]
    fn mcx_five_controls() {
        // Beyond the ISA (C4X is 4 controls): the recursion must still hold.
        let mut gs = Vec::new();
        mcx(&mut gs, &[0, 1, 2, 3, 4], 5);
        let m = gates_unitary(&gs, 6);
        let expect =
            crate::matrices::multi_controlled(&crate::matrices::single_qubit(GateKind::X, &[]), 5);
        assert!(m.approx_eq(&expect, EPS), "diff {}", m.max_diff(&expect));
    }

    #[test]
    fn controlled_unitary_random_targets() {
        // Controlled versions of a few awkward unitaries.
        let us = [
            matrices::u3(1.1, -0.4, 2.2),
            matrices::sqrt_x(),
            matrices::single_qubit(GateKind::Y, &[]),
            matrices::u1(0.3).matmul(&matrices::ry(0.7)),
        ];
        for (i, u) in us.iter().enumerate() {
            for n_ctrl in 1..=3usize {
                let controls: Vec<u32> = (0..n_ctrl as u32).collect();
                let mut gs = Vec::new();
                controlled_unitary(&mut gs, u, &controls, n_ctrl as u32);
                let m = gates_unitary(&gs, n_ctrl as u32 + 1);
                let expect = matrices::multi_controlled(u, n_ctrl);
                assert!(
                    m.approx_eq(&expect, EPS),
                    "case {i} with {n_ctrl} controls: diff {}",
                    m.max_diff(&expect)
                );
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gate::{Gate, GateKind};
    use crate::linalg::Mat;
    use svsim_types::SvRng;

    const CASES: u64 = 48;

    /// Compound lowering stays exact for arbitrary rotation angles and
    /// operand orderings (the fixed-angle version lives in `tests`).
    #[test]
    fn lowering_exact_for_random_angles() {
        for seed in 0..CASES {
            let mut rng = SvRng::seed_from_u64(0xDEC0_0001 ^ seed);
            let angles: Vec<f64> = (0..3).map(|_| rng.range_f64(-6.3, 6.3)).collect();
            let parameterized = [
                GateKind::CRX,
                GateKind::CRY,
                GateKind::CRZ,
                GateKind::CU1,
                GateKind::CU3,
                GateKind::RXX,
                GateKind::RZZ,
            ];
            let kind = parameterized[rng.range_usize(0, parameterized.len())];
            let n = 3u32;
            // Random distinct operand order.
            let mut qs: Vec<u32> = (0..n).collect();
            rng.shuffle(&mut qs);
            let qubits = &qs[..kind.n_qubits()];
            let params: Vec<f64> = angles[..kind.n_params()].to_vec();
            let g = Gate::new(kind, qubits, &params).unwrap();
            let expect = gates_unitary(&[g], n);
            let lowered = lower_gate(&g);
            let got = gates_unitary(&lowered, n);
            assert!(
                got.approx_eq(&expect, 1e-9),
                "{kind} at {params:?} on {qubits:?}: diff {}",
                got.max_diff(&expect)
            );
        }
    }

    /// The generic multi-controlled lowering is exact for random 2x2
    /// unitaries built as U1 * RY * U1 products.
    #[test]
    fn controlled_unitary_exact_for_random_unitaries() {
        for seed in 0..CASES {
            let mut rng = SvRng::seed_from_u64(0xDEC0_0002 ^ seed);
            let alpha = rng.range_f64(-3.2, 3.2);
            let beta = rng.range_f64(-3.2, 3.2);
            let gamma = rng.range_f64(-3.2, 3.2);
            let n_ctrl = rng.range_usize(1, 4);
            let u = crate::matrices::u1(alpha)
                .matmul(&crate::matrices::ry(beta))
                .matmul(&crate::matrices::u1(gamma));
            let controls: Vec<u32> = (0..n_ctrl as u32).collect();
            let mut gs = Vec::new();
            controlled_unitary(&mut gs, &u, &controls, n_ctrl as u32);
            let got = gates_unitary(&gs, n_ctrl as u32 + 1);
            let expect = crate::matrices::multi_controlled(&u, n_ctrl);
            assert!(
                got.approx_eq(&expect, 1e-9),
                "diff {}",
                got.max_diff(&expect)
            );
        }
    }

    /// Inverting a gate then composing cancels exactly.
    #[test]
    fn inverse_cancels() {
        for seed in 0..CASES {
            let mut rng = SvRng::seed_from_u64(0xDEC0_0003 ^ seed);
            let angle = rng.range_f64(-6.0, 6.0);
            let invertible: Vec<GateKind> = GateKind::ALL
                .iter()
                .copied()
                .filter(|k| !matches!(k, GateKind::RCCX | GateKind::RC3X | GateKind::C3SQRTX))
                .collect();
            let kind = invertible[rng.range_usize(0, invertible.len())];
            let n = 5u32;
            let mut qs: Vec<u32> = (0..n).collect();
            rng.shuffle(&mut qs);
            let qubits = &qs[..kind.n_qubits()];
            let params: Vec<f64> = (0..kind.n_params())
                .map(|i| angle + i as f64 * 0.31)
                .collect();
            let g = Gate::new(kind, qubits, &params).unwrap();
            // Build the inverse through Circuit::inverse.
            let mut c = crate::Circuit::new(n);
            c.push_gate(g).unwrap();
            let inv = c.inverse().unwrap();
            let gates: Vec<Gate> = c.gates().chain(inv.gates()).copied().collect();
            let got = gates_unitary(&gates, n);
            assert!(
                got.approx_eq(&Mat::identity(1 << n), 1e-9),
                "{kind} inverse failed: diff {}",
                got.max_diff(&Mat::identity(1 << n))
            );
        }
    }
}
