//! Gate ISA and circuit intermediate representation for the SV-Sim
//! reproduction.
//!
//! This crate defines:
//! - the 34-gate OpenQASM ISA of the paper's Table 1 ([`gate`], [`matrices`]),
//! - the flat circuit queue shipped to backends ([`circuit`]),
//! - exact lowering of compound gates ([`decompose`]),
//! - Pauli strings and Pauli exponentials ([`pauli`]),
//! - the QIR-runtime gate set of Table 2 ([`qir`]),
//! - small dense linear algebra used as ground truth ([`linalg`]).

pub mod circuit;
pub mod decompose;
pub mod gate;
pub mod linalg;
pub mod matrices;
pub mod opt;
pub mod pauli;
pub mod qir;

pub use circuit::{Circuit, CircuitStats, Op};
pub use gate::{Gate, GateClass, GateKind};
pub use linalg::Mat;
pub use opt::{optimize, OptStats};
pub use pauli::{Pauli, PauliString};
pub use qir::QirBuilder;
