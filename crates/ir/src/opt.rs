//! Circuit optimization passes: adjacent-gate cancellation, single-qubit
//! run fusion, and identity elimination.
//!
//! The paper cites gate fusion as qsim's signature optimization and lists
//! "alternative optimizations" as future work (§5, §7); these passes are
//! the circuit-level counterpart that composes with SV-Sim's specialized
//! kernels: fewer, denser gates enter the compiled queue.

use crate::circuit::{Circuit, Op};
use crate::gate::{Gate, GateKind};
use crate::linalg::to_u3_params;
use crate::matrices::gate_matrix;

/// Result summary of an optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Gates before.
    pub before: usize,
    /// Gates after.
    pub after: usize,
    /// Inverse pairs cancelled.
    pub cancelled: usize,
    /// Single-qubit gates fused away.
    pub fused: usize,
    /// Identity(-like) gates dropped.
    pub dropped: usize,
}

/// True if `theta` is within `EPS` of an integer multiple of `period`.
fn angle_is_multiple_of(theta: f64, period: f64) -> bool {
    const EPS: f64 = 1e-12;
    let r = theta.rem_euclid(period);
    r < EPS || period - r < EPS
}

/// True if `g` acts as the identity up to a global phase (ID, or a
/// rotation by a multiple of its full period).
///
/// Periods differ by family: `RX/RY/RZ/RXX/RZZ(2πk)` equal `±I` (the sign
/// is a global phase, unobservable), and `U1/CU1(2πk)` are exactly `I`.
/// But `CRX/CRY/CRZ(2πk)` for odd `k` apply `−I` only on the controlled
/// subspace — a relative phase, NOT the identity — so the controlled
/// rotations need a full `4π` period.
fn is_identity_gate(g: &Gate) -> bool {
    use std::f64::consts::TAU;
    match g.kind() {
        GateKind::ID => true,
        GateKind::RX
        | GateKind::RY
        | GateKind::RZ
        | GateKind::U1
        | GateKind::CU1
        | GateKind::RXX
        | GateKind::RZZ => angle_is_multiple_of(g.params()[0], TAU),
        GateKind::CRX | GateKind::CRY | GateKind::CRZ => {
            angle_is_multiple_of(g.params()[0], 2.0 * TAU)
        }
        _ => false,
    }
}

/// True if `b` is the exact inverse of `a` (structural check: same
/// operands, inverse kinds/parameters).
fn is_inverse_pair(a: &Gate, b: &Gate) -> bool {
    if a.qubits() != b.qubits() {
        return false;
    }
    use GateKind::*;
    const EPS: f64 = 1e-12;
    match (a.kind(), b.kind()) {
        // Self-inverse gates.
        (x, y) if x == y => match x {
            ID | X | Y | Z | H | CX | CZ | CY | SWAP | CH | CCX | CSWAP | C3X | C4X => true,
            RX | RY | RZ | U1 | CRX | CRY | CRZ | CU1 | RXX | RZZ => {
                (a.params()[0] + b.params()[0]).abs() < EPS
            }
            _ => false,
        },
        (S, SDG) | (SDG, S) | (T, TDG) | (TDG, T) => true,
        _ => false,
    }
}

/// Fuse two single-qubit gates on the same qubit into one `U3` (plus an
/// unobservable global phase).
fn fuse_1q(first: &Gate, second: &Gate) -> Gate {
    let m = gate_matrix(second).matmul(&gate_matrix(first));
    let (_alpha, theta, phi, lambda) = to_u3_params(&m);
    Gate::new(GateKind::U3, first.qubits(), &[theta, phi, lambda]).expect("valid u3")
}

/// Optimize the unitary gate stream of a circuit. Measurement, reset,
/// barrier, and conditional ops act as optimization fences (gates never
/// move across them).
#[must_use]
pub fn optimize(circuit: &Circuit) -> (Circuit, OptStats) {
    let mut stats = OptStats {
        before: circuit.stats().gates,
        ..OptStats::default()
    };
    let mut out = Circuit::with_cbits(circuit.n_qubits(), circuit.n_cbits());
    // Pending unitary gates in the current fence-free region.
    let mut pending: Vec<Gate> = Vec::new();

    let flush = |pending: &mut Vec<Gate>, out: &mut Circuit| {
        for g in pending.drain(..) {
            out.push_gate(g).expect("validated upstream");
        }
    };

    let push_gate = |pending: &mut Vec<Gate>, g: Gate, stats: &mut OptStats| {
        if is_identity_gate(&g) {
            stats.dropped += 1;
            return;
        }
        // Look back past gates on disjoint qubits for a cancellation or
        // fusion partner (gates on disjoint supports commute).
        let mut k = pending.len();
        while k > 0 {
            let prev = &pending[k - 1];
            let overlap = prev.qubits().iter().any(|q| g.qubits().contains(q));
            if !overlap {
                k -= 1;
                continue;
            }
            if is_inverse_pair(prev, &g) {
                pending.remove(k - 1);
                stats.cancelled += 1;
                return;
            }
            // Fuse only exact same-qubit 1q pairs.
            if prev.kind().n_qubits() == 1
                && g.kind().n_qubits() == 1
                && prev.qubits() == g.qubits()
            {
                let fused = fuse_1q(prev, &g);
                stats.fused += 1;
                pending.remove(k - 1);
                // The fused U3(theta, phi, lambda) is the identity (up to
                // global phase) iff theta ~ 0 and phi + lambda ~ 0 mod 2pi.
                let p = fused.params();
                let tau = std::f64::consts::TAU;
                let phase = (p[1] + p[2]).rem_euclid(tau);
                if p[0].abs() < 1e-10 && (phase < 1e-10 || tau - phase < 1e-10) {
                    stats.dropped += 1;
                    return;
                }
                pending.push(fused);
                return;
            }
            break; // blocked by an overlapping, non-combinable gate
        }
        pending.push(g);
    };

    for op in circuit.ops() {
        match op {
            Op::Gate(g) => push_gate(&mut pending, *g, &mut stats),
            other => {
                flush(&mut pending, &mut out);
                match other {
                    Op::Measure { qubit, cbit } => out.measure(*qubit, *cbit).expect("validated"),
                    Op::Reset { qubit } => out.reset(*qubit).expect("validated"),
                    Op::Barrier(qs) => out.barrier(qs),
                    Op::IfEq {
                        creg_lo,
                        creg_len,
                        value,
                        gate,
                    } => out
                        .if_eq(*creg_lo, *creg_len, *value, *gate)
                        .expect("validated"),
                    Op::Gate(_) => unreachable!(),
                }
            }
        }
    }
    flush(&mut pending, &mut out);
    stats.after = out.stats().gates;
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(c: &Circuit) -> Vec<GateKind> {
        c.gates().map(Gate::kind).collect()
    }

    #[test]
    fn cancels_adjacent_inverses() {
        let mut c = Circuit::new(2);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::S, &[1], &[]).unwrap();
        c.apply(GateKind::SDG, &[1], &[]).unwrap();
        let (opt, stats) = optimize(&c);
        assert_eq!(opt.stats().gates, 0);
        assert_eq!(stats.cancelled, 3);
    }

    #[test]
    fn cancels_through_disjoint_gates() {
        // H(0), X(1), H(0): the H pair cancels across the disjoint X.
        let mut c = Circuit::new(2);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::X, &[1], &[]).unwrap();
        c.apply(GateKind::H, &[0], &[]).unwrap();
        let (opt, stats) = optimize(&c);
        assert_eq!(kinds(&opt), vec![GateKind::X]);
        assert_eq!(stats.cancelled, 1);
    }

    #[test]
    fn fuses_1q_runs() {
        let mut c = Circuit::new(1);
        for _ in 0..6 {
            c.apply(GateKind::T, &[0], &[]).unwrap();
            c.apply(GateKind::H, &[0], &[]).unwrap();
        }
        let (opt, stats) = optimize(&c);
        assert_eq!(opt.stats().gates, 1, "a 12-gate run fuses to one U3");
        assert!(stats.fused >= 10);
    }

    #[test]
    fn rotation_pairs_with_opposite_angles_cancel() {
        let mut c = Circuit::new(2);
        c.apply(GateKind::RZZ, &[0, 1], &[0.7]).unwrap();
        c.apply(GateKind::RZZ, &[0, 1], &[-0.7]).unwrap();
        c.apply(GateKind::CRX, &[0, 1], &[0.3]).unwrap();
        c.apply(GateKind::CRX, &[0, 1], &[-0.3]).unwrap();
        let (opt, _) = optimize(&c);
        assert_eq!(opt.stats().gates, 0);
    }

    #[test]
    fn identities_dropped() {
        let mut c = Circuit::new(1);
        c.apply(GateKind::ID, &[0], &[]).unwrap();
        c.apply(GateKind::RZ, &[0], &[0.0]).unwrap();
        c.apply(GateKind::X, &[0], &[]).unwrap();
        let (opt, stats) = optimize(&c);
        assert_eq!(kinds(&opt), vec![GateKind::X]);
        assert_eq!(stats.dropped, 2);
    }

    #[test]
    fn full_period_rotations_dropped() {
        use std::f64::consts::TAU;
        // RZ(4π), RX(2π), RZZ(−2π), U1(2π) are all identity up to global
        // phase; CRZ needs the doubled 4π period (CRZ(2π) = controlled(−I)
        // imprints a relative phase and must survive).
        let mut c = Circuit::new(2);
        c.apply(GateKind::RZ, &[0], &[2.0 * TAU]).unwrap();
        c.apply(GateKind::RX, &[1], &[TAU]).unwrap();
        c.apply(GateKind::RZZ, &[0, 1], &[-TAU]).unwrap();
        c.apply(GateKind::U1, &[0], &[TAU]).unwrap();
        c.apply(GateKind::CRZ, &[0, 1], &[2.0 * TAU]).unwrap();
        c.apply(GateKind::CRZ, &[0, 1], &[TAU]).unwrap();
        let (opt, stats) = optimize(&c);
        assert_eq!(stats.dropped, 5);
        assert_eq!(kinds(&opt), vec![GateKind::CRZ]);
        assert_eq!(opt.gates().next().unwrap().params()[0], TAU);
    }

    #[test]
    fn full_period_drops_preserve_the_unitary() {
        use std::f64::consts::TAU;
        // Optimize a circuit mixing full-period rotations into real work
        // and check the dense unitary is unchanged up to global phase —
        // including the CRZ(2π) case that must NOT be treated as identity.
        let mut c = Circuit::new(3);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::RZ, &[1], &[2.0 * TAU]).unwrap();
        c.apply(GateKind::CX, &[0, 2], &[]).unwrap();
        c.apply(GateKind::CRZ, &[0, 1], &[TAU]).unwrap();
        c.apply(GateKind::RXX, &[1, 2], &[-TAU]).unwrap();
        c.apply(GateKind::T, &[2], &[]).unwrap();
        c.apply(GateKind::CRY, &[2, 0], &[2.0 * TAU]).unwrap();
        let (opt, stats) = optimize(&c);
        assert_eq!(stats.dropped, 3, "RZ(4π), RXX(−2π), CRY(4π)");
        let orig: Vec<Gate> = c.gates().copied().collect();
        let kept: Vec<Gate> = opt.gates().copied().collect();
        let u1 = crate::decompose::gates_unitary(&orig, 3);
        let u2 = crate::decompose::gates_unitary(&kept, 3);
        assert!(
            u2.approx_eq_up_to_phase(&u1, 1e-9),
            "full-period drops changed the unitary (diff {})",
            u2.max_diff(&u1)
        );
    }

    #[test]
    fn fences_block_motion() {
        let mut c = Circuit::with_cbits(1, 1);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.measure(0, 0).unwrap();
        c.apply(GateKind::H, &[0], &[]).unwrap();
        let (opt, stats) = optimize(&c);
        assert_eq!(opt.stats().gates, 2, "H pair straddles a measurement");
        assert_eq!(stats.cancelled, 0);
    }

    #[test]
    fn optimized_circuits_are_equivalent() {
        use svsim_types::SvRng;
        let mut rng = SvRng::seed_from_u64(31);
        for trial in 0..10 {
            // Random 1q+CX circuit with deliberate redundancy.
            let mut c = Circuit::new(4);
            for _ in 0..40 {
                match rng.range_usize(0, 5) {
                    0 => {
                        let q = rng.range_usize(0, 4) as u32;
                        c.apply(GateKind::H, &[q], &[]).unwrap();
                        if rng.bernoulli(0.5) {
                            c.apply(GateKind::H, &[q], &[]).unwrap();
                        }
                    }
                    1 => {
                        let q = rng.range_usize(0, 4) as u32;
                        c.apply(GateKind::RZ, &[q], &[rng.range_f64(-1.0, 1.0)])
                            .unwrap();
                    }
                    2 => {
                        let a = rng.range_usize(0, 4) as u32;
                        let b = (a + 1 + rng.range_usize(0, 3) as u32) % 4;
                        c.apply(GateKind::CX, &[a, b], &[]).unwrap();
                    }
                    3 => {
                        let q = rng.range_usize(0, 4) as u32;
                        c.apply(GateKind::T, &[q], &[]).unwrap();
                    }
                    _ => {
                        let q = rng.range_usize(0, 4) as u32;
                        c.apply(GateKind::U3, &[q], &[0.3, 0.1, -0.4]).unwrap();
                    }
                }
            }
            let (opt, stats) = optimize(&c);
            assert!(stats.after <= stats.before);
            // Equivalence up to global phase via the dense unitaries.
            let orig_gates: Vec<Gate> = c.gates().copied().collect();
            let opt_gates: Vec<Gate> = opt.gates().copied().collect();
            let u1 = crate::decompose::gates_unitary(&orig_gates, 4);
            let u2 = crate::decompose::gates_unitary(&opt_gates, 4);
            assert!(
                u2.approx_eq_up_to_phase(&u1, 1e-9),
                "trial {trial}: optimization changed the unitary (diff {})",
                u2.max_diff(&u1)
            );
        }
    }
}
