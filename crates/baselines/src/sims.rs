//! The three baseline simulators of the Figure 14 comparison.
//!
//! Each is an independent implementation (no shared kernels with
//! `svsim-core`), standing in for one of the frameworks the paper compares
//! against:
//!
//! - [`GenericMatrixSim`] — Aer-style: every gate is a dense unitary
//!   applied through the generalized 1-/2-/k-qubit update, with the matrix
//!   cached at circuit load.
//! - [`InterpreterSim`] — Cirq-simulator-style: an interpretive loop that
//!   re-parses each gate and rebuilds its matrix at *every* application.
//! - [`FusionSim`] — qsim-style: greedy fusion of adjacent single-qubit
//!   gates (and absorption into neighbouring two-qubit gates) before a
//!   generic dense pass.

use crate::dense::{apply_1q, apply_2q, apply_kq};
use svsim_ir::{matrices, Circuit, Gate, Mat};
use svsim_types::{Complex64, SvError, SvResult};

/// Common result: final amplitudes.
pub trait BaselineSim {
    /// Execute `circuit` from `|0...0>` and return the final state.
    ///
    /// # Errors
    /// Unsupported ops (baselines handle unitary circuits only).
    fn run(&mut self, circuit: &Circuit) -> SvResult<Vec<Complex64>>;

    /// Simulator display name.
    fn name(&self) -> &'static str;
}

fn zero_state(n: u32) -> Vec<Complex64> {
    let mut s = vec![Complex64::ZERO; 1usize << n];
    s[0] = Complex64::ONE;
    s
}

fn unitary_gates(circuit: &Circuit) -> SvResult<Vec<Gate>> {
    if circuit
        .ops()
        .iter()
        .any(|op| !matches!(op, svsim_ir::Op::Gate(_) | svsim_ir::Op::Barrier(_)))
    {
        return Err(SvError::InvalidConfig(
            "baseline simulators support unitary circuits only".into(),
        ));
    }
    Ok(circuit.gates().copied().collect())
}

fn apply_dense(state: &mut [Complex64], m: &Mat, qubits: &[u32]) {
    match qubits.len() {
        1 => apply_1q(state, m, qubits[0]),
        2 => apply_2q(state, m, qubits[0], qubits[1]),
        _ => apply_kq(state, m, qubits),
    }
}

/// Aer-style generalized-matrix simulator: matrices resolved once at load,
/// applied densely.
#[derive(Debug, Default)]
pub struct GenericMatrixSim;

impl BaselineSim for GenericMatrixSim {
    fn run(&mut self, circuit: &Circuit) -> SvResult<Vec<Complex64>> {
        let gates = unitary_gates(circuit)?;
        // Load step: precompute every gate's dense matrix.
        let loaded: Vec<(Mat, Vec<u32>)> = gates
            .iter()
            .map(|g| (matrices::gate_matrix(g), g.qubits().to_vec()))
            .collect();
        let mut state = zero_state(circuit.n_qubits());
        for (m, qubits) in &loaded {
            apply_dense(&mut state, m, qubits);
        }
        Ok(state)
    }

    fn name(&self) -> &'static str {
        "generic-matrix (Aer-style)"
    }
}

/// Interpretive simulator: parses and rebuilds each gate's matrix at every
/// execution — the runtime-dispatch overhead the paper's fn-pointer design
/// eliminates.
#[derive(Debug, Default)]
pub struct InterpreterSim;

impl BaselineSim for InterpreterSim {
    fn run(&mut self, circuit: &Circuit) -> SvResult<Vec<Complex64>> {
        let gates = unitary_gates(circuit)?;
        let mut state = zero_state(circuit.n_qubits());
        for g in &gates {
            // "Parse": branch on the mnemonic string, as an interpreter
            // dispatching from a textual IR would.
            let kind = svsim_ir::GateKind::from_mnemonic(g.kind().mnemonic())
                .ok_or_else(|| SvError::Undefined(g.kind().mnemonic().into()))?;
            let rebuilt = Gate::new(kind, g.qubits(), g.params())?;
            let m = matrices::gate_matrix(&rebuilt);
            apply_dense(&mut state, &m, rebuilt.qubits());
        }
        Ok(state)
    }

    fn name(&self) -> &'static str {
        "interpreter (Cirq-style)"
    }
}

/// qsim-style gate fusion: consecutive single-qubit gates on the same qubit
/// collapse into one dense 2×2; runs ending at a two-qubit gate are
/// absorbed into its 4×4.
#[derive(Debug, Default)]
pub struct FusionSim;

/// A fused operation ready for dense application.
#[derive(Debug)]
pub enum Fused {
    /// Dense 2x2 on one qubit.
    One(Mat, u32),
    /// Dense 4x4 on an ordered pair.
    Two(Mat, u32, u32),
    /// Dense 2^k on arbitrary operands.
    Many(Mat, Vec<u32>),
}

/// Fuse a gate stream (exposed for tests and the ablation bench).
#[must_use]
pub fn fuse(gates: &[Gate]) -> Vec<Fused> {
    let mut out: Vec<Fused> = Vec::new();
    for g in gates {
        let m = matrices::gate_matrix(g);
        let qs = g.qubits();
        match qs.len() {
            1 => {
                let q = qs[0];
                // Try to merge into the previous op touching only this qubit.
                if let Some(Fused::One(prev, pq)) = out.last_mut() {
                    if *pq == q {
                        *prev = m.matmul(prev);
                        continue;
                    }
                }
                if let Some(Fused::Two(prev, a, b)) = out.last_mut() {
                    if *a == q || *b == q {
                        // Lift the 2x2 to the pair's 4x4 and multiply in.
                        let lifted = lift_1q_to_pair(&m, q, *a, *b);
                        *prev = lifted.matmul(prev);
                        continue;
                    }
                }
                out.push(Fused::One(m, q));
            }
            2 => {
                let (a, b) = (qs[0], qs[1]);
                // Absorb an immediately preceding 1q gate on a or b.
                if let Some(Fused::One(prev, pq)) = out.last() {
                    if *pq == a || *pq == b {
                        let lifted = lift_1q_to_pair(prev, *pq, a, b);
                        let combined = m.matmul(&lifted);
                        out.pop();
                        out.push(Fused::Two(combined, a, b));
                        continue;
                    }
                }
                if let Some(Fused::Two(prev, pa, pb)) = out.last_mut() {
                    if (*pa == a && *pb == b) || (*pa == b && *pb == a) {
                        let aligned = if *pa == a {
                            m
                        } else {
                            // Reindex: swap local bits of m.
                            permute_4x4(&m)
                        };
                        *prev = aligned.matmul(prev);
                        continue;
                    }
                }
                out.push(Fused::Two(m, a, b));
            }
            _ => out.push(Fused::Many(m, qs.to_vec())),
        }
    }
    out
}

/// Embed a 2×2 on `q` into the 4×4 local space of the ordered pair `(a, b)`.
fn lift_1q_to_pair(m: &Mat, q: u32, a: u32, b: u32) -> Mat {
    let id = Mat::identity(2);
    if q == a {
        // q is local bit 0: I (x) m in kron convention (left = high bit).
        id.kron(m)
    } else {
        debug_assert_eq!(q, b);
        m.kron(&id)
    }
}

/// Swap the two local bits of a 4×4 matrix.
fn permute_4x4(m: &Mat) -> Mat {
    let perm = [0usize, 2, 1, 3];
    let mut out = Mat::zeros(4);
    for i in 0..4 {
        for j in 0..4 {
            out[(perm[i], perm[j])] = m[(i, j)];
        }
    }
    out
}

impl BaselineSim for FusionSim {
    fn run(&mut self, circuit: &Circuit) -> SvResult<Vec<Complex64>> {
        let gates = unitary_gates(circuit)?;
        let fused = fuse(&gates);
        let mut state = zero_state(circuit.n_qubits());
        for f in &fused {
            match f {
                Fused::One(m, q) => apply_1q(&mut state, m, *q),
                Fused::Two(m, a, b) => apply_2q(&mut state, m, *a, *b),
                Fused::Many(m, qs) => apply_kq(&mut state, m, qs),
            }
        }
        Ok(state)
    }

    fn name(&self) -> &'static str {
        "fusion (qsim-style)"
    }
}

/// Number of dense applications after fusion (for reporting).
#[must_use]
pub fn fused_op_count(circuit: &Circuit) -> usize {
    let gates: Vec<Gate> = circuit.gates().copied().collect();
    fuse(&gates).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{SimConfig, Simulator};
    use svsim_ir::GateKind;
    use svsim_workloads::random::random_circuit;

    fn reference_state(c: &Circuit) -> Vec<Complex64> {
        let mut sim = Simulator::new(c.n_qubits(), SimConfig::single_device()).unwrap();
        sim.run(c).unwrap();
        sim.amplitudes()
    }

    fn max_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn all_baselines_match_core_on_random_circuits() {
        for seed in 0..4u64 {
            let c = random_circuit(6, 80, seed);
            let reference = reference_state(&c);
            let sims: Vec<Box<dyn BaselineSim>> = vec![
                Box::new(GenericMatrixSim),
                Box::new(InterpreterSim),
                Box::new(FusionSim),
            ];
            for mut sim in sims {
                let got = sim.run(&c).unwrap();
                assert!(
                    max_diff(&got, &reference) < 1e-9,
                    "{} diverged on seed {seed}",
                    sim.name()
                );
            }
        }
    }

    #[test]
    fn fusion_reduces_op_count() {
        let mut c = Circuit::new(3);
        // Five 1q gates on the same qubit -> 1 fused op.
        for _ in 0..5 {
            c.apply(GateKind::H, &[0], &[]).unwrap();
            c.apply(GateKind::T, &[0], &[]).unwrap();
        }
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::RZ, &[1], &[0.3]).unwrap(); // absorbed into the CX
        assert!(fused_op_count(&c) <= 2, "got {}", fused_op_count(&c));
    }

    #[test]
    fn fusion_respects_commutation_boundaries() {
        // Gates on different qubits must not merge.
        let mut c = Circuit::new(2);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::H, &[1], &[]).unwrap();
        assert_eq!(fused_op_count(&c), 2);
    }

    #[test]
    fn baselines_reject_measurement() {
        let mut c = Circuit::with_cbits(2, 1);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.measure(0, 0).unwrap();
        assert!(GenericMatrixSim.run(&c).is_err());
    }

    #[test]
    fn fusion_handles_table4_style_circuit() {
        let c = svsim_workloads::algos::qft(6).unwrap();
        let reference = reference_state(&c);
        let got = FusionSim.run(&c).unwrap();
        assert!(max_diff(&got, &reference) < 1e-9);
        assert!(fused_op_count(&c) < c.stats().gates, "QFT has fusable runs");
    }
}
