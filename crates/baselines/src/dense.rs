//! Dense-matrix state updates over interleaved complex storage.
//!
//! The baseline simulators deliberately use the *generalized* gate
//! application scheme the paper attributes to Qiskit Aer and qsim: every
//! gate becomes a dense 2×2 / 4×4 (or `2^k`) unitary applied to an
//! array-of-structs amplitude vector. No gate specialization, no SoA split.

use svsim_ir::Mat;
use svsim_types::bits::{insert_zero_bit, insert_zero_bits};
use svsim_types::Complex64;

/// Apply a dense 2×2 unitary on `qubit`.
pub fn apply_1q(state: &mut [Complex64], m: &Mat, qubit: u32) {
    debug_assert_eq!(m.dim(), 2);
    let half = state.len() as u64 / 2;
    let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
    for i in 0..half {
        let i0 = insert_zero_bit(i, qubit) as usize;
        let i1 = i0 | (1usize << qubit);
        let a0 = state[i0];
        let a1 = state[i1];
        state[i0] = m00 * a0 + m01 * a1;
        state[i1] = m10 * a0 + m11 * a1;
    }
}

/// Apply a dense 4×4 unitary on `(q0, q1)` where `q0` is local bit 0.
pub fn apply_2q(state: &mut [Complex64], m: &Mat, q0: u32, q1: u32) {
    debug_assert_eq!(m.dim(), 4);
    let quarter = state.len() as u64 / 4;
    let mut sorted = [q0, q1];
    sorted.sort_unstable();
    for i in 0..quarter {
        let base = insert_zero_bits(i, &sorted);
        let idx = [
            base as usize,
            (base | (1 << q0)) as usize,
            (base | (1 << q1)) as usize,
            (base | (1 << q0) | (1 << q1)) as usize,
        ];
        let amps = [state[idx[0]], state[idx[1]], state[idx[2]], state[idx[3]]];
        for (row, &ix) in idx.iter().enumerate() {
            let mut acc = Complex64::ZERO;
            for (col, &a) in amps.iter().enumerate() {
                acc += m[(row, col)] * a;
            }
            state[ix] = acc;
        }
    }
}

/// Apply a dense `2^k` unitary over arbitrary operands (`qubits[0]` is
/// local bit 0). Used for the 3+-qubit compound gates.
pub fn apply_kq(state: &mut [Complex64], m: &Mat, qubits: &[u32]) {
    m.apply_to_state(state, qubits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_ir::{matrices, Gate, GateKind};

    fn zero_state(n: u32) -> Vec<Complex64> {
        let mut s = vec![Complex64::ZERO; 1 << n];
        s[0] = Complex64::ONE;
        s
    }

    #[test]
    fn x_and_h() {
        let mut s = zero_state(3);
        apply_1q(&mut s, &matrices::single_qubit(GateKind::X, &[]), 1);
        assert_eq!(s[2], Complex64::ONE);
        apply_1q(&mut s, &matrices::single_qubit(GateKind::H, &[]), 0);
        assert!((s[2].re - svsim_types::S2I).abs() < 1e-15);
        assert!((s[3].re - svsim_types::S2I).abs() < 1e-15);
    }

    #[test]
    fn cx_both_orientations() {
        let cx = matrices::gate_matrix(&Gate::new(GateKind::CX, &[0, 1], &[]).unwrap());
        // control q2, target q0: |100> -> |101>
        let mut s = zero_state(3);
        s[0] = Complex64::ZERO;
        s[0b100] = Complex64::ONE;
        apply_2q(&mut s, &cx, 2, 0);
        assert_eq!(s[0b101], Complex64::ONE);
    }

    #[test]
    fn kq_ccx() {
        let ccx = matrices::gate_matrix(&Gate::new(GateKind::CCX, &[0, 1, 2], &[]).unwrap());
        let mut s = zero_state(3);
        s[0] = Complex64::ZERO;
        s[0b011] = Complex64::ONE;
        apply_kq(&mut s, &ccx, &[0, 1, 2]);
        assert_eq!(s[0b111], Complex64::ONE);
    }

    #[test]
    fn norm_preserved_under_rotations() {
        let mut s = zero_state(4);
        apply_1q(&mut s, &matrices::u3(0.3, 1.2, -0.4), 2);
        apply_2q(&mut s, &matrices::rxx(0.7), 0, 3);
        let norm: f64 = s.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }
}
