//! Baseline state-vector simulators for the Figure 14 comparison.
//!
//! Independent implementations of the generalized simulation schemes of the
//! frameworks the paper benchmarks against (Qiskit Aer, Cirq's simulator,
//! TFQ's qsim). All are cross-validated against `svsim-core` for exact
//! state agreement; the performance gap between them and the specialized
//! fn-pointer kernels is the measured content of Figure 14.

pub mod dense;
pub mod sims;

pub use sims::{fused_op_count, BaselineSim, FusionSim, GenericMatrixSim, InterpreterSim};
