//! Reproduce the paper's Tables 1-4.
//!
//! Usage: `cargo run -p svsim-bench --bin tables [-- table1|table2|table3|table4]`
//! (no argument prints all four).

use svsim_bench::print_table;
use svsim_ir::{GateClass, GateKind};
use svsim_perfmodel::table3;
use svsim_workloads::{large_suite, medium_suite};

fn table1() {
    let rows: Vec<Vec<String>> = GateKind::ALL
        .iter()
        .map(|k| {
            vec![
                k.mnemonic().to_uppercase(),
                format!("{:?}", k.class()),
                k.n_qubits().to_string(),
                k.n_params().to_string(),
                if k.is_diagonal() { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1: OpenQASM gate set implemented by the SV-Sim ISA",
        &["Gate", "Class", "Qubits", "Params", "Diagonal"],
        &rows,
    );
    let basic = GateKind::ALL
        .iter()
        .filter(|k| k.class() == GateClass::Basic)
        .count();
    let standard = GateKind::ALL
        .iter()
        .filter(|k| k.class() == GateClass::Standard)
        .count();
    let compound = GateKind::ALL
        .iter()
        .filter(|k| k.class() == GateClass::Compound)
        .count();
    println!("totals: {basic} basic + {standard} standard + {compound} compound = 34 gates");
}

fn table2() {
    let rows: Vec<Vec<String>> = [
        ("X", "Pauli X"),
        ("Y", "Pauli Y"),
        ("Z", "Pauli Z"),
        ("H", "Hadamard"),
        ("S", "sqrt(Z)"),
        ("T", "sqrt(S)"),
        ("R", "unified rotation exp(-i theta P / 2)"),
        ("Exp", "Pauli-string exponential exp(i theta P)"),
        ("ControlledX", "multi-controlled X"),
        ("ControlledY", "multi-controlled Y"),
        ("ControlledZ", "multi-controlled Z"),
        ("ControlledH", "multi-controlled H"),
        ("ControlledS", "multi-controlled S"),
        ("ControlledT", "multi-controlled T"),
        ("ControlledR", "multi-controlled R"),
        ("ControlledExp", "multi-controlled Exp"),
        ("AdjointT", "T dagger"),
        ("AdjointS", "S dagger"),
        ("ControlledAdjointS", "multi-controlled S dagger"),
        ("ControlledAdjointT", "multi-controlled T dagger"),
    ]
    .iter()
    .map(|(name, desc)| {
        vec![
            (*name).to_string(),
            (*desc).to_string(),
            "QirBuilder".into(),
        ]
    })
    .collect();
    print_table(
        "Table 2: QIR-runtime gate set (implemented in svsim-ir::qir)",
        &["Operation", "Meaning", "Entry point"],
        &rows,
    );
}

fn table3_print() {
    let rows: Vec<Vec<String>> = table3()
        .iter()
        .map(|p| {
            vec![
                p.system.to_string(),
                p.cpu.to_string(),
                p.accelerator.unwrap_or("-").to_string(),
                p.interconnect.to_string(),
                p.nodes.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 3: evaluation platforms (modeled; see DESIGN.md substitutions)",
        &["System", "CPU", "Accelerator", "Interconnect", "Nodes"],
        &rows,
    );
}

fn table4() {
    let mut rows = Vec::new();
    for spec in medium_suite().iter().chain(large_suite().iter()) {
        let c = spec.circuit().expect("workloads build");
        let s = c.stats();
        rows.push(vec![
            spec.name.to_string(),
            spec.description.to_string(),
            format!("{} / {}", c.n_qubits(), spec.paper_qubits),
            format!("{} / {}", s.gates, spec.paper_gates),
            format!("{} / {}", s.cx, spec.paper_cx),
            format!("{:?}", spec.category),
        ]);
    }
    print_table(
        "Table 4: quantum routines (ours / paper)",
        &[
            "Routine",
            "Description",
            "Qubits",
            "Gates",
            "CX",
            "Category",
        ],
        &rows,
    );
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("table1") => table1(),
        Some("table2") => table2(),
        Some("table3") => table3_print(),
        Some("table4") => table4(),
        _ => {
            table1();
            table2();
            table3_print();
            table4();
        }
    }
}
