//! Figure 9: scale-up on the V100 DGX-2 (GPUDirect peer access over
//! NVSwitch), 1 to 16 GPUs. Paper: strong scaling for n>=13, slight lag
//! from 1 to 2 GPUs at n=11-12.

fn main() {
    svsim_bench::scaleup_figure(
        "Figure 9: V100 DGX-2 scale-up, relative latency (1.00 = 1 GPU)",
        &svsim_perfmodel::devices::V100,
        &svsim_perfmodel::interconnects::NVSWITCH,
        &[1, 2, 4, 8, 16],
    );
    println!("\npaper shape: strong scaling at n>=13; no gain (slight lag) at n=11-12.");
}
