//! The paper's headline result: "using SV-Sim, the 16-GPU DGX-2 machine
//! can simulate a 24-qubit 2.3M-gate VQE circuit in 3.5 mins" (196 s).
//!
//! We price one UCCSD-VQE iteration at 24 qubits on the modeled DGX-2.

use svsim_perfmodel::{devices, interconnects, scale_up};
use svsim_workloads::{uccsd_gate_count, UccsdAnsatz};

fn main() {
    let n = 24u32;
    let ansatz = UccsdAnsatz::new(n, n / 2);
    let gates = uccsd_gate_count(n, n / 2);
    println!(
        "24-qubit half-filling UCCSD: {} parameters, {gates} gates per iteration",
        ansatz.n_params()
    );

    // Pricing uses a representative compiled gate mix. Materializing 1M+
    // gates is wasteful; instead compile one single and one double
    // excitation and scale by the term counts.
    let singles = ansatz.singles().len() as f64;
    let doubles = ansatz.doubles().len() as f64;
    let probe_s = {
        let mut a = svsim_ir::Circuit::new(n);
        let s =
            svsim_ir::pauli::PauliString::parse(&("YZZZZZZZZZZZX".to_owned() + &"I".repeat(11)))
                .unwrap();
        for g in svsim_ir::pauli::exp_pauli_gates(0.1, &s) {
            a.push_gate(g).unwrap();
        }
        a
    };
    let probe_d = {
        let mut a = svsim_ir::Circuit::new(n);
        let s =
            svsim_ir::pauli::PauliString::parse(&("XXZZZZZZZZZZYX".to_owned() + &"I".repeat(10)))
                .unwrap();
        for g in svsim_ir::pauli::exp_pauli_gates(0.1, &s) {
            a.push_gate(g).unwrap();
        }
        a
    };
    let compiled_s = svsim_perfmodel::compile_for_estimate(&probe_s);
    let compiled_d = svsim_perfmodel::compile_for_estimate(&probe_d);
    for gpus in [1u64, 4, 16] {
        let t_single = scale_up(
            &devices::V100,
            &interconnects::NVSWITCH,
            &compiled_s,
            n,
            gpus,
        )
        .total();
        let t_double = scale_up(
            &devices::V100,
            &interconnects::NVSWITCH,
            &compiled_d,
            n,
            gpus,
        )
        .total();
        // 2 Pauli terms per single, 8 per double; probes hold 2 and 8 resp.
        let total = singles * t_single + doubles * t_double;
        println!(
            "modeled {gpus:>2}x V100 (DGX-2): one VQE iteration = {:.0} s",
            total
        );
    }
    println!("paper (measured on DGX-2 hardware): 196 s on 16 GPUs");
}
