//! Figure 12: scale-out on Summit POWER9 CPUs over OpenSHMEM,
//! 32 to 1024 PEs (32 per node). Paper: <3x total gain — communication
//! bound; visible drag when first crossing the node boundary.

fn main() {
    svsim_bench::scaleout_figure(
        "Figure 12: Summit P9 + OpenSHMEM scale-out, relative latency (1.00 = 32 PEs)",
        &svsim_perfmodel::devices::POWER9,
        &svsim_perfmodel::interconnects::SUMMIT_IB,
        &[32, 64, 128, 256, 512, 1024],
        32,
        60.0,
    );
    println!("\npaper shape: limited (<3x) gains from 32 to 1024 cores; all-to-all bound.");
}
