//! Figure 8: scale-up on an ALCF Theta Xeon Phi 7230 node (AVX-512),
//! 1 to 64 cores. Paper: sweet spot at 2-4 cores (constrained 2D mesh).

fn main() {
    svsim_bench::scaleup_figure(
        "Figure 8: Xeon Phi 7230 scale-up, relative latency (1.00 = 1 core)",
        &svsim_perfmodel::devices::PHI_7230_AVX512,
        &svsim_perfmodel::interconnects::KNL_MESH,
        &[1, 2, 4, 8, 16, 32, 64],
    );
    println!("\npaper shape: optimum at very few cores; the on-die mesh congests early.");
}
