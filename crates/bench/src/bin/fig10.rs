//! Figure 10: scale-up on the DGX-A100, 1 to 8 GPUs.

fn main() {
    svsim_bench::scaleup_figure(
        "Figure 10: DGX-A100 scale-up, relative latency (1.00 = 1 GPU)",
        &svsim_perfmodel::devices::A100,
        &svsim_perfmodel::interconnects::NVSWITCH,
        &[1, 2, 4, 8],
    );
    println!("\npaper shape: similar trend to DGX-2.");
}
