//! Measured single-device wall times for the Table 4 *large* suite
//! (n = 16-23) on this machine — the functional-simulation counterpart of
//! the modeled Figs. 12-13 inputs.

use svsim_bench::{fmt_time, print_table};
use svsim_core::{SimConfig, Simulator};
use svsim_workloads::large_suite;

fn main() {
    let mut rows = Vec::new();
    for spec in large_suite() {
        let circuit = {
            // Unitary part only (timings without collapse).
            let c = spec.circuit().expect("workload builds");
            let mut out = svsim_ir::Circuit::new(c.n_qubits());
            for op in c.ops() {
                if let svsim_ir::Op::Gate(g) = op {
                    out.push_gate(*g).unwrap();
                }
            }
            out
        };
        let start = std::time::Instant::now();
        let mut sim =
            Simulator::new(circuit.n_qubits(), SimConfig::single_device()).expect("fits memory");
        sim.run(&circuit).expect("unitary circuit");
        let elapsed = start.elapsed().as_secs_f64();
        let norm = sim.state().norm_sqr();
        rows.push(vec![
            spec.name.to_string(),
            circuit.n_qubits().to_string(),
            circuit.stats().gates.to_string(),
            fmt_time(elapsed),
            format!("{:.2e}", (norm - 1.0).abs()),
        ]);
        drop(sim); // release the 2^n state before the next, larger one
    }
    print_table(
        "Large suite, measured single-core wall time",
        &["circuit", "qubits", "gates", "time", "norm err"],
        &rows,
    );
}
