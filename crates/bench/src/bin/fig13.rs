//! Figure 13: scale-out on Summit V100 GPUs over NVSHMEM, 4 to 1024 GPUs
//! (modeled 4 GPUs per IB endpoint). Paper: strong scaling throughout.

fn main() {
    svsim_bench::scaleout_figure(
        "Figure 13: Summit V100 + NVSHMEM scale-out, relative latency (1.00 = 4 GPUs)",
        &svsim_perfmodel::devices::V100,
        &svsim_perfmodel::interconnects::SUMMIT_IB,
        &[4, 16, 64, 256, 1024],
        4,
        130.0,
    );
    println!("\npaper shape: strong scaling with the GPU count; fabric limits the tail.");
}
