//! Figure 17: UCCSD-VQE gate volume vs qubit count (paper: ~600 gates at
//! 5-6 qubits up to 2.3M at 24 qubits).

use svsim_bench::print_table;
use svsim_workloads::{uccsd_gate_count, UccsdAnsatz};

fn main() {
    let mut rows = Vec::new();
    for n in 4..=24u32 {
        let e = n / 2;
        let ansatz = UccsdAnsatz::new(n, e);
        rows.push(vec![
            n.to_string(),
            e.to_string(),
            ansatz.n_params().to_string(),
            uccsd_gate_count(n, e).to_string(),
        ]);
    }
    print_table(
        "Figure 17: UCCSD gates per VQE iteration vs qubits (half filling)",
        &["qubits", "electrons", "parameters", "gates"],
        &rows,
    );
    println!("\npaper shape: hundreds of gates at 5-6 qubits growing to millions at 24.");
}
