//! Communication-model ablation: fine-grained one-sided SHMEM (the paper's
//! contribution) vs CPU-managed coarse MPI (the prior art it replaces).
//!
//! Both pipelines are priced on identical per-gate traffic; the MPI model
//! adds the pack/stage/coarse-message/relaunch costs of §1-§2.

use svsim_bench::print_table;
use svsim_perfmodel::{compile_for_estimate, devices, interconnects, mpi_latency, scale_up};
use svsim_workloads::medium_suite;

fn main() {
    for (label, dev, ic) in [
        (
            "V100 GPUs over NVSwitch (16 workers)",
            &devices::V100,
            &interconnects::NVSWITCH,
        ),
        (
            "POWER9 cores over InfiniBand (16 workers)",
            &devices::POWER9,
            &interconnects::SUMMIT_IB,
        ),
    ] {
        let mut rows = Vec::new();
        for spec in medium_suite() {
            let c = spec.circuit().expect("workload builds");
            let compiled = compile_for_estimate(&c);
            let n = c.n_qubits();
            let shmem = scale_up(dev, ic, &compiled, n, 16);
            let mpi = mpi_latency(dev, ic, &compiled, n, 16);
            rows.push(vec![
                spec.name.to_string(),
                svsim_bench::fmt_time(shmem.total()),
                svsim_bench::fmt_time(mpi.total()),
                format!("{:.1}x", mpi.total() / shmem.total()),
                format!(
                    "{:.0}% / {:.0}%",
                    100.0 * shmem.comm_s / shmem.total(),
                    100.0 * mpi.comm_s / mpi.total()
                ),
            ]);
        }
        print_table(
            &format!("Communication ablation: SHMEM vs MPI — {label}"),
            &[
                "circuit",
                "SHMEM",
                "MPI",
                "MPI/SHMEM",
                "comm share (SHMEM/MPI)",
            ],
            &rows,
        );
    }
    println!(
        "\nthe paper's motivating claim: device-initiated fine-grained one-sided\n\
         communication removes the pack/stage/relaunch pipeline that dominates\n\
         CPU-managed MPI for this access pattern."
    );
}
