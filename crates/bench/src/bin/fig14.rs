//! Figure 14: **measured** simulation-latency comparison of SV-Sim against
//! the baseline simulator designs (Qiskit-Aer-style generalized matrices,
//! Cirq-style interpretation, qsim-style fusion), all running on this
//! machine.
//!
//! The paper's claim: the specialized fn-pointer design is ~10x faster on
//! average than the framework simulators. Here everything runs on one CPU
//! core, so the ratio isolates exactly the software mechanisms the paper
//! credits: gate specialization + preloaded dispatch vs. dense generalized
//! updates and runtime parsing.

use svsim_baselines::{BaselineSim, FusionSim, GenericMatrixSim, InterpreterSim};
use svsim_bench::{fmt_time, print_table, time_median};
use svsim_core::{DispatchMode, SimConfig, Simulator};
use svsim_ir::Circuit;
use svsim_workloads::medium_suite;

fn strip_measurements(c: &Circuit) -> Circuit {
    let mut out = Circuit::new(c.n_qubits());
    for op in c.ops() {
        if let svsim_ir::Op::Gate(g) = op {
            out.push_gate(*g).expect("validated");
        }
    }
    out
}

fn main() {
    let reps = 5;
    let mut rows = Vec::new();
    let mut geo_means = [0.0f64; 4];
    let mut count = 0usize;
    for spec in medium_suite() {
        let c = strip_measurements(&spec.circuit().expect("workload builds"));
        let n = c.n_qubits();

        let t_svsim = time_median(reps, || {
            let mut sim = Simulator::new(n, SimConfig::single_device()).unwrap();
            sim.run(&c).unwrap();
            std::hint::black_box(sim.state().re()[0]);
        });
        let t_parse = time_median(reps, || {
            let mut sim = Simulator::new(
                n,
                SimConfig::single_device().with_dispatch(DispatchMode::RuntimeParse),
            )
            .unwrap();
            sim.run(&c).unwrap();
            std::hint::black_box(sim.state().re()[0]);
        });
        let t_generic = time_median(reps, || {
            let s = GenericMatrixSim.run(&c).unwrap();
            std::hint::black_box(s[0]);
        });
        let t_interp = time_median(reps, || {
            let s = InterpreterSim.run(&c).unwrap();
            std::hint::black_box(s[0]);
        });
        let t_fusion = time_median(reps, || {
            let s = FusionSim.run(&c).unwrap();
            std::hint::black_box(s[0]);
        });

        rows.push(vec![
            spec.name.to_string(),
            fmt_time(t_svsim),
            format!("{} ({:.1}x)", fmt_time(t_parse), t_parse / t_svsim),
            format!("{} ({:.1}x)", fmt_time(t_generic), t_generic / t_svsim),
            format!("{} ({:.1}x)", fmt_time(t_interp), t_interp / t_svsim),
            format!("{} ({:.1}x)", fmt_time(t_fusion), t_fusion / t_svsim),
        ]);
        geo_means[0] += (t_generic / t_svsim).ln();
        geo_means[1] += (t_interp / t_svsim).ln();
        geo_means[2] += (t_fusion / t_svsim).ln();
        geo_means[3] += (t_parse / t_svsim).ln();
        count += 1;
    }
    print_table(
        "Figure 14: measured latency, SV-Sim vs baseline simulator designs (single core)",
        &[
            "circuit",
            "SV-Sim",
            "SV-Sim/runtime-parse",
            "Aer-style generic",
            "Cirq-style interp",
            "qsim-style fusion",
        ],
        &rows,
    );
    println!(
        "\ngeometric-mean slowdown vs SV-Sim: generic {:.1}x, interpreter {:.1}x, \
         fusion {:.1}x, runtime-parse {:.2}x",
        (geo_means[0] / count as f64).exp(),
        (geo_means[1] / count as f64).exp(),
        (geo_means[2] / count as f64).exp(),
        (geo_means[3] / count as f64).exp(),
    );
    println!("paper shape: SV-Sim ~10x faster on average than Qiskit/Cirq/Q# simulators.");
}
