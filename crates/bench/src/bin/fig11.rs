//! Figure 11: scale-up on the AMD MI100 workstation (Infinity Fabric),
//! 1 to 4 GPUs. Paper: linear but modest scaling, no 1->2 lag — the
//! bottleneck is the in-kernel gate dispatch, not the fabric.

fn main() {
    svsim_bench::scaleup_figure(
        "Figure 11: AMD MI100 scale-up, relative latency (1.00 = 1 GPU)",
        &svsim_perfmodel::devices::MI100,
        &svsim_perfmodel::interconnects::INFINITY_FABRIC,
        &[1, 2, 4],
    );
    println!("\npaper shape: modest linear scaling; compute (dispatch) bound.");
}
