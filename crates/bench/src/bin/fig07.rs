//! Figure 7: scale-up on the Intel P8276M CPU (AVX-512, unified memory),
//! 1 to 256 cores. Paper: optimum at 16-32 cores; >128 cores regress on
//! QPI contention.

fn main() {
    svsim_bench::scaleup_figure(
        "Figure 7: Intel P8276M scale-up, relative latency (1.00 = 1 core)",
        &svsim_perfmodel::devices::INTEL_P8276_AVX512,
        &svsim_perfmodel::interconnects::QPI,
        &[1, 2, 4, 8, 16, 32, 64, 128, 256],
    );
    println!("\npaper shape: sweet spot at 16-32 cores; heavy regression beyond 128.");
}
