//! §5 use case: QNN for power-grid contingency classification.
//! Paper: test accuracy 28.11% -> 72.97% after two epochs on 20 cases.

use svsim_bench::print_table;
use svsim_core::SimConfig;
use svsim_vqa::{synthetic_grid_cases, QnnModel};

fn main() {
    let train = synthetic_grid_cases(20, 11);
    let test = synthetic_grid_cases(37, 12);
    let mut model = QnnModel::new(2, 5, SimConfig::single_device());
    let accuracies = model
        .train(&train, &test, 2, 120, 7)
        .expect("training runs");
    let rows: Vec<Vec<String>> = accuracies
        .iter()
        .enumerate()
        .map(|(epoch, acc)| vec![epoch.to_string(), format!("{:.2}%", acc * 100.0)])
        .collect();
    print_table(
        "QNN power-grid use case: test accuracy per epoch",
        &["epoch", "test accuracy"],
        &rows,
    );
    println!(
        "\ncircuits synthesized and simulated during training: {}",
        model.circuit_evals.get()
    );
    println!("paper: 28.11% -> 72.97% over 2 epochs (28,641 circuit evaluations/epoch");
    println!("on the full 30-bus problem); dataset here is the synthetic equivalent.");
}
