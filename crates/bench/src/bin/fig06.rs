//! Figure 6: single-device execution latency on the modeled platforms,
//! relative to AMD EPYC-7742 (the paper's reference), plus absolute
//! latency estimates, for the 8 medium circuits.

use svsim_bench::print_table;
use svsim_perfmodel::{devices, estimate_single, DeviceSpec};
use svsim_workloads::medium_suite;

fn main() {
    let platforms: [&DeviceSpec; 9] = [
        &devices::EPYC_7742,
        &devices::INTEL_P8276,
        &devices::INTEL_P8276_AVX512,
        &devices::POWER9,
        &devices::PHI_7230,
        &devices::PHI_7230_AVX512,
        &devices::V100,
        &devices::A100,
        &devices::MI100,
    ];
    let mut headers: Vec<&str> = vec!["circuit"];
    headers.extend(platforms.iter().map(|p| p.name));
    let mut rows = Vec::new();
    for spec in medium_suite() {
        let c = spec.circuit().expect("workload builds");
        let reference = estimate_single(&devices::EPYC_7742, &c).total();
        let mut row = vec![spec.name.to_string()];
        for p in &platforms {
            let t = estimate_single(p, &c).total();
            row.push(format!("{:.2}", t / reference));
        }
        rows.push(row);
    }
    print_table(
        "Figure 6: relative single-device latency (1.00 = AMD EPYC-7742)",
        &headers,
        &rows,
    );

    // Absolute estimates for the record.
    let mut rows = Vec::new();
    for spec in medium_suite() {
        let c = spec.circuit().expect("workload builds");
        let mut row = vec![spec.name.to_string()];
        for p in &platforms {
            row.push(svsim_bench::fmt_time(estimate_single(p, &c).total()));
        }
        rows.push(row);
    }
    print_table("Figure 6 (absolute modeled latency)", &headers, &rows);
    println!(
        "\nobservations reproduced: (i) CPUs lead at n=11-12, GPUs lead at n>=13;\n\
         (ii) AVX-512 ~2x; (iii) A100 ~ V100 (memory bound); (iv) Phi core slower\n\
         than a server core; (v) MI100 penalized by runtime gate dispatch."
    );
}
