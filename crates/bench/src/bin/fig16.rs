//! Figure 16: estimated H2 energy through VQE (UCCSD ansatz, Nelder-Mead),
//! energy trace per iteration.

use svsim_bench::print_table;
use svsim_core::SimConfig;
use svsim_vqa::{h2_sto3g, h2_vqe};

fn main() {
    let vqe = h2_vqe(SimConfig::single_device()).expect("static problem");
    let exact = h2_sto3g().ground_energy_dense();
    let result = vqe.run(58); // the paper's iteration budget
    let rows: Vec<Vec<String>> = result
        .energy_history
        .iter()
        .enumerate()
        .step_by(2)
        .map(|(i, e)| {
            vec![
                i.to_string(),
                format!("{e:.6}"),
                format!("{:+.2e}", e - exact),
            ]
        })
        .collect();
    print_table(
        "Figure 16: VQE H2 energy vs iteration (Hartree)",
        &["iteration", "best energy (Ha)", "error vs FCI"],
        &rows,
    );
    println!("\nFCI (exact) ground energy: {exact:.6} Ha");
    println!(
        "final VQE energy: {:.6} Ha after {} circuit evaluations",
        result.energy, result.circuit_evals
    );
    println!("paper shape: convergence to the bound energy within ~58 iterations.");
}
