//! Shared helpers for the figure/table reproduction binaries and benches.

use std::time::Instant;

/// Print a fixed-width table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Median wall-clock time of `f` over `reps` runs (after one warmup),
/// in seconds.
pub fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Format seconds with an adaptive unit.
#[must_use]
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_units() {
        assert_eq!(fmt_time(2.0), "2.00 s");
        assert_eq!(fmt_time(0.0025), "2.50 ms");
        assert_eq!(fmt_time(2.5e-6), "2.50 us");
    }

    #[test]
    fn time_median_is_positive() {
        let t = time_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }
}

/// Print a scale-up figure (Figs. 7-11): relative latency of the medium
/// suite at each worker count, normalized to 1 worker.
pub fn scaleup_figure(
    title: &str,
    dev: &svsim_perfmodel::DeviceSpec,
    ic: &svsim_perfmodel::InterconnectSpec,
    workers: &[u64],
) {
    let mut headers: Vec<String> = vec!["circuit".into()];
    headers.extend(workers.iter().map(|w| format!("{w}w")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for spec in svsim_workloads::medium_suite() {
        let c = spec.circuit().expect("workload builds");
        let compiled = svsim_perfmodel::compile_for_estimate(&c);
        let base = svsim_perfmodel::scale_up(dev, ic, &compiled, c.n_qubits(), workers[0]).total();
        let mut row = vec![spec.name.to_string()];
        for &w in workers {
            let t = svsim_perfmodel::scale_up(dev, ic, &compiled, c.n_qubits(), w).total();
            row.push(format!("{:.2}", t / base));
        }
        rows.push(row);
    }
    print_table(title, &header_refs, &rows);
}

/// Print a scale-out figure (Figs. 12-13): relative latency of the large
/// suite at each PE count, normalized to the smallest.
#[allow(clippy::too_many_arguments)]
pub fn scaleout_figure(
    title: &str,
    dev: &svsim_perfmodel::DeviceSpec,
    ic: &svsim_perfmodel::InterconnectSpec,
    pes: &[u64],
    pes_per_node: u64,
    intra_bw_gbps: f64,
) {
    let mut headers: Vec<String> = vec!["circuit".into()];
    headers.extend(pes.iter().map(|p| format!("{p}pe")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for spec in svsim_workloads::large_suite() {
        let c = spec.circuit().expect("workload builds");
        let compiled = svsim_perfmodel::compile_for_estimate(&c);
        let n = c.n_qubits();
        let base =
            svsim_perfmodel::scale_out(dev, ic, &compiled, n, pes[0], pes_per_node, intra_bw_gbps)
                .total();
        let mut row = vec![spec.name.to_string()];
        for &p in pes {
            if p > 1u64 << n {
                row.push("-".into());
                continue;
            }
            let t =
                svsim_perfmodel::scale_out(dev, ic, &compiled, n, p, pes_per_node, intra_bw_gbps)
                    .total();
            row.push(format!("{:.2}", t / base));
        }
        rows.push(row);
    }
    print_table(title, &header_refs, &rows);
}

// ---------------------------------------------------------------------------
// Minimal criterion-compatible bench harness.
//
// The `[[bench]]` targets in this crate were written against criterion's
// `criterion_group!`/`criterion_main!` surface. This in-tree harness keeps
// that surface (groups, `bench_function`, `Bencher::iter`, `sample_size`)
// so the benches build and run in fully offline environments, reporting
// min/median/mean wall-clock per iteration.
// ---------------------------------------------------------------------------

/// Drop-in stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name}");
        BenchmarkGroup { sample_size: 20 }
    }

    /// Bench a standalone function (no group).
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        BenchmarkGroup { sample_size: 20 }.bench_function(id, f);
    }
}

/// A named group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls `iter`.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut per_iter = b.samples;
        if per_iter.is_empty() {
            println!("  {id:<28} (no samples)");
            return;
        }
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "  {id:<28} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            per_iter.len(),
        );
    }

    /// Close the group (parity with criterion's API; prints nothing).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, recording per-iteration seconds over the configured
    /// sample count. Short closures are batched so every sample spans at
    /// least ~1 ms of wall clock.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup + batch-size calibration.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_secs_f64();
        let batch = if once > 0.0 {
            ((1e-3 / once).ceil() as usize).clamp(1, 1_000_000)
        } else {
            1_000_000
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

/// Expands to a function running each bench fn against a shared
/// [`Criterion`] (criterion-macro parity).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Expands to `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
