//! The fn-pointer polymorphism ablation (paper Listing 1 vs the HIP
//! fallback): preloaded kernel pointers vs per-execution parse-and-branch.

use svsim_bench::{criterion_group, criterion_main, Criterion};
use svsim_core::{DispatchMode, SimConfig, Simulator};
use svsim_workloads::random::random_basic_circuit;

fn benches(c: &mut Criterion) {
    // Small state, many gates: dispatch overhead dominates, as on a VQA
    // trial circuit.
    let circuit = random_basic_circuit(10, 2000, 42);
    let mut group = c.benchmark_group("dispatch_2000g_n10");
    group.sample_size(15);
    group.bench_function("preloaded_fn_pointer", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(10, SimConfig::single_device()).unwrap();
            sim.run(&circuit).unwrap();
            std::hint::black_box(sim.state().re()[0]);
        });
    });
    group.bench_function("runtime_parse", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                10,
                SimConfig::single_device().with_dispatch(DispatchMode::RuntimeParse),
            )
            .unwrap();
            sim.run(&circuit).unwrap();
            std::hint::black_box(sim.state().re()[0]);
        });
    });
    group.finish();
}

criterion_group!(dispatch, benches);
criterion_main!(dispatch);
