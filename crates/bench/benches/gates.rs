//! Per-gate kernel throughput: specialized vs generic dense application
//! (the paper's "specialized gate implementation" ablation, §3.2.1).

use svsim_bench::{criterion_group, criterion_main, Criterion};
use svsim_core::compile::compile_gate;
use svsim_core::dispatch::resolve;
use svsim_core::view::LocalView;
use svsim_ir::{Gate, GateKind};

const N: u32 = 16;

fn bench_kernel(c: &mut Criterion, name: &str, kind: GateKind, qubits: &[u32], params: &[f64]) {
    let dim = 1usize << N;
    let mut re = vec![0.0f64; dim];
    let mut im = vec![0.0f64; dim];
    re[0] = 1.0;
    let g = Gate::new(kind, qubits, params).unwrap();
    let mut specialized = Vec::new();
    compile_gate(&g, N, true, &mut specialized);
    let mut generic = Vec::new();
    compile_gate(&g, N, false, &mut generic);
    let view = LocalView::new(&mut re, &mut im);
    let mut group = c.benchmark_group(name);
    group.sample_size(20);
    group.bench_function("specialized", |b| {
        b.iter(|| {
            for cg in &specialized {
                resolve::<LocalView>(cg.id)(&view, &cg.args, 0..cg.args.work);
            }
        });
    });
    group.bench_function("generic_dense", |b| {
        b.iter(|| {
            for cg in &generic {
                resolve::<LocalView>(cg.id)(&view, &cg.args, 0..cg.args.work);
            }
        });
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_kernel(c, "t_gate", GateKind::T, &[7], &[]);
    bench_kernel(c, "h_gate", GateKind::H, &[7], &[]);
    bench_kernel(c, "x_gate", GateKind::X, &[7], &[]);
    bench_kernel(c, "rz_gate", GateKind::RZ, &[7], &[0.4]);
    bench_kernel(c, "cx_gate", GateKind::CX, &[3, 11], &[]);
    bench_kernel(c, "cz_gate", GateKind::CZ, &[3, 11], &[]);
    bench_kernel(c, "ccx_gate", GateKind::CCX, &[2, 7, 13], &[]);
    bench_kernel(c, "rzz_gate", GateKind::RZZ, &[3, 11], &[0.4]);
}

criterion_group!(gates, benches);
criterion_main!(gates);
