//! SHMEM substrate microbenchmarks: one-sided put/get (fine vs coarse
//! granularity) and barrier cost.

use svsim_bench::{criterion_group, criterion_main, Criterion};
use svsim_shmem::launch;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("shmem");
    group.sample_size(10);
    group.bench_function("fine_grained_put_get_64k", |b| {
        b.iter(|| {
            let out = launch(2, |ctx| {
                let sym = ctx.malloc_f64(65536).expect("alloc");
                let peer = 1 - ctx.my_pe();
                for i in 0..65536usize {
                    ctx.put_f64(&sym, peer, i, i as f64);
                }
                ctx.barrier_all();
                let mut acc = 0.0;
                for i in 0..65536usize {
                    acc += ctx.get_f64(&sym, ctx.my_pe(), i);
                }
                acc
            })
            .unwrap();
            std::hint::black_box(out.results[0]);
        });
    });
    group.bench_function("coarse_slice_put_get_64k", |b| {
        b.iter(|| {
            let out = launch(2, |ctx| {
                let sym = ctx.malloc_f64(65536).expect("alloc");
                let peer = 1 - ctx.my_pe();
                let buf: Vec<f64> = (0..65536).map(|i| i as f64).collect();
                ctx.put_slice_f64(&sym, peer, 0, &buf);
                ctx.barrier_all();
                let mut back = vec![0.0f64; 65536];
                ctx.get_slice_f64(&sym, ctx.my_pe(), 0, &mut back);
                back[65535]
            })
            .unwrap();
            std::hint::black_box(out.results[0]);
        });
    });
    group.bench_function("barrier_x100_4pe", |b| {
        b.iter(|| {
            let out = launch(4, |ctx| {
                for _ in 0..100 {
                    ctx.barrier_all();
                }
                ctx.my_pe()
            })
            .unwrap();
            std::hint::black_box(out.results[0]);
        });
    });
    group.finish();
}

criterion_group!(comm, benches);
criterion_main!(comm);
