//! Batched-VQA ablation: compile-once parameter patching vs full circuit
//! re-synthesis per trial (the paper's §7 future-work direction).

use svsim_bench::{criterion_group, criterion_main, Criterion};
use svsim_core::{ParamCircuit, ParamValue, SimConfig, Simulator};
use svsim_ir::GateKind;

/// A hardware-efficient ansatz: L layers of RY/RZ + CX ring on n qubits.
fn ansatz(n: u32, layers: u32) -> ParamCircuit {
    let mut t = ParamCircuit::new(n);
    let mut var = 0usize;
    for q in 0..n {
        t.push_fixed(GateKind::H, &[q], &[]).unwrap();
    }
    for _ in 0..layers {
        for q in 0..n {
            t.push(GateKind::RY, &[q], &[ParamValue::Var(var)]).unwrap();
            var += 1;
            t.push(GateKind::RZ, &[q], &[ParamValue::Var(var)]).unwrap();
            var += 1;
        }
        for q in 0..n {
            t.push_fixed(GateKind::CX, &[q, (q + 1) % n], &[]).unwrap();
        }
    }
    t
}

fn benches(c: &mut Criterion) {
    let n = 6u32;
    let template = ansatz(n, 8);
    let n_vars = template.n_vars();
    let trials: Vec<Vec<f64>> = (0..16)
        .map(|i| (0..n_vars).map(|j| 0.01 * (i * j) as f64).collect())
        .collect();
    let mut group = c.benchmark_group("vqa_trials_16x");
    group.sample_size(10);
    group.bench_function("compiled_template_patch", |b| {
        let mut compiled = template.compile().unwrap();
        b.iter(|| {
            for v in &trials {
                let s = compiled.run(v).unwrap();
                std::hint::black_box(s.re()[0]);
            }
        });
    });
    group.bench_function("resynthesize_per_trial", |b| {
        b.iter(|| {
            for v in &trials {
                let circuit = template.bind(v).unwrap();
                let mut sim = Simulator::new(n, SimConfig::single_device()).unwrap();
                sim.run(&circuit).unwrap();
                std::hint::black_box(sim.state().re()[0]);
            }
        });
    });
    group.finish();
}

criterion_group!(batch, benches);
criterion_main!(batch);
