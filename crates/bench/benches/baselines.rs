//! Figure 14 as a criterion bench: SV-Sim vs the baseline designs.

use svsim_baselines::{BaselineSim, FusionSim, GenericMatrixSim, InterpreterSim};
use svsim_bench::{criterion_group, criterion_main, Criterion};
use svsim_core::{SimConfig, Simulator};
use svsim_workloads::algos::qft;

fn benches(c: &mut Criterion) {
    let circuit = qft(12).unwrap();
    let mut group = c.benchmark_group("qft_n12_vs_baselines");
    group.sample_size(10);
    group.bench_function("svsim_specialized", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(12, SimConfig::single_device()).unwrap();
            sim.run(&circuit).unwrap();
            std::hint::black_box(sim.state().re()[0]);
        });
    });
    group.bench_function("aer_style_generic", |b| {
        b.iter(|| std::hint::black_box(GenericMatrixSim.run(&circuit).unwrap()[0]));
    });
    group.bench_function("cirq_style_interpreter", |b| {
        b.iter(|| std::hint::black_box(InterpreterSim.run(&circuit).unwrap()[0]));
    });
    group.bench_function("qsim_style_fusion", |b| {
        b.iter(|| std::hint::black_box(FusionSim.run(&circuit).unwrap()[0]));
    });
    group.finish();
}

criterion_group!(baselines, benches);
criterion_main!(baselines);
