//! Serving-engine throughput: the same sweep trial set executed three ways
//! — naive sequential re-synthesis (a library client), direct
//! compile-once/patch batching (a careful single-threaded client), and the
//! full engine (queue + workers + instance pool + micro-batch coalescing).
//!
//! The engine's win over the naive client is the amortization the crate
//! exists for: template compilation, circuit synthesis, and state-vector
//! allocation are paid once per template instead of once per trial. On a
//! multi-core host the worker pool multiplies the gap further; the numbers
//! below are the floor (single worker).

use std::sync::Arc;
use svsim_bench::{criterion_group, criterion_main, Criterion};
use svsim_core::{measure, ParamCircuit, ParamValue, SimConfig, Simulator};
use svsim_engine::{Engine, EngineConfig, JobOutput, JobRequest, JobSpec, SweepReturn};
use svsim_ir::GateKind;
use svsim_types::SvRng;

/// Hardware-efficient ansatz: `layers` blocks of per-qubit RY/RZ plus a CX
/// entangler ring — the trial-circuit shape VQA optimizers emit.
fn ansatz(n: u32, layers: u32) -> ParamCircuit {
    let mut t = ParamCircuit::new(n);
    let mut var = 0usize;
    for q in 0..n {
        t.push_fixed(GateKind::H, &[q], &[]).unwrap();
    }
    for _ in 0..layers {
        for q in 0..n {
            t.push(GateKind::RY, &[q], &[ParamValue::Var(var)]).unwrap();
            var += 1;
            t.push(GateKind::RZ, &[q], &[ParamValue::Var(var)]).unwrap();
            var += 1;
        }
        for q in 0..n {
            t.push_fixed(GateKind::CX, &[q, (q + 1) % n], &[]).unwrap();
        }
    }
    t
}

fn trial_set(n_vars: usize, trials: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SvRng::seed_from_u64(seed);
    (0..trials)
        .map(|_| (0..n_vars).map(|_| rng.range_f64(-2.0, 2.0)).collect())
        .collect()
}

fn benches(c: &mut Criterion) {
    let n = 6u32;
    let layers = 8u32;
    let trials = 64usize;
    let mask = (1u64 << n) - 1;
    let template = ansatz(n, layers);
    let points = trial_set(template.n_vars(), trials, 0xE7617E);

    // Cross-check once before timing: all three paths must agree.
    let reference: f64 = {
        let mut compiled = template.compile().unwrap();
        points
            .iter()
            .map(|p| measure::expval_z_mask(&compiled.run(p).unwrap(), mask))
            .sum()
    };
    {
        let naive: f64 = points
            .iter()
            .map(|p| {
                let circuit = template.bind(p).unwrap();
                let mut sim = Simulator::new(n, SimConfig::single_device()).unwrap();
                sim.run(&circuit).unwrap();
                measure::expval_z_mask(sim.state(), mask)
            })
            .sum();
        assert!(
            (naive - reference).abs() < 1e-9,
            "paths disagree: {naive} vs {reference}"
        );
    }

    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_queue_capacity(4 * trials)
            .with_max_batch(32),
    );
    let template_id = engine.register_template("bench_ansatz", &template).unwrap();
    {
        let engine_sum: f64 = points
            .iter()
            .map(|p| {
                let h = engine
                    .submit(JobRequest::new(JobSpec::Sweep {
                        template: template_id,
                        params: p.clone(),
                        returning: SweepReturn::ExpZ(mask),
                    }))
                    .unwrap();
                match h.wait().unwrap() {
                    JobOutput::Sweep { value, .. } => value.unwrap(),
                    JobOutput::OneShot { .. } => unreachable!(),
                }
            })
            .sum();
        assert!(
            (engine_sum - reference).abs() < 1e-9,
            "engine path disagrees: {engine_sum} vs {reference}"
        );
    }

    let mut group = c.benchmark_group("serving_64_trials_n6");
    group.sample_size(10);
    group.bench_function("naive_sequential", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for p in &points {
                let circuit = template.bind(p).unwrap();
                let mut sim = Simulator::new(n, SimConfig::single_device()).unwrap();
                sim.run(&circuit).unwrap();
                acc += measure::expval_z_mask(sim.state(), mask);
            }
            std::hint::black_box(acc);
        });
    });
    group.bench_function("compiled_template_direct", |b| {
        let mut compiled = template.compile().unwrap();
        let mut buf = svsim_core::StateVector::zero_state(n).unwrap();
        b.iter(|| {
            let mut acc = 0.0f64;
            for p in &points {
                compiled.run_into(p, &mut buf).unwrap();
                acc += measure::expval_z_mask(&buf, mask);
            }
            std::hint::black_box(acc);
        });
    });
    group.bench_function("engine_batched", |b| {
        b.iter(|| {
            let handles: Vec<_> = points
                .iter()
                .map(|p| {
                    engine
                        .submit(JobRequest::new(JobSpec::Sweep {
                            template: template_id,
                            params: p.clone(),
                            returning: SweepReturn::ExpZ(mask),
                        }))
                        .unwrap()
                })
                .collect();
            // Wait newest-first: one blocking wait covers the whole set, the
            // rest of the results are already published when we reach them.
            let mut acc = 0.0f64;
            for h in handles.iter().rev() {
                match h.wait().unwrap() {
                    JobOutput::Sweep { value, .. } => acc += value.unwrap(),
                    JobOutput::OneShot { .. } => unreachable!(),
                }
            }
            std::hint::black_box(acc);
        });
    });
    group.finish();

    // One-shot serving throughput: pooled simulator reuse vs fresh
    // construction, for shallow wide circuits (state-prep / sampling
    // requests) where the `2^n` allocation is a large share of the job.
    let mut group = c.benchmark_group("oneshot_serving_8x_n16");
    group.sample_size(10);
    let circuit = {
        let mut c = svsim_ir::Circuit::new(16);
        for q in 0..16 {
            c.apply(GateKind::H, &[q], &[]).unwrap();
        }
        Arc::new(c)
    };
    let config = SimConfig::single_device();
    group.bench_function("fresh_simulator", |b| {
        b.iter(|| {
            for _ in 0..8 {
                let mut sim = Simulator::new(16, config).unwrap();
                let s = sim.run(&circuit).unwrap();
                std::hint::black_box(s.gates);
            }
        });
    });
    group.bench_function("engine_pooled", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    engine
                        .submit(JobRequest::new(JobSpec::OneShot {
                            circuit: Arc::clone(&circuit),
                            config,
                            shots: 0,
                            return_state: false,
                        }))
                        .unwrap()
                })
                .collect();
            for h in handles.iter().rev() {
                match h.wait().unwrap() {
                    JobOutput::OneShot { summary, .. } => std::hint::black_box(summary.gates),
                    JobOutput::Sweep { .. } => unreachable!(),
                };
            }
        });
    });
    group.finish();

    let metrics = engine.shutdown();
    println!(
        "\nengine totals: {} jobs, mean batch {:.1}, pool hit rate {:.0}%",
        metrics.completed,
        metrics.mean_batch_size(),
        100.0 * metrics.pool_hit_rate()
    );
}

criterion_group!(engine, benches);
criterion_main!(engine);
