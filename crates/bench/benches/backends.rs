//! Backend comparison on one machine: single device vs peer-access
//! scale-up vs SHMEM scale-out (functional overhead of the PGAS fabrics).

use svsim_bench::{criterion_group, criterion_main, Criterion};
use svsim_core::{SimConfig, Simulator};
use svsim_workloads::algos::qft;

fn benches(c: &mut Criterion) {
    let circuit = qft(14).unwrap();
    let mut group = c.benchmark_group("qft_n14");
    group.sample_size(10);
    for (name, config) in [
        ("single_device", SimConfig::single_device()),
        ("scale_up_4", SimConfig::scale_up(4)),
        ("scale_out_4", SimConfig::scale_out(4)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = Simulator::new(14, config).unwrap();
                sim.run(&circuit).unwrap();
                std::hint::black_box(sim.state().re()[0]);
            });
        });
    }
    group.finish();
}

criterion_group!(backends, benches);
criterion_main!(backends);
