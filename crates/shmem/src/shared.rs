//! Shared word-addressable buffers backing the symmetric heap.
//!
//! Real SHMEM exposes remote memory through plain one-sided loads/stores
//! with *no* implied synchronization — data races between barriers are the
//! programmer's responsibility. To model those semantics soundly in Rust,
//! every word is a relaxed atomic: on mainstream ISAs a relaxed `load`/
//! `store` compiles to a plain `mov`, so this costs nothing while keeping
//! the behaviour defined.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-length shared buffer of `f64` words with one-sided access.
#[derive(Debug)]
pub struct SharedF64Vec {
    words: Box<[AtomicU64]>,
}

impl SharedF64Vec {
    /// Allocate, initialized to `init`.
    #[must_use]
    pub fn new(len: usize, init: f64) -> Self {
        let bits = init.to_bits();
        Self {
            words: (0..len).map(|_| AtomicU64::new(bits)).collect(),
        }
    }

    /// Length in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// One-sided load (relaxed; `shmem_double_g` semantics).
    #[inline]
    #[must_use]
    pub fn load(&self, idx: usize) -> f64 {
        f64::from_bits(self.words[idx].load(Ordering::Relaxed))
    }

    /// One-sided store (relaxed; `shmem_double_p` semantics).
    #[inline]
    pub fn store(&self, idx: usize, v: f64) {
        self.words[idx].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomic fetch-add via CAS loop (`shmem_double_atomic_fetch_add`).
    pub fn fetch_add(&self, idx: usize, delta: f64) -> f64 {
        let cell = &self.words[idx];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Copy `dst.len()` words starting at `src_start` into `dst`.
    pub fn load_slice(&self, src_start: usize, dst: &mut [f64]) {
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.load(src_start + i);
        }
    }

    /// Copy `src` into the buffer starting at `dst_start`.
    pub fn store_slice(&self, dst_start: usize, src: &[f64]) {
        for (i, &v) in src.iter().enumerate() {
            self.store(dst_start + i, v);
        }
    }

    /// Snapshot the whole buffer into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.load(i)).collect()
    }
}

/// A fixed-length shared buffer of `u64` words with one-sided and atomic
/// access (flags, counters, classical bits).
#[derive(Debug)]
pub struct SharedU64Vec {
    words: Box<[AtomicU64]>,
}

impl SharedU64Vec {
    /// Allocate, initialized to `init`.
    #[must_use]
    pub fn new(len: usize, init: u64) -> Self {
        Self {
            words: (0..len).map(|_| AtomicU64::new(init)).collect(),
        }
    }

    /// Length in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// One-sided load (relaxed).
    #[inline]
    #[must_use]
    pub fn load(&self, idx: usize) -> u64 {
        self.words[idx].load(Ordering::Relaxed)
    }

    /// One-sided store (relaxed).
    #[inline]
    pub fn store(&self, idx: usize, v: u64) {
        self.words[idx].store(v, Ordering::Relaxed);
    }

    /// Atomic fetch-add (`shmem_uint64_atomic_fetch_add`).
    #[inline]
    pub fn fetch_add(&self, idx: usize, delta: u64) -> u64 {
        self.words[idx].fetch_add(delta, Ordering::AcqRel)
    }

    /// Raw word access for ordering-specific operations (see
    /// [`crate::signal`]).
    #[inline]
    pub(crate) fn words(&self) -> &[AtomicU64] {
        &self.words
    }

    /// Atomic unconditional swap; returns the previous value.
    #[inline]
    pub fn swap(&self, idx: usize, value: u64) -> u64 {
        self.words[idx].swap(value, Ordering::AcqRel)
    }

    /// Atomic compare-and-swap; returns the previous value.
    #[inline]
    pub fn compare_swap(&self, idx: usize, expected: u64, desired: u64) -> u64 {
        match self.words[idx].compare_exchange(
            expected,
            desired,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(prev) | Err(prev) => prev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn f64_roundtrip_and_init() {
        let v = SharedF64Vec::new(4, 1.5);
        assert_eq!(v.len(), 4);
        assert_eq!(v.load(2), 1.5);
        v.store(2, -0.25);
        assert_eq!(v.load(2), -0.25);
        assert_eq!(v.load(1), 1.5);
    }

    #[test]
    fn f64_slices() {
        let v = SharedF64Vec::new(8, 0.0);
        v.store_slice(2, &[1.0, 2.0, 3.0]);
        let mut out = [0.0; 3];
        v.load_slice(2, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert_eq!(v.to_vec()[..2], [0.0, 0.0]);
    }

    #[test]
    fn f64_fetch_add_concurrent() {
        let v = Arc::new(SharedF64Vec::new(1, 0.0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let v = Arc::clone(&v);
                s.spawn(move || {
                    for _ in 0..1000 {
                        v.fetch_add(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(v.load(0), 4000.0);
    }

    #[test]
    fn u64_atomics() {
        let v = SharedU64Vec::new(2, 7);
        assert_eq!(v.fetch_add(0, 3), 7);
        assert_eq!(v.load(0), 10);
        assert_eq!(v.compare_swap(1, 7, 99), 7);
        assert_eq!(v.load(1), 99);
        // Failed CAS returns the current value and leaves it unchanged.
        assert_eq!(v.compare_swap(1, 7, 1), 99);
        assert_eq!(v.load(1), 99);
    }

    #[test]
    fn nan_and_negative_zero_bits_preserved() {
        let v = SharedF64Vec::new(1, 0.0);
        v.store(0, -0.0);
        assert!(v.load(0).is_sign_negative());
        v.store(0, f64::NAN);
        assert!(v.load(0).is_nan());
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_panics() {
        let v = SharedF64Vec::new(2, 0.0);
        let _ = v.load(2);
    }
}
