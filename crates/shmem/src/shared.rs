//! Shared word-addressable buffers backing the symmetric heap.
//!
//! Real SHMEM exposes remote memory through plain one-sided loads/stores
//! with *no* implied synchronization — data races between barriers are the
//! programmer's responsibility. To model those semantics soundly in Rust,
//! every word is a relaxed atomic: on mainstream ISAs a relaxed `load`/
//! `store` compiles to a plain `mov`, so this costs nothing while keeping
//! the behaviour defined.
//!
//! A buffer's words live in one of two places, invisible to every caller:
//!
//! - **Owned** — a heap allocation in this process (the thread-backed
//!   world, where PEs are threads of one address space).
//! - **Mapped** — a window into a `MAP_SHARED` arena (the process-backed
//!   world of [`crate::proc`], where PEs are forked OS processes and the
//!   symmetric heap is a `memfd` mapping every PE sees at the same bytes).
//!
//! All accessors are identical across the two, which is what lets the same
//! SPMD body run on either backend.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a shared buffer's words live.
enum Storage {
    /// Process-private heap words (thread-backed world).
    Owned(Box<[AtomicU64]>),
    /// A window into an OS-shared mapping (process-backed world). The
    /// keepalive pins the mapping for as long as any handle is alive, so
    /// the raw pointer cannot dangle.
    Mapped {
        ptr: *const AtomicU64,
        len: usize,
        _keep: Arc<dyn Any + Send + Sync>,
    },
}

// SAFETY: Owned is Send+Sync by construction (AtomicU64 words). Mapped
// points into a MAP_SHARED region whose lifetime is pinned by `_keep`; all
// access goes through atomics, so sharing across threads is sound.
#[allow(unsafe_code)]
unsafe impl Send for Storage {}
#[allow(unsafe_code)]
unsafe impl Sync for Storage {}

impl Storage {
    #[inline]
    fn cells(&self) -> &[AtomicU64] {
        match self {
            Self::Owned(words) => words,
            // SAFETY: `ptr` points at `len` initialized AtomicU64 words in
            // a mapping that `_keep` holds alive; AtomicU64 has no padding
            // or invalid bit patterns, and the arena zero-initializes.
            #[allow(unsafe_code)]
            Self::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Owned(w) => write!(f, "Owned({} words)", w.len()),
            Self::Mapped { len, .. } => write!(f, "Mapped({len} words)"),
        }
    }
}

/// A fixed-length shared buffer of `f64` words with one-sided access.
#[derive(Debug)]
pub struct SharedF64Vec {
    storage: Storage,
}

impl SharedF64Vec {
    /// Allocate, initialized to `init`.
    #[must_use]
    pub fn new(len: usize, init: f64) -> Self {
        let bits = init.to_bits();
        Self {
            storage: Storage::Owned((0..len).map(|_| AtomicU64::new(bits)).collect()),
        }
    }

    /// Wrap `len` words of an OS-shared mapping starting at `ptr`.
    ///
    /// # Safety
    /// `ptr` must point at `len` readable+writable `u64` words that stay
    /// mapped for as long as `keep` is alive, and the words must only ever
    /// be accessed atomically (which every mapping produced by
    /// [`crate::proc`] guarantees).
    #[allow(unsafe_code)]
    pub(crate) unsafe fn from_raw(
        ptr: *const AtomicU64,
        len: usize,
        keep: Arc<dyn Any + Send + Sync>,
    ) -> Self {
        Self {
            storage: Storage::Mapped {
                ptr,
                len,
                _keep: keep,
            },
        }
    }

    #[inline]
    fn cells(&self) -> &[AtomicU64] {
        self.storage.cells()
    }

    /// Length in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells().len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells().is_empty()
    }

    /// One-sided load (relaxed; `shmem_double_g` semantics).
    #[inline]
    #[must_use]
    pub fn load(&self, idx: usize) -> f64 {
        f64::from_bits(self.cells()[idx].load(Ordering::Relaxed))
    }

    /// One-sided store (relaxed; `shmem_double_p` semantics).
    #[inline]
    pub fn store(&self, idx: usize, v: f64) {
        self.cells()[idx].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomic fetch-add via CAS loop (`shmem_double_atomic_fetch_add`).
    pub fn fetch_add(&self, idx: usize, delta: f64) -> f64 {
        let cell = &self.cells()[idx];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Copy `dst.len()` words starting at `src_start` into `dst`.
    pub fn load_slice(&self, src_start: usize, dst: &mut [f64]) {
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.load(src_start + i);
        }
    }

    /// Copy `src` into the buffer starting at `dst_start`.
    pub fn store_slice(&self, dst_start: usize, src: &[f64]) {
        for (i, &v) in src.iter().enumerate() {
            self.store(dst_start + i, v);
        }
    }

    /// Snapshot the whole buffer into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.load(i)).collect()
    }
}

/// A fixed-length shared buffer of `u64` words with one-sided and atomic
/// access (flags, counters, classical bits).
#[derive(Debug)]
pub struct SharedU64Vec {
    storage: Storage,
}

impl SharedU64Vec {
    /// Allocate, initialized to `init`.
    #[must_use]
    pub fn new(len: usize, init: u64) -> Self {
        Self {
            storage: Storage::Owned((0..len).map(|_| AtomicU64::new(init)).collect()),
        }
    }

    /// Wrap `len` words of an OS-shared mapping; see
    /// [`SharedF64Vec::from_raw`] for the contract.
    ///
    /// # Safety
    /// Same contract as [`SharedF64Vec::from_raw`].
    #[allow(unsafe_code)]
    pub(crate) unsafe fn from_raw(
        ptr: *const AtomicU64,
        len: usize,
        keep: Arc<dyn Any + Send + Sync>,
    ) -> Self {
        Self {
            storage: Storage::Mapped {
                ptr,
                len,
                _keep: keep,
            },
        }
    }

    /// Length in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words().len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words().is_empty()
    }

    /// One-sided load (relaxed).
    #[inline]
    #[must_use]
    pub fn load(&self, idx: usize) -> u64 {
        self.words()[idx].load(Ordering::Relaxed)
    }

    /// One-sided store (relaxed).
    #[inline]
    pub fn store(&self, idx: usize, v: u64) {
        self.words()[idx].store(v, Ordering::Relaxed);
    }

    /// Atomic fetch-add (`shmem_uint64_atomic_fetch_add`).
    #[inline]
    pub fn fetch_add(&self, idx: usize, delta: u64) -> u64 {
        self.words()[idx].fetch_add(delta, Ordering::AcqRel)
    }

    /// Raw word access for ordering-specific operations (see
    /// [`crate::signal`]).
    #[inline]
    pub(crate) fn words(&self) -> &[AtomicU64] {
        self.storage.cells()
    }

    /// Atomic unconditional swap; returns the previous value.
    #[inline]
    pub fn swap(&self, idx: usize, value: u64) -> u64 {
        self.words()[idx].swap(value, Ordering::AcqRel)
    }

    /// Atomic compare-and-swap; returns the previous value.
    #[inline]
    pub fn compare_swap(&self, idx: usize, expected: u64, desired: u64) -> u64 {
        match self.words()[idx].compare_exchange(
            expected,
            desired,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(prev) | Err(prev) => prev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn f64_roundtrip_and_init() {
        let v = SharedF64Vec::new(4, 1.5);
        assert_eq!(v.len(), 4);
        assert_eq!(v.load(2), 1.5);
        v.store(2, -0.25);
        assert_eq!(v.load(2), -0.25);
        assert_eq!(v.load(1), 1.5);
    }

    #[test]
    fn f64_slices() {
        let v = SharedF64Vec::new(8, 0.0);
        v.store_slice(2, &[1.0, 2.0, 3.0]);
        let mut out = [0.0; 3];
        v.load_slice(2, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert_eq!(v.to_vec()[..2], [0.0, 0.0]);
    }

    #[test]
    fn f64_fetch_add_concurrent() {
        let v = Arc::new(SharedF64Vec::new(1, 0.0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let v = Arc::clone(&v);
                s.spawn(move || {
                    for _ in 0..1000 {
                        v.fetch_add(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(v.load(0), 4000.0);
    }

    #[test]
    fn u64_atomics() {
        let v = SharedU64Vec::new(2, 7);
        assert_eq!(v.fetch_add(0, 3), 7);
        assert_eq!(v.load(0), 10);
        assert_eq!(v.compare_swap(1, 7, 99), 7);
        assert_eq!(v.load(1), 99);
        // Failed CAS returns the current value and leaves it unchanged.
        assert_eq!(v.compare_swap(1, 7, 1), 99);
        assert_eq!(v.load(1), 99);
    }

    #[test]
    fn nan_and_negative_zero_bits_preserved() {
        let v = SharedF64Vec::new(1, 0.0);
        v.store(0, -0.0);
        assert!(v.load(0).is_sign_negative());
        v.store(0, f64::NAN);
        assert!(v.load(0).is_nan());
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_panics() {
        let v = SharedF64Vec::new(2, 0.0);
        let _ = v.load(2);
    }

    #[test]
    fn mapped_storage_matches_owned_behaviour() {
        // An owned buffer standing in for an arena: view its words through
        // a Mapped handle and check every accessor agrees.
        let backing: Arc<Box<[AtomicU64]>> = Arc::new((0..8).map(|_| AtomicU64::new(0)).collect());
        let keep: Arc<dyn std::any::Any + Send + Sync> = Arc::clone(&backing) as _;
        #[allow(unsafe_code)]
        // SAFETY: `backing` outlives the view via the keepalive clone.
        let v = unsafe { SharedF64Vec::from_raw(backing.as_ptr(), 8, keep) };
        assert_eq!(v.len(), 8);
        v.store(3, 2.5);
        assert_eq!(v.load(3), 2.5);
        assert_eq!(v.fetch_add(3, 1.0), 2.5);
        assert_eq!(v.load(3), 3.5);
        v.store_slice(0, &[1.0, 2.0]);
        assert_eq!(v.to_vec()[..2], [1.0, 2.0]);
        // The mapped view writes through to the backing words.
        assert_eq!(f64::from_bits(backing[3].load(Ordering::Relaxed)), 3.5);
    }
}
