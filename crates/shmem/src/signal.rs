//! Point-to-point synchronization: `shmem_wait_until` and
//! put-with-signal, the primitives NVSHMEM adds for producer/consumer
//! pipelines that don't want a full `barrier_all` (overlapping
//! communication with computation, §2.2 of the paper).

use crate::shared::SharedU64Vec;
use std::sync::atomic::Ordering;

/// Comparison operators of `shmem_wait_until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitCmp {
    /// Wait until the word equals the operand.
    Eq,
    /// Wait until the word differs from the operand.
    Ne,
    /// Wait until the word is at least the operand.
    Ge,
}

impl WaitCmp {
    #[inline]
    fn holds(self, value: u64, operand: u64) -> bool {
        match self {
            WaitCmp::Eq => value == operand,
            WaitCmp::Ne => value != operand,
            WaitCmp::Ge => value >= operand,
        }
    }
}

/// Spin until `flags[idx] cmp operand` holds; returns the satisfying value.
///
/// Uses acquire loads so data written before the matching signal (release)
/// is visible after the wait returns.
pub fn wait_until(flags: &SharedU64Vec, idx: usize, cmp: WaitCmp, operand: u64) -> u64 {
    let mut spins = 0u32;
    loop {
        let v = flags.load_acquire(idx);
        if cmp.holds(v, operand) {
            return v;
        }
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Signal completion: release-store `value` into `flags[idx]` after the
/// payload writes (put-with-signal's signal half).
pub fn signal(flags: &SharedU64Vec, idx: usize, value: u64) {
    flags.store_release(idx, value);
}

/// Atomically add to a signal word (for counting arrivals), release order.
pub fn signal_add(flags: &SharedU64Vec, idx: usize, delta: u64) -> u64 {
    flags.fetch_add(idx, delta)
}

impl SharedU64Vec {
    /// Acquire-ordered load (pairs with [`SharedU64Vec::store_release`]).
    #[inline]
    #[must_use]
    pub fn load_acquire(&self, idx: usize) -> u64 {
        self.words()[idx].load(Ordering::Acquire)
    }

    /// Release-ordered store.
    #[inline]
    pub fn store_release(&self, idx: usize, v: u64) {
        self.words()[idx].store(v, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::launch;

    #[test]
    fn cmp_semantics() {
        assert!(WaitCmp::Eq.holds(3, 3));
        assert!(!WaitCmp::Eq.holds(3, 4));
        assert!(WaitCmp::Ne.holds(3, 4));
        assert!(WaitCmp::Ge.holds(5, 3));
        assert!(!WaitCmp::Ge.holds(2, 3));
    }

    #[test]
    fn producer_consumer_pipeline() {
        // PE 0 produces chunks into PE 1's partition and signals each one;
        // PE 1 consumes them in order with wait_until — no barrier_all.
        const CHUNKS: u64 = 16;
        const CHUNK: usize = 64;
        let out = launch(2, |ctx| {
            let data = ctx.malloc_f64(CHUNK * CHUNKS as usize).expect("alloc");
            let flags = ctx.malloc_u64(1).expect("alloc");
            if ctx.my_pe() == 0 {
                for k in 0..CHUNKS {
                    let payload: Vec<f64> =
                        (0..CHUNK).map(|i| (k as f64) * 1000.0 + i as f64).collect();
                    ctx.put_slice_f64(&data, 1, k as usize * CHUNK, &payload);
                    signal(flags.partition(1), 0, k + 1);
                }
                0.0
            } else {
                let mut acc = 0.0;
                for k in 0..CHUNKS {
                    wait_until(flags.partition(1), 0, WaitCmp::Ge, k + 1);
                    // The chunk signalled is fully visible (release/acquire).
                    let mut buf = vec![0.0; CHUNK];
                    ctx.get_slice_f64(&data, 1, k as usize * CHUNK, &mut buf);
                    assert_eq!(buf[0], k as f64 * 1000.0, "chunk {k} payload");
                    acc += buf[CHUNK - 1];
                }
                acc
            }
        })
        .unwrap();
        // Sum over chunks of (k*1000 + 63).
        let expect: f64 = (0..CHUNKS).map(|k| k as f64 * 1000.0 + 63.0).sum();
        assert_eq!(out.results[1], expect);
    }

    #[test]
    fn signal_add_counts_arrivals() {
        let out = launch(4, |ctx| {
            let flags = ctx.malloc_u64(1).expect("alloc");
            // Everyone signals PE 0.
            signal_add(flags.partition(0), 0, 1);
            if ctx.my_pe() == 0 {
                wait_until(flags.partition(0), 0, WaitCmp::Ge, 4)
            } else {
                0
            }
        })
        .unwrap();
        assert_eq!(out.results[0], 4);
    }
}
