//! Deterministic fault injection for the in-process SHMEM runtime.
//!
//! HPC state-vector runs (the paper targets Summit/Theta/DGX scale) live
//! with PE failures and flaky transports; this module makes those failure
//! paths *testable*. A [`FaultPlan`] is a seeded, replayable schedule of
//! faults that [`crate::world::launch_with_faults`] threads through every
//! PE's [`crate::world::ShmemCtx`]. Each spec counts the matching
//! `put`/`get`/`barrier` operations it observes in the target PE's program
//! order, so "kill PE 2 at its 7th put" is exactly reproducible run over
//! run — the property the engine's recovery tests and `sv-sim fault-bench`
//! rely on. The count lives in the spec (not the launch), so it keeps
//! accumulating across successive `launch` calls that share one plan:
//! a checkpointed run executed segment by segment still hits "the Nth put
//! of the whole run", even when that put happens in a later segment.
//!
//! Faults are **one-shot**: a spec disarms after it fires, so a retried job
//! (same plan, new launch) does not deterministically re-hit the same fault
//! and can make progress — modeling "the node crashed once", not "the node
//! is cursed".
//!
//! Fault semantics:
//! - [`FaultAction::Kill`] — the PE dies at the operation (panics with a
//!   typed payload that `launch` converts into
//!   [`SvError::PeFailed`](svsim_types::SvError::PeFailed)).
//! - [`FaultAction::Drop`] — a one-sided transfer is silently lost at the
//!   fabric. Loss is *detected at the PE's next barrier* (modeling
//!   transport-level delivery acknowledgment at the synchronization point),
//!   where the PE fails with `PeFailed{op: Put}` so the corrupted epoch is
//!   discarded rather than committed.
//! - [`FaultAction::Delay`] — the operation is stalled (bounded spin); the
//!   run stays correct, only slower. Used to exercise timing robustness.
//! - [`FaultAction::Poison`] — the barrier is poisoned directly and the PE
//!   dies, releasing all spinning peers into their own clean failures.
//! - [`FaultAction::Hang`] — the PE stops making progress at the operation
//!   *without* dying: on the process backend it sleeps forever (heartbeat
//!   words stop bumping, so the parent watchdog kills it and reports
//!   [`SvError::PeHung`](svsim_types::SvError::PeHung)); on the thread
//!   backend (no external supervisor can kill a thread) it degrades to
//!   `Poison` semantics so tests stay bounded.
//! - [`FaultAction::TornCheckpoint`] — a no-op at PE-side fault points;
//!   consulted host-side (via [`svsim_types::PeOp::Checkpoint`]) by the
//!   checkpoint store, which simulates a crash mid-write by leaving a
//!   truncated generation file behind.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use svsim_types::{PeOp, SvRng};

/// What an armed fault does when its trigger point is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill the PE at this operation.
    Kill,
    /// Drop the transfer (puts/gets); detected at the next barrier.
    Drop,
    /// Stall the operation for roughly this many spin iterations.
    Delay(u32),
    /// Poison the barrier and kill the PE.
    Poison,
    /// Wedge the PE: it stops progressing (and stops bumping its heartbeat)
    /// without dying. Process backend: detected by the parent watchdog and
    /// reported as `PeHung`. Thread backend: degrades to `Poison`.
    Hang,
    /// Simulate a crash mid-checkpoint-write: the store leaves a truncated
    /// generation file and reports a typed `Checkpoint` error. Ignored at
    /// PE-side put/get/barrier fault points.
    TornCheckpoint,
}

/// One scheduled fault: fires at the `at`-th matching operation of kind
/// `op` (1-based). With `pe: Some(p)` only PE `p`'s operations match, so
/// the trigger is a point in that PE's program order; with `pe: None`
/// every PE's operations match and the globally `at`-th one fires
/// (whichever PE happens to issue it).
#[derive(Debug)]
pub struct FaultSpec {
    /// Target PE rank; `None` matches any PE.
    pub pe: Option<usize>,
    /// Operation kind that triggers the fault.
    pub op: PeOp,
    /// 1-based count of matching operations at which the fault fires.
    pub at: u64,
    /// What happens at the trigger point.
    pub action: FaultAction,
    /// Matching operations observed so far (accumulates across launches).
    seen: AtomicU64,
    /// One-shot arming: cleared when the fault fires.
    armed: AtomicBool,
}

impl FaultSpec {
    /// Count one operation against this spec; fires (once) when the
    /// trigger count is reached.
    fn observe(&self, pe: usize, op: PeOp) -> Option<FaultAction> {
        if self.op != op || self.pe.is_some_and(|p| p != pe) {
            return None;
        }
        if !self.armed.load(Ordering::Acquire) {
            return None;
        }
        let n = self.seen.fetch_add(1, Ordering::AcqRel) + 1;
        if n >= self.at
            && self
                .armed
                .compare_exchange(true, false, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            return Some(self.action);
        }
        None
    }

    /// Matching operations observed so far.
    #[must_use]
    pub fn progress(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Snapshot `(seen, armed)` — used by the process backend to seed the
    /// shared-arena mirror of this spec before forking the PEs.
    pub(crate) fn state(&self) -> (u64, bool) {
        (
            self.seen.load(Ordering::Acquire),
            self.armed.load(Ordering::Acquire),
        )
    }

    /// Overwrite `(seen, armed)` — used by the process backend to absorb
    /// the arena mirror back into the plan after the PEs are reaped, so
    /// counts keep accumulating across launches (checkpoint segments) and
    /// one-shot disarming survives exactly as in the thread-backed world.
    pub(crate) fn set_state(&self, seen: u64, armed: bool) {
        self.seen.store(seen, Ordering::Release);
        self.armed.store(armed, Ordering::Release);
    }
}

/// A deterministic, replayable schedule of injected faults.
///
/// Shareable (`Arc<FaultPlan>`) across the launcher and the engine; the
/// only interior mutability is the per-spec one-shot arming bit.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault: `pe`'s `at`-th `op` performs `action`. Pass `None` as
    /// `pe` to match whichever PE reaches the count first.
    #[must_use]
    pub fn with(
        mut self,
        pe: impl Into<Option<usize>>,
        op: PeOp,
        at: u64,
        action: FaultAction,
    ) -> Self {
        self.specs.push(FaultSpec {
            pe: pe.into(),
            op,
            at,
            action,
            seen: AtomicU64::new(0),
            armed: AtomicBool::new(true),
        });
        self
    }

    /// Seeded single-fault plan for smoke matrices: derives the victim PE
    /// and trigger count from `seed`, with the action chosen by the caller.
    #[must_use]
    pub fn seeded(seed: u64, n_pes: usize, op: PeOp, action: FaultAction) -> Self {
        let mut rng = SvRng::seed_from_u64(seed ^ 0xfa17_fa17_fa17_fa17);
        let pe = (rng.next_f64() * n_pes as f64) as usize % n_pes.max(1);
        // Early enough to hit even short circuits, late enough to let some
        // work happen first.
        let at = 1 + (rng.next_f64() * 8.0) as u64;
        Self::new().with(pe, op, at, action)
    }

    /// Number of faults scheduled (armed or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when no faults are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of faults still armed (not yet fired).
    #[must_use]
    pub fn armed_remaining(&self) -> usize {
        self.specs
            .iter()
            .filter(|s| s.armed.load(Ordering::Relaxed))
            .count()
    }

    /// Re-arm every spec and rewind its operation count (e.g. to replay
    /// the same schedule in a new run).
    pub fn rearm(&self) {
        for s in &self.specs {
            s.seen.store(0, Ordering::Relaxed);
            s.armed.store(true, Ordering::Relaxed);
        }
    }

    /// The scheduled specs, in insertion order (stable indices — the
    /// process backend mirrors spec `i` into arena slot `i`).
    pub(crate) fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Consult the plan at a trigger point: `pe` is executing one
    /// operation of kind `op`. Every matching armed spec counts the
    /// operation; returns the action of the first spec whose trigger count
    /// is reached, disarming it (one-shot).
    #[must_use]
    pub fn check(&self, pe: usize, op: PeOp) -> Option<FaultAction> {
        let mut fired = None;
        for s in &self.specs {
            if let Some(action) = s.observe(pe, op) {
                fired.get_or_insert(action);
            }
        }
        fired
    }
}

/// Typed panic payload for an injected (or detected) PE death. `launch`
/// downcasts it back into [`SvError::PeFailed`](svsim_types::SvError).
#[derive(Debug, Clone, Copy)]
pub struct PeFailure {
    /// Rank of the PE that died.
    pub pe: usize,
    /// Operation during which it died.
    pub op: PeOp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_disarms_after_firing() {
        let plan = FaultPlan::new().with(1, PeOp::Put, 3, FaultAction::Kill);
        assert_eq!(plan.armed_remaining(), 1);
        assert_eq!(plan.check(1, PeOp::Put), None, "1st put");
        assert_eq!(plan.check(0, PeOp::Put), None, "wrong PE does not count");
        assert_eq!(plan.check(1, PeOp::Get), None, "wrong op does not count");
        assert_eq!(plan.check(1, PeOp::Put), None, "2nd put");
        assert_eq!(plan.check(1, PeOp::Put), Some(FaultAction::Kill), "3rd put");
        assert_eq!(plan.armed_remaining(), 0);
        // One-shot: further matching operations no longer fire or count.
        assert_eq!(plan.check(1, PeOp::Put), None);
        plan.rearm();
        assert_eq!(plan.check(1, PeOp::Put), None);
        assert_eq!(plan.check(1, PeOp::Put), None);
        assert_eq!(plan.check(1, PeOp::Put), Some(FaultAction::Kill));
    }

    #[test]
    fn counts_accumulate_across_launch_boundaries() {
        // The spec owns its counter, so two "launches" (two counting
        // sequences against the same plan) accumulate — a checkpointed
        // run's later segment can hit the trigger.
        let plan = FaultPlan::new().with(0, PeOp::Barrier, 5, FaultAction::Kill);
        for _ in 0..3 {
            assert_eq!(plan.check(0, PeOp::Barrier), None); // segment 1
        }
        assert_eq!(plan.specs[0].progress(), 3);
        assert_eq!(plan.check(0, PeOp::Barrier), None); // segment 2
        assert_eq!(plan.check(0, PeOp::Barrier), Some(FaultAction::Kill));
    }

    #[test]
    fn wildcard_pe_matches_first_arrival() {
        let plan = FaultPlan::new().with(None, PeOp::Barrier, 2, FaultAction::Poison);
        assert_eq!(plan.check(3, PeOp::Barrier), None);
        assert_eq!(plan.check(0, PeOp::Barrier), Some(FaultAction::Poison));
        // Fired once; later operations see nothing.
        assert_eq!(plan.check(1, PeOp::Barrier), None);
    }

    #[test]
    fn hang_and_torn_checkpoint_arm_like_any_action() {
        let plan = FaultPlan::new()
            .with(0, PeOp::Put, 2, FaultAction::Hang)
            .with(None, PeOp::Checkpoint, 1, FaultAction::TornCheckpoint);
        assert_eq!(plan.check(0, PeOp::Put), None);
        assert_eq!(plan.check(0, PeOp::Put), Some(FaultAction::Hang));
        assert_eq!(
            plan.check(0, PeOp::Checkpoint),
            Some(FaultAction::TornCheckpoint)
        );
        assert_eq!(plan.armed_remaining(), 0);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 4, PeOp::Put, FaultAction::Kill);
        let b = FaultPlan::seeded(42, 4, PeOp::Put, FaultAction::Kill);
        assert_eq!(a.specs[0].pe, b.specs[0].pe);
        assert_eq!(a.specs[0].at, b.specs[0].at);
        assert!(a.specs[0].at >= 1);
        let c = FaultPlan::seeded(43, 4, PeOp::Put, FaultAction::Kill);
        // Different seed: almost surely a different trigger point.
        assert!(a.specs[0].pe != c.specs[0].pe || a.specs[0].at != c.specs[0].at);
    }
}
