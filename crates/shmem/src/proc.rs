//! Process-backed SPMD world: PEs as forked OS processes over a shared
//! `memfd` mapping.
//!
//! The thread-backed world of [`crate::world`] models OpenSHMEM faithfully
//! for traffic and synchronization, but its PEs share one address space —
//! a "killed" PE is a panicked thread, not a dead process. This module
//! promotes the symmetric heap to a real OS-shared mapping and the PEs to
//! real processes, which buys the failure mode the paper's scale
//! (Summit/Theta/DGX pods) actually exhibits: a rank can be `kill -9`-ed
//! mid-epoch and the launcher, barrier, and engine recovery path all keep
//! working.
//!
//! The substitution, piece by piece:
//!
//! - **Symmetric heap** — one `memfd_create` + `mmap(MAP_SHARED)` arena,
//!   laid out as a fixed header (barrier words, per-PE epoch/status slots,
//!   traffic counter blocks, collective scratch, an allocation table) plus
//!   a bump-allocated heap of per-PE partitions. Every PE maps the region
//!   at the same address (inherited across `fork`), so the one-sided
//!   accessors are the *same code* as the thread backend — only the words
//!   live in OS-shared memory instead of a process-private `Box`.
//! - **PE launch** — [`launch_process`] forks one child per PE; each child
//!   runs the same closure-driven SPMD body, encodes its result into its
//!   arena slot and `_exit`s. The parent reaps with `waitpid` and maps an
//!   abnormal exit (signal, nonzero code) to a typed
//!   [`SvError::PeFailed`] carrying the signal number and the barrier
//!   epoch the child had reached when it died.
//! - **Barrier** — the same sense-reversing protocol as
//!   [`crate::barrier::SenseBarrier`], rebuilt on arena atomics with a
//!   spin→yield waiter and a bounded-wait timeout, so surviving PEs of a
//!   killed peer fail typed instead of hanging even if the reaper is slow.
//! - **Fault injection** — a [`FaultPlan`]'s one-shot counters are
//!   mirrored into the arena before forking and absorbed back after
//!   reaping, so cross-launch accumulation (checkpoint segments) and
//!   global one-shot disarming behave exactly as in the thread world. An
//!   injected [`FaultAction::Kill`] raises a *real* `SIGKILL` on the
//!   child; a [`FaultAction::Hang`] wedges it without dying.
//! - **Supervision** — the parent runs a supervisor combining WNOHANG
//!   reaping with a progress watchdog over per-PE heartbeat words (bumped
//!   at every barrier epoch, inside barrier waits, at fault points, and in
//!   the respawn park loop). A PE whose heartbeat stalls past
//!   [`ProcOptions::hang_deadline_ms`] is killed and reported as the typed
//!   [`SvError::PeHung`] — distinct from `PeFailed` (a reaped death) and
//!   from [`SvError::BarrierTimeout`] (a bounded barrier wait expiring).
//! - **In-place respawn** — with [`ProcOptions::respawn_max`] > 0, a death
//!   or hang does not tear the world down: surviving PEs park at the
//!   poisoned barrier, the parent resets the arena round state, re-forks
//!   *only* the dead/hung PEs, and every PE re-runs the SPMD body from its
//!   segment-initial state (the body closure captures it, so a re-run is
//!   bit-identical). Fired fault counters stay disarmed across rounds, so
//!   a one-shot fault cannot re-kill the respawned PE.
//!
//! Not supported here (thread-backend only, rejected with typed errors):
//! the vector-clock race detector and `collective_publish` — both are
//! inherently single-address-space (`Arc`s cannot cross a `fork`).

// The process backend is the one place in the workspace that must talk to
// the OS directly (memfd/mmap/fork/waitpid have no std equivalents and the
// workspace is dependency-free). All unsafety is confined to this module
// and the raw-window constructors it calls in `shared`/`metrics`.
#![allow(unsafe_code)]

use crate::barrier::{BarrierToken, BarrierWaitError};
use crate::fault::{FaultAction, FaultPlan};
use crate::metrics::MetricsTable;
use crate::proto::{self, MemOrder, ProtoMem};
use crate::shared::{SharedF64Vec, SharedU64Vec};
use crate::world::{ShmemCtx, SpmdOutput, World};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use svsim_types::{PeOp, SvError, SvResult};

/// Which substrate runs the SPMD PEs of a scale-out job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShmemBackend {
    /// PEs are threads of this process sharing a heap-allocated symmetric
    /// heap (the default; supports race detection and `CheckedSym`).
    #[default]
    Thread,
    /// PEs are forked OS processes sharing a `memfd` arena (true crash
    /// isolation; a PE can be `kill -9`-ed without poisoning the host).
    Process,
}

/// Tuning for a process-backed launch.
#[derive(Debug, Clone)]
pub struct ProcOptions {
    /// Symmetric-heap capacity per PE, in 8-byte words. The arena reserves
    /// `n_pes * heap_words_per_pe` words; collective allocations that
    /// exceed it fail with a typed error instead of growing.
    pub heap_words_per_pe: usize,
    /// Capacity of each PE's result slot in bytes (the encoded return
    /// value of the SPMD body must fit).
    pub result_bytes_per_pe: usize,
    /// Bounded wait for the shared-memory barrier: a waiter that spins
    /// longer than this poisons the barrier and fails typed, so a lost
    /// peer can never hang the world even if the reaper is delayed.
    pub barrier_timeout_ms: u64,
    /// Optional per-PE CPU pinning: PE `i` is pinned to
    /// `cpu_affinity[i % len]` right after the fork. Best effort: a pin
    /// failure is recorded as a launch warning
    /// ([`SpmdOutput::warnings`]) instead of aborting the launch
    /// (affinity is unavailable on many constrained runners). `None`
    /// leaves scheduling to the OS.
    pub cpu_affinity: Option<Vec<usize>>,
    /// Watchdog deadline: a PE whose heartbeat words stall for longer than
    /// this is killed by the parent supervisor and reported as the typed
    /// `SvError::PeHung`. Heartbeats bump at every barrier epoch and
    /// inside barrier waits, so a PE legitimately blocked on a slow peer
    /// never trips the watchdog — only a truly wedged one does.
    pub hang_deadline_ms: u64,
    /// In-place respawn budget: how many recovery rounds the supervisor
    /// may run before giving up. `0` (the default) disables respawn — any
    /// PE failure fails the launch exactly as before. Each round re-forks
    /// only the dead/hung PEs and re-runs the SPMD body on every PE from
    /// its segment-initial state, preserving surviving processes.
    pub respawn_max: u32,
}

impl Default for ProcOptions {
    fn default() -> Self {
        Self {
            heap_words_per_pe: 1 << 16,
            result_bytes_per_pe: 1 << 16,
            barrier_timeout_ms: 30_000,
            cpu_affinity: None,
            hang_deadline_ms: 30_000,
            respawn_max: 0,
        }
    }
}

impl ProcOptions {
    /// Options sized for an SPMD body that allocates about
    /// `words_per_pe` symmetric f64/u64 words and returns about
    /// `result_words_per_pe` words of data per PE (both padded with slack
    /// for headers and alignment).
    #[must_use]
    pub fn sized_for(words_per_pe: usize, result_words_per_pe: usize) -> Self {
        Self {
            heap_words_per_pe: words_per_pe + 1024,
            result_bytes_per_pe: 8 * result_words_per_pe + 4096,
            ..Self::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Raw OS bindings (glibc). The workspace is dependency-free, so the handful
// of syscalls the backend needs are declared directly.
// ---------------------------------------------------------------------------

mod sys {
    //! Minimal glibc bindings + decoded wrappers for the process backend.

    /// OS process id.
    pub type Pid = i32;

    pub const SIGKILL: i32 = 9;
    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 1;
    const MFD_CLOEXEC: u32 = 1;
    const WNOHANG: i32 = 1;

    extern "C" {
        fn memfd_create(name: *const u8, flags: u32) -> i32;
        fn ftruncate(fd: i32, length: i64) -> i32;
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
        fn close(fd: i32) -> i32;
        fn fork() -> Pid;
        fn waitpid(pid: Pid, status: *mut i32, options: i32) -> Pid;
        fn kill(pid: Pid, sig: i32) -> i32;
        fn getpid() -> Pid;
        fn _exit(code: i32) -> !;
        fn sched_setaffinity(pid: Pid, cpusetsize: usize, mask: *const u64) -> i32;
        fn __errno_location() -> *mut i32;
    }

    fn errno() -> i32 {
        // SAFETY: glibc guarantees a valid thread-local errno pointer.
        unsafe { *__errno_location() }
    }

    /// Create an anonymous shared memory file of `bytes` bytes, map it
    /// `MAP_SHARED`, and close the fd immediately — forked children
    /// inherit the *mapping*, not the descriptor, so repeated launches
    /// cannot leak memfds by construction.
    pub fn map_shared_memfd(bytes: usize) -> Result<*mut u8, String> {
        // SAFETY: plain syscalls; the name is NUL-terminated and static.
        unsafe {
            let fd = memfd_create(c"svsim-symheap".as_ptr().cast(), MFD_CLOEXEC);
            if fd < 0 {
                return Err(format!("memfd_create failed (errno {})", errno()));
            }
            if ftruncate(fd, bytes as i64) != 0 {
                let e = errno();
                close(fd);
                return Err(format!("ftruncate({bytes}) failed (errno {e})"));
            }
            let p = mmap(
                std::ptr::null_mut(),
                bytes,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            );
            close(fd);
            if p as isize == -1 {
                return Err(format!("mmap({bytes}) failed (errno {})", errno()));
            }
            Ok(p)
        }
    }

    /// Unmap a region produced by [`map_shared_memfd`].
    pub fn unmap(base: *mut u8, bytes: usize) {
        // SAFETY: only called from ShmArena::drop with its own mapping.
        unsafe {
            let _ = munmap(base, bytes);
        }
    }

    /// Fork: `Ok(0)` in the child, `Ok(pid)` in the parent.
    pub fn spawn() -> Result<Pid, String> {
        // SAFETY: plain fork; the child only runs the async-signal-tolerant
        // SPMD body and never returns to the caller's frame.
        let pid = unsafe { fork() };
        if pid < 0 {
            Err(format!("fork failed (errno {})", errno()))
        } else {
            Ok(pid)
        }
    }

    /// One non-blocking wait status probe.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Wait {
        /// Child still running.
        Running,
        /// Child exited normally with this code.
        Exited(i32),
        /// Child was killed by this signal.
        Signaled(i32),
        /// `waitpid` itself failed with this errno.
        Failed(i32),
    }

    /// Non-blocking `waitpid(pid, WNOHANG)` with the status decoded.
    pub fn try_wait(pid: Pid) -> Wait {
        let mut status: i32 = 0;
        // SAFETY: status points at a live i32.
        let r = unsafe { waitpid(pid, &mut status, WNOHANG) };
        if r == 0 {
            Wait::Running
        } else if r == pid {
            if status & 0x7f == 0 {
                Wait::Exited((status >> 8) & 0xff)
            } else {
                Wait::Signaled(status & 0x7f)
            }
        } else {
            Wait::Failed(errno())
        }
    }

    /// Blocking wait, ignoring the status (cleanup paths).
    pub fn wait_discard(pid: Pid) {
        let mut status: i32 = 0;
        // SAFETY: status points at a live i32.
        let _ = unsafe { waitpid(pid, &mut status, 0) };
    }

    /// Send a signal to a process (cleanup paths).
    pub fn kill_process(pid: Pid, sig: i32) {
        // SAFETY: plain kill on a child we spawned.
        let _ = unsafe { kill(pid, sig) };
    }

    /// Terminate the calling process with a real `SIGKILL` — the injected
    /// [`crate::FaultAction::Kill`] of the process backend. Never returns.
    pub fn die_by_sigkill() -> ! {
        // SAFETY: kill(self, SIGKILL) does not return; _exit is the
        // unreachable fallback that keeps the signature honest.
        unsafe {
            let _ = kill(getpid(), SIGKILL);
            _exit(137)
        }
    }

    /// `_exit` without running destructors or atexit handlers — the only
    /// safe way out of a forked child that shares pages with its parent.
    pub fn exit_now(code: i32) -> ! {
        // SAFETY: plain _exit.
        unsafe { _exit(code) }
    }

    /// Best-effort pin of the calling process to one CPU. `Err(errno)` on
    /// failure (including a cpu index beyond the 1024-CPU mask, reported
    /// as `EINVAL` just as the kernel would).
    pub fn pin_to_cpu(cpu: usize) -> Result<(), i32> {
        const EINVAL: i32 = 22;
        let mut mask = [0u64; 16]; // 1024-CPU cpu_set_t
        if cpu >= 1024 {
            return Err(EINVAL);
        }
        mask[cpu / 64] |= 1 << (cpu % 64);
        // SAFETY: mask is a live 128-byte buffer, the cpu_set_t size.
        if unsafe { sched_setaffinity(0, 128, mask.as_ptr()) } == 0 {
            Ok(())
        } else {
            Err(errno())
        }
    }
}

// ---------------------------------------------------------------------------
// Arena: the memfd-backed symmetric heap and its fixed header.
// ---------------------------------------------------------------------------

/// Max collective allocations per element kind per launch.
const MAX_ALLOCS: usize = 64;
/// Max fault specs mirrored into the arena.
const MAX_FAULT_SPECS: usize = 64;
/// Words per 128-byte block (cache-line pair padding).
const BLOCK_WORDS: usize = 16;
/// Child result slot states (a zeroed slot means still pending).
const RESULT_DONE: u64 = 1;
const RESULT_OVERFLOW: u64 = 2;

/// The `MAP_SHARED` region. Dropping the last handle unmaps it; the kernel
/// frees the memfd pages once no mapping remains in any PE.
#[derive(Debug)]
pub(crate) struct ShmArena {
    base: *mut u8,
    bytes: usize,
}

// SAFETY: the mapping is valid for the arena's lifetime and all word
// access goes through atomics (or happens-before-ordered byte copies).
unsafe impl Send for ShmArena {}
unsafe impl Sync for ShmArena {}

impl ShmArena {
    fn create(bytes: usize) -> SvResult<Self> {
        let base = sys::map_shared_memfd(bytes)
            .map_err(|e| SvError::Shmem(format!("process world arena: {e}")))?;
        Ok(Self { base, bytes })
    }

    /// The `idx`-th 8-byte word as an atomic.
    #[inline]
    fn word(&self, idx: usize) -> &AtomicU64 {
        assert!((idx + 1) * 8 <= self.bytes, "arena word {idx} out of range");
        // SAFETY: in-bounds (asserted), 8-aligned (mmap is page-aligned and
        // idx counts whole words), and the mapping lives as long as self.
        unsafe { &*self.base.add(idx * 8).cast::<AtomicU64>() }
    }

    /// Raw pointer to the `idx`-th word (for shared-buffer windows).
    #[inline]
    fn word_ptr(&self, idx: usize) -> *const AtomicU64 {
        assert!((idx + 1) * 8 <= self.bytes, "arena word {idx} out of range");
        // SAFETY: in-bounds per the assert.
        unsafe { self.base.add(idx * 8).cast::<AtomicU64>() }
    }

    /// Raw byte pointer at `off` (result-slot copies).
    #[inline]
    fn byte_ptr(&self, off: usize, len: usize) -> *mut u8 {
        assert!(off + len <= self.bytes, "arena bytes out of range");
        // SAFETY: in-bounds per the assert.
        unsafe { self.base.add(off) }
    }
}

impl Drop for ShmArena {
    fn drop(&mut self) {
        sys::unmap(self.base, self.bytes);
    }
}

/// Word/byte offsets of every arena section.
#[derive(Debug, Clone)]
struct ArenaLayout {
    n_pes: usize,
    heap_words_per_pe: usize,
    result_bytes_per_pe: usize,
    w_bump: usize,
    w_bar_count: usize,
    w_bar_sense: usize,
    w_bar_poison: usize,
    w_f64_table: usize,
    w_u64_table: usize,
    w_epochs: usize,
    w_status: usize,
    w_heartbeats: usize,
    w_warn: usize,
    w_round: usize,
    w_abort: usize,
    w_round_ack: usize,
    w_faults: usize,
    w_coll_f64: usize,
    w_coll_u64: usize,
    w_counters: usize,
    w_heap: usize,
    b_results: usize,
    total_bytes: usize,
}

fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

impl ArenaLayout {
    fn new(n_pes: usize, opts: &ProcOptions) -> Self {
        fn take(w: &mut usize, words: usize) -> usize {
            let at = *w;
            *w += words;
            at
        }
        let mut w = 0usize;
        let _magic_and_npes = take(&mut w, 2);
        let w_bump = take(&mut w, 1);
        w = round_up(w, BLOCK_WORDS);
        let w_bar_count = take(&mut w, 1);
        let w_bar_sense = take(&mut w, 1);
        let w_bar_poison = take(&mut w, 1);
        w = round_up(w, BLOCK_WORDS);
        let w_f64_table = take(&mut w, MAX_ALLOCS * 3);
        let w_u64_table = take(&mut w, MAX_ALLOCS * 3);
        let w_epochs = take(&mut w, n_pes);
        let w_status = take(&mut w, n_pes * 2);
        let w_heartbeats = take(&mut w, n_pes);
        let w_warn = take(&mut w, n_pes);
        let w_round = take(&mut w, 1);
        let w_abort = take(&mut w, 1);
        let w_round_ack = take(&mut w, n_pes);
        let w_faults = take(&mut w, MAX_FAULT_SPECS * 2);
        let w_coll_f64 = take(&mut w, n_pes);
        let w_coll_u64 = take(&mut w, n_pes);
        w = round_up(w, BLOCK_WORDS);
        let w_counters = take(&mut w, n_pes * BLOCK_WORDS);
        w = round_up(w, BLOCK_WORDS);
        let w_heap = take(&mut w, n_pes * opts.heap_words_per_pe);
        let b_results = round_up(w * 8, 128);
        let total_bytes = round_up(b_results + n_pes * opts.result_bytes_per_pe, 4096);
        Self {
            n_pes,
            heap_words_per_pe: opts.heap_words_per_pe,
            result_bytes_per_pe: opts.result_bytes_per_pe,
            w_bump,
            w_bar_count,
            w_bar_sense,
            w_bar_poison,
            w_f64_table,
            w_u64_table,
            w_epochs,
            w_status,
            w_heartbeats,
            w_warn,
            w_round,
            w_abort,
            w_round_ack,
            w_faults,
            w_coll_f64,
            w_coll_u64,
            w_counters,
            w_heap,
            b_results,
            total_bytes,
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol-slot views of the arena.
// ---------------------------------------------------------------------------

/// A [`ProtoMem`] window over the arena: logical protocol slot `i` maps
/// to arena word `map[i]`. This is how the production process backend
/// instantiates the pure state machines of [`crate::proto`] — the model
/// checker instantiates the *same machines* over a model vector instead.
#[derive(Debug)]
struct ArenaWords<'a, const K: usize> {
    arena: &'a ShmArena,
    map: [usize; K],
}

/// As [`ArenaWords`], for protocols whose slot count depends on `n_pes`
/// (the respawn round handshake carries one ack slot per PE).
#[derive(Debug)]
struct ArenaVecWords<'a> {
    arena: &'a ShmArena,
    map: Vec<usize>,
}

macro_rules! impl_arena_protomem {
    ($({$($gen:tt)*})? $ty:ty) => {
        impl $(<$($gen)*>)? ProtoMem for $ty {
            #[inline]
            fn load(&self, slot: usize, order: MemOrder) -> u64 {
                self.arena.word(self.map[slot]).load(order.to_atomic())
            }

            #[inline]
            fn store(&self, slot: usize, v: u64, order: MemOrder) {
                self.arena.word(self.map[slot]).store(v, order.to_atomic());
            }

            #[inline]
            fn fetch_add(&self, slot: usize, delta: u64, order: MemOrder) -> u64 {
                self.arena
                    .word(self.map[slot])
                    .fetch_add(delta, order.to_atomic())
            }

            #[inline]
            fn compare_exchange(
                &self,
                slot: usize,
                current: u64,
                new: u64,
                order: MemOrder,
            ) -> Result<u64, u64> {
                self.arena.word(self.map[slot]).compare_exchange(
                    current,
                    new,
                    order.to_atomic(),
                    Ordering::Relaxed,
                )
            }
        }
    };
}

impl_arena_protomem!({const K: usize} ArenaWords<'_, K>);
impl_arena_protomem!(ArenaVecWords<'_>);

// ---------------------------------------------------------------------------
// Barrier over arena words.
// ---------------------------------------------------------------------------

/// Sense-reversing barrier on shared-arena atomics, with a spin→yield
/// waiter and a bounded-wait timeout. Reproduces
/// [`crate::barrier::SenseBarrier::try_wait`]'s exact epoch semantics —
/// including the released-epoch rule: an epoch that fully released before
/// a poison landed still completes, so every PE observes a failure in the
/// *same* epoch (the first one that can no longer finish).
#[derive(Debug)]
pub(crate) struct ProcBarrier {
    arena: Arc<ShmArena>,
    w_count: usize,
    w_sense: usize,
    w_poison: usize,
    w_heartbeats: usize,
    n: u64,
    timeout: Duration,
}

impl ProcBarrier {
    pub(crate) fn try_wait(
        &self,
        token: &mut BarrierToken,
        pe: usize,
    ) -> Result<(), BarrierWaitError> {
        let heartbeat = self.arena.word(self.w_heartbeats + pe);
        heartbeat.fetch_add(1, Ordering::Relaxed);
        let mem = ArenaWords {
            arena: &self.arena,
            map: [self.w_count, self.w_sense, self.w_poison],
        };
        // timeout_recheck: the expiry is one decisive compare-exchange,
        // so a bounded wait that loses its race against the release
        // reports the release — the model checker proved the old blind
        // poison could fail an epoch a peer had already completed.
        let sm = proto::bar::BarrierSm {
            n: self.n,
            timeout_recheck: true,
        };
        let mut actor = proto::bar::Actor::new(token.sense());
        let mut spins = 0u32;
        let mut wait: Option<(Instant, Instant)> = None;
        loop {
            match sm.step(&mut actor, &mem) {
                proto::bar::Step::Released => {
                    token.set_sense(actor.sense());
                    return Ok(());
                }
                proto::bar::Step::Poisoned => return Err(BarrierWaitError::Poisoned),
                proto::bar::Step::TimedOut => {
                    // Bounded wait: a peer is gone and nobody told us. The
                    // machine poisoned the barrier so the whole world fails
                    // typed, us included, instead of hanging — and the
                    // expiry is reported as a *timeout*, not a peer death.
                    let (started, _) = wait.unwrap_or_else(|| {
                        let now = Instant::now();
                        (now, now)
                    });
                    return Err(BarrierWaitError::TimedOut {
                        waited: started.elapsed(),
                    });
                }
                proto::bar::Step::Pending => {
                    if !actor.is_waiting() {
                        continue;
                    }
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        // One core may host every PE process: yield or the
                        // releasing PE never runs. Waiting here is progress —
                        // keep the heartbeat alive so the parent watchdog
                        // only ever flags a PE that is truly wedged, never
                        // one legitimately blocked on a slow peer.
                        std::thread::yield_now();
                        heartbeat.fetch_add(1, Ordering::Relaxed);
                        let (_, d) = *wait.get_or_insert_with(|| {
                            let now = Instant::now();
                            (now, now + self.timeout)
                        });
                        if Instant::now() > d {
                            sm.request_timeout(&mut actor);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn poison(&self) {
        proto::bar::post_poison(&ArenaWords {
            arena: &self.arena,
            map: [self.w_count, self.w_sense, self.w_poison],
        });
    }
}

// ---------------------------------------------------------------------------
// Arena-mirrored fault plan.
// ---------------------------------------------------------------------------

/// A [`FaultPlan`] view whose one-shot counters live in the arena, so all
/// PE processes count against the *same* words (a process-private copy
/// would let every child fire its own copy of a wildcard fault).
#[derive(Debug)]
pub(crate) struct ArenaFaults {
    arena: Arc<ShmArena>,
    base: usize,
    specs: Vec<(Option<usize>, PeOp, u64, FaultAction)>,
}

impl ArenaFaults {
    /// Mirror of [`FaultPlan::check`] against the arena counters, driving
    /// the shared [`proto::fault`] machine per matching spec (the CAS
    /// disarm is what makes a wildcard one-shot fire exactly once
    /// world-wide; the model checker proves it under every interleaving).
    pub(crate) fn check(&self, pe: usize, op: PeOp) -> Option<FaultAction> {
        let mut fired = None;
        for (i, &(spec_pe, spec_op, at, action)) in self.specs.iter().enumerate() {
            if spec_op != op || spec_pe.is_some_and(|p| p != pe) {
                continue;
            }
            let mem = ArenaWords {
                arena: &self.arena,
                map: [self.base + 2 * i, self.base + 2 * i + 1],
            };
            let mut check = proto::fault::Check::new(at);
            loop {
                match check.step(&mem) {
                    proto::fault::Step::Pending => {}
                    proto::fault::Step::Fired => {
                        fired.get_or_insert(action);
                        break;
                    }
                    proto::fault::Step::Skip
                    | proto::fault::Step::Counted
                    | proto::fault::Step::Lost => break,
                }
            }
        }
        fired
    }
}

// ---------------------------------------------------------------------------
// ProcWorld: everything world.rs needs to run over the arena.
// ---------------------------------------------------------------------------

/// The process-backed world state: arena handle + layout. Lives inside
/// [`World`] and is inherited by every forked PE (same mapping, same
/// addresses).
#[derive(Debug)]
pub(crate) struct ProcWorld {
    arena: Arc<ShmArena>,
    layout: ArenaLayout,
    timeout: Duration,
}

impl ProcWorld {
    fn new(n_pes: usize, opts: &ProcOptions) -> SvResult<Self> {
        let layout = ArenaLayout::new(n_pes, opts);
        let arena = Arc::new(ShmArena::create(layout.total_bytes)?);
        arena
            .word(0)
            .store(0x5653_494d_5348_4d00, Ordering::Relaxed); // "SVSIMSHM"
        arena.word(1).store(n_pes as u64, Ordering::Relaxed);
        Ok(Self {
            arena,
            layout,
            timeout: Duration::from_millis(opts.barrier_timeout_ms.max(1)),
        })
    }

    fn keepalive(&self) -> Arc<dyn Any + Send + Sync> {
        Arc::clone(&self.arena) as Arc<dyn Any + Send + Sync>
    }

    pub(crate) fn barrier(&self) -> ProcBarrier {
        ProcBarrier {
            arena: Arc::clone(&self.arena),
            w_count: self.layout.w_bar_count,
            w_sense: self.layout.w_bar_sense,
            w_poison: self.layout.w_bar_poison,
            w_heartbeats: self.layout.w_heartbeats,
            n: self.layout.n_pes as u64,
            timeout: self.timeout,
        }
    }

    pub(crate) fn metrics_table(&self) -> MetricsTable {
        // SAFETY: the counter blocks are zero-initialized, 128-byte
        // strided, in a mapping the owning World keeps alive.
        unsafe {
            MetricsTable::from_raw(
                self.arena.byte_ptr(
                    self.layout.w_counters * 8,
                    self.layout.n_pes * BLOCK_WORDS * 8,
                ),
                self.layout.n_pes,
                BLOCK_WORDS * 8,
            )
        }
    }

    pub(crate) fn coll_f64(&self) -> SharedF64Vec {
        // SAFETY: n_pes zeroed words inside the arena, pinned by keepalive.
        unsafe {
            SharedF64Vec::from_raw(
                self.arena.word_ptr(self.layout.w_coll_f64),
                self.layout.n_pes,
                self.keepalive(),
            )
        }
    }

    pub(crate) fn coll_u64(&self) -> SharedU64Vec {
        // SAFETY: as coll_f64.
        unsafe {
            SharedU64Vec::from_raw(
                self.arena.word_ptr(self.layout.w_coll_u64),
                self.layout.n_pes,
                self.keepalive(),
            )
        }
    }

    /// Record that `pe` completed barrier epoch `epoch` (read back by the
    /// reaper to stamp epoch-at-death on abnormal exits).
    pub(crate) fn set_epoch(&self, pe: usize, epoch: u64) {
        self.arena
            .word(self.layout.w_epochs + pe)
            .store(epoch, Ordering::Relaxed);
    }

    fn epoch(&self, pe: usize) -> u64 {
        self.arena
            .word(self.layout.w_epochs + pe)
            .load(Ordering::Relaxed)
    }

    /// Bump `pe`'s progress heartbeat — called at barrier epochs, inside
    /// barrier waits, at fault points and in the respawn park loop, so the
    /// parent watchdog only ever flags a PE that is truly wedged.
    ///
    /// Ordering audit (ISSUE 9): `Relaxed` is correct here. A heartbeat
    /// word is a monotonic progress counter that only the owning PE
    /// writes; the watchdog compares successive reads of the *same* word
    /// for inequality and never infers anything about other memory from
    /// the value, so no acquire/release edge is needed. Single-word RMW
    /// atomicity (which `Relaxed` already guarantees) is the whole
    /// contract. The false-positive direction (a bump the watchdog sees
    /// "late") only delays the stall verdict by one poll interval — it
    /// cannot kill a live PE, because the next poll re-reads the word.
    pub(crate) fn heartbeat(&self, pe: usize) {
        self.arena
            .word(self.layout.w_heartbeats + pe)
            .fetch_add(1, Ordering::Relaxed);
    }

    fn read_heartbeat(&self, pe: usize) -> u64 {
        self.arena
            .word(self.layout.w_heartbeats + pe)
            .load(Ordering::Relaxed)
    }

    /// Record a non-fatal per-PE launch warning (an errno; `0` = none).
    fn set_warn(&self, pe: usize, errno: i32) {
        self.arena
            .word(self.layout.w_warn + pe)
            .store(errno as u64, Ordering::Release);
    }

    fn read_warn(&self, pe: usize) -> u64 {
        self.arena
            .word(self.layout.w_warn + pe)
            .load(Ordering::Acquire)
    }

    fn barrier_poisoned(&self) -> bool {
        proto::bar::is_poisoned(&ArenaWords {
            arena: &self.arena,
            map: [
                self.layout.w_bar_count,
                self.layout.w_bar_sense,
                self.layout.w_bar_poison,
            ],
        })
    }

    /// The [`ProtoMem`] window of the respawn round handshake: round and
    /// abort words, the barrier triple the supervisor resets, then one
    /// ack slot per PE — the slot order [`proto::round`] expects.
    fn round_mem(&self) -> ArenaVecWords<'_> {
        let l = &self.layout;
        let mut map = vec![
            l.w_round,
            l.w_abort,
            l.w_bar_count,
            l.w_bar_sense,
            l.w_bar_poison,
        ];
        map.extend((0..l.n_pes).map(|pe| l.w_round_ack + pe));
        ArenaVecWords {
            arena: &self.arena,
            map,
        }
    }

    /// Current respawn round (generation counter; bumped by the parent to
    /// release parked survivors into a re-run).
    fn round(&self) -> u64 {
        self.arena.word(self.layout.w_round).load(Ordering::Acquire)
    }

    fn set_abort(&self) {
        proto::round::post_abort(&self.round_mem());
    }

    fn abort(&self) -> bool {
        self.arena.word(self.layout.w_abort).load(Ordering::Acquire) != 0
    }

    /// Reset the per-round arena state for an in-place respawn: the heap
    /// bump pointer, both allocation tables, epochs and result slots all
    /// go back to launch-initial values so the re-run of the SPMD body
    /// allocates and synchronizes exactly as the first run did. The
    /// barrier words are *not* reset here — that is the release
    /// machine's job ([`proto::round::Release`]), which orders them
    /// before the round bump that publishes everything to survivors.
    /// Heartbeats, traffic counters, warnings, and fault mirrors are
    /// deliberately *not* reset — they are monotonic across rounds (fired
    /// faults stay disarmed, so a one-shot fault cannot re-fire).
    ///
    /// Only called while every surviving PE is parked (acknowledged) and
    /// every dead PE is reaped, so nothing races these plain stores.
    fn reset_tables_for_round(&self) {
        let l = &self.layout;
        self.arena.word(l.w_bump).store(0, Ordering::Relaxed);
        for t in [l.w_f64_table, l.w_u64_table] {
            for i in 0..MAX_ALLOCS * 3 {
                self.arena.word(t + i).store(0, Ordering::Relaxed);
            }
        }
        for pe in 0..l.n_pes {
            self.arena.word(l.w_epochs + pe).store(0, Ordering::Relaxed);
            self.arena
                .word(l.w_status + pe * 2)
                .store(0, Ordering::Relaxed);
            self.arena
                .word(l.w_status + pe * 2 + 1)
                .store(0, Ordering::Relaxed);
            self.arena
                .word(l.w_coll_f64 + pe)
                .store(0, Ordering::Relaxed);
            self.arena
                .word(l.w_coll_u64 + pe)
                .store(0, Ordering::Release);
        }
    }

    fn table_base(&self, is_f64: bool) -> usize {
        if is_f64 {
            self.layout.w_f64_table
        } else {
            self.layout.w_u64_table
        }
    }

    /// The [`ProtoMem`] window of allocation entry `seq`: the shared bump
    /// pointer plus the entry's `{len, off, ready}` table triple, in the
    /// slot order [`proto::alloc`] expects.
    fn alloc_mem(&self, is_f64: bool, seq: usize) -> ArenaWords<'_, 4> {
        let entry = self.table_base(is_f64) + seq * 3;
        ArenaWords {
            arena: &self.arena,
            map: [self.layout.w_bump, entry, entry + 1, entry + 2],
        }
    }

    /// PE 0 publishes collective allocation `seq`: bump-allocate
    /// `n_pes * len_per_pe` words and expose `{len, offset}` in the
    /// table, driving the shared [`proto::alloc::Publish`] machine (the
    /// ready flag's release store is what makes a concurrent observer
    /// see the entry fully published or not at all).
    pub(crate) fn publish_alloc(
        &self,
        is_f64: bool,
        seq: usize,
        len_per_pe: usize,
    ) -> SvResult<()> {
        if seq >= MAX_ALLOCS {
            return Err(SvError::Shmem(format!(
                "process world: more than {MAX_ALLOCS} collective allocations"
            )));
        }
        let need = len_per_pe * self.layout.n_pes;
        let cap = self.layout.n_pes * self.layout.heap_words_per_pe;
        let mem = self.alloc_mem(is_f64, seq);
        let mut publish = proto::alloc::Publish::new(
            need as u64,
            cap as u64,
            len_per_pe as u64,
            self.layout.w_heap as u64,
        );
        loop {
            match publish.step(&mem) {
                proto::alloc::PublishStep::Pending => {}
                proto::alloc::PublishStep::Published(_) => return Ok(()),
                proto::alloc::PublishStep::Exhausted { used } => {
                    return Err(SvError::Shmem(format!(
                        "process world: symmetric heap exhausted ({used} + {need} > {cap} words)"
                    )));
                }
            }
        }
    }

    /// Every PE resolves allocation `seq` after the collective barrier,
    /// driving the shared [`proto::alloc::Lookup`] machine.
    pub(crate) fn lookup_alloc(
        &self,
        pe: usize,
        is_f64: bool,
        seq: usize,
        len_per_pe: usize,
    ) -> SvResult<usize> {
        if seq >= MAX_ALLOCS {
            return Err(SvError::Shmem(format!(
                "process world: more than {MAX_ALLOCS} collective allocations"
            )));
        }
        let mem = self.alloc_mem(is_f64, seq);
        let mut lookup = proto::alloc::Lookup::new(len_per_pe as u64);
        loop {
            match lookup.step(&mem) {
                proto::alloc::LookupStep::Pending => {}
                #[allow(clippy::cast_possible_truncation)]
                proto::alloc::LookupStep::Resolved(off) => return Ok(off as usize),
                proto::alloc::LookupStep::NotPublished => {
                    return Err(SvError::Shmem(format!(
                        "PE {pe}: allocation #{seq} was never published \
                         (collective call order violated)"
                    )));
                }
                proto::alloc::LookupStep::Mismatch { .. } => {
                    return Err(SvError::Shmem(format!(
                        "PE {pe}: collective allocation #{seq} size mismatch \
                         (collective call order violated)"
                    )));
                }
            }
        }
    }

    /// Per-PE partition windows of an allocation resolved by
    /// [`lookup_alloc`].
    pub(crate) fn f64_partitions(&self, off_words: usize, len_per_pe: usize) -> Vec<SharedF64Vec> {
        (0..self.layout.n_pes)
            .map(|p| {
                // SAFETY: the window was bump-allocated inside the heap
                // region (publish_alloc checked capacity) and the arena is
                // pinned by the keepalive.
                unsafe {
                    SharedF64Vec::from_raw(
                        self.arena.word_ptr(off_words + p * len_per_pe),
                        len_per_pe,
                        self.keepalive(),
                    )
                }
            })
            .collect()
    }

    /// As [`f64_partitions`](Self::f64_partitions), for `u64` words.
    pub(crate) fn u64_partitions(&self, off_words: usize, len_per_pe: usize) -> Vec<SharedU64Vec> {
        (0..self.layout.n_pes)
            .map(|p| {
                // SAFETY: as f64_partitions.
                unsafe {
                    SharedU64Vec::from_raw(
                        self.arena.word_ptr(off_words + p * len_per_pe),
                        len_per_pe,
                        self.keepalive(),
                    )
                }
            })
            .collect()
    }

    fn write_result(&self, pe: usize, bytes: &[u8]) -> bool {
        let status = self.arena.word(self.layout.w_status + pe * 2);
        if bytes.len() > self.layout.result_bytes_per_pe {
            status.store(RESULT_OVERFLOW, Ordering::Release);
            return false;
        }
        let dst = self.arena.byte_ptr(
            self.layout.b_results + pe * self.layout.result_bytes_per_pe,
            bytes.len(),
        );
        // SAFETY: dst is an in-bounds, PE-exclusive slot; the Release store
        // of the status word below publishes the bytes to the reaper.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst, bytes.len());
        }
        self.arena
            .word(self.layout.w_status + pe * 2 + 1)
            .store(bytes.len() as u64, Ordering::Relaxed);
        status.store(RESULT_DONE, Ordering::Release);
        true
    }

    fn read_result(&self, pe: usize) -> Option<Vec<u8>> {
        let status = self
            .arena
            .word(self.layout.w_status + pe * 2)
            .load(Ordering::Acquire);
        if status != RESULT_DONE {
            return None;
        }
        let len = self
            .arena
            .word(self.layout.w_status + pe * 2 + 1)
            .load(Ordering::Relaxed) as usize;
        if len > self.layout.result_bytes_per_pe {
            return None;
        }
        let src = self.arena.byte_ptr(
            self.layout.b_results + pe * self.layout.result_bytes_per_pe,
            len,
        );
        let mut out = vec![0u8; len];
        // SAFETY: in-bounds slot; the Acquire load of the status word
        // ordered these bytes before this copy.
        unsafe {
            std::ptr::copy_nonoverlapping(src, out.as_mut_ptr(), len);
        }
        Some(out)
    }

    fn seed_faults(&self, plan: &FaultPlan) -> SvResult<()> {
        if plan.specs().len() > MAX_FAULT_SPECS {
            return Err(SvError::Shmem(format!(
                "process world: more than {MAX_FAULT_SPECS} fault specs"
            )));
        }
        for (i, s) in plan.specs().iter().enumerate() {
            let (seen, armed) = s.state();
            self.arena
                .word(self.layout.w_faults + 2 * i)
                .store(seen, Ordering::Relaxed);
            self.arena
                .word(self.layout.w_faults + 2 * i + 1)
                .store(u64::from(armed), Ordering::Release);
        }
        Ok(())
    }

    fn absorb_faults(&self, plan: &FaultPlan) {
        for (i, s) in plan.specs().iter().enumerate() {
            let seen = self
                .arena
                .word(self.layout.w_faults + 2 * i)
                .load(Ordering::Acquire);
            let armed = self
                .arena
                .word(self.layout.w_faults + 2 * i + 1)
                .load(Ordering::Acquire)
                != 0;
            s.set_state(seen, armed);
        }
    }

    pub(crate) fn arena_faults(&self, plan: &FaultPlan) -> ArenaFaults {
        ArenaFaults {
            arena: Arc::clone(&self.arena),
            base: self.layout.w_faults,
            specs: plan
                .specs()
                .iter()
                .map(|s| (s.pe, s.op, s.at, s.action))
                .collect(),
        }
    }
}

/// Raise a real `SIGKILL` on the calling PE process (the process-backed
/// meaning of [`FaultAction::Kill`]). Never returns.
pub(crate) fn die_by_sigkill() -> ! {
    sys::die_by_sigkill()
}

// ---------------------------------------------------------------------------
// Wire codec: child → parent results without serde.
// ---------------------------------------------------------------------------

/// Self-describing little-endian encoding for values that cross the
/// child→parent result channel of [`launch_process`]. Implemented for the
/// primitives, strings, vectors, tuples, `Result`, and the workspace error
/// type — everything an SPMD body in this codebase returns.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the front of `buf`, advancing it. `None` on
    /// truncated or malformed input.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

fn take_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &mut &[u8]) -> Option<u64> {
    take_bytes(buf, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        get_u64(buf)
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self as u64);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        get_u64(buf).map(|v| v as usize)
    }
}

impl Wire for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self as u64);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        get_u64(buf).map(|v| v as i64)
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        take_bytes(buf, 1).map(|b| b[0] != 0)
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.to_bits());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        get_u64(buf).map(f64::from_bits)
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = get_u64(buf)? as usize;
        let bytes = take_bytes(buf, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl Wire for Vec<f64> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        for v in self {
            put_u64(out, v.to_bits());
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = get_u64(buf)? as usize;
        if buf.len() < len.checked_mul(8)? {
            return None;
        }
        (0..len).map(|_| get_u64(buf).map(f64::from_bits)).collect()
    }
}

impl Wire for Vec<u64> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        for v in self {
            put_u64(out, *v);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = get_u64(buf)? as usize;
        if buf.len() < len.checked_mul(8)? {
            return None;
        }
        (0..len).map(|_| get_u64(buf)).collect()
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl<T: Wire, E: Wire> Wire for Result<T, E> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(0);
                v.encode(out);
            }
            Err(e) => {
                out.push(1);
                e.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match take_bytes(buf, 1)?[0] {
            0 => Some(Ok(T::decode(buf)?)),
            1 => Some(Err(E::decode(buf)?)),
            _ => None,
        }
    }
}

impl Wire for PeOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Self::Put => out.push(0),
            Self::Get => out.push(1),
            Self::Barrier => out.push(2),
            Self::Exec => out.push(3),
            Self::Checkpoint => out.push(5),
            Self::Term {
                signal,
                code,
                epoch,
            } => {
                out.push(4);
                i64::from(*signal).encode(out);
                i64::from(*code).encode(out);
                epoch.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match take_bytes(buf, 1)?[0] {
            0 => Some(Self::Put),
            1 => Some(Self::Get),
            2 => Some(Self::Barrier),
            3 => Some(Self::Exec),
            4 => {
                let signal = i32::try_from(i64::decode(buf)?).ok()?;
                let code = i32::try_from(i64::decode(buf)?).ok()?;
                let epoch = u64::decode(buf)?;
                Some(Self::Term {
                    signal,
                    code,
                    epoch,
                })
            }
            5 => Some(Self::Checkpoint),
            _ => None,
        }
    }
}

impl Wire for SvError {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Self::QubitOutOfRange { qubit, n_qubits } => {
                out.push(0);
                qubit.encode(out);
                n_qubits.encode(out);
            }
            Self::DuplicateQubit { qubit } => {
                out.push(1);
                qubit.encode(out);
            }
            Self::InvalidConfig(msg) => {
                out.push(2);
                msg.encode(out);
            }
            Self::Parse { line, col, msg } => {
                out.push(3);
                line.encode(out);
                col.encode(out);
                msg.encode(out);
            }
            Self::Undefined(name) => {
                out.push(4);
                name.encode(out);
            }
            Self::Arity {
                gate,
                expected,
                got,
            } => {
                out.push(5);
                gate.encode(out);
                expected.encode(out);
                got.encode(out);
            }
            Self::Shmem(msg) => {
                out.push(6);
                msg.encode(out);
            }
            Self::PeFailed { pe, op } => {
                out.push(7);
                pe.encode(out);
                op.encode(out);
            }
            Self::Numeric(msg) => {
                out.push(8);
                msg.encode(out);
            }
            Self::PeHung {
                pe,
                epoch,
                stalled_ms,
            } => {
                out.push(9);
                pe.encode(out);
                epoch.encode(out);
                stalled_ms.encode(out);
            }
            Self::BarrierTimeout {
                pe,
                epoch,
                waited_ms,
            } => {
                out.push(10);
                pe.encode(out);
                epoch.encode(out);
                waited_ms.encode(out);
            }
            Self::Checkpoint(msg) => {
                out.push(11);
                msg.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match take_bytes(buf, 1)?[0] {
            0 => Some(Self::QubitOutOfRange {
                qubit: u64::decode(buf)?,
                n_qubits: u64::decode(buf)?,
            }),
            1 => Some(Self::DuplicateQubit {
                qubit: u64::decode(buf)?,
            }),
            2 => Some(Self::InvalidConfig(String::decode(buf)?)),
            3 => Some(Self::Parse {
                line: usize::decode(buf)?,
                col: usize::decode(buf)?,
                msg: String::decode(buf)?,
            }),
            4 => Some(Self::Undefined(String::decode(buf)?)),
            5 => Some(Self::Arity {
                gate: String::decode(buf)?,
                expected: usize::decode(buf)?,
                got: usize::decode(buf)?,
            }),
            6 => Some(Self::Shmem(String::decode(buf)?)),
            7 => Some(Self::PeFailed {
                pe: usize::decode(buf)?,
                op: PeOp::decode(buf)?,
            }),
            8 => Some(Self::Numeric(String::decode(buf)?)),
            9 => Some(Self::PeHung {
                pe: usize::decode(buf)?,
                epoch: u64::decode(buf)?,
                stalled_ms: u64::decode(buf)?,
            }),
            10 => Some(Self::BarrierTimeout {
                pe: usize::decode(buf)?,
                epoch: u64::decode(buf)?,
                waited_ms: u64::decode(buf)?,
            }),
            11 => Some(Self::Checkpoint(String::decode(buf)?)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Launch: fork, run, supervise (reap + watchdog), respawn.
// ---------------------------------------------------------------------------

/// One in-place respawn performed by the supervisor: PE `pe` was re-forked
/// (old process dead or hung, new process takes its rank) while every
/// surviving PE kept its original process. Reported in
/// [`SpmdOutput::respawns`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RespawnEvent {
    /// Rank that was re-forked.
    pub pe: usize,
    /// Recovery round that re-forked it (1-based: the first respawn round
    /// of a launch is round 1).
    pub round: u64,
    /// Pid of the dead/hung incarnation.
    pub old_pid: i32,
    /// Pid of the replacement incarnation.
    pub new_pid: i32,
    /// Why the old incarnation was replaced (`PeFailed` for a reaped
    /// death, `PeHung` for a watchdog kill).
    pub cause: SvError,
}

/// [`crate::launch_with_faults`] with OS processes as PEs over a shared
/// `memfd` arena: forks one child per PE, runs the same closure-driven
/// SPMD body in each, and reaps them with `waitpid`. An abnormal child
/// exit (a real `SIGKILL`, a panic-turned-abort, a nonzero exit) surfaces
/// as [`SvError::PeFailed`] with [`PeOp::Term`] carrying the signal/exit
/// code and the barrier epoch the PE had reached when it died; surviving
/// peers observe the poisoned arena barrier and shut down typed, exactly
/// as in the thread-backed world.
///
/// The body's return type crosses a process boundary, so it must implement
/// [`Wire`] (every production body returns word/vector data). Race
/// detection and `collective_publish` are not available on this backend.
///
/// # Errors
/// [`SvError::InvalidConfig`] when `n_pes == 0`; [`SvError::Shmem`] when
/// the arena cannot be created or a fork fails. Per-PE failures are
/// reported in [`SpmdOutput::results`], not as a top-level error.
pub fn launch_process<T, F>(
    n_pes: usize,
    opts: &ProcOptions,
    faults: Option<Arc<FaultPlan>>,
    body: F,
) -> SvResult<SpmdOutput<T>>
where
    T: Wire + Send,
    F: Fn(&ShmemCtx<'_>) -> T + Sync,
{
    if n_pes == 0 {
        return Err(SvError::InvalidConfig("n_pes must be >= 1".into()));
    }
    let pw = ProcWorld::new(n_pes, opts)?;
    if let Some(plan) = &faults {
        pw.seed_faults(plan)?;
    }
    let world = World::new_process(n_pes, pw, faults.as_deref());
    let pw = world.proc().expect("process world");
    let affinity = opts.cpu_affinity.as_deref().unwrap_or(&[]);
    let respawn_enabled = opts.respawn_max > 0;

    // Fork one child for rank `pe`; the child never returns from this call.
    let fork_pe = |pe: usize| -> Result<sys::Pid, String> {
        match sys::spawn() {
            Ok(0) => {
                // CHILD: pin if asked (best effort — a pin failure is
                // recorded as a launch warning, never fatal), run the SPMD
                // body, publish, _exit.
                if !affinity.is_empty() {
                    if let Err(errno) = sys::pin_to_cpu(affinity[pe % affinity.len()]) {
                        pw.set_warn(pe, errno);
                    }
                }
                child_run::<T, F>(&world, pe, &body, respawn_enabled);
            }
            Ok(pid) => Ok(pid),
            Err(e) => Err(e),
        }
    };

    let mut pids: Vec<sys::Pid> = vec![0; n_pes]; // running pid, 0 once reaped
    let mut pid_of: Vec<i32> = vec![0; n_pes]; // current incarnation per rank
    for pe in 0..n_pes {
        match fork_pe(pe) {
            Ok(pid) => {
                pids[pe] = pid;
                pid_of[pe] = pid;
            }
            Err(e) => {
                // Fork failed mid-flight: tear down what exists.
                world.poison_barrier();
                for &p in &pids[..pe] {
                    sys::kill_process(p, sys::SIGKILL);
                }
                for &p in &pids[..pe] {
                    sys::wait_discard(p);
                }
                return Err(SvError::Shmem(format!("process world: {e}")));
            }
        }
    }

    // PARENT supervisor: WNOHANG reaping + heartbeat watchdog + recovery.
    // An abnormal exit poisons the barrier so survivors release promptly
    // and synthesizes the typed death record; a stalled heartbeat gets the
    // PE killed and pre-recorded as PeHung; with respawn enabled, a
    // poisoned round is retried in place instead of failing the launch.
    let hang_deadline = Duration::from_millis(opts.hang_deadline_ms.max(1));
    // A recovery round must outlast one bounded barrier wait (parked
    // survivors drain through it) plus one watchdog deadline (a straggler
    // may still need to be flagged) before the supervisor declares it stuck.
    let recovery_deadline =
        Duration::from_millis(opts.barrier_timeout_ms.max(1)) + 2 * hang_deadline;
    let mut deaths: Vec<Option<SvError>> = (0..n_pes).map(|_| None).collect();
    let mut exited_ok = vec![false; n_pes];
    let mut live = n_pes;
    let mut respawn_active = respawn_enabled;
    let mut respawn_budget = opts.respawn_max;
    let mut respawns: Vec<RespawnEvent> = Vec::new();
    let mut round: u64 = 0;
    let hb_now = Instant::now();
    let mut hb_last: Vec<(u64, Instant)> = (0..n_pes)
        .map(|pe| (pw.read_heartbeat(pe), hb_now))
        .collect();
    let mut recovery_started: Option<Instant> = None;
    while live > 0 {
        let mut progressed = false;
        // Reap pass.
        for pe in 0..n_pes {
            if pids[pe] == 0 {
                continue;
            }
            let status = sys::try_wait(pids[pe]);
            if status == sys::Wait::Running {
                continue;
            }
            pids[pe] = 0;
            live -= 1;
            progressed = true;
            match status {
                sys::Wait::Running => unreachable!("filtered above"),
                sys::Wait::Exited(0) => {
                    // The child published a result and left cleanly; a
                    // stale hang verdict (decided just as it finished) is
                    // overruled by the clean exit.
                    deaths[pe] = None;
                    exited_ok[pe] = true;
                }
                sys::Wait::Exited(code) => {
                    world.poison_barrier();
                    if deaths[pe].is_none() {
                        deaths[pe] = Some(pe_death(&world, pe, 0, code));
                    }
                }
                sys::Wait::Signaled(signal) => {
                    world.poison_barrier();
                    if deaths[pe].is_none() {
                        deaths[pe] = Some(pe_death(&world, pe, signal, 0));
                    }
                }
                sys::Wait::Failed(errno) => {
                    if deaths[pe].is_none() {
                        deaths[pe] = Some(SvError::Shmem(format!(
                            "process world: waitpid(PE {pe}) failed (errno {errno})"
                        )));
                    }
                }
            }
        }
        // Watchdog pass: kill a PE whose heartbeat stalled past the
        // deadline, recording the PeHung verdict *before* the SIGKILL so
        // the subsequent reap keeps it instead of synthesizing PeFailed.
        for pe in 0..n_pes {
            if pids[pe] == 0 || deaths[pe].is_some() {
                continue;
            }
            let hb = pw.read_heartbeat(pe);
            if hb != hb_last[pe].0 {
                hb_last[pe] = (hb, Instant::now());
            } else if hb_last[pe].1.elapsed() >= hang_deadline {
                let stalled_ms = hb_last[pe].1.elapsed().as_millis() as u64;
                deaths[pe] = Some(SvError::PeHung {
                    pe,
                    epoch: pw.epoch(pe),
                    stalled_ms,
                });
                world.poison_barrier();
                sys::kill_process(pids[pe], sys::SIGKILL);
                progressed = true;
            }
        }
        // Recovery: once the barrier is poisoned, choose between an
        // in-place respawn round and aborting into the plain error path.
        if respawn_active && pw.barrier_poisoned() {
            let started = *recovery_started.get_or_insert_with(Instant::now);
            if exited_ok.iter().any(|&ok| ok)
                || respawn_budget == 0
                || started.elapsed() > recovery_deadline
            {
                // A PE already exited with this round's result (a re-run
                // would fork its timeline), the budget ran dry, or the
                // world never quiesced: give up on respawn and let the
                // round's typed errors stand. The abort word releases
                // parked survivors into publishing their results.
                respawn_active = false;
                pw.set_abort();
            } else {
                let victims: Vec<usize> = (0..n_pes)
                    .filter(|&pe| pids[pe] == 0 && !exited_ok[pe])
                    .collect();
                // One release attempt of the shared round machine: check
                // every survivor's ack, and if all are parked, reset the
                // barrier words and bump the round — with the
                // non-protocol arena resets slotted between the ack check
                // and the barrier reset, before anything is published.
                let round_mem = pw.round_mem();
                let survivor_acks: Vec<usize> = (0..n_pes)
                    .filter(|&pe| pids[pe] != 0)
                    .map(|pe| proto::round::ACK_BASE + pe)
                    .collect();
                let mut release = proto::round::Release::new(survivor_acks, round);
                let released = loop {
                    if release.phase() == proto::round::ReleasePhase::ResetCount {
                        // Every survivor is parked and every victim
                        // reaped: nothing races the table resets, and the
                        // machine's round bump publishes them.
                        pw.reset_tables_for_round();
                    }
                    match release.step(&round_mem) {
                        proto::round::ReleaseStep::Pending => {}
                        proto::round::ReleaseStep::NotParked => break false,
                        proto::round::ReleaseStep::Released => break true,
                    }
                };
                if released {
                    // Survivors are re-running; re-fork only the victims.
                    respawn_budget -= 1;
                    recovery_started = None;
                    round += 1;
                    let mut fork_failed = false;
                    for &pe in &victims {
                        let cause = deaths[pe].take().unwrap_or_else(|| {
                            SvError::Shmem(format!(
                                "process world: PE {pe} lost without a death record"
                            ))
                        });
                        match fork_pe(pe) {
                            Ok(pid) => {
                                respawns.push(RespawnEvent {
                                    pe,
                                    round,
                                    old_pid: pid_of[pe],
                                    new_pid: pid,
                                    cause,
                                });
                                pids[pe] = pid;
                                pid_of[pe] = pid;
                                live += 1;
                            }
                            Err(e) => {
                                deaths[pe] = Some(SvError::Shmem(format!("process world: {e}")));
                                fork_failed = true;
                            }
                        }
                    }
                    if fork_failed {
                        world.poison_barrier();
                        respawn_active = false;
                        pw.set_abort();
                    }
                    let now = Instant::now();
                    for (pe, slot) in hb_last.iter_mut().enumerate() {
                        *slot = (pw.read_heartbeat(pe), now);
                    }
                    progressed = true;
                }
            }
        }
        if !progressed && live > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    // Results: synthesized deaths win; otherwise decode the arena slot.
    let results: Vec<SvResult<T>> = deaths
        .iter_mut()
        .enumerate()
        .map(|(pe, death)| {
            if let Some(e) = death.take() {
                return Err(e);
            }
            match pw.read_result(pe) {
                Some(bytes) => {
                    let mut cursor = bytes.as_slice();
                    match <SvResult<T> as Wire>::decode(&mut cursor) {
                        Some(r) => r,
                        None => Err(SvError::Shmem(format!(
                            "process world: PE {pe} returned an undecodable result"
                        ))),
                    }
                }
                None => Err(SvError::Shmem(format!(
                    "process world: PE {pe} exited without publishing a result \
                     (result slot overflow or silent death)"
                ))),
            }
        })
        .collect();

    if let Some(plan) = &faults {
        pw.absorb_faults(plan);
    }
    let warnings: Vec<String> = (0..n_pes)
        .filter_map(|pe| {
            let errno = pw.read_warn(pe);
            (errno != 0).then(|| {
                format!("PE {pe}: cpu affinity pin failed (errno {errno}); continuing unpinned")
            })
        })
        .collect();
    let traffic = world.snapshot_traffic();
    Ok(SpmdOutput {
        results,
        traffic,
        pids: pid_of,
        respawns,
        warnings,
    })
}

/// Typed record of an abnormal child death, stamped with the barrier epoch
/// the PE had completed (read from its arena epoch word).
fn pe_death(world: &World, pe: usize, signal: i32, code: i32) -> SvError {
    let epoch = world.proc().map_or(0, |pw| pw.epoch(pe));
    SvError::PeFailed {
        pe,
        op: PeOp::Term {
            signal,
            code,
            epoch,
        },
    }
}

/// The child side of a fork: run the body, convert panics into the same
/// typed errors the thread backend produces, publish the encoded result,
/// and `_exit` without unwinding into the inherited parent state.
///
/// With `respawn` enabled the body runs in *rounds*: when a round is
/// wrecked (the barrier got poisoned), the child parks — acknowledging the
/// round and keeping its heartbeat alive — until the supervisor either
/// releases the next round (re-run the body against the reset arena) or
/// aborts (publish this round's result as-is). The body closure captures
/// its segment-initial inputs, so a re-run reproduces the segment exactly.
fn child_run<T, F>(world: &World, pe: usize, body: &F, respawn: bool) -> !
where
    T: Wire + Send,
    F: Fn(&ShmemCtx<'_>) -> T + Sync,
{
    // Children share the parent's stderr: silence the default panic hook
    // so expected failures (injected faults, poisoned barriers) do not
    // spam it. Process-local — the parent's hook is untouched.
    std::panic::set_hook(Box::new(|_| {}));
    let pw = world.proc().expect("child of a process world");
    pw.heartbeat(pe);
    let mut parked_round = pw.round();
    let res: SvResult<T> = loop {
        let ctx = world.make_ctx(pe);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
        let round_res: SvResult<T> = match r {
            Ok(v) => Ok(v),
            Err(payload) => {
                // Poison first so peers spinning in the barrier fail fast.
                world.poison_barrier();
                Err(crate::world::classify_panic(pe, payload.as_ref()))
            }
        };
        pw.set_epoch(pe, ctx.barrier_epoch());
        if !(respawn && pw.barrier_poisoned() && !pw.abort()) {
            break round_res;
        }
        // Park: the round is wrecked but the supervisor may retry it.
        // Drive the shared survivor machine — ack the wrecked round, then
        // poll for a release (re-run) or an abort (publish as-is); the
        // heartbeat and sleep between polls are this driver's policy.
        let round_mem = pw.round_mem();
        let mut survivor = proto::round::Survivor::new(parked_round, pe);
        let decision = loop {
            match survivor.step(&round_mem) {
                proto::round::SurvivorStep::Pending => {
                    pw.heartbeat(pe);
                    if survivor.is_waiting() {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                decided => break decided,
            }
        };
        match decision {
            proto::round::SurvivorStep::Released(r) => {
                parked_round = r; // released: re-run the body
            }
            proto::round::SurvivorStep::Publish => break round_res,
            // Abort raced a release we missed: re-run; the sticky
            // poisoned barrier bounces the body straight back here.
            proto::round::SurvivorStep::ReRunStale | proto::round::SurvivorStep::Pending => {}
        }
    };
    let mut buf = Vec::new();
    res.encode(&mut buf);
    let _ = pw.write_result(pe, &buf);
    sys::exit_now(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use svsim_types::SvRng;

    fn opts() -> ProcOptions {
        ProcOptions {
            heap_words_per_pe: 1 << 12,
            result_bytes_per_pe: 1 << 12,
            barrier_timeout_ms: 20_000,
            cpu_affinity: None,
            hang_deadline_ms: 30_000,
            respawn_max: 0,
        }
    }

    #[test]
    fn wire_roundtrips() {
        fn rt<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let mut cursor = buf.as_slice();
            assert_eq!(T::decode(&mut cursor), Some(v));
            assert!(cursor.is_empty(), "trailing bytes");
        }
        rt(());
        rt(42u64);
        rt(7usize);
        rt(-3i64);
        rt(true);
        rt(-0.5f64);
        rt(String::from("héllo"));
        rt(vec![1.0f64, f64::NAN.to_bits() as f64, -0.0]);
        rt(vec![1u64, u64::MAX]);
        rt((3usize, 4.5f64));
        rt((1u64, vec![2.0f64], vec![3.0f64]));
        rt(Ok::<u64, SvError>(9));
        rt(Err::<u64, SvError>(SvError::Shmem("x".into())));
        rt(Err::<(), SvError>(SvError::PeFailed {
            pe: 2,
            op: PeOp::Term {
                signal: 9,
                code: 0,
                epoch: 17,
            },
        }));
        rt(PeOp::Checkpoint);
        rt(Err::<u64, SvError>(SvError::PeHung {
            pe: 3,
            epoch: 12,
            stalled_ms: 1500,
        }));
        rt(Err::<u64, SvError>(SvError::BarrierTimeout {
            pe: 1,
            epoch: 4,
            waited_ms: 250,
        }));
        rt(Err::<u64, SvError>(SvError::Checkpoint("torn".into())));
        rt(Ok::<SvResult<(u64, Vec<f64>, Vec<f64>)>, SvError>(Ok((
            5,
            vec![0.25; 3],
            vec![-1.0; 2],
        ))));
    }

    #[test]
    fn wire_rejects_truncation() {
        let mut buf = Vec::new();
        vec![1.0f64; 4].encode(&mut buf);
        let mut cursor = &buf[..buf.len() - 1];
        assert_eq!(<Vec<f64> as Wire>::decode(&mut cursor), None);
        // A length prefix larger than the payload must not allocate blindly.
        let mut bogus = Vec::new();
        put_u64(&mut bogus, u64::MAX);
        let mut cursor = bogus.as_slice();
        assert_eq!(<Vec<u64> as Wire>::decode(&mut cursor), None);
    }

    #[test]
    fn layout_sections_do_not_overlap() {
        let o = ProcOptions {
            heap_words_per_pe: 100,
            result_bytes_per_pe: 256,
            ..ProcOptions::default()
        };
        let l = ArenaLayout::new(8, &o);
        let heap_end = (l.w_heap + 8 * 100) * 8;
        assert!(l.w_bar_count > l.w_bump);
        assert!(l.w_f64_table > l.w_bar_poison);
        // Supervision words: heartbeats, warnings, round/abort/ack sit
        // strictly between the status slots and the fault mirror.
        assert!(l.w_heartbeats >= l.w_status + 8 * 2);
        assert!(l.w_warn >= l.w_heartbeats + 8);
        assert!(l.w_round >= l.w_warn + 8);
        assert_eq!(l.w_abort, l.w_round + 1);
        assert!(l.w_round_ack > l.w_abort);
        assert!(l.w_faults >= l.w_round_ack + 8);
        assert!(l.w_heap > l.w_counters);
        assert!(l.b_results >= heap_end);
        assert!(l.total_bytes >= l.b_results + 8 * 256);
        assert_eq!(l.total_bytes % 4096, 0);
    }

    #[test]
    fn process_ranks_and_ring_exchange() {
        // The thread-backend ring-exchange smoke, verbatim, on processes.
        let out = launch_process(4, &opts(), None, |ctx| {
            let sym = ctx.malloc_f64(1).expect("alloc");
            let right = (ctx.my_pe() + 1) % ctx.n_pes();
            ctx.put_f64(&sym, right, 0, ctx.my_pe() as f64);
            ctx.barrier_all();
            ctx.get_f64(&sym, ctx.my_pe(), 0)
        })
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(out.results, vec![3.0, 0.0, 1.0, 2.0]);
        // Traffic counters live in the arena and survive the children.
        assert_eq!(out.total_traffic().remote_puts, 4);
    }

    #[test]
    fn process_collectives_and_atomics() {
        let out = launch_process(4, &opts(), None, |ctx| {
            let sum = ctx.sum_reduce_f64(ctx.my_pe() as f64 + 1.0);
            let max = ctx.max_reduce_f64(ctx.my_pe() as f64);
            let b = ctx.broadcast_f64(2, if ctx.my_pe() == 2 { 42.0 } else { 0.0 });
            let cnt = ctx.malloc_u64(1).expect("alloc");
            ctx.atomic_fetch_add_u64(&cnt, 0, 0, 1);
            ctx.barrier_all();
            (sum, max, (b, ctx.get_u64(&cnt, 0, 0)))
        })
        .unwrap()
        .into_result()
        .unwrap();
        for &(sum, max, (b, cnt)) in &out.results {
            assert_eq!(sum, 10.0);
            assert_eq!(max, 3.0);
            assert_eq!(b, 42.0);
            assert_eq!(cnt, 4);
        }
    }

    #[test]
    fn process_multiple_allocations_slices_and_order() {
        let out = launch_process(2, &opts(), None, |ctx| {
            let a = ctx.malloc_f64(2).expect("alloc");
            let b = ctx.malloc_f64(8).expect("alloc");
            let f = ctx.malloc_u64(1).expect("alloc");
            if ctx.my_pe() == 0 {
                ctx.put_slice_f64(&b, 1, 2, &[5.0, 6.0, 7.0]);
            }
            ctx.put_f64(&a, ctx.my_pe(), 0, 1.0);
            ctx.atomic_fetch_add_u64(&f, 0, 0, 1);
            ctx.barrier_all();
            let mut buf = vec![0.0; 3];
            ctx.get_slice_f64(&b, 1, 2, &mut buf);
            (buf, (a.len_per_pe(), ctx.get_u64(&f, 0, 0)))
        })
        .unwrap()
        .into_result()
        .unwrap();
        for (buf, (len_a, cnt)) in &out.results {
            assert_eq!(buf, &[5.0, 6.0, 7.0]);
            assert_eq!((*len_a, *cnt), (2, 2));
        }
    }

    #[test]
    fn process_panic_becomes_typed_error_without_poisoning_host() {
        let out = launch_process(3, &opts(), None, |ctx| {
            if ctx.my_pe() == 1 {
                panic!("PE 1 exploded");
            }
            ctx.barrier_all();
            ctx.my_pe()
        })
        .unwrap();
        let root = out.first_failure().expect("PE 1 failed");
        assert!(root.to_string().contains("PE 1"), "got: {root}");
        // The launcher process is fine: a fresh world works.
        let again = launch_process(2, &opts(), None, |ctx| ctx.my_pe())
            .unwrap()
            .into_result()
            .unwrap();
        assert_eq!(again.results, vec![0, 1]);
    }

    #[test]
    fn injected_kill_is_a_real_sigkill_with_epoch_at_death() {
        // Kill PE 2 at its 3rd put: the child dies by actual SIGKILL, the
        // parent synthesizes PeFailed{Term{signal: 9}} with the barrier
        // epoch the child had completed (1: the malloc barrier).
        let plan = Arc::new(FaultPlan::new().with(2, PeOp::Put, 3, FaultAction::Kill));
        let out = launch_process(4, &opts(), Some(Arc::clone(&plan)), |ctx| {
            let sym = ctx.malloc_f64(4)?;
            for i in 0..4 {
                ctx.put_f64(&sym, (ctx.my_pe() + 1) % ctx.n_pes(), i, 1.0);
            }
            ctx.try_barrier_all()?;
            Ok::<_, SvError>(ctx.my_pe())
        })
        .unwrap();
        match out.results[2].as_ref().unwrap_err() {
            SvError::PeFailed {
                pe: 2,
                op:
                    PeOp::Term {
                        signal: sys::SIGKILL,
                        code: 0,
                        epoch: 1,
                    },
            } => {}
            other => panic!("expected SIGKILL Term record, got {other:?}"),
        }
        // Survivors fail typed (poisoned barrier), not hang.
        for pe in [0usize, 1, 3] {
            match &out.results[pe] {
                Ok(Err(SvError::Shmem(msg))) => assert!(msg.contains("poisoned"), "{msg}"),
                other => panic!("PE {pe}: expected clean poison report, got {other:?}"),
            }
        }
        // One-shot disarm propagated back to the parent's plan.
        assert_eq!(plan.armed_remaining(), 0);
    }

    #[test]
    fn epoch_agreement_under_injected_barrier_faults() {
        // The thread-backend epoch-agreement property on processes: a
        // Poison at the victim's 10th barrier is observed by every PE in
        // epoch 9.
        const AT: u64 = 10;
        let plan = Arc::new(FaultPlan::new().with(2, PeOp::Barrier, AT, FaultAction::Poison));
        let out = launch_process(4, &opts(), Some(plan), |ctx| {
            for _ in 0..32 {
                if ctx.try_barrier_all().is_err() {
                    return ctx.barrier_epoch();
                }
            }
            u64::MAX
        })
        .unwrap();
        for pe in 0..4 {
            match &out.results[pe] {
                Ok(e) => assert_eq!(*e, AT - 1, "PE {pe} epoch"),
                Err(SvError::PeFailed { pe: 2, .. }) => {}
                other => panic!("PE {pe}: {other:?}"),
            }
        }
    }

    #[test]
    fn barrier_contention_2_4_8_pes_1k_barriers() {
        // 1k barriers per PE count with randomized per-PE stalls: phases
        // must stay separated (each PE adds its rank+1 to a shared word
        // every epoch; after the barrier the total must be exact).
        for n_pes in [2usize, 4, 8] {
            const ROUNDS: u64 = 1000;
            let out = launch_process(n_pes, &opts(), None, move |ctx| {
                let acc = ctx.malloc_f64(1).expect("alloc");
                let mut rng = SvRng::seed_from_u64(0xba44 ^ ctx.my_pe() as u64);
                let mut clean = 0u64;
                for round in 1..=ROUNDS {
                    if rng.next_f64() < 0.02 {
                        std::thread::sleep(Duration::from_micros((rng.next_f64() * 200.0) as u64));
                    }
                    ctx.atomic_fetch_add_f64(&acc, 0, 0, (ctx.my_pe() + 1) as f64);
                    ctx.barrier_all();
                    let expect = (round * (ctx.n_pes() * (ctx.n_pes() + 1) / 2) as u64) as f64;
                    if ctx.get_f64(&acc, 0, 0) == expect {
                        clean += 1;
                    }
                    ctx.barrier_all();
                }
                clean
            })
            .unwrap()
            .into_result()
            .unwrap();
            assert_eq!(
                out.results,
                vec![ROUNDS; n_pes],
                "{n_pes} PEs: phase leak under contention"
            );
        }
    }

    #[test]
    fn killing_a_pe_mid_barrier_releases_survivors_typed() {
        // PE 1 SIGKILLs itself (via an injected kill at its 5th barrier)
        // while peers head into the same barrier: survivors must get a
        // typed error within the bounded wait, never hang, and the root
        // cause must name the dead PE with a Term record.
        let plan = Arc::new(FaultPlan::new().with(1, PeOp::Barrier, 5, FaultAction::Kill));
        let start = Instant::now();
        let out = launch_process(4, &opts(), Some(plan), |ctx| {
            for _ in 0..16 {
                if let Err(e) = ctx.try_barrier_all() {
                    let timed_out = matches!(e, SvError::BarrierTimeout { .. });
                    return (ctx.barrier_epoch(), timed_out);
                }
            }
            (u64::MAX, false)
        })
        .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(15),
            "survivors must be released promptly, took {:?}",
            start.elapsed()
        );
        match out.first_failure() {
            Some(SvError::PeFailed {
                pe: 1,
                op: PeOp::Term {
                    signal: 9, epoch, ..
                },
            }) => assert_eq!(*epoch, 4, "epoch at death"),
            other => panic!("expected PE 1 Term death, got {other:?}"),
        }
        for pe in [0usize, 2, 3] {
            let (epoch, timed_out) = out.results[pe].as_ref().expect("survivor reports");
            assert_eq!(*epoch, 4, "PE {pe} must stop in the poisoned epoch");
            // A reaped peer death must surface as the poisoned release,
            // never as the survivor's own bounded-wait timeout — the two
            // are distinct typed conditions.
            assert!(!timed_out, "PE {pe} misreported the death as a timeout");
        }
    }

    #[test]
    fn slow_peer_surfaces_as_typed_barrier_timeout() {
        // PE 0 dawdles for far longer than the barrier timeout: PE 1's
        // bounded wait must expire as the typed BarrierTimeout (with the
        // wait measured), not as a peer death or a generic poison report.
        let o = ProcOptions {
            barrier_timeout_ms: 200,
            ..opts()
        };
        let out = launch_process(2, &o, None, |ctx| {
            if ctx.my_pe() == 0 {
                std::thread::sleep(Duration::from_millis(1200));
            }
            ctx.try_barrier_all()
        })
        .unwrap();
        match &out.results[1] {
            Ok(Err(SvError::BarrierTimeout {
                pe: 1,
                epoch: 0,
                waited_ms,
            })) => assert!(*waited_ms >= 200, "waited {waited_ms} ms"),
            other => panic!("expected typed barrier timeout, got {other:?}"),
        }
        // The late PE observes the poison at entry — a poisoned-peer
        // report, distinct from the timeout.
        match &out.results[0] {
            Ok(Err(SvError::Shmem(msg))) => assert!(msg.contains("poisoned"), "{msg}"),
            other => panic!("expected poison report, got {other:?}"),
        }
    }

    #[test]
    fn hung_pe_is_killed_and_reported_within_deadline() {
        // An injected Hang wedges PE 1 at its 2nd put (no heartbeat, no
        // death): the parent watchdog must SIGKILL it and report the typed
        // PeHung — with the stall measured and the epoch at the hang —
        // well within the barrier timeout the survivors would otherwise
        // burn.
        let plan = Arc::new(FaultPlan::new().with(1, PeOp::Put, 2, FaultAction::Hang));
        let o = ProcOptions {
            hang_deadline_ms: 600,
            barrier_timeout_ms: 15_000,
            ..opts()
        };
        let start = Instant::now();
        let out = launch_process(3, &o, Some(plan), |ctx| {
            let sym = ctx.malloc_f64(2)?;
            for i in 0..2 {
                ctx.put_f64(&sym, (ctx.my_pe() + 1) % ctx.n_pes(), i, 1.0);
            }
            ctx.try_barrier_all()?;
            Ok::<_, SvError>(ctx.my_pe())
        })
        .unwrap();
        let elapsed = start.elapsed();
        match out.results[1].as_ref().unwrap_err() {
            SvError::PeHung {
                pe: 1,
                epoch: 1,
                stalled_ms,
            } => assert!(*stalled_ms >= 600, "stalled {stalled_ms} ms"),
            other => panic!("expected PeHung, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(10),
            "watchdog must fire within the deadline, took {elapsed:?}"
        );
        // Survivors observe the poisoned barrier, not their own timeout.
        for pe in [0usize, 2] {
            match &out.results[pe] {
                Ok(Err(SvError::Shmem(msg))) => assert!(msg.contains("poisoned"), "{msg}"),
                other => panic!("PE {pe}: expected poison report, got {other:?}"),
            }
        }
    }

    #[test]
    fn in_place_respawn_preserves_survivors_by_pid() {
        // Kill PE 1 at its 2nd barrier; with a respawn budget the
        // supervisor re-forks only PE 1 and re-runs the round. Every PE
        // returns its pid from the successful round: survivors must report
        // the pid of their original fork (same process ran both rounds),
        // and the victim the new pid of its respawn event.
        let plan = Arc::new(FaultPlan::new().with(1, PeOp::Barrier, 2, FaultAction::Kill));
        let o = ProcOptions {
            respawn_max: 2,
            barrier_timeout_ms: 15_000,
            ..opts()
        };
        let out = launch_process(4, &o, Some(Arc::clone(&plan)), |ctx| {
            let sym = ctx.malloc_f64(1)?;
            ctx.put_f64(&sym, (ctx.my_pe() + 1) % ctx.n_pes(), 0, ctx.my_pe() as f64);
            ctx.try_barrier_all()?;
            Ok::<_, SvError>((
                u64::from(std::process::id()),
                ctx.get_f64(&sym, ctx.my_pe(), 0),
            ))
        })
        .unwrap();
        assert_eq!(out.respawns.len(), 1, "one respawn: {:?}", out.respawns);
        let ev = &out.respawns[0];
        assert_eq!((ev.pe, ev.round), (1, 1));
        assert_ne!(ev.old_pid, ev.new_pid, "victim must get a fresh process");
        assert!(
            matches!(
                ev.cause,
                SvError::PeFailed {
                    pe: 1,
                    op: PeOp::Term { signal: 9, .. }
                }
            ),
            "cause: {:?}",
            ev.cause
        );
        for pe in 0..4 {
            let &(pid, val) = out.results[pe]
                .as_ref()
                .expect("recovered round succeeds")
                .as_ref()
                .expect("SPMD body succeeds");
            // Ring value from the re-run round proves the segment was
            // reproduced, not resumed mid-wreck.
            assert_eq!(val, ((pe + 3) % 4) as f64, "PE {pe} ring value");
            assert_eq!(pid, out.pids[pe] as u64, "PE {pe} pid stability");
        }
        assert_eq!(
            out.results[1].as_ref().unwrap().as_ref().unwrap().0,
            ev.new_pid as u64
        );
        assert_eq!(
            plan.armed_remaining(),
            0,
            "one-shot stayed disarmed across rounds"
        );
    }

    #[test]
    fn respawn_budget_exhaustion_falls_back_to_typed_errors() {
        // Two kills but a budget of one: the first round respawns, the
        // second aborts recovery and the launch reports the second death
        // typed, exactly as a respawn-disabled launch would.
        let plan = Arc::new(
            FaultPlan::new()
                .with(1, PeOp::Barrier, 2, FaultAction::Kill)
                .with(2, PeOp::Barrier, 5, FaultAction::Kill),
        );
        let o = ProcOptions {
            respawn_max: 1,
            barrier_timeout_ms: 15_000,
            ..opts()
        };
        let out = launch_process(4, &o, Some(plan), |ctx| {
            for _ in 0..3 {
                ctx.try_barrier_all()?;
            }
            Ok::<_, SvError>(ctx.my_pe())
        })
        .unwrap();
        assert_eq!(out.respawns.len(), 1, "{:?}", out.respawns);
        match out.first_failure() {
            Some(SvError::PeFailed { pe: 2, .. }) => {}
            other => panic!("expected PE 2 death after budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn poison_fault_respawns_with_zero_victims() {
        // A Poison wrecks the round without killing any process: recovery
        // re-runs the body on the surviving (= all) PEs with no re-fork.
        let plan = Arc::new(FaultPlan::new().with(0, PeOp::Barrier, 2, FaultAction::Poison));
        let o = ProcOptions {
            respawn_max: 1,
            barrier_timeout_ms: 15_000,
            ..opts()
        };
        let out = launch_process(2, &o, Some(plan), |ctx| {
            for _ in 0..3 {
                ctx.try_barrier_all()?;
            }
            Ok::<_, SvError>(ctx.my_pe())
        })
        .unwrap();
        assert!(out.respawns.is_empty(), "no process was re-forked");
        for (pe, r) in out.results.iter().enumerate() {
            assert_eq!(
                r.as_ref()
                    .expect("no deaths")
                    .as_ref()
                    .expect("re-run succeeds"),
                &pe
            );
        }
    }

    #[test]
    fn affinity_failure_is_a_warning_not_fatal() {
        // cpu 4096 is beyond any mask this runner has: the pin fails, the
        // launch proceeds, and the failure lands in SpmdOutput::warnings.
        let o = ProcOptions {
            cpu_affinity: Some(vec![4096]),
            ..opts()
        };
        let out = launch_process(2, &o, None, |ctx| ctx.my_pe()).unwrap();
        assert_eq!(out.warnings.len(), 2, "{:?}", out.warnings);
        assert!(out.warnings[0].contains("affinity"), "{:?}", out.warnings);
        let vals = out.into_result().unwrap();
        assert_eq!(vals.results, vec![0, 1]);
    }

    #[test]
    fn fault_counts_accumulate_across_process_launches() {
        // A kill at the 5th barrier, run as two launches of 3 barriers
        // each (a checkpointed run's segments): the fault must fire in the
        // second launch, at the 2nd barrier (global count 5).
        let plan = Arc::new(FaultPlan::new().with(0, PeOp::Barrier, 5, FaultAction::Poison));
        let first = launch_process(2, &opts(), Some(Arc::clone(&plan)), |ctx| {
            for _ in 0..3 {
                ctx.barrier_all();
            }
        })
        .unwrap();
        assert!(first.first_failure().is_none(), "{first:?}");
        assert_eq!(plan.armed_remaining(), 1);
        let second = launch_process(2, &opts(), Some(Arc::clone(&plan)), |ctx| {
            for _ in 0..3 {
                ctx.barrier_all();
            }
        })
        .unwrap();
        match second.first_failure() {
            Some(SvError::PeFailed { pe: 0, .. }) => {}
            other => panic!("expected PE 0 barrier fault in launch 2, got {other:?}"),
        }
        assert_eq!(plan.armed_remaining(), 0);
    }

    #[test]
    fn collective_publish_is_rejected_on_processes() {
        let out = launch_process(2, &opts(), None, |ctx| {
            let r: SvResult<Arc<Vec<u64>>> = ctx.collective_publish(|| Ok(Arc::new(vec![1])));
            match r {
                Err(SvError::Shmem(msg)) => msg.contains("thread backend"),
                _ => false,
            }
        })
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(out.results, vec![true, true]);
    }

    #[test]
    fn heap_exhaustion_is_a_typed_error_on_every_pe() {
        let small = ProcOptions {
            heap_words_per_pe: 8,
            ..opts()
        };
        let out = launch_process(2, &small, None, |ctx| match ctx.malloc_f64(64) {
            Err(SvError::Shmem(msg)) => msg.contains("exhausted") || msg.contains("published"),
            other => panic!("expected typed exhaustion, got {other:?}"),
        })
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(out.results, vec![true, true]);
    }

    #[test]
    fn zero_pes_rejected() {
        assert!(launch_process::<(), _>(0, &opts(), None, |_| ()).is_err());
    }
}
