//! Race-checked symmetric arrays.
//!
//! SHMEM's contract is that one-sided accesses between two barriers must
//! not conflict — the fabric gives no ordering, so a conflicting access is
//! a silent data race in the application (paper §2.2: "atomic access and
//! locks are provided for critical regions"; everything else is the
//! programmer's obligation). [`CheckedSym`] enforces that contract
//! dynamically, word by word, on an opt-in array.
//!
//! The shadow state is the epoch-scoped detector from [`crate::race`]:
//! every word carries a last-writer stamp *and the full set of readers* in
//! the current barrier epoch (the original prototype tracked only a single
//! reader and could miss a read/write race once a second reader overwrote
//! the cell). Two modes:
//!
//! - [`malloc_checked`] — compatibility mode: the first conflicting access
//!   panics with a `SHMEM race: ...` diagnostic, which [`crate::world::launch`]
//!   converts into a typed error. Used by the deliberate-race tests.
//! - [`malloc_checked_reporting`] — accumulate mode: conflicts are recorded
//!   as [`RaceReport`]s and execution continues; read them with
//!   [`CheckedSym::races`] after the job. This is what fault-injection runs
//!   want, so an injected fault (typed `PeFailed`) is distinguishable from
//!   a genuine protocol bug (non-empty race reports).
//!
//! For whole-world detection across *all* arrays and access kinds, use
//! [`crate::world::launch_detected`] instead.

use crate::race::{RaceDetector, RaceReport, ShadowArray};
use crate::world::{ShmemCtx, SymF64};
use std::sync::Arc;
use svsim_types::SvResult;

/// Shared detector + shadow pair published collectively by PE 0.
#[derive(Debug)]
struct CheckedState {
    det: Arc<RaceDetector>,
    shadow: Arc<ShadowArray>,
}

/// A symmetric f64 array with per-word conflict detection.
#[derive(Debug, Clone)]
pub struct CheckedSym {
    data: SymF64,
    state: Arc<CheckedState>,
    /// Compatibility mode: panic on the first conflict (historic
    /// `CheckedSym` behaviour) instead of accumulating reports.
    panic_on_race: bool,
}

fn malloc_with_mode(
    ctx: &ShmemCtx<'_>,
    len_per_pe: usize,
    panic_on_race: bool,
) -> SvResult<CheckedSym> {
    let n_pes = ctx.n_pes();
    let state = ctx.collective_publish(|| {
        let det = RaceDetector::new(n_pes)?;
        let shadow = det.shadow(len_per_pe);
        Ok(Arc::new(CheckedState { det, shadow }))
    })?;
    Ok(CheckedSym {
        data: ctx.malloc_f64(len_per_pe)?,
        state,
        panic_on_race,
    })
}

/// Collectively allocate a checked symmetric array in compatibility mode:
/// a conflicting access panics with a `SHMEM race: ...` diagnostic.
///
/// # Errors
/// Propagates [`ShmemCtx::malloc_f64`] / [`ShmemCtx::collective_publish`]
/// failures (poisoned heap/barrier or violated collective call order), and
/// detector creation failures (more PEs than the shadow cells can track).
pub fn malloc_checked(ctx: &ShmemCtx<'_>, len_per_pe: usize) -> SvResult<CheckedSym> {
    malloc_with_mode(ctx, len_per_pe, true)
}

/// Collectively allocate a checked symmetric array in accumulate mode:
/// conflicts are recorded (see [`CheckedSym::races`]) and execution
/// continues.
///
/// # Errors
/// Same contract as [`malloc_checked`].
pub fn malloc_checked_reporting(ctx: &ShmemCtx<'_>, len_per_pe: usize) -> SvResult<CheckedSym> {
    malloc_with_mode(ctx, len_per_pe, false)
}

impl CheckedSym {
    /// The underlying unchecked array (e.g. for bulk readback).
    #[must_use]
    pub fn raw(&self) -> &SymF64 {
        &self.data
    }

    #[cold]
    fn racy(report: RaceReport) {
        panic!("SHMEM race: {report}");
    }

    /// Checked one-sided store.
    ///
    /// # Panics
    /// In compatibility mode ([`malloc_checked`]), on a write-write or
    /// read-write conflict within the current epoch — *before* the store
    /// lands, so the amplitude data is never corrupted silently.
    pub fn put(&self, ctx: &ShmemCtx<'_>, pe: usize, idx: usize, v: f64) {
        let hit = self
            .state
            .shadow
            .record_write(ctx.my_pe(), ctx.barrier_epoch(), pe, idx, false);
        if let Some(report) = hit {
            if self.panic_on_race {
                Self::racy(report);
            }
        }
        ctx.put_f64(&self.data, pe, idx, v);
    }

    /// Checked one-sided load.
    ///
    /// # Panics
    /// In compatibility mode, on a read-write conflict within the current
    /// epoch.
    pub fn get(&self, ctx: &ShmemCtx<'_>, pe: usize, idx: usize) -> f64 {
        let hit = self
            .state
            .shadow
            .record_read(ctx.my_pe(), ctx.barrier_epoch(), pe, idx, false);
        if let Some(report) = hit {
            if self.panic_on_race {
                Self::racy(report);
            }
        }
        ctx.get_f64(&self.data, pe, idx)
    }

    /// Total conflicts recorded on this array so far (any mode).
    #[must_use]
    pub fn race_count(&self) -> u64 {
        self.state.det.race_count()
    }

    /// Snapshot of the accumulated [`RaceReport`]s (capped; see
    /// [`RaceDetector::reports`]).
    #[must_use]
    pub fn races(&self) -> Vec<RaceReport> {
        self.state.det.reports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::race::ConflictKind;
    use crate::world::launch;

    #[test]
    fn disciplined_protocol_passes() {
        // Classic exchange: write remote, barrier, read local.
        let out = launch(4, |ctx| {
            let sym = malloc_checked(ctx, 4).expect("alloc");
            let right = (ctx.my_pe() + 1) % ctx.n_pes();
            sym.put(ctx, right, 0, ctx.my_pe() as f64);
            ctx.barrier_all();
            sym.get(ctx, ctx.my_pe(), 0)
        })
        .unwrap();
        assert_eq!(out.results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn write_write_race_is_caught() {
        // `launch` no longer propagates the detector's panic: it surfaces
        // as a typed error naming the race.
        let err = launch(2, |ctx| {
            let sym = malloc_checked(ctx, 1).expect("alloc");
            // Both PEs write the same word of PE 0 with no barrier.
            sym.put(ctx, 0, 0, ctx.my_pe() as f64);
            ctx.barrier_all();
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("SHMEM race"),
            "the deliberate race must be detected, got: {err}"
        );
        assert!(
            err.to_string().contains("write/write"),
            "must classify as W/W, got: {err}"
        );
    }

    #[test]
    fn reporting_mode_accumulates_instead_of_panicking() {
        // The same deliberate race, in accumulate mode: the job completes
        // and the report names the exact word, PEs and epoch.
        let out = launch(2, |ctx| {
            let sym = malloc_checked_reporting(ctx, 1).expect("alloc");
            sym.put(ctx, 0, 0, ctx.my_pe() as f64);
            ctx.barrier_all();
            (sym.race_count(), sym.races())
        })
        .unwrap();
        let (count, races) = &out.results[0];
        assert_eq!(*count, 1, "{races:?}");
        let r = races[0];
        assert_eq!(r.kind, ConflictKind::WriteWrite);
        assert_eq!((r.owner_pe, r.index), (0, 0));
        // malloc_checked performs two collective barriers (state
        // publication + data malloc), so the racy put runs in epoch 2.
        assert_eq!(r.epoch, 2);
        let pes = [r.first.pe, r.second.pe];
        assert!(pes.contains(&0) && pes.contains(&1), "{r:?}");
    }

    #[test]
    fn read_write_race_is_caught() {
        let err = launch(2, |ctx| {
            let sym = malloc_checked(ctx, 1).expect("alloc");
            if ctx.my_pe() == 0 {
                sym.put(ctx, 0, 0, 1.0);
                // Give PE 1 a chance to read concurrently.
                std::thread::sleep(std::time::Duration::from_millis(10));
            } else {
                std::thread::sleep(std::time::Duration::from_millis(5));
                let _ = sym.get(ctx, 0, 0); // same epoch: race
            }
            ctx.barrier_all();
        })
        .unwrap_err();
        assert!(err.to_string().contains("SHMEM race"), "got: {err}");
    }

    #[test]
    fn second_reader_no_longer_hides_the_first() {
        // Regression for the single-reader approximation: reader A's mark
        // used to be lost when reader B overwrote the shadow cell, so B's
        // own later write looked clean. The set-based shadow keeps both.
        let out = launch(2, |ctx| {
            let sym = malloc_checked_reporting(ctx, 1).expect("alloc");
            if ctx.my_pe() == 0 {
                let _ = sym.get(ctx, 0, 0); // reader A
                std::thread::sleep(std::time::Duration::from_millis(10));
            } else {
                std::thread::sleep(std::time::Duration::from_millis(5));
                let _ = sym.get(ctx, 0, 0); // reader B...
                sym.put(ctx, 0, 0, 2.0); // ...then B writes: races with A
            }
            ctx.barrier_all();
            sym.races()
        })
        .unwrap();
        let races = &out.results[0];
        assert!(
            races
                .iter()
                .any(|r| r.kind == ConflictKind::ReadWrite && r.first.pe == 0 && r.second.pe == 1),
            "reader A (PE 0) vs writer B (PE 1) must be reported: {races:?}"
        );
    }

    #[test]
    fn epochs_reset_conflicts() {
        // Writing the same word from different PEs is fine across barriers.
        let out = launch(2, |ctx| {
            let sym = malloc_checked(ctx, 1).expect("alloc");
            if ctx.my_pe() == 0 {
                sym.put(ctx, 0, 0, 10.0);
            }
            ctx.barrier_all();
            if ctx.my_pe() == 1 {
                sym.put(ctx, 0, 0, 20.0);
            }
            ctx.barrier_all();
            sym.get(ctx, 0, 0)
        })
        .unwrap();
        assert_eq!(out.results, vec![20.0, 20.0]);
    }
}
