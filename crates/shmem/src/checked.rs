//! Race-checked symmetric arrays.
//!
//! SHMEM's contract is that one-sided accesses between two barriers must
//! not conflict — the fabric gives no ordering, so a conflicting access is
//! a silent data race in the application (paper §2.2: "atomic access and
//! locks are provided for critical regions"; everything else is the
//! programmer's obligation). [`CheckedSym`] enforces that contract
//! dynamically: every word carries a shadow cell recording which PE last
//! touched it in the current barrier epoch, and a conflicting access from
//! another PE panics with a diagnostic instead of corrupting amplitudes.
//!
//! Used by tests (including a deliberate-race test) and available for
//! debugging user SPMD code; the hot simulation path uses the unchecked
//! arrays.

use crate::world::{ShmemCtx, SymF64, SymU64};
use svsim_types::SvResult;

/// Shadow encoding: `epoch * STRIDE + (pe + 1)`, 0 = untouched.
const PE_STRIDE: u64 = 1 << 16;

/// A symmetric f64 array with per-word conflict detection.
#[derive(Debug, Clone)]
pub struct CheckedSym {
    data: SymF64,
    /// One shadow word per data word: last *writer* in the current epoch.
    writers: SymU64,
    /// One shadow word per data word: last *reader* in the current epoch
    /// (single-reader approximation — enough to catch read/write races).
    readers: SymU64,
}

/// Collectively allocate a checked symmetric array.
///
/// # Errors
/// Propagates [`ShmemCtx::malloc_f64`] failures (poisoned heap/barrier or
/// violated collective call order).
pub fn malloc_checked(ctx: &ShmemCtx<'_>, len_per_pe: usize) -> SvResult<CheckedSym> {
    Ok(CheckedSym {
        data: ctx.malloc_f64(len_per_pe)?,
        writers: ctx.malloc_u64(len_per_pe)?,
        readers: ctx.malloc_u64(len_per_pe)?,
    })
}

impl CheckedSym {
    /// The underlying unchecked array (e.g. for bulk readback).
    #[must_use]
    pub fn raw(&self) -> &SymF64 {
        &self.data
    }

    fn stamp(ctx: &ShmemCtx<'_>) -> u64 {
        // Epochs advance at barriers; PEs in the same epoch share a count.
        (ctx.barrier_epoch() + 1) * PE_STRIDE + ctx.my_pe() as u64 + 1
    }

    fn decode(stamp: u64) -> (u64, usize) {
        (stamp / PE_STRIDE, (stamp % PE_STRIDE) as usize - 1)
    }

    /// Checked one-sided store.
    ///
    /// # Panics
    /// On a write-write or read-write conflict within the current epoch.
    pub fn put(&self, ctx: &ShmemCtx<'_>, pe: usize, idx: usize, v: f64) {
        let me = ctx.my_pe();
        let my_stamp = Self::stamp(ctx);
        let epoch = my_stamp / PE_STRIDE;
        let prev = ctx.atomic_swap_u64(&self.writers, pe, idx, my_stamp);
        if prev != 0 {
            let (pepoch, ppe) = Self::decode(prev);
            assert!(
                !(pepoch == epoch && ppe != me),
                "SHMEM race: PE {me} writes word {idx}@PE{pe} already written by \
                 PE {ppe} in the same barrier epoch"
            );
        }
        let r = ctx.get_u64(&self.readers, pe, idx);
        if r != 0 {
            let (repoch, rpe) = Self::decode(r);
            assert!(
                !(repoch == epoch && rpe != me),
                "SHMEM race: PE {me} writes word {idx}@PE{pe} already read by \
                 PE {rpe} in the same barrier epoch"
            );
        }
        ctx.put_f64(&self.data, pe, idx, v);
    }

    /// Checked one-sided load.
    ///
    /// # Panics
    /// On a read-write conflict within the current epoch.
    pub fn get(&self, ctx: &ShmemCtx<'_>, pe: usize, idx: usize) -> f64 {
        let me = ctx.my_pe();
        let my_stamp = Self::stamp(ctx);
        let epoch = my_stamp / PE_STRIDE;
        let w = ctx.get_u64(&self.writers, pe, idx);
        if w != 0 {
            let (wepoch, wpe) = Self::decode(w);
            assert!(
                !(wepoch == epoch && wpe != me),
                "SHMEM race: PE {me} reads word {idx}@PE{pe} written by PE {wpe} \
                 in the same barrier epoch (missing barrier)"
            );
        }
        ctx.put_u64(&self.readers, pe, idx, my_stamp);
        ctx.get_f64(&self.data, pe, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::launch;

    #[test]
    fn disciplined_protocol_passes() {
        // Classic exchange: write remote, barrier, read local.
        let out = launch(4, |ctx| {
            let sym = malloc_checked(ctx, 4).expect("alloc");
            let right = (ctx.my_pe() + 1) % ctx.n_pes();
            sym.put(ctx, right, 0, ctx.my_pe() as f64);
            ctx.barrier_all();
            sym.get(ctx, ctx.my_pe(), 0)
        })
        .unwrap();
        assert_eq!(out.results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn write_write_race_is_caught() {
        // `launch` no longer propagates the detector's panic: it surfaces
        // as a typed error naming the race.
        let err = launch(2, |ctx| {
            let sym = malloc_checked(ctx, 1).expect("alloc");
            // Both PEs write the same word of PE 0 with no barrier.
            sym.put(ctx, 0, 0, ctx.my_pe() as f64);
            ctx.barrier_all();
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("SHMEM race"),
            "the deliberate race must be detected, got: {err}"
        );
    }

    #[test]
    fn read_write_race_is_caught() {
        let err = launch(2, |ctx| {
            let sym = malloc_checked(ctx, 1).expect("alloc");
            if ctx.my_pe() == 0 {
                sym.put(ctx, 0, 0, 1.0);
                // Give PE 1 a chance to read concurrently.
                std::thread::sleep(std::time::Duration::from_millis(10));
            } else {
                std::thread::sleep(std::time::Duration::from_millis(5));
                let _ = sym.get(ctx, 0, 0); // same epoch: race
            }
            ctx.barrier_all();
        })
        .unwrap_err();
        assert!(err.to_string().contains("SHMEM race"), "got: {err}");
    }

    #[test]
    fn epochs_reset_conflicts() {
        // Writing the same word from different PEs is fine across barriers.
        let out = launch(2, |ctx| {
            let sym = malloc_checked(ctx, 1).expect("alloc");
            if ctx.my_pe() == 0 {
                sym.put(ctx, 0, 0, 10.0);
            }
            ctx.barrier_all();
            if ctx.my_pe() == 1 {
                sym.put(ctx, 0, 0, 20.0);
            }
            ctx.barrier_all();
            sym.get(ctx, 0, 0)
        })
        .unwrap();
        assert_eq!(out.results, vec![20.0, 20.0]);
    }
}
