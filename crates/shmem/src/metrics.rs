//! Per-PE communication traffic counters.
//!
//! Every one-sided access through a [`crate::ShmemCtx`] is classified as
//! local (lands in the calling PE's own partition) or remote. The resulting
//! traffic profile is what drives the interconnect performance model in
//! `svsim-perfmodel`: the functional run *measures* the message counts and
//! volumes; the model prices them for a given fabric.

use std::sync::atomic::{AtomicU64, Ordering};

/// Pads and aligns a value to 128 bytes so adjacent per-PE counter blocks
/// never share a cache line (the `crossbeam` `CachePadded` idea, inlined
/// here to keep the workspace dependency-free). 128 covers the spatial
/// prefetcher pairing on x86 and the 128-byte lines on POWER/apple-silicon.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Mutable per-PE counters (cache-padded to avoid false sharing between PEs).
///
/// `repr(C)` with a fixed field order so a zero-initialized block of a
/// `MAP_SHARED` arena can host a counter block directly (the process-backed
/// world of [`crate::proc`] places one per PE in the shared mapping; an
/// all-zero byte pattern is exactly the `Default` state).
#[derive(Debug, Default)]
#[repr(C)]
pub struct PeCounters {
    local_gets: AtomicU64,
    remote_gets: AtomicU64,
    local_puts: AtomicU64,
    remote_puts: AtomicU64,
    remote_get_bytes: AtomicU64,
    remote_put_bytes: AtomicU64,
    atomics: AtomicU64,
    barriers: AtomicU64,
}

impl PeCounters {
    /// Count one get; remote gets also accumulate transferred bytes.
    #[inline]
    pub fn count_get(&self, remote: bool, bytes: u64) {
        if remote {
            self.remote_gets.fetch_add(1, Ordering::Relaxed);
            self.remote_get_bytes.fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.local_gets.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one put; remote puts also accumulate transferred bytes.
    #[inline]
    pub fn count_put(&self, remote: bool, bytes: u64) {
        if remote {
            self.remote_puts.fetch_add(1, Ordering::Relaxed);
            self.remote_put_bytes.fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.local_puts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one remote atomic operation.
    #[inline]
    pub fn count_atomic(&self) {
        self.atomics.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one barrier crossing.
    #[inline]
    pub fn count_barrier(&self) {
        self.barriers.fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            local_gets: self.local_gets.load(Ordering::Relaxed),
            remote_gets: self.remote_gets.load(Ordering::Relaxed),
            local_puts: self.local_puts.load(Ordering::Relaxed),
            remote_puts: self.remote_puts.load(Ordering::Relaxed),
            remote_get_bytes: self.remote_get_bytes.load(Ordering::Relaxed),
            remote_put_bytes: self.remote_put_bytes.load(Ordering::Relaxed),
            atomics: self.atomics.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one PE's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// One-sided loads resolved within the PE's own partition.
    pub local_gets: u64,
    /// One-sided loads that crossed to another PE.
    pub remote_gets: u64,
    /// One-sided stores resolved locally.
    pub local_puts: u64,
    /// One-sided stores that crossed to another PE.
    pub remote_puts: u64,
    /// Bytes moved by remote gets.
    pub remote_get_bytes: u64,
    /// Bytes moved by remote puts.
    pub remote_put_bytes: u64,
    /// Atomic operations issued.
    pub atomics: u64,
    /// `barrier_all` calls.
    pub barriers: u64,
}

impl TrafficSnapshot {
    /// Total one-sided operations.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.local_gets + self.remote_gets + self.local_puts + self.remote_puts
    }

    /// Total remote operations (messages on the fabric).
    #[must_use]
    pub fn remote_ops(&self) -> u64 {
        self.remote_gets + self.remote_puts
    }

    /// Total bytes crossing the fabric.
    #[must_use]
    pub fn remote_bytes(&self) -> u64 {
        self.remote_get_bytes + self.remote_put_bytes
    }

    /// Fraction of operations that were remote (0 when idle).
    #[must_use]
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            0.0
        } else {
            self.remote_ops() as f64 / total as f64
        }
    }

    /// Element-wise sum (for aggregating a whole job).
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            local_gets: self.local_gets + other.local_gets,
            remote_gets: self.remote_gets + other.remote_gets,
            local_puts: self.local_puts + other.local_puts,
            remote_puts: self.remote_puts + other.remote_puts,
            remote_get_bytes: self.remote_get_bytes + other.remote_get_bytes,
            remote_put_bytes: self.remote_put_bytes + other.remote_put_bytes,
            atomics: self.atomics + other.atomics,
            barriers: self.barriers + other.barriers,
        }
    }
}

/// Where a [`MetricsTable`]'s counter blocks live: process-private (the
/// thread-backed world) or inside an OS-shared mapping (the process-backed
/// world, where every PE process and the launcher must see one table).
#[derive(Debug)]
enum TableStore {
    Owned(Vec<CachePadded<PeCounters>>),
    Mapped {
        base: *const u8,
        n: usize,
        stride: usize,
    },
}

// SAFETY: Owned blocks are atomics; Mapped points into a MAP_SHARED arena
// the owning `World` keeps alive, and every access is atomic.
#[allow(unsafe_code)]
unsafe impl Send for TableStore {}
#[allow(unsafe_code)]
unsafe impl Sync for TableStore {}

/// The metrics table for a whole world: one padded counter block per PE.
#[derive(Debug)]
pub struct MetricsTable {
    store: TableStore,
}

impl MetricsTable {
    /// Table for `n_pes` PEs.
    #[must_use]
    pub fn new(n_pes: usize) -> Self {
        Self {
            store: TableStore::Owned(
                (0..n_pes)
                    .map(|_| CachePadded::new(PeCounters::default()))
                    .collect(),
            ),
        }
    }

    /// View `n` counter blocks of `stride` bytes each inside an OS-shared
    /// mapping starting at `base`.
    ///
    /// # Safety
    /// `base` must point at `n * stride` zero-initialized, readable and
    /// writable bytes that stay mapped for the lifetime of the owning
    /// `World`; `stride` must be at least `size_of::<PeCounters>()` and a
    /// multiple of the counter alignment.
    #[allow(unsafe_code)]
    pub(crate) unsafe fn from_raw(base: *const u8, n: usize, stride: usize) -> Self {
        debug_assert!(stride >= std::mem::size_of::<PeCounters>());
        debug_assert_eq!(base.align_offset(std::mem::align_of::<PeCounters>()), 0);
        Self {
            store: TableStore::Mapped { base, n, stride },
        }
    }

    /// Number of PEs covered.
    #[must_use]
    pub fn n_pes(&self) -> usize {
        match &self.store {
            TableStore::Owned(v) => v.len(),
            TableStore::Mapped { n, .. } => *n,
        }
    }

    /// Counters of one PE.
    #[must_use]
    pub fn pe(&self, pe: usize) -> &PeCounters {
        match &self.store {
            TableStore::Owned(v) => &v[pe],
            TableStore::Mapped { base, n, stride } => {
                assert!(pe < *n, "PE {pe} out of range for {n} counter blocks");
                // SAFETY: in-bounds per the assert; the block is a
                // zero-initialized repr(C) PeCounters in a live mapping
                // (see from_raw's contract), and all-zero is a valid state.
                #[allow(unsafe_code)]
                unsafe {
                    &*base.add(pe * stride).cast::<PeCounters>()
                }
            }
        }
    }

    /// Snapshot of every PE.
    #[must_use]
    pub fn snapshot_all(&self) -> Vec<TrafficSnapshot> {
        (0..self.n_pes()).map(|p| self.pe(p).snapshot()).collect()
    }

    /// Aggregate over all PEs.
    #[must_use]
    pub fn aggregate(&self) -> TrafficSnapshot {
        self.snapshot_all()
            .iter()
            .fold(TrafficSnapshot::default(), |acc, s| acc.merged(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_aggregation() {
        let t = MetricsTable::new(2);
        t.pe(0).count_get(false, 8);
        t.pe(0).count_get(true, 8);
        t.pe(1).count_put(true, 8);
        t.pe(1).count_barrier();
        let s0 = t.pe(0).snapshot();
        assert_eq!(s0.local_gets, 1);
        assert_eq!(s0.remote_gets, 1);
        assert_eq!(s0.remote_get_bytes, 8);
        let agg = t.aggregate();
        assert_eq!(agg.total_ops(), 3);
        assert_eq!(agg.remote_ops(), 2);
        assert_eq!(agg.remote_bytes(), 16);
        assert_eq!(agg.barriers, 1);
    }

    #[test]
    fn mapped_table_counts_like_owned() {
        // Two 128-byte blocks of zeroed atomic words standing in for an
        // arena (atomics, so interior mutability through the view is sound).
        let backing: Box<[AtomicU64]> = (0..2 * 16).map(|_| AtomicU64::new(0)).collect();
        #[allow(unsafe_code)]
        // SAFETY: `backing` outlives `t`, is zeroed, and 128 >= block size.
        let t = unsafe { MetricsTable::from_raw(backing.as_ptr().cast(), 2, 128) };
        assert_eq!(t.n_pes(), 2);
        t.pe(0).count_get(true, 8);
        t.pe(1).count_put(false, 8);
        t.pe(1).count_barrier();
        let agg = t.aggregate();
        assert_eq!(agg.remote_gets, 1);
        assert_eq!(agg.local_puts, 1);
        assert_eq!(agg.barriers, 1);
        // Writes land in the backing words, not a private copy.
        assert!(backing.iter().any(|w| w.load(Ordering::Relaxed) != 0));
    }

    #[test]
    fn remote_fraction() {
        let t = MetricsTable::new(1);
        assert_eq!(t.aggregate().remote_fraction(), 0.0);
        t.pe(0).count_get(true, 8);
        t.pe(0).count_get(false, 8);
        t.pe(0).count_get(false, 8);
        t.pe(0).count_get(false, 8);
        assert!((t.aggregate().remote_fraction() - 0.25).abs() < 1e-12);
    }
}
