//! Sense-reversing spin barrier for SPMD PE synchronization.
//!
//! `shmem_barrier_all` is the only collective the hot gate loop touches
//! (one per gate, exactly as in the paper's Listing 5), so it is built
//! directly on atomics rather than a mutex/condvar pair. A poison flag lets
//! a panicking PE release the others instead of deadlocking the barrier.
//!
//! The protocol itself lives in [`crate::proto::bar`] as a pure state
//! machine — the same code the process backend drives over arena words
//! and the `svsim-verify` model checker drives over a model memory. This
//! type supplies the thread backend's storage (three process-local
//! atomic words) and waiting policy (spin then yield).

use crate::proto::bar::{Actor, BarrierSm, Step};
use crate::proto::AtomicWords;

/// Sense-reversing barrier over a fixed number of participants.
#[derive(Debug)]
pub struct SenseBarrier {
    sm: BarrierSm,
    words: AtomicWords<3>,
}

/// Per-participant barrier state (each PE keeps its own flipping sense).
#[derive(Debug, Default)]
pub struct BarrierToken {
    sense: bool,
}

impl BarrierToken {
    /// Current sense — shared with the process-backed barrier
    /// ([`crate::proc`]), which reproduces the same sense-reversing
    /// protocol over arena words.
    pub(crate) fn sense(&self) -> bool {
        self.sense
    }

    /// Flip to `next` after completing an epoch.
    pub(crate) fn set_sense(&mut self, next: bool) {
        self.sense = next;
    }
}

/// The barrier was poisoned by a failed peer (error of
/// [`SenseBarrier::try_wait`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPoisoned;

impl std::fmt::Display for BarrierPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shmem barrier poisoned: a peer PE failed")
    }
}

impl std::error::Error for BarrierPoisoned {}

/// Why a barrier wait failed — distinguishes a peer-poisoned barrier from
/// a bounded wait expiring with no poison observed (process backend only;
/// the thread backend's [`SenseBarrier`] never times out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BarrierWaitError {
    /// A peer poisoned the barrier (it failed, or its launcher reaped it).
    Poisoned,
    /// The bounded wait expired before the epoch released: the waiter saw
    /// neither a release nor a poison within the timeout.
    TimedOut {
        /// How long the waiter waited before giving up.
        waited: std::time::Duration,
    },
}

impl SenseBarrier {
    /// Barrier over `n` participants.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Self {
            sm: BarrierSm {
                n: n as u64,
                timeout_recheck: true,
            },
            words: AtomicWords::default(),
        }
    }

    /// Number of participants.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn participants(&self) -> usize {
        self.sm.n as usize
    }

    /// Block until all `n` participants arrive.
    ///
    /// # Panics
    /// If the barrier was [`poison`](Self::poison)ed (a peer PE panicked).
    pub fn wait(&self, token: &mut BarrierToken) {
        if self.try_wait(token).is_err() {
            panic!("shmem barrier poisoned: a peer PE panicked");
        }
    }

    /// Block until all `n` participants arrive, or until the barrier is
    /// poisoned — the graceful-shutdown variant of [`wait`](Self::wait).
    ///
    /// # Errors
    /// [`BarrierPoisoned`] once a peer poisons the barrier. The caller's
    /// token is left un-flipped on error, so the epoch at which poisoning
    /// was observed is well defined. An epoch that fully released before
    /// the poison still returns `Ok` — poisoning a barrier never fails an
    /// epoch retroactively, so *every* participant (waiter or late arriver)
    /// observes the poison in the same epoch: the first one that can no
    /// longer complete.
    pub fn try_wait(&self, token: &mut BarrierToken) -> Result<(), BarrierPoisoned> {
        let mut actor = Actor::new(token.sense);
        let mut spins = 0u32;
        loop {
            match self.sm.step(&mut actor, &self.words) {
                Step::Released => {
                    token.sense = actor.sense();
                    return Ok(());
                }
                Step::Poisoned => return Err(BarrierPoisoned),
                Step::TimedOut => unreachable!("thread barrier never requests a timeout"),
                Step::Pending => {
                    if actor.is_waiting() {
                        spins += 1;
                        if spins < 64 {
                            std::hint::spin_loop();
                        } else {
                            // Oversubscribed cores (PEs > hardware
                            // threads) must yield or the releasing PE
                            // never runs.
                            std::thread::yield_now();
                        }
                    }
                }
            }
        }
    }

    /// Mark the barrier poisoned, releasing spinning waiters into a panic.
    pub fn poison(&self) {
        crate::proto::bar::post_poison(&self.words);
    }

    /// True once poisoned.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        crate::proto::bar::is_poisoned(&self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = SenseBarrier::new(1);
        let mut t = BarrierToken::default();
        for _ in 0..10 {
            b.wait(&mut t);
        }
    }

    #[test]
    fn phases_are_separated() {
        // Counter increments in phase 1 must all be visible in phase 2.
        const N: usize = 4;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(SenseBarrier::new(N));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..N {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    let mut tok = BarrierToken::default();
                    for round in 1..=ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut tok);
                        assert_eq!(
                            counter.load(Ordering::Relaxed),
                            (round * N) as u64,
                            "phase leak at round {round}"
                        );
                        barrier.wait(&mut tok);
                    }
                });
            }
        });
    }

    #[test]
    fn poison_releases_waiters() {
        let barrier = Arc::new(SenseBarrier::new(2));
        let b2 = Arc::clone(&barrier);
        let waiter = std::thread::spawn(move || {
            let mut tok = BarrierToken::default();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                b2.wait(&mut tok);
            }));
            r.is_err()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        barrier.poison();
        assert!(waiter.join().unwrap(), "waiter should panic on poison");
        assert!(barrier.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = SenseBarrier::new(0);
    }
}
