//! The SPMD world: PE launch, symmetric heap, one-sided access, collectives.
//!
//! This is the in-process stand-in for OpenSHMEM/NVSHMEM (see DESIGN.md):
//! each processing element (PE) is a thread executing the same program, the
//! symmetric heap is allocated collectively (same sizes, same order on every
//! PE), and remote partitions are reached with one-sided `put`/`get` exactly
//! as in the paper's Listing 5.

use crate::barrier::{BarrierToken, SenseBarrier};
use crate::metrics::{MetricsTable, PeCounters, TrafficSnapshot};
use crate::shared::{SharedF64Vec, SharedU64Vec};
use std::cell::Cell;
use std::sync::{Arc, Mutex};
use svsim_types::{SvError, SvResult};

/// Handle to a symmetric `f64` array: every PE owns `len_per_pe` words and
/// can address any peer's copy.
#[derive(Debug, Clone)]
pub struct SymF64 {
    bufs: Arc<Vec<SharedF64Vec>>,
    len_per_pe: usize,
}

impl SymF64 {
    /// Words per PE.
    #[must_use]
    pub fn len_per_pe(&self) -> usize {
        self.len_per_pe
    }

    /// Direct reference to one PE's partition (peer-pointer-array analog).
    #[must_use]
    pub fn partition(&self, pe: usize) -> &SharedF64Vec {
        &self.bufs[pe]
    }

    /// Number of partitions (PEs).
    #[must_use]
    pub fn n_partitions(&self) -> usize {
        self.bufs.len()
    }
}

/// Handle to a symmetric `u64` array.
#[derive(Debug, Clone)]
pub struct SymU64 {
    bufs: Arc<Vec<SharedU64Vec>>,
    len_per_pe: usize,
}

impl SymU64 {
    /// Words per PE.
    #[must_use]
    pub fn len_per_pe(&self) -> usize {
        self.len_per_pe
    }

    /// Direct reference to one PE's partition.
    #[must_use]
    pub fn partition(&self, pe: usize) -> &SharedU64Vec {
        &self.bufs[pe]
    }
}

/// Shared world state behind every PE's [`ShmemCtx`].
#[derive(Debug)]
pub struct World {
    n_pes: usize,
    barrier: SenseBarrier,
    metrics: MetricsTable,
    /// Symmetric-heap allocation log: handles published by PE 0, indexed by
    /// allocation sequence number.
    heap_f64: Mutex<Vec<SymF64>>,
    heap_u64: Mutex<Vec<SymU64>>,
    /// Scratch slots for collectives (one word per PE).
    coll: SharedF64Vec,
    coll_u: SharedU64Vec,
}

impl World {
    fn new(n_pes: usize) -> Self {
        Self {
            n_pes,
            barrier: SenseBarrier::new(n_pes),
            metrics: MetricsTable::new(n_pes),
            heap_f64: Mutex::new(Vec::new()),
            heap_u64: Mutex::new(Vec::new()),
            coll: SharedF64Vec::new(n_pes, 0.0),
            coll_u: SharedU64Vec::new(n_pes, 0),
        }
    }
}

/// Per-PE execution context — the value passed to the SPMD body.
pub struct ShmemCtx<'w> {
    pe: usize,
    world: &'w World,
    token: Cell<BarrierToken>,
    epoch: Cell<u64>,
    /// Count of symmetric allocations this PE has participated in; used to
    /// pair each PE's `malloc` call with the published handle.
    alloc_seq_f64: Cell<usize>,
    alloc_seq_u64: Cell<usize>,
}

impl<'w> ShmemCtx<'w> {
    /// This PE's rank (`shmem_my_pe`).
    #[must_use]
    pub fn my_pe(&self) -> usize {
        self.pe
    }

    /// World size (`shmem_n_pes`).
    #[must_use]
    pub fn n_pes(&self) -> usize {
        self.world.n_pes
    }

    fn counters(&self) -> &PeCounters {
        self.world.metrics.pe(self.pe)
    }

    /// Global barrier (`shmem_barrier_all`).
    pub fn barrier_all(&self) {
        self.counters().count_barrier();
        let mut tok = self.token.take();
        self.world.barrier.wait(&mut tok);
        self.token.set(tok);
        self.epoch.set(self.epoch.get() + 1);
    }

    /// Number of barriers this PE has passed — the synchronization epoch
    /// used by [`crate::checked`] for race detection. Identical across PEs
    /// at any synchronized point.
    #[must_use]
    pub fn barrier_epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Atomic unconditional swap on a `u64` word; returns the previous
    /// value.
    pub fn atomic_swap_u64(&self, sym: &SymU64, pe: usize, idx: usize, value: u64) -> u64 {
        self.counters().count_atomic();
        sym.bufs[pe].swap(idx, value)
    }

    /// Collective symmetric allocation of `len_per_pe` f64 words per PE
    /// (`nvshmem_malloc`). Must be called by **all** PEs in the same order.
    pub fn malloc_f64(&self, len_per_pe: usize) -> SymF64 {
        let seq = self.alloc_seq_f64.get();
        self.alloc_seq_f64.set(seq + 1);
        if self.pe == 0 {
            let handle = SymF64 {
                bufs: Arc::new(
                    (0..self.world.n_pes)
                        .map(|_| SharedF64Vec::new(len_per_pe, 0.0))
                        .collect(),
                ),
                len_per_pe,
            };
            self.world.heap_f64.lock().expect("heap lock").push(handle);
        }
        self.barrier_all();
        let handle = self.world.heap_f64.lock().expect("heap lock")[seq].clone();
        assert_eq!(
            handle.len_per_pe, len_per_pe,
            "PE {} called malloc_f64 with a mismatched size (collective call order violated)",
            self.pe
        );
        handle
    }

    /// Collective symmetric allocation of `u64` words.
    pub fn malloc_u64(&self, len_per_pe: usize) -> SymU64 {
        let seq = self.alloc_seq_u64.get();
        self.alloc_seq_u64.set(seq + 1);
        if self.pe == 0 {
            let handle = SymU64 {
                bufs: Arc::new(
                    (0..self.world.n_pes)
                        .map(|_| SharedU64Vec::new(len_per_pe, 0))
                        .collect(),
                ),
                len_per_pe,
            };
            self.world.heap_u64.lock().expect("heap lock").push(handle);
        }
        self.barrier_all();
        let handle = self.world.heap_u64.lock().expect("heap lock")[seq].clone();
        assert_eq!(
            handle.len_per_pe, len_per_pe,
            "collective call order violated"
        );
        handle
    }

    /// One-sided load of one word from `src_pe`'s partition
    /// (`nvshmem_double_g`).
    #[inline]
    #[must_use]
    pub fn get_f64(&self, sym: &SymF64, src_pe: usize, idx: usize) -> f64 {
        self.counters().count_get(src_pe != self.pe, 8);
        sym.bufs[src_pe].load(idx)
    }

    /// One-sided store of one word into `dst_pe`'s partition
    /// (`nvshmem_double_p`).
    #[inline]
    pub fn put_f64(&self, sym: &SymF64, dst_pe: usize, idx: usize, v: f64) {
        self.counters().count_put(dst_pe != self.pe, 8);
        sym.bufs[dst_pe].store(idx, v);
    }

    /// Contiguous one-sided load (`shmem_getmem`): one message, many words.
    pub fn get_slice_f64(&self, sym: &SymF64, src_pe: usize, start: usize, dst: &mut [f64]) {
        self.counters()
            .count_get(src_pe != self.pe, 8 * dst.len() as u64);
        sym.bufs[src_pe].load_slice(start, dst);
    }

    /// Contiguous one-sided store (`shmem_putmem`).
    pub fn put_slice_f64(&self, sym: &SymF64, dst_pe: usize, start: usize, src: &[f64]) {
        self.counters()
            .count_put(dst_pe != self.pe, 8 * src.len() as u64);
        sym.bufs[dst_pe].store_slice(start, src);
    }

    /// Atomic fetch-add on a remote f64 word.
    pub fn atomic_fetch_add_f64(&self, sym: &SymF64, pe: usize, idx: usize, delta: f64) -> f64 {
        self.counters().count_atomic();
        sym.bufs[pe].fetch_add(idx, delta)
    }

    /// One-sided `u64` load.
    #[inline]
    #[must_use]
    pub fn get_u64(&self, sym: &SymU64, src_pe: usize, idx: usize) -> u64 {
        self.counters().count_get(src_pe != self.pe, 8);
        sym.bufs[src_pe].load(idx)
    }

    /// One-sided `u64` store.
    #[inline]
    pub fn put_u64(&self, sym: &SymU64, dst_pe: usize, idx: usize, v: u64) {
        self.counters().count_put(dst_pe != self.pe, 8);
        sym.bufs[dst_pe].store(idx, v);
    }

    /// Atomic fetch-add on a `u64` word.
    pub fn atomic_fetch_add_u64(&self, sym: &SymU64, pe: usize, idx: usize, delta: u64) -> u64 {
        self.counters().count_atomic();
        sym.bufs[pe].fetch_add(idx, delta)
    }

    /// Atomic compare-and-swap on a `u64` word; returns the previous value.
    pub fn atomic_compare_swap_u64(
        &self,
        sym: &SymU64,
        pe: usize,
        idx: usize,
        expected: u64,
        desired: u64,
    ) -> u64 {
        self.counters().count_atomic();
        sym.bufs[pe].compare_swap(idx, expected, desired)
    }

    /// All-reduce sum over one f64 contribution per PE
    /// (`shmem_double_sum_to_all`). Collective.
    pub fn sum_reduce_f64(&self, x: f64) -> f64 {
        self.world.coll.store(self.pe, x);
        self.barrier_all();
        let total: f64 = (0..self.world.n_pes).map(|p| self.world.coll.load(p)).sum();
        self.barrier_all(); // protect the scratch slots from the next collective
        total
    }

    /// All-reduce max. Collective.
    pub fn max_reduce_f64(&self, x: f64) -> f64 {
        self.world.coll.store(self.pe, x);
        self.barrier_all();
        let m = (0..self.world.n_pes)
            .map(|p| self.world.coll.load(p))
            .fold(f64::NEG_INFINITY, f64::max);
        self.barrier_all();
        m
    }

    /// Broadcast a f64 from `root` to all PEs. Collective.
    pub fn broadcast_f64(&self, root: usize, x: f64) -> f64 {
        if self.pe == root {
            self.world.coll.store(0, x);
        }
        self.barrier_all();
        let v = self.world.coll.load(0);
        self.barrier_all();
        v
    }

    /// Broadcast a u64 from `root`. Collective.
    pub fn broadcast_u64(&self, root: usize, x: u64) -> u64 {
        if self.pe == root {
            self.world.coll_u.store(0, x);
        }
        self.barrier_all();
        let v = self.world.coll_u.load(0);
        self.barrier_all();
        v
    }

    /// This PE's traffic snapshot so far.
    #[must_use]
    pub fn my_traffic(&self) -> TrafficSnapshot {
        self.counters().snapshot()
    }
}

/// Result of an SPMD job: per-PE return values plus the traffic profile.
#[derive(Debug)]
pub struct JobOutput<T> {
    /// Per-PE results, indexed by rank.
    pub results: Vec<T>,
    /// Per-PE traffic, indexed by rank.
    pub traffic: Vec<TrafficSnapshot>,
}

impl<T> JobOutput<T> {
    /// Aggregate traffic over all PEs.
    #[must_use]
    pub fn total_traffic(&self) -> TrafficSnapshot {
        self.traffic
            .iter()
            .fold(TrafficSnapshot::default(), |acc, s| acc.merged(s))
    }
}

/// Launch an SPMD job over `n_pes` PEs (the `shmem_init` + fork analog).
///
/// Every PE runs `body` with its own [`ShmemCtx`]. If any PE panics, the
/// barrier is poisoned so peers fail fast, and the panic is propagated.
///
/// # Errors
/// [`SvError::InvalidConfig`] when `n_pes == 0`.
pub fn launch<T, F>(n_pes: usize, body: F) -> SvResult<JobOutput<T>>
where
    T: Send,
    F: Fn(&ShmemCtx<'_>) -> T + Sync,
{
    if n_pes == 0 {
        return Err(SvError::InvalidConfig("n_pes must be >= 1".into()));
    }
    let world = World::new(n_pes);
    let mut slots: Vec<Option<T>> = (0..n_pes).map(|_| None).collect();
    std::thread::scope(|scope| {
        let world = &world;
        let body = &body;
        let handles: Vec<_> = slots
            .iter_mut()
            .enumerate()
            .map(|(pe, slot)| {
                scope.spawn(move || {
                    let ctx = ShmemCtx {
                        pe,
                        world,
                        token: Cell::new(BarrierToken::default()),
                        epoch: Cell::new(0),
                        alloc_seq_f64: Cell::new(0),
                        alloc_seq_u64: Cell::new(0),
                    };
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
                    match r {
                        Ok(v) => {
                            *slot = Some(v);
                        }
                        Err(payload) => {
                            world.barrier.poison();
                            std::panic::resume_unwind(payload);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            // Propagate the first panic after all threads finish or poison.
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    let traffic = world.metrics.snapshot_all();
    Ok(JobOutput {
        results: slots
            .into_iter()
            .map(|s| s.expect("PE completed without result"))
            .collect(),
        traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_world_size() {
        let out = launch(4, |ctx| (ctx.my_pe(), ctx.n_pes())).unwrap();
        for (pe, &(rank, n)) in out.results.iter().enumerate() {
            assert_eq!(rank, pe);
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn zero_pes_rejected() {
        assert!(launch(0, |_| ()).is_err());
    }

    #[test]
    fn symmetric_heap_put_get() {
        // Ring exchange: each PE writes its rank into its right neighbor's
        // partition, then reads its own slot.
        let out = launch(4, |ctx| {
            let sym = ctx.malloc_f64(1);
            let right = (ctx.my_pe() + 1) % ctx.n_pes();
            ctx.put_f64(&sym, right, 0, ctx.my_pe() as f64);
            ctx.barrier_all();
            ctx.get_f64(&sym, ctx.my_pe(), 0)
        })
        .unwrap();
        assert_eq!(out.results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn traffic_is_classified() {
        let out = launch(2, |ctx| {
            let sym = ctx.malloc_f64(4);
            // one local put, one remote put, one remote get
            ctx.put_f64(&sym, ctx.my_pe(), 0, 1.0);
            ctx.put_f64(&sym, 1 - ctx.my_pe(), 1, 2.0);
            ctx.barrier_all();
            ctx.get_f64(&sym, 1 - ctx.my_pe(), 0)
        })
        .unwrap();
        let agg = out.total_traffic();
        assert_eq!(agg.local_puts, 2);
        assert_eq!(agg.remote_puts, 2);
        assert_eq!(agg.remote_gets, 2);
        assert_eq!(agg.remote_bytes(), 2 * 8 + 2 * 8);
        assert_eq!(out.results, vec![1.0, 1.0]);
    }

    #[test]
    fn slice_transfers() {
        let out = launch(2, |ctx| {
            let sym = ctx.malloc_f64(8);
            if ctx.my_pe() == 0 {
                ctx.put_slice_f64(&sym, 1, 2, &[5.0, 6.0, 7.0]);
            }
            ctx.barrier_all();
            let mut buf = [0.0; 3];
            ctx.get_slice_f64(&sym, 1, 2, &mut buf);
            buf
        })
        .unwrap();
        assert_eq!(out.results[0], [5.0, 6.0, 7.0]);
        assert_eq!(out.results[1], [5.0, 6.0, 7.0]);
        // Slice ops count as one message each.
        assert_eq!(out.total_traffic().remote_puts, 1);
    }

    #[test]
    fn reductions_and_broadcast() {
        let out = launch(4, |ctx| {
            let sum = ctx.sum_reduce_f64(ctx.my_pe() as f64 + 1.0);
            let max = ctx.max_reduce_f64(ctx.my_pe() as f64);
            let b = ctx.broadcast_f64(2, if ctx.my_pe() == 2 { 42.0 } else { 0.0 });
            let bu = ctx.broadcast_u64(1, if ctx.my_pe() == 1 { 7 } else { 0 });
            (sum, max, b, bu)
        })
        .unwrap();
        for &(sum, max, b, bu) in &out.results {
            assert_eq!(sum, 10.0);
            assert_eq!(max, 3.0);
            assert_eq!(b, 42.0);
            assert_eq!(bu, 7);
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_interfere() {
        let out = launch(3, |ctx| {
            let a = ctx.sum_reduce_f64(1.0);
            let b = ctx.sum_reduce_f64(2.0);
            let c = ctx.max_reduce_f64(ctx.my_pe() as f64);
            (a, b, c)
        })
        .unwrap();
        for &(a, b, c) in &out.results {
            assert_eq!((a, b, c), (3.0, 6.0, 2.0));
        }
    }

    #[test]
    fn multiple_allocations_in_order() {
        let out = launch(2, |ctx| {
            let a = ctx.malloc_f64(2);
            let b = ctx.malloc_f64(3);
            let f = ctx.malloc_u64(1);
            ctx.put_f64(&a, ctx.my_pe(), 0, 1.0);
            ctx.put_f64(&b, ctx.my_pe(), 2, 2.0);
            ctx.atomic_fetch_add_u64(&f, 0, 0, 1);
            ctx.barrier_all();
            (a.len_per_pe(), b.len_per_pe(), ctx.get_u64(&f, 0, 0))
        })
        .unwrap();
        assert_eq!(out.results[0], (2, 3, 2));
    }

    #[test]
    fn atomic_fetch_add_f64_across_pes() {
        let out = launch(4, |ctx| {
            let sym = ctx.malloc_f64(1);
            ctx.barrier_all();
            // Everyone adds into PE 0's slot.
            ctx.atomic_fetch_add_f64(&sym, 0, 0, 1.5);
            ctx.barrier_all();
            ctx.get_f64(&sym, 0, 0)
        })
        .unwrap();
        assert_eq!(out.results[1], 6.0);
    }

    #[test]
    fn panic_in_one_pe_propagates() {
        let r = std::panic::catch_unwind(|| {
            let _ = launch(3, |ctx| {
                if ctx.my_pe() == 1 {
                    panic!("PE 1 exploded");
                }
                // Peers head into a barrier that PE 1 never reaches.
                ctx.barrier_all();
            });
        });
        assert!(r.is_err());
    }
}
